"""In-process observation feeds wrapped in the :class:`Source` protocol."""

from typing import Iterable, Iterator

from repro.simulation.receivers import Observation
from repro.sources.base import SourceStats

__all__ = ["IterableSource"]


class IterableSource:
    """Adapt any iterable of :class:`Observation` to the source protocol.

    The zero-cost source: replays, tests and benchmarks hand the feed
    they already hold in memory to the same façade a socket would feed.
    A generator is consumed once; a list can be iterated again.
    """

    def __init__(self, observations: Iterable[Observation],
                 name: str = "iterable") -> None:
        self._observations = observations
        self._stats = SourceStats(name=name)
        self._closed = False

    def __iter__(self) -> Iterator[Observation]:
        for obs in self._observations:
            if self._closed:
                break
            self._stats.n_lines += 1
            self._stats.n_observations += 1
            yield obs

    def stats(self) -> SourceStats:
        return self._stats

    def close(self) -> None:
        self._closed = True
