"""In-process observation feeds wrapped in the :class:`Source` protocol."""

from typing import Iterable, Iterator

from repro.simulation.receivers import Observation
from repro.sources.base import SourcePosition, SourceStats

__all__ = ["IterableSource"]


class IterableSource:
    """Adapt any iterable of :class:`Observation` to the source protocol.

    The zero-cost source: replays, tests and benchmarks hand the feed
    they already hold in memory to the same façade a socket would feed.
    A generator is consumed once; a list can be iterated again.

    Resumable when the underlying iterable is restartable (a list, a
    range-backed generator factory): :meth:`position` is the index of
    the next item, :meth:`seek` fast-forwards a fresh iteration past the
    already-processed prefix.
    """

    def __init__(self, observations: Iterable[Observation],
                 name: str = "iterable") -> None:
        self._observations = observations
        self._stats = SourceStats(name=name)
        self._closed = False
        self._index = 0
        self._t_last: float | None = None
        self._iterating = False

    def __iter__(self) -> Iterator[Observation]:
        self._iterating = True
        iterator = iter(self._observations)
        # Fast-forward past a seeked prefix: those items were processed
        # by the run that recorded the position, so they are skipped
        # without counting.
        for _ in range(self._index):
            if next(iterator, None) is None:
                return
        for obs in iterator:
            if self._closed:
                break
            self._index += 1
            self._stats.n_lines += 1
            self._stats.n_observations += 1
            self._t_last = obs.t_received
            yield obs

    def position(self) -> SourcePosition:
        return SourcePosition(
            kind="index",
            offset=self._index,
            t_last=self._t_last,
            n_observations=self._stats.n_observations,
        )

    def seek(self, position: SourcePosition) -> None:
        if self._iterating:
            raise RuntimeError(
                "seek() must run before iteration starts — a consuming "
                "source cannot jump"
            )
        self._index = int(position.offset)
        self._t_last = position.t_last
        self._stats.n_observations = position.n_observations

    def stats(self) -> SourceStats:
        return self._stats

    def close(self) -> None:
        self._closed = True
