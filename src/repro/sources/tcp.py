"""NMEA-over-TCP client source: the de-facto live AIS feed transport.

Receivers and aggregators (dAISy, rtl-ais, AISHub, commercial feeds)
serve newline-framed ``!AIVDM`` sentences over a plain TCP socket.
:class:`NmeaTcpSource` is the consuming side, built for unattended runs:

- a background reader thread owns the socket: connect, read, split into
  lines, parse TAG blocks (same grammar as the file source) and stage
  observations in a **bounded queue**;
- the pipeline thread iterates the source and drains that queue, so a
  slow tick never blocks the socket — when the queue fills, the *oldest*
  staged observation is dropped (newest data wins; a surveillance
  picture wants the current fix, not a complete backlog) and counted in
  ``stats().n_dropped``; lines refused at parse time count in
  ``stats().n_rejected`` instead, so a dirty feed never reads as queue
  pressure;
- connection loss triggers reconnect with exponential backoff
  (``backoff_initial_s`` doubling to ``backoff_max_s``), counted in
  ``stats().n_reconnects``; ``max_retries`` consecutive failed attempts
  end the feed (``None`` retries forever until :meth:`close`), and
  ``reconnect=False`` makes the feed single-shot — one connect attempt,
  ended by failure or remote close.

Iteration terminates when the reader has ended (remote close with
reconnect exhausted, or :meth:`close`) and the queue is drained.
"""

import socket
import threading
import time
from collections import deque
from typing import Iterator

from repro.ais.decoder import AisDecoder
from repro.simulation.receivers import Observation
from repro.sources.base import SourcePosition, SourceStats
from repro.sources.nmea import _tag_times, parse_tagged_line

__all__ = ["NmeaTcpSource"]


class NmeaTcpSource:
    """Line-framed TCP client with reconnect, backoff and a bounded queue."""

    def __init__(
        self,
        host: str,
        port: int,
        max_queue: int = 10_000,
        reconnect: bool = True,
        max_retries: int | None = None,
        backoff_initial_s: float = 0.5,
        backoff_max_s: float = 30.0,
        connect_timeout_s: float = 5.0,
        read_timeout_s: float = 1.0,
        source_name: str | None = None,
    ) -> None:
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        self.host = host
        self.port = port
        self.max_queue = max_queue
        self.reconnect = reconnect
        self.max_retries = max_retries
        self.backoff_initial_s = backoff_initial_s
        self.backoff_max_s = backoff_max_s
        self.connect_timeout_s = connect_timeout_s
        self.read_timeout_s = read_timeout_s
        self.source_name = source_name or f"tcp:{host}:{port}"
        self._stats = SourceStats(name=self.source_name)
        self._decoder = AisDecoder()
        self._queue: deque[Observation] = deque()
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._reader: threading.Thread | None = None
        self._sock: socket.socket | None = None
        self._t_last: float | None = None

    # -- reader thread -----------------------------------------------------

    def _run_reader(self) -> None:
        backoff = self.backoff_initial_s
        failures = 0
        first_attempt = True
        while not self._stop.is_set():
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout_s
                )
            except OSError:
                failures += 1
                self._stats.count_error("connect_failed")
                if not self._retry_allowed(failures):
                    break
                self._stop.wait(backoff)
                backoff = min(backoff * 2.0, self.backoff_max_s)
                continue
            if not first_attempt:
                self._stats.n_reconnects += 1
            first_attempt = False
            self._sock = sock
            try:
                got_data = self._read_lines(sock)
            finally:
                self._sock = None
                try:
                    sock.close()
                except OSError:
                    pass
            if not self.reconnect:
                break
            if got_data:
                # Only real data resets the backoff: a server that
                # accepts and immediately closes (quota kicks) must back
                # off like a failed connect, or we busy-loop on it.
                failures = 0
                backoff = self.backoff_initial_s
            else:
                failures += 1
                self._stats.count_error("empty_connection")
                if not self._retry_allowed(failures):
                    break
                self._stop.wait(backoff)
                backoff = min(backoff * 2.0, self.backoff_max_s)
        with self._available:
            self._available.notify_all()

    def _retry_allowed(self, failures: int) -> bool:
        if not self.reconnect:
            return False  # single-shot: one attempt, success or not
        if self.max_retries is not None and failures > self.max_retries:
            return False
        return True

    def _read_lines(self, sock: socket.socket) -> bool:
        """Drain one connection, splitting the byte stream on newlines;
        returns whether any data arrived (backoff-reset signal)."""
        sock.settimeout(self.read_timeout_s)
        buffer = b""
        got_data = False
        while not self._stop.is_set():
            try:
                chunk = sock.recv(4096)
            except socket.timeout:
                continue
            except OSError:
                return got_data
            if not chunk:  # orderly remote close
                if buffer.strip():
                    self._ingest_line(buffer.decode("ascii", "replace"))
                return got_data
            got_data = True
            buffer += chunk
            while b"\n" in buffer:
                raw, buffer = buffer.split(b"\n", 1)
                line = raw.decode("ascii", "replace").strip()
                if line:
                    self._ingest_line(line)
        return got_data

    def _ingest_line(self, line: str) -> None:
        stats = self._stats
        stats.n_lines += 1
        fields, sentence = parse_tagged_line(line)
        if "_bad_tag" in fields:
            stats.count_error(f"tag_{fields['_bad_tag']}")
        if not sentence or sentence[0] not in "!$":
            stats.n_rejected += 1
            stats.count_error("not_a_sentence")
            return
        received, transmitted = _tag_times(fields)
        if received is None:
            received = time.time()
        if transmitted is None:
            transmitted = received
        message = self._decoder.feed(sentence, received_at=received)
        obs = Observation(
            t_received=received,
            sentence=sentence,
            source=fields.get("s", self.source_name),
            mmsi=message.mmsi if message is not None else 0,
            t_transmitted=transmitted,
        )
        with self._available:
            if len(self._queue) >= self.max_queue:
                self._queue.popleft()  # drop-oldest: newest data wins
                stats.n_dropped += 1
                stats.count_error("queue_overflow")
            self._queue.append(obs)
            stats.queue_depth = len(self._queue)
            stats.queue_high_water = max(
                stats.queue_high_water, stats.queue_depth
            )
            self._available.notify()

    # -- consumer side -----------------------------------------------------

    def __iter__(self) -> Iterator[Observation]:
        if self._reader is None:
            self._reader = threading.Thread(
                target=self._run_reader,
                name=f"nmea-tcp-{self.host}:{self.port}",
                daemon=True,
            )
            self._reader.start()
        while True:
            with self._available:
                while not self._queue and self._feeding():
                    self._available.wait(timeout=0.1)
                if not self._queue:
                    return
                obs = self._queue.popleft()
                # Counted here, not at staging: n_observations promises
                # "yielded downstream", and overflow victims never are.
                self._stats.n_observations += 1
                self._stats.queue_depth = len(self._queue)
                self._t_last = obs.t_received
            yield obs

    def position(self) -> SourcePosition:
        """Watermark-only position: a socket cannot be rewound, so a
        restored run reconnects live and relies on the replayed reorder
        watermark to drop records already processed before the crash.
        No ``seek`` is provided."""
        return SourcePosition(
            kind="stream",
            offset=0,
            t_last=self._t_last,
            n_observations=self._stats.n_observations,
        )

    def _feeding(self) -> bool:
        """True while more observations may still arrive."""
        return (
            self._reader is not None
            and self._reader.is_alive()
            and not self._stop.is_set()
        )

    def stats(self) -> SourceStats:
        return self._stats

    def close(self) -> None:
        """Stop reading; iteration ends once the queue drains."""
        self._stop.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        with self._available:
            self._available.notify_all()
        if self._reader is not None and self._reader is not threading.current_thread():
            self._reader.join(timeout=2.0)
