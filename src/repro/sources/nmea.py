"""NMEA file feeds: TAG-block timestamps, file replay, and tail mode.

Real AIS loggers prefix sentences with NMEA 4.0 *TAG blocks* —
``\\c:1496127430,s:rORBCOMM000*4A\\!AIVDM,...`` — carrying reception
metadata the sentence itself cannot (a position report encodes only the
UTC second of its minute).  This module reads and writes that framing:

- ``c:`` reception epoch, seconds (floats accepted; values above 10^12
  are treated as milliseconds, the other convention in the wild);
- ``s:`` receiving source name;
- ``x:`` transmission epoch, seconds — our extension, written by
  :func:`write_nmea_file` so a simulated feed round-trips through a file
  with event time intact.  Unknown fields are ignored; a TAG block with a
  bad checksum is dropped (counted) and the bare sentence still parses.

Lines without a TAG block get a synthetic reception timeline
(``start_t + n * synthetic_interval_s``) so plain ``!AIVDM`` dumps — the
output of ``repro simulate`` — remain usable, just without real timing.

:class:`NmeaFileSource` replays a file; with ``tail=True`` it keeps the
file open at EOF and follows appended lines (``tail -f``), which is how
a directory-drop feed from a real receiver is consumed.
"""

import time
from typing import IO, Iterable, Iterator

from repro.ais.checksum import nmea_checksum
from repro.ais.decoder import AisDecoder
from repro.simulation.receivers import Observation
from repro.sources.base import SourcePosition, SourceStats

__all__ = [
    "NmeaFileSource",
    "format_tagged_sentence",
    "parse_tagged_line",
    "write_nmea_file",
]

#: Millisecond/second discrimination threshold for ``c:`` values.
_MS_EPOCH_FLOOR = 1e12


def parse_tagged_line(line: str) -> tuple[dict, str]:
    """Split one feed line into (tag fields, sentence).

    Returns ``({}, sentence)`` for untagged lines.  A malformed or
    checksum-failing TAG block yields ``{"_bad_tag": reason}`` plus the
    sentence after the block (defensive: never lose the payload).
    """
    line = line.strip()
    if not line.startswith("\\"):
        return {}, line
    end = line.find("\\", 1)
    if end == -1:
        return {"_bad_tag": "unterminated"}, line.lstrip("\\")
    block, sentence = line[1:end], line[end + 1:]
    star = block.rfind("*")
    if star == -1 or len(block) < star + 3:
        return {"_bad_tag": "no_checksum"}, sentence
    body, expected = block[:star], block[star + 1: star + 3].upper()
    if nmea_checksum(body) != expected:
        return {"_bad_tag": "checksum"}, sentence
    fields: dict = {}
    for item in body.split(","):
        key, sep, value = item.partition(":")
        if sep:
            fields[key] = value
    return fields, sentence


def _tag_times(fields: dict) -> tuple[float | None, float | None]:
    """(t_received, t_transmitted) from parsed TAG fields, if present."""
    received = transmitted = None
    try:
        if "c" in fields:
            received = float(fields["c"])
            if received >= _MS_EPOCH_FLOOR:
                received /= 1000.0
    except ValueError:
        pass
    try:
        if "x" in fields:
            transmitted = float(fields["x"])
    except ValueError:
        pass
    return received, transmitted


def format_tagged_sentence(obs: Observation) -> str:
    """One feed line for an observation: TAG block + raw sentence.

    Epochs are written with ``repr`` (shortest round-tripping float), so
    a write/read cycle reproduces reception and transmission times bit
    for bit — the property the source-equivalence tests rely on.
    """
    body = f"c:{obs.t_received!r},s:{obs.source},x:{obs.t_transmitted!r}"
    return f"\\{body}*{nmea_checksum(body)}\\{obs.sentence}"


def write_nmea_file(
    observations: Iterable[Observation],
    target: str | IO[str],
    tagged: bool = True,
) -> int:
    """Write a feed file; returns the number of lines written.

    ``tagged=True`` (default) preserves reception/transmission epochs and
    source names via TAG blocks, making the file a lossless transport for
    :class:`NmeaFileSource`; ``tagged=False`` writes bare sentences.
    """
    fh = open(target, "w") if isinstance(target, str) else target
    n = 0
    try:
        for obs in observations:
            line = format_tagged_sentence(obs) if tagged else obs.sentence
            fh.write(line + "\n")
            n += 1
    finally:
        if isinstance(target, str):
            fh.close()
    return n


class NmeaFileSource:
    """Replay (or tail) a file of NMEA sentences as an observation feed.

    Each line is parsed for a TAG block; the sentence is also run through
    a local :class:`~repro.ais.decoder.AisDecoder` purely to recover the
    MMSI for provenance (the pipeline re-decodes downstream — sources
    stay stateless towards the session).  Timing rules:

    - TAG ``c:`` present → that is the reception epoch; ``x:`` (if
      present) the transmission epoch, else assumed equal to reception.
    - no TAG block → synthetic reception timeline ``start_t + n * dt``.

    ``tail=True`` keeps polling for appended lines every
    ``poll_interval_s`` once EOF is reached, ending only after
    ``idle_timeout_s`` without new data (``None`` = follow forever, until
    :meth:`close`).

    The source is **resumable**: the file is read in binary mode so the
    cursor is an exact byte offset, :meth:`position` reports the offset
    of the first unconsumed line (plus the reception time last emitted
    and the cumulative observation count the synthetic timeline derives
    from), and :meth:`seek` — before iteration — restarts from a
    recorded position.  Tail mode keeps the same offset discipline: a
    half-written line is not consumed, so the recorded position never
    splits a line.
    """

    def __init__(
        self,
        path: str,
        tail: bool = False,
        poll_interval_s: float = 0.2,
        idle_timeout_s: float | None = None,
        start_t: float = 0.0,
        synthetic_interval_s: float = 1.0,
        source_name: str | None = None,
    ) -> None:
        self.path = path
        self.tail = tail
        self.poll_interval_s = poll_interval_s
        self.idle_timeout_s = idle_timeout_s
        self.start_t = start_t
        self.synthetic_interval_s = synthetic_interval_s
        self.source_name = source_name
        self._stats = SourceStats(name=f"file:{path}")
        self._decoder = AisDecoder()
        self._closed = False
        #: Byte offset of the first line not yet consumed; the resume
        #: cursor.  Binary reads keep it exact (text-mode ``tell`` is
        #: neither cheap nor a byte count).
        self._offset = 0
        self._t_last: float | None = None
        self._iterating = False

    # -- iteration ---------------------------------------------------------

    def __iter__(self) -> Iterator[Observation]:
        self._iterating = True
        with open(self.path, "rb") as fh:
            if self._offset:
                fh.seek(self._offset)
            yield from self._drain(fh)
            idle_s = 0.0
            while self.tail and not self._closed:
                if self.idle_timeout_s is not None and idle_s >= self.idle_timeout_s:
                    break
                time.sleep(self.poll_interval_s)
                produced = False
                for obs in self._drain(fh):
                    produced = True
                    yield obs
                idle_s = 0.0 if produced else idle_s + self.poll_interval_s

    def _drain(self, fh: IO[bytes]) -> Iterator[Observation]:
        """Yield observations for every complete line currently readable.

        Invariant: the file cursor equals ``self._offset`` on entry and
        exit — a line advances the offset only once fully consumed, and
        a half-written tail line rewinds, so :meth:`position` always
        names a line boundary.
        """
        while not self._closed:
            raw = fh.readline()
            if not raw:
                break
            if not raw.endswith(b"\n") and self.tail:
                # A writer mid-line: rewind and retry on the next poll.
                fh.seek(self._offset)
                break
            self._offset += len(raw)
            obs = self._observation(raw.decode("utf-8", errors="replace"))
            if obs is not None:
                self._t_last = obs.t_received
                yield obs

    def _observation(self, line: str) -> Observation | None:
        stats = self._stats
        stats.n_lines += 1
        fields, sentence = parse_tagged_line(line)
        if "_bad_tag" in fields:
            stats.count_error(f"tag_{fields['_bad_tag']}")
        if not sentence or sentence[0] not in "!$":
            if sentence:  # blank lines are not worth counting as rejects
                stats.n_rejected += 1
                stats.count_error("not_a_sentence")
            return None
        received, transmitted = _tag_times(fields)
        if received is None:
            received = (
                self.start_t + (stats.n_observations) * self.synthetic_interval_s
            )
        if transmitted is None:
            transmitted = received
        message = self._decoder.feed(sentence, received_at=received)
        mmsi = message.mmsi if message is not None else 0
        stats.n_observations += 1
        return Observation(
            t_received=received,
            sentence=sentence,
            source=self.source_name or fields.get("s", "file"),
            mmsi=mmsi,
            t_transmitted=transmitted,
        )

    # -- protocol ----------------------------------------------------------

    def position(self) -> SourcePosition:
        """The resume cursor: first unconsumed byte, last emitted time,
        observations yielded so far.  Safe between yields (each yield
        leaves the offset on a line boundary)."""
        return SourcePosition(
            kind="file",
            offset=self._offset,
            t_last=self._t_last,
            n_observations=self._stats.n_observations,
        )

    def seek(self, position: SourcePosition) -> None:
        """Restart a not-yet-iterated source from a recorded position.

        Seeds the cumulative observation counter too, so an untagged
        file's synthetic reception timeline continues where the
        recording run left off instead of restarting at ``start_t``.
        """
        if self._iterating:
            raise RuntimeError(
                "seek() must run before iteration starts — a consuming "
                "source cannot jump"
            )
        self._offset = int(position.offset)
        self._t_last = position.t_last
        self._stats.n_observations = position.n_observations

    def stats(self) -> SourceStats:
        return self._stats

    def close(self) -> None:
        self._closed = True
