"""The ``Source`` protocol: typed feeds into the live pipeline.

A source is anything that yields
:class:`~repro.simulation.receivers.Observation` objects in reception
order and can report its own ingest accounting.  ``run_live`` (and the
:class:`~repro.monitor.MaritimeMonitor` façade on top of it) consume a
source exactly like any other observation iterable; what the protocol
adds is provenance — every source knows how many lines it saw, how many
observations it produced, and what it dropped or retried — so the
backpressure metrics on each :class:`~repro.core.stages.PipelineIncrement`
can reach all the way back to the receiver.
"""

from dataclasses import dataclass, field
from typing import Iterator, Protocol, runtime_checkable

from repro.simulation.receivers import Observation

__all__ = ["FeedLiveness", "Source", "SourcePosition", "SourceStats"]


@dataclass(frozen=True)
class SourcePosition:
    """A resumable cursor into a source's input, recorded at a barrier.

    Sources that can replay — files, in-memory iterables — implement
    ``position() -> SourcePosition`` and ``seek(position)`` (before
    iteration starts); the checkpoint layer records the position whose
    every earlier observation has been *fed* to the pipeline, so a
    restored run re-reads exactly the unprocessed suffix.  Stream
    sources (TCP) cannot seek: they report ``kind="stream"`` and
    restore relies on the replayed pipeline watermark dropping
    already-processed records instead.
    """

    #: ``"file"`` (byte offset), ``"index"`` (item offset) or
    #: ``"stream"`` (not seekable; offset is informational).
    kind: str
    #: Byte offset (file) or item index (iterable) of the first input
    #: *not yet consumed*.
    offset: int
    #: Reception time of the last observation yielded before this
    #: position; ``None`` before the first.
    t_last: float | None = None
    #: Observations yielded up to this position — seeds the resumed
    #: source's cumulative counter, which synthetic (untagged-line)
    #: reception timelines derive their clock from.
    n_observations: int = 0


@dataclass
class SourceStats:
    """Cumulative ingest accounting every source maintains.

    Counters are cumulative over the source's lifetime; ``queue_depth``
    is the *current* number of buffered observations (only queueing
    sources — the TCP client — ever report a nonzero depth).
    """

    #: Short human-readable identity ("iterable", "file:feed.nmea", ...).
    name: str = "source"
    #: Raw input units seen (lines for file/socket sources, items for
    #: in-process iterables).
    n_lines: int = 0
    #: Observations actually yielded downstream.
    n_observations: int = 0
    #: Good observations lost to backpressure (queue/holdback overflow
    #: victims).  Parse rejects are *not* drops — see :attr:`n_rejected`.
    n_dropped: int = 0
    #: Inputs refused at parse time (not an NMEA sentence).  Kept apart
    #: from :attr:`n_dropped` so a dirty feed does not read as queue
    #: pressure in the backpressure metrics.
    n_rejected: int = 0
    #: Parse/decode problems by reason (bad tag checksum, no sentence...).
    errors: dict[str, int] = field(default_factory=dict)
    #: Transport reconnects performed (TCP source only).
    n_reconnects: int = 0
    #: Observations currently buffered between transport and consumer.
    queue_depth: int = 0
    #: Largest queue depth ever observed.
    queue_high_water: int = 0

    def count_error(self, reason: str) -> None:
        self.errors[reason] = self.errors.get(reason, 0) + 1


@dataclass
class FeedLiveness:
    """One child feed's health as seen by a merging consumer.

    ``last_record_age_s`` is measured in *stream* (reception) time — how
    far this feed's frontier trails the lead feed's — so it works for
    replays as well as wall-clock feeds; ``None`` until the feed has
    produced anything (or when it is the lone feed).  ``alive`` means
    the feed may still produce observations: neither finished nor dead.
    """

    name: str
    alive: bool
    #: Lead frontier minus this feed's frontier, in seconds of
    #: reception time; ``None`` before the first observation.
    last_record_age_s: float | None = None
    finished: bool = False
    #: The exception that killed the feed mid-iteration, if any.
    error: BaseException | None = None
    #: Effective merge holdback currently applied to this feed
    #: (adaptive mode tracks observed skew; static mode is the knob).
    holdback_s: float | None = None


@runtime_checkable
class Source(Protocol):
    """A typed observation feed.

    ``__iter__`` yields observations in reception order and terminates
    when the feed is exhausted (end of file without tail mode, remote
    close without reconnect, or :meth:`close`).  ``stats`` may be called
    at any time, including from another thread while iteration runs.
    """

    def __iter__(self) -> Iterator[Observation]: ...

    def stats(self) -> SourceStats: ...

    def close(self) -> None:
        """Stop the feed; iteration ends after buffered items drain."""

    # ``position()``/``seek(position)`` are optional extensions of the
    # protocol (duck-typed, not required members): replayable sources
    # provide them so checkpoints can record a resume point; consumers
    # probe with ``hasattr``.
