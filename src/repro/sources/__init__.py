"""Typed observation feeds for the live pipeline (receiver side).

One protocol, three transports plus a combinator:

- :class:`IterableSource` — any in-process iterable of observations;
- :class:`NmeaFileSource` — NMEA file replay with TAG-block timestamps
  and a ``tail -f`` mode;
- :class:`NmeaTcpSource` — line-framed TCP client with reconnect/backoff
  and a bounded drop-oldest receive queue;
- :class:`MergedSource` — N heterogeneous sources heap-merged into one
  stream ordered by reception time, with a bounded per-source holdback.

See ``src/repro/sources/README.md`` for the protocol contract,
timestamp grammar, overflow/reconnect and merge semantics.
"""

from repro.sources.base import (
    FeedLiveness,
    Source,
    SourcePosition,
    SourceStats,
)
from repro.sources.iterable import IterableSource
from repro.sources.merge import MergedSource
from repro.sources.nmea import (
    NmeaFileSource,
    format_tagged_sentence,
    parse_tagged_line,
    write_nmea_file,
)
from repro.sources.tcp import NmeaTcpSource

__all__ = [
    "FeedLiveness",
    "Source",
    "SourcePosition",
    "SourceStats",
    "IterableSource",
    "MergedSource",
    "NmeaFileSource",
    "NmeaTcpSource",
    "format_tagged_sentence",
    "parse_tagged_line",
    "write_nmea_file",
]
