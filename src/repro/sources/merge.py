"""Merging N heterogeneous feeds into one reception-ordered stream.

The paper's surveillance picture is fused from several concurrent
receiver networks — terrestrial stations, satellite constellations,
radar-site gateways — each arriving as its own feed.  The pipeline
consumes *one* observation stream in reception order;
:class:`MergedSource` is the bridge: it runs every child source on its
own reader thread, stages their observations in a shared min-heap keyed
on ``t_received``, and releases the heap minimum under a *holdback*
rule:

- Every child source promises reception order within itself (the
  :class:`~repro.sources.base.Source` contract).  Across sources no
  such promise exists, so the merge holds the earliest staged
  observation back until every still-live, currently-empty feed has
  been seen past ``t - holdback_s``: a feed whose frontier (reception
  time of its newest observation) is beyond that point cannot later
  produce anything this observation should have waited for by more
  than the holdback.
- ``holdback_s`` therefore bounds the *disorder* the merge may emit:
  observations can interleave out of order across sources by at most
  ``holdback_s`` of reception time.  The downstream reorder stage
  absorbs event-time lateness up to ``PipelineConfig.max_lateness_s``
  — but merge disorder *adds to* each feed's own reception latency
  against that single budget (a record delayed ``holdback_s`` by the
  merge on top of its network lateness can cross the watermark and be
  dropped), so keep ``holdback_s`` plus the worst intrinsic feed
  latency within the budget.  The monitor façade defaults the holdback
  to half of it.  ``holdback_s=0`` is the strict k-way merge: sorted
  output, but one silent feed stalls all of them.
- A feed that stays silent holds the merge at ``frontier + holdback_s``
  by design (bounded disorder beats unbounded reordering downstream);
  :meth:`close` on the merged source — or on the silent child — releases
  the stream.
- ``holdback_s="auto"`` derives a *per-feed* holdback from the skew the
  merge actually observes: each feed keeps an EWMA of how far its
  frontier trails the lead feed's at staging time, and its effective
  holdback is ``clamp(skew_margin * ewma, holdback_floor_s,
  holdback_cap_s)``.  A feed that keeps up is waited for almost
  strictly (near-sorted output); one that habitually lags a satellite
  pass behind stops stalling the merge beyond its demonstrated skew.
  Until a feed shows any skew it gets the cap — the static default's
  behaviour.  An explicit float stays a fixed override.

Per-source provenance survives untouched: observations keep whatever
``Observation.source`` their feed assigned.  :meth:`stats` rolls every
child's accounting into one :class:`~repro.sources.base.SourceStats`
(lines/observations/drops/rejects/reconnects summed, error maps
merged); :meth:`stats_by_source` keeps the per-feed view, and
:meth:`queue_depths` exposes per-feed staged+transport depths, which
the monitor façade probes into every increment's
``BackpressureMetrics.queue_depths`` (one ``source:<name>`` entry per
feed plus the aggregate ``source`` depth).
"""

import heapq
import threading
from typing import Iterator

from repro.simulation.receivers import Observation
from repro.sources.base import FeedLiveness, Source, SourceStats
from repro.sources.iterable import IterableSource

__all__ = ["MergedSource"]

#: Default disorder bound: half of ``PipelineConfig.max_lateness_s``'s
#: default, since merge disorder and intrinsic feed lateness share that
#: budget additively — kept literal so the source layer stays
#: import-free of core (the monitor façade derives it from the
#: session's actual budget).
DEFAULT_HOLDBACK_S = 200.0


class _Feed:
    """Bookkeeping for one child source (guarded by the merge lock)."""

    def __init__(self, index: int, source: Source) -> None:
        self.index = index
        self.source = source
        self.n_staged = 0  # entries currently in the shared heap
        self.frontier = float("-inf")  # newest t_received seen
        self.finished = False
        #: Exception that killed this feed's reader mid-iteration, if
        #: any — surfaced through the merged ``stats().errors``.
        self.error: BaseException | None = None
        #: EWMA of how far this feed's frontier trailed the lead feed's
        #: at staging time (``None`` until the first observation) —
        #: drives the adaptive per-feed holdback.
        self.lag_ewma: float | None = None


class MergedSource:
    """Combine N sources into one reception-ordered observation stream.

    ``sources`` are :class:`~repro.sources.base.Source` objects (bare
    iterables are wrapped in :class:`IterableSource`); ``holdback_s``
    bounds the cross-source disorder the merge may emit (see the module
    docstring).  ``max_buffer`` bounds the staging heap: when feeds run
    ahead of the merge frontier by more than that many observations in
    total, the *oldest* staged entry is dropped (drop-oldest, the same
    policy as the TCP receive queue) and counted in the merged
    ``stats().n_dropped`` under ``errors["merge_overflow"]``.
    """

    def __init__(
        self,
        *sources,
        holdback_s: "float | str" = DEFAULT_HOLDBACK_S,
        max_buffer: int = 100_000,
        name: str = "merged",
        holdback_cap_s: float | None = None,
        holdback_floor_s: float = 5.0,
        skew_ewma_alpha: float = 0.2,
        skew_margin: float = 1.5,
    ) -> None:
        if not sources:
            raise ValueError("MergedSource needs at least one source")
        if isinstance(holdback_s, str):
            if holdback_s != "auto":
                raise ValueError(
                    f"holdback_s must be a number or 'auto' "
                    f"(got {holdback_s!r})"
                )
        elif holdback_s < 0:
            raise ValueError("holdback_s must be non-negative")
        if max_buffer <= 0:
            raise ValueError("max_buffer must be positive")
        if not 0.0 < skew_ewma_alpha <= 1.0:
            raise ValueError("skew_ewma_alpha must be in (0, 1]")
        self.holdback_s = holdback_s
        self._adaptive = holdback_s == "auto"
        self.holdback_cap_s = (
            DEFAULT_HOLDBACK_S if holdback_cap_s is None else holdback_cap_s
        )
        self.holdback_floor_s = min(holdback_floor_s, self.holdback_cap_s)
        self.skew_ewma_alpha = skew_ewma_alpha
        self.skew_margin = skew_margin
        self.max_buffer = max_buffer
        self._feeds = [
            _Feed(
                i,
                source if isinstance(source, Source)
                else IterableSource(source, name=f"iterable[{i}]"),
            )
            for i, source in enumerate(sources)
        ]
        self._stats = SourceStats(name=name)
        #: (t_received, arrival_seq, feed_index, obs) — the seq both
        #: breaks timestamp ties arrival-stably and keeps Observation
        #: (unorderable) out of the comparison.
        self._heap: list[tuple[float, int, int, Observation]] = []
        self._seq = 0
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._closed = False
        self._started = False
        self._readers: list[threading.Thread] = []

    # -- reader threads ----------------------------------------------------

    def _run_reader(self, feed: _Feed) -> None:
        try:
            for obs in feed.source:
                with self._changed:
                    if self._closed:
                        break
                    heapq.heappush(
                        self._heap,
                        (obs.t_received, self._seq, feed.index, obs),
                    )
                    self._seq += 1
                    feed.n_staged += 1
                    if obs.t_received > feed.frontier:
                        feed.frontier = obs.t_received
                    if self._adaptive:
                        # Observed inter-feed skew: how far this feed's
                        # frontier trails the lead's right now.  The
                        # staging feed's frontier is finite, so lag is
                        # too (lead >= frontier).
                        lead = max(f.frontier for f in self._feeds)
                        lag = lead - feed.frontier
                        if feed.lag_ewma is None:
                            feed.lag_ewma = lag
                        else:
                            feed.lag_ewma += self.skew_ewma_alpha * (
                                lag - feed.lag_ewma
                            )
                    if len(self._heap) > self.max_buffer:
                        # Drop-oldest: the stalled head of the backlog
                        # goes, newest data wins (TCP queue policy).
                        __, __, idx, __ = heapq.heappop(self._heap)
                        self._feeds[idx].n_staged -= 1
                        self._stats.n_dropped += 1
                        self._stats.count_error("merge_overflow")
                    if len(self._heap) > self._stats.queue_high_water:
                        self._stats.queue_high_water = len(self._heap)
                    self._changed.notify_all()
        except Exception as exc:
            # A feed dying mid-iteration must not look like a clean EOF:
            # record it so stats()/MonitorReport show the dead feed (the
            # merge itself continues on the surviving feeds).
            with self._changed:
                feed.error = exc
                self._stats.count_error(
                    f"feed_died:{feed.source.stats().name}"
                )
        finally:
            with self._changed:
                feed.finished = True
                self._changed.notify_all()

    def _start(self) -> None:
        self._started = True
        for feed in self._feeds:
            thread = threading.Thread(
                target=self._run_reader,
                args=(feed,),
                name=f"merge-reader-{feed.index}",
                daemon=True,
            )
            self._readers.append(thread)
            thread.start()

    # -- merge loop --------------------------------------------------------

    def _feed_holdback(self, feed: _Feed) -> float:
        """Effective holdback for one feed (lock held in adaptive mode).

        Static mode returns the knob; adaptive mode tracks the feed's
        observed skew, clamped to ``[floor, cap]``, and grants the cap
        until the feed has demonstrated any skew at all.
        """
        if not self._adaptive:
            return self.holdback_s
        if feed.lag_ewma is None:
            return self.holdback_cap_s
        return min(
            self.holdback_cap_s,
            max(self.holdback_floor_s, self.skew_margin * feed.lag_ewma),
        )

    def _head_released(self) -> bool:
        """Whether the heap minimum may be emitted now (lock held).

        The heap minimum is globally earliest among *staged* data, so it
        only waits on feeds with nothing staged: any unfinished empty
        feed whose frontier trails ``t`` by more than its holdback may
        still owe an observation this one should have queued behind.
        """
        if not self._heap:
            return False
        t = self._heap[0][0]
        for feed in self._feeds:
            if feed.n_staged == 0 and not feed.finished:
                if t - self._feed_holdback(feed) > feed.frontier:
                    return False
        return True

    def __iter__(self) -> Iterator[Observation]:
        # Start the readers eagerly at iter() time (a generator body
        # would defer them to the first next(), letting a caller hold a
        # "running" iterator over a merge that has not begun staging).
        if not self._started:
            self._start()
        return self._iterate()

    def _iterate(self) -> Iterator[Observation]:
        while True:
            with self._changed:
                while not self._head_released():
                    done = self._closed or all(
                        f.finished for f in self._feeds
                    )
                    if done:
                        if not self._heap:
                            return
                        break  # drain staged data in heap order
                    # Staging/finish/close all notify; the timeout is
                    # liveness insurance only.
                    self._changed.wait(timeout=1.0)
                __, __, idx, obs = heapq.heappop(self._heap)
                self._feeds[idx].n_staged -= 1
                self._stats.n_observations += 1
            yield obs

    # -- protocol ----------------------------------------------------------

    def stats(self) -> SourceStats:
        """Aggregate accounting: every child rolled into one view.

        Per-child counters are summed (lines, drops, rejects,
        reconnects), error maps merged; ``queue_depth`` is the merge's
        own staging heap on top of the children's transport queues.
        ``n_observations``/``n_dropped`` count what actually left the
        merged stream and what overflow (child queues plus merge
        staging) discarded.
        """
        with self._lock:
            merged = SourceStats(
                name=self._stats.name,
                n_observations=self._stats.n_observations,
                n_dropped=self._stats.n_dropped,
                errors=dict(self._stats.errors),
                queue_depth=len(self._heap),
            )
        for feed in self._feeds:
            child = feed.source.stats()
            merged.n_lines += child.n_lines
            merged.n_dropped += child.n_dropped
            merged.n_rejected += child.n_rejected
            merged.n_reconnects += child.n_reconnects
            merged.queue_depth += child.queue_depth
            # dict() is a single C-level copy (GIL-atomic), so a live
            # reader thread adding a new error reason mid-poll cannot
            # tear this iteration.
            for reason, count in dict(child.errors).items():
                merged.errors[reason] = merged.errors.get(reason, 0) + count
        with self._lock:
            if merged.queue_depth > self._stats.queue_high_water:
                self._stats.queue_high_water = merged.queue_depth
            merged.queue_high_water = self._stats.queue_high_water
        return merged

    def stats_by_source(self) -> list[SourceStats]:
        """Each child feed's own accounting, in attach order."""
        return [feed.source.stats() for feed in self._feeds]

    def liveness(self) -> list[FeedLiveness]:
        """Each child feed's health, in attach order.

        ``last_record_age_s`` is how far each feed's frontier trails the
        lead feed's, in reception time (``None`` before the feed's first
        observation); ``alive`` is false once the feed finished or its
        reader died.  Safe to call from any thread at any time.
        """
        with self._lock:
            snapshot = [
                (
                    feed.finished,
                    feed.error,
                    feed.frontier,
                    self._feed_holdback(feed),
                )
                for feed in self._feeds
            ]
            lead = max((frontier for __, __, frontier, __ in snapshot),
                       default=float("-inf"))
        report: list[FeedLiveness] = []
        for feed, (finished, error, frontier, holdback) in zip(
            self._feeds, snapshot
        ):
            age = (
                max(0.0, lead - frontier)
                if frontier != float("-inf") else None
            )
            report.append(
                FeedLiveness(
                    name=feed.source.stats().name,
                    alive=not finished and error is None,
                    last_record_age_s=age,
                    finished=finished,
                    error=error,
                    holdback_s=holdback,
                )
            )
        return report

    def queue_depths(self) -> dict[str, int]:
        """Per-feed staged+transport depths for backpressure probes.

        Keys are ``source:<name>`` per feed plus the aggregate
        ``source``; the monitor façade merges them into every
        increment's ``BackpressureMetrics.queue_depths``.
        """
        depths: dict[str, int] = {}
        total = 0
        with self._lock:
            staged = {feed.index: feed.n_staged for feed in self._feeds}
        for feed in self._feeds:
            child = feed.source.stats()
            depth = staged[feed.index] + child.queue_depth
            key = f"source:{child.name}"
            if key in depths:  # duplicate names: index disambiguates
                key = f"source:{child.name}[{feed.index}]"
            depths[key] = depth
            total += depth
        depths["source"] = total
        return depths

    def close(self) -> None:
        """Close every child; iteration ends after staged items drain."""
        for feed in self._feeds:
            feed.source.close()
        with self._changed:
            self._closed = True
            self._changed.notify_all()
        for thread in self._readers:
            if thread is not threading.current_thread():
                thread.join(timeout=2.0)
