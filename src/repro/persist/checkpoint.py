"""Versioned, watermark-consistent checkpoint files.

One checkpoint is a single zip container holding:

- ``manifest.json`` — format/schema versions, the configuration
  fingerprint, the watermark and worker count at capture, the source
  positions recorded for catch-up replay, and a SHA-256 per section;
- ``sections/<name>.pkl`` — one pickle blob per
  :meth:`~repro.core.stages.PipelineState.export_snapshot` section
  (keyed like the tables ``size_report()`` enumerates: ingest, vessels,
  tables, detectors, cep, fusion, analytics, forecasts, products).

Sectioned pickling is the incremental-friendly unit: a section's bytes
change only when its state does (exports are canonical — sorted, set
free), readers can skip sections they do not need, and a future
delta-encoding layer can diff per section.  Writes are atomic: the zip
is built at ``<path>.tmp`` and published with ``os.replace``, so a
crash mid-write can never leave a half-readable checkpoint under the
final name.  Reads verify every hash and wrap every container failure
(truncation, bad zip, missing or corrupt section, undecodable pickle)
in :class:`CheckpointError` with the reason spelled out.

**Compatibility policy** (see ``src/repro/persist/README.md``):
``FORMAT_VERSION`` names the container layout, ``SCHEMA_VERSION`` the
shape of the pickled state sections.  Either mismatching the reader is
a hard :class:`CheckpointError` — snapshots are short-lived recovery
artifacts, not archives, so no cross-version migration is attempted.
The configuration fingerprint binds a snapshot to the *logical*
configuration (config minus performance-only knobs, ports, zones, CEP
patterns) it was captured under: restoring into a session whose
fingerprint differs would silently change detector semantics mid-track,
so it is refused.  ``workers`` and ``batch_decode`` are deliberately
outside the fingerprint — both are execution choices with bit-identical
products, which is what lets a snapshot written under one worker count
restore under another.
"""

import dataclasses
import hashlib
import json
import os
import pickle
import zipfile

__all__ = [
    "FORMAT_VERSION",
    "SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointManifest",
    "config_fingerprint",
    "latest_checkpoint",
    "read_checkpoint",
    "write_checkpoint",
]

#: Container layout version (zip member names, manifest keys).
FORMAT_VERSION = 1
#: State-section shape version (what the pickles deserialise into).
SCHEMA_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_SECTION_PREFIX = "sections/"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, read, or restored from."""


@dataclasses.dataclass(frozen=True)
class CheckpointManifest:
    """The self-describing header of one checkpoint file."""

    format_version: int
    schema_version: int
    #: :func:`config_fingerprint` of the writing session.
    config_fingerprint: str
    #: Event-time watermark at the capture barrier.
    watermark: float
    #: Worker count the snapshot was written under (informational —
    #: restore re-partitions per-vessel state for any count).
    workers: int
    #: Pipeline increments fed before this checkpoint was taken.
    n_increments: int
    #: One recorded position per attached source (dicts shaped by
    #: :class:`~repro.sources.SourcePosition`; ``None`` entries mark
    #: sources that cannot seek — catch-up then relies on the restored
    #: reorder watermark dropping replayed records).
    source_positions: list
    #: ``{section name: hex SHA-256 of its pickle blob}``.
    section_hashes: dict

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, raw: bytes) -> "CheckpointManifest":
        try:
            fields = json.loads(raw)
            return cls(**{
                f.name: fields[f.name] for f in dataclasses.fields(cls)
            })
        except (ValueError, TypeError, KeyError) as exc:
            raise CheckpointError(
                f"checkpoint manifest is unreadable: {exc}"
            ) from exc


def config_fingerprint(config, ports, zones, cep_patterns) -> str:
    """SHA-256 binding a snapshot to its logical configuration.

    Covers the schema version, every :class:`PipelineConfig` field
    *except* the performance-only knobs (``workers``, ``batch_decode``
    — execution choices with proven product parity), and the session's
    ports, zones and CEP patterns.  All four inputs are dataclasses (or
    lists of them), so ``repr`` is deterministic.
    """
    fields = dataclasses.asdict(config)
    for perf_only in ("workers", "batch_decode"):
        fields.pop(perf_only, None)
    payload = repr((
        SCHEMA_VERSION,
        sorted(fields.items()),
        [repr(p) for p in ports],
        [repr(z) for z in zones],
        [repr(p) for p in cep_patterns],
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def write_checkpoint(
    path: str,
    sections: dict,
    *,
    fingerprint: str,
    watermark: float,
    workers: int,
    n_increments: int = 0,
    source_positions: list | None = None,
) -> CheckpointManifest:
    """Serialise ``sections`` to ``path`` atomically; returns the manifest.

    ``sections`` is :meth:`PipelineState.export_snapshot` output (any
    ``{name: picklable}`` mapping works).  The file appears under its
    final name only after every byte is on disk (write-then-rename).
    """
    blobs = {}
    for name, payload in sections.items():
        try:
            blobs[name] = pickle.dumps(
                payload, protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception as exc:
            raise CheckpointError(
                f"section '{name}' is not serialisable: {exc!r}"
            ) from exc
    manifest = CheckpointManifest(
        format_version=FORMAT_VERSION,
        schema_version=SCHEMA_VERSION,
        config_fingerprint=fingerprint,
        watermark=watermark,
        workers=workers,
        n_increments=n_increments,
        source_positions=list(source_positions or []),
        section_hashes={
            name: hashlib.sha256(blob).hexdigest()
            for name, blob in sorted(blobs.items())
        },
    )
    tmp = f"{path}.tmp"
    try:
        with zipfile.ZipFile(tmp, "w", zipfile.ZIP_DEFLATED) as archive:
            archive.writestr(_MANIFEST_NAME, manifest.to_json())
            for name, blob in sorted(blobs.items()):
                archive.writestr(f"{_SECTION_PREFIX}{name}.pkl", blob)
        os.replace(tmp, path)
    except OSError as exc:
        raise CheckpointError(
            f"cannot write checkpoint {path}: {exc}"
        ) from exc
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)
    return manifest


def read_manifest(path: str) -> CheckpointManifest:
    """The manifest alone (cheap inspection — no section decoding)."""
    with _open_archive(path) as archive:
        return _load_manifest(archive, path)


def read_checkpoint(path: str) -> tuple[CheckpointManifest, dict]:
    """Load and verify a checkpoint; returns ``(manifest, sections)``.

    Every way the container can be damaged — truncated file, bad zip
    directory, missing section, hash mismatch, undecodable pickle —
    raises :class:`CheckpointError` naming the problem; a checkpoint is
    either fully intact or rejected.
    """
    with _open_archive(path) as archive:
        manifest = _load_manifest(archive, path)
        sections = {}
        for name, expected in manifest.section_hashes.items():
            member = f"{_SECTION_PREFIX}{name}.pkl"
            try:
                blob = archive.read(member)
            except Exception as exc:
                raise CheckpointError(
                    f"checkpoint {path}: section '{name}' is missing or "
                    f"unreadable: {exc!r}"
                ) from exc
            actual = hashlib.sha256(blob).hexdigest()
            if actual != expected:
                raise CheckpointError(
                    f"checkpoint {path}: section '{name}' is corrupt "
                    f"(sha256 {actual[:12]}… != manifest {expected[:12]}…)"
                )
            try:
                sections[name] = pickle.loads(blob)
            except Exception as exc:
                raise CheckpointError(
                    f"checkpoint {path}: section '{name}' does not "
                    f"deserialise: {exc!r}"
                ) from exc
    return manifest, sections


def latest_checkpoint(directory: str) -> str | None:
    """The newest ``*.ckpt`` file in a checkpoint directory, or ``None``.

    Monitor-written checkpoints embed the increment counter in the name
    (``ckpt-00000042.ckpt``), so lexicographic order is capture order.
    """
    try:
        names = sorted(
            name for name in os.listdir(directory)
            if name.endswith(".ckpt")
        )
    except OSError:
        return None
    if not names:
        return None
    return os.path.join(directory, names[-1])


def _open_archive(path: str) -> zipfile.ZipFile:
    try:
        return zipfile.ZipFile(path, "r")
    except (zipfile.BadZipFile, OSError) as exc:
        raise CheckpointError(
            f"not a readable checkpoint: {path}: {exc}"
        ) from exc


def _load_manifest(archive: zipfile.ZipFile, path: str) -> CheckpointManifest:
    try:
        raw = archive.read(_MANIFEST_NAME)
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint {path}: no {_MANIFEST_NAME} "
            f"(truncated or not a checkpoint): {exc!r}"
        ) from exc
    manifest = CheckpointManifest.from_json(raw)
    if manifest.format_version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path}: container format "
            f"v{manifest.format_version} is not supported "
            f"(this build reads v{FORMAT_VERSION})"
        )
    if manifest.schema_version != SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {path}: state schema v{manifest.schema_version} "
            f"is not supported (this build reads v{SCHEMA_VERSION}); "
            "snapshots are recovery artifacts, not archives — take a "
            "fresh checkpoint with the running build"
        )
    return manifest
