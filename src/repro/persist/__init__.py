"""Durable state: checkpoints, crash-restore, and the track archive.

Three layers, one package (see ``README.md`` here):

- :mod:`repro.persist.checkpoint` — watermark-consistent snapshot files
  (sectioned, hashed, atomically replaced) with a configuration
  fingerprint binding each snapshot to the logical pipeline setup.
- Restore + catch-up — ``MaritimeMonitor.restore`` /
  ``MaritimePipeline.restore_session`` rebuild a session from a
  snapshot and seek the source back to the recorded position.
- :mod:`repro.persist.store` — the queryable SQLite archive of
  streaming products, fed off the hot path.
"""

from repro.persist.checkpoint import (
    FORMAT_VERSION,
    SCHEMA_VERSION,
    CheckpointError,
    CheckpointManifest,
    config_fingerprint,
    latest_checkpoint,
    read_checkpoint,
    read_manifest,
    write_checkpoint,
)
from repro.persist.store import SqliteTrackStore

__all__ = [
    "FORMAT_VERSION",
    "SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointManifest",
    "SqliteTrackStore",
    "config_fingerprint",
    "latest_checkpoint",
    "read_checkpoint",
    "read_manifest",
    "write_checkpoint",
]
