"""A queryable SQLite track store fed off the pipeline's hot path.

:class:`SqliteTrackStore` is a durable sink for the pipeline's streaming
products — accepted positions, closed track segments, primitive and
complex events, monitoring alarms — shaped like the tracer-worker tables
a surveillance back office would keep.  It subscribes to increments like
any other sink (:meth:`attach`), defaulting to asynchronous dispatch
with ``overflow="block"`` so the writer thread absorbs insert latency
without ever losing an increment (a *store* wants the complete record,
unlike a live display that wants the freshest — compare
``drop_oldest`` in :mod:`repro.sinks.dispatch`).

Write discipline: WAL journal with ``synchronous=NORMAL`` (group commit
amortised across the batch, durable against process crash), one
transaction per increment, ``executemany`` per table.  All access —
writes from the dispatcher worker, queries from anywhere — serialises
on one internal lock over a single ``check_same_thread=False``
connection; SQLite itself is the second line of defence.

Granularity note: positions are stored when their *segment closes*
(the per-vessel phase owns open tracks; a point is final only once its
segment is), so an open track's newest fixes live in the pipeline state
— and its checkpoints — not here.  The store is the long-term product
archive; the checkpoint is the recovery image.  Together they cover
both.

Queries return the same dataclasses the pipeline emits
(:class:`~repro.trajectory.points.TrackPoint`,
:class:`~repro.events.base.Event`,
:class:`~repro.visual.overview.MonitoringAlarm`), so downstream code is
indifferent to whether a product came from a live subscription or the
archive.  One lossy corner: ``Event.details`` values that are not
JSON-native round-trip as strings (``repr``) — ``details`` is
explanation payload and excluded from event equality, so stored events
still compare equal to their live originals.
"""

import json
import sqlite3
import threading

from repro.events.base import Event, EventKind
from repro.trajectory.points import TrackPoint, Trajectory
from repro.visual.overview import MonitoringAlarm

__all__ = ["SqliteTrackStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS vessel_positions (
    segment_id INTEGER NOT NULL,
    mmsi       INTEGER NOT NULL,
    t          REAL    NOT NULL,
    lat        REAL    NOT NULL,
    lon        REAL    NOT NULL,
    sog_knots  REAL,
    cog_deg    REAL,
    source     TEXT    NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_positions_mmsi_t
    ON vessel_positions (mmsi, t);
CREATE TABLE IF NOT EXISTS track_segments (
    segment_id INTEGER PRIMARY KEY,
    mmsi       INTEGER NOT NULL,
    t_start    REAL    NOT NULL,
    t_end      REAL    NOT NULL,
    n_points   INTEGER NOT NULL,
    lat_min    REAL    NOT NULL,
    lat_max    REAL    NOT NULL,
    lon_min    REAL    NOT NULL,
    lon_max    REAL    NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_segments_mmsi_t
    ON track_segments (mmsi, t_start);
CREATE TABLE IF NOT EXISTS events (
    kind       TEXT    NOT NULL,
    is_complex INTEGER NOT NULL,
    t_start    REAL    NOT NULL,
    t_end      REAL    NOT NULL,
    mmsis      TEXT    NOT NULL,
    lat        REAL    NOT NULL,
    lon        REAL    NOT NULL,
    confidence REAL    NOT NULL,
    details    TEXT    NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_events_kind_t
    ON events (kind, t_start);
CREATE TABLE IF NOT EXISTS alarms (
    t           REAL    NOT NULL,
    mmsi        INTEGER NOT NULL,
    lat         REAL    NOT NULL,
    lon         REAL    NOT NULL,
    score       REAL    NOT NULL,
    explanation TEXT    NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_alarms_t ON alarms (t);
"""


class SqliteTrackStore:
    """Durable, queryable archive of pipeline products (stdlib SQLite)."""

    def __init__(self, path: str) -> None:
        self.path = path
        # One shared connection: increments arrive on a dispatcher
        # worker, queries on the caller's thread; the store's own lock
        # is the serialisation point.
        self._db = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.Lock()
        self.n_increments = 0
        with self._lock:
            self._db.execute("PRAGMA journal_mode=WAL")
            self._db.execute("PRAGMA synchronous=NORMAL")
            # Must precede table creation to take effect: lets prune()
            # return freed pages with a cheap `PRAGMA incremental_vacuum`
            # instead of a full VACUUM rewrite.  On a database created
            # before this pragma existed it is a silent no-op (SQLite
            # ignores auto_vacuum changes on non-empty files) — prune()
            # detects that and falls back to VACUUM.
            self._db.execute("PRAGMA auto_vacuum=INCREMENTAL")
            self._db.executescript(_SCHEMA)
            self._db.commit()

    # -- write side --------------------------------------------------------

    def write_increment(self, increment) -> None:
        """Persist one increment's products in a single transaction."""
        with self._lock:
            cur = self._db.cursor()
            try:
                for segment in increment.new_segments:
                    self._insert_segment(cur, segment)
                self._insert_events(
                    cur, increment.new_events, is_complex=0
                )
                self._insert_events(
                    cur, increment.new_complex_events, is_complex=1
                )
                cur.executemany(
                    "INSERT INTO alarms VALUES (?, ?, ?, ?, ?, ?)",
                    [
                        (a.t, a.mmsi, a.lat, a.lon, a.score, a.explanation)
                        for a in increment.new_alarms
                    ],
                )
                cur.execute(
                    "INSERT INTO meta VALUES ('watermark', ?) "
                    "ON CONFLICT (key) DO UPDATE SET value = excluded.value",
                    (repr(increment.t_watermark),),
                )
                self._db.commit()
            except BaseException:
                self._db.rollback()
                raise
            self.n_increments += 1

    def _insert_segment(self, cur, segment: Trajectory) -> None:
        points = segment.points
        cur.execute(
            "INSERT INTO track_segments "
            "(mmsi, t_start, t_end, n_points, "
            " lat_min, lat_max, lon_min, lon_max) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                segment.mmsi, segment.t_start, segment.t_end, len(points),
                min(p.lat for p in points), max(p.lat for p in points),
                min(p.lon for p in points), max(p.lon for p in points),
            ),
        )
        segment_id = cur.lastrowid
        cur.executemany(
            "INSERT INTO vessel_positions VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    segment_id, segment.mmsi, p.t, p.lat, p.lon,
                    p.sog_knots, p.cog_deg, p.source,
                )
                for p in points
            ],
        )

    def _insert_events(self, cur, events, is_complex: int) -> None:
        cur.executemany(
            "INSERT INTO events VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    e.kind.value, is_complex, e.t_start, e.t_end,
                    json.dumps(list(e.mmsis)), e.lat, e.lon, e.confidence,
                    json.dumps(
                        {str(k): v for k, v in e.details.items()},
                        default=repr, sort_keys=True,
                    ),
                )
                for e in events
            ],
        )

    def attach(
        self,
        target,
        async_dispatch: bool = True,
        max_queue: int = 256,
        overflow: str = "block",
    ):
        """Subscribe to a session, hub, or monitor; returns the handle.

        Defaults move inserts off the pipeline thread (a dispatcher
        worker drains a bounded queue) with ``block`` overflow: an
        archive must be complete, so a saturated queue backpressures
        the feed rather than dropping history.
        """
        hub = getattr(target, "hub", target)
        return hub.subscribe(
            on_increment=self.write_increment,
            async_dispatch=async_dispatch,
            max_queue=max_queue,
            overflow=overflow,
        )

    # -- query side --------------------------------------------------------

    def positions(
        self,
        mmsi: int,
        t0: float = float("-inf"),
        t1: float = float("inf"),
    ) -> list[TrackPoint]:
        """One vessel's archived fixes in ``[t0, t1]``, time-ordered."""
        with self._lock:
            rows = self._db.execute(
                "SELECT t, lat, lon, sog_knots, cog_deg, source "
                "FROM vessel_positions "
                "WHERE mmsi = ? AND t >= ? AND t <= ? ORDER BY t",
                (mmsi, t0, t1),
            ).fetchall()
        return [TrackPoint(*row) for row in rows]

    def tracks_in_region(
        self,
        lat_min: float,
        lat_max: float,
        lon_min: float,
        lon_max: float,
        t0: float = float("-inf"),
        t1: float = float("inf"),
    ) -> list[dict]:
        """Segments whose bounding box intersects the query box in
        ``[t0, t1]`` — records with segment id, mmsi, span and bbox.

        Bbox intersection over-approximates the actual track (a segment
        crossing near a corner may not enter the box); callers needing
        exact geometry re-check via :meth:`segment_points`.
        """
        with self._lock:
            rows = self._db.execute(
                "SELECT segment_id, mmsi, t_start, t_end, n_points, "
                "       lat_min, lat_max, lon_min, lon_max "
                "FROM track_segments "
                "WHERE t_start <= ? AND t_end >= ? "
                "  AND lat_min <= ? AND lat_max >= ? "
                "  AND lon_min <= ? AND lon_max >= ? "
                "ORDER BY t_start, mmsi",
                (t1, t0, lat_max, lat_min, lon_max, lon_min),
            ).fetchall()
        keys = (
            "segment_id", "mmsi", "t_start", "t_end", "n_points",
            "lat_min", "lat_max", "lon_min", "lon_max",
        )
        return [dict(zip(keys, row)) for row in rows]

    def segment_points(self, segment_id: int) -> list[TrackPoint]:
        """The full point sequence of one archived segment."""
        with self._lock:
            rows = self._db.execute(
                "SELECT t, lat, lon, sog_knots, cog_deg, source "
                "FROM vessel_positions WHERE segment_id = ? ORDER BY t",
                (segment_id,),
            ).fetchall()
        return [TrackPoint(*row) for row in rows]

    def events(
        self,
        kind: "str | EventKind | None" = None,
        mmsi: int | None = None,
        t0: float = float("-inf"),
        t1: float = float("inf"),
        include_complex: bool = True,
    ) -> list[Event]:
        """Archived events, optionally narrowed by kind and vessel.

        ``kind`` accepts the enum or its string value.  The ``mmsi``
        filter is applied in Python (membership in the event's vessel
        tuple — events are multi-vessel).
        """
        query = (
            "SELECT kind, t_start, t_end, mmsis, lat, lon, confidence, "
            "       details FROM events WHERE t_start >= ? AND t_start <= ?"
        )
        params: list = [t0, t1]
        if kind is not None:
            kind_value = kind.value if isinstance(kind, EventKind) else kind
            EventKind(kind_value)  # reject unknown kinds loudly
            query += " AND kind = ?"
            params.append(kind_value)
        if not include_complex:
            query += " AND is_complex = 0"
        query += " ORDER BY t_start, kind, mmsis"
        with self._lock:
            rows = self._db.execute(query, params).fetchall()
        out = []
        for row in rows:
            event = Event(
                kind=EventKind(row[0]),
                t_start=row[1],
                t_end=row[2],
                mmsis=tuple(json.loads(row[3])),
                lat=row[4],
                lon=row[5],
                confidence=row[6],
                details=json.loads(row[7]),
            )
            if mmsi is None or mmsi in event.mmsis:
                out.append(event)
        return out

    def alarms(
        self,
        t0: float = float("-inf"),
        t1: float = float("inf"),
        min_score: float = 0.0,
    ) -> list[MonitoringAlarm]:
        with self._lock:
            rows = self._db.execute(
                "SELECT t, mmsi, lat, lon, score, explanation FROM alarms "
                "WHERE t >= ? AND t <= ? AND score >= ? ORDER BY t, mmsi",
                (t0, t1, min_score),
            ).fetchall()
        return [MonitoringAlarm(*row) for row in rows]

    def summary(self) -> dict:
        """Row counts per table plus the last archived watermark."""
        with self._lock:
            counts = {
                table: self._db.execute(
                    f"SELECT COUNT(*) FROM {table}"  # noqa: S608 — fixed set
                ).fetchone()[0]
                for table in (
                    "vessel_positions", "track_segments", "events", "alarms"
                )
            }
            row = self._db.execute(
                "SELECT value FROM meta WHERE key = 'watermark'"
            ).fetchone()
        counts["watermark"] = float(row[0]) if row is not None else None
        return counts

    # -- retention ---------------------------------------------------------

    def prune(
        self,
        keep_days: float | None = None,
        before_t: float | None = None,
    ) -> dict:
        """Apply the retention policy: delete old products, compact.

        The horizon is ``before_t`` (epoch seconds), or ``watermark -
        keep_days * 86400`` — retention is measured against *stream*
        time, so pruning a replayed historical feed behaves the same as
        pruning a live one.  Deleted per table (see the compaction
        policy in ``src/repro/persist/README.md``):

        - ``track_segments`` ending before the horizon, with their
          positions — segments are pruned whole, never split, so a
          still-recent segment keeps its full point sequence even when
          its head predates the horizon;
        - ``events`` ending before the horizon;
        - ``alarms`` raised before the horizon.

        Space is returned via ``PRAGMA incremental_vacuum`` on stores
        created with incremental auto-vacuum (every store this class
        creates), or a full ``VACUUM`` on legacy files.  Returns the
        per-table deleted row counts plus the horizon.
        """
        if (keep_days is None) == (before_t is None):
            raise ValueError("pass exactly one of keep_days / before_t")
        if keep_days is not None:
            if keep_days < 0:
                raise ValueError("keep_days must be non-negative")
            watermark = self.summary()["watermark"]
            if watermark is None:
                return {"horizon_t": None, "vessel_positions": 0,
                        "track_segments": 0, "events": 0, "alarms": 0}
            horizon = watermark - keep_days * 86400.0
        else:
            horizon = before_t
        with self._lock:
            cur = self._db.cursor()
            try:
                cur.execute(
                    "DELETE FROM vessel_positions WHERE segment_id IN "
                    "(SELECT segment_id FROM track_segments "
                    " WHERE t_end < ?)",
                    (horizon,),
                )
                n_positions = cur.rowcount
                cur.execute(
                    "DELETE FROM track_segments WHERE t_end < ?", (horizon,)
                )
                n_segments = cur.rowcount
                cur.execute(
                    "DELETE FROM events WHERE t_end < ?", (horizon,)
                )
                n_events = cur.rowcount
                cur.execute("DELETE FROM alarms WHERE t < ?", (horizon,))
                n_alarms = cur.rowcount
                self._db.commit()
            except BaseException:
                self._db.rollback()
                raise
            (auto_vacuum,) = self._db.execute(
                "PRAGMA auto_vacuum"
            ).fetchone()
            if auto_vacuum == 2:  # INCREMENTAL: free pages cheaply
                self._db.execute("PRAGMA incremental_vacuum")
            else:
                # Legacy file predating the auto_vacuum pragma in
                # __init__ (the setting is frozen at creation): full
                # rewrite is the only way to return space.
                self._db.execute("VACUUM")
            self._db.commit()
        return {
            "horizon_t": horizon,
            "vessel_positions": n_positions,
            "track_segments": n_segments,
            "events": n_events,
            "alarms": n_alarms,
        }

    def close(self) -> None:
        with self._lock:
            self._db.commit()
            self._db.close()

    def __enter__(self) -> "SqliteTrackStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
