"""Track points and trajectories."""

import bisect
from dataclasses import dataclass

from repro.geo import (
    haversine_m,
    interpolate_track_at_time,
)


@dataclass(frozen=True)
class TrackPoint:
    """One cleaned vessel fix."""

    t: float
    lat: float
    lon: float
    sog_knots: float | None = None
    cog_deg: float | None = None
    source: str = "ais"

    @property
    def position(self) -> tuple[float, float]:
        return self.lat, self.lon


class Trajectory:
    """A time-ordered sequence of fixes for one vessel (or one segment).

    Invariants enforced at construction: at least one point, strictly
    increasing timestamps.  Instances are treated as immutable; all
    "modifying" operations return new trajectories.
    """

    def __init__(self, mmsi: int, points: list[TrackPoint]) -> None:
        if not points:
            raise ValueError("a trajectory needs at least one point")
        for a, b in zip(points, points[1:]):
            if b.t <= a.t:
                raise ValueError("trajectory timestamps must strictly increase")
        self.mmsi = mmsi
        self.points = list(points)
        self._times = [p.t for p in self.points]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def __getitem__(self, index: int) -> TrackPoint:
        return self.points[index]

    @property
    def t_start(self) -> float:
        return self.points[0].t

    @property
    def t_end(self) -> float:
        return self.points[-1].t

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start

    def length_m(self) -> float:
        """Path length along the fixes."""
        return sum(
            haversine_m(a.lat, a.lon, b.lat, b.lon)
            for a, b in zip(self.points, self.points[1:])
        )

    def position_at(self, t: float) -> tuple[float, float]:
        """Great-circle interpolated position at ``t`` (clamped to span)."""
        if t <= self.t_start:
            return self.points[0].position
        if t >= self.t_end:
            return self.points[-1].position
        index = bisect.bisect_right(self._times, t)
        before = self.points[index - 1]
        after = self.points[index]
        return interpolate_track_at_time(
            before.t, before.lat, before.lon, after.t, after.lat, after.lon, t
        )

    def slice_time(self, t0: float, t1: float) -> "Trajectory | None":
        """Sub-trajectory of fixes with ``t0 <= t <= t1``; None if empty."""
        lo = bisect.bisect_left(self._times, t0)
        hi = bisect.bisect_right(self._times, t1)
        if lo >= hi:
            return None
        return Trajectory(self.mmsi, self.points[lo:hi])

    def bounding_box(self) -> tuple[float, float, float, float]:
        """(lat_min, lat_max, lon_min, lon_max) over the fixes."""
        lats = [p.lat for p in self.points]
        lons = [p.lon for p in self.points]
        return min(lats), max(lats), min(lons), max(lons)

    def mean_speed_knots(self) -> float:
        """Path length over duration; 0 for single-point trajectories."""
        if self.duration_s <= 0:
            return 0.0
        return self.length_m() / self.duration_s / (1852.0 / 3600.0)

    def __repr__(self) -> str:
        return (
            f"Trajectory(mmsi={self.mmsi}, n={len(self)}, "
            f"span={self.duration_s:.0f}s)"
        )
