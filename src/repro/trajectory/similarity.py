"""Trajectory similarity measures: DTW, discrete Fréchet, Hausdorff.

§3.1 lists "determining the similarity among trajectories" among the core
analysis needs (route extraction, pattern-of-life clustering).  All three
measures operate on the fix sequences directly and return metres.
"""

import numpy as np

from repro.geo import haversine_m
from repro.trajectory.points import Trajectory


def _pairwise_matrix(a: Trajectory, b: Trajectory) -> np.ndarray:
    """Dense haversine distance matrix between two fix sequences."""
    out = np.empty((len(a), len(b)))
    for i, p in enumerate(a):
        for j, q in enumerate(b):
            out[i, j] = haversine_m(p.lat, p.lon, q.lat, q.lon)
    return out


def dtw_distance_m(
    a: Trajectory, b: Trajectory, window: int | None = None
) -> float:
    """Dynamic time warping distance (sum of matched-pair distances).

    ``window`` is an optional Sakoe-Chiba band (in points) for speed; the
    band is widened automatically to at least ``|len(a) - len(b)|`` so a
    path always exists.
    """
    n, m = len(a), len(b)
    dist = _pairwise_matrix(a, b)
    if window is None:
        band = max(n, m)
    else:
        band = max(window, abs(n - m))
    INF = float("inf")
    prev = np.full(m + 1, INF)
    prev[0] = 0.0
    current = np.full(m + 1, INF)
    for i in range(1, n + 1):
        current[:] = INF
        j_lo = max(1, i - band)
        j_hi = min(m, i + band)
        for j in range(j_lo, j_hi + 1):
            cost = dist[i - 1, j - 1]
            current[j] = cost + min(prev[j], current[j - 1], prev[j - 1])
        prev, current = current, prev
    return float(prev[m])


def frechet_distance_m(a: Trajectory, b: Trajectory) -> float:
    """Discrete Fréchet distance (the classic dog-walking bottleneck)."""
    n, m = len(a), len(b)
    dist = _pairwise_matrix(a, b)
    ca = np.full((n, m), -1.0)
    ca[0, 0] = dist[0, 0]
    for i in range(1, n):
        ca[i, 0] = max(ca[i - 1, 0], dist[i, 0])
    for j in range(1, m):
        ca[0, j] = max(ca[0, j - 1], dist[0, j])
    for i in range(1, n):
        for j in range(1, m):
            ca[i, j] = max(
                min(ca[i - 1, j], ca[i - 1, j - 1], ca[i, j - 1]),
                dist[i, j],
            )
    return float(ca[n - 1, m - 1])


def hausdorff_distance_m(a: Trajectory, b: Trajectory) -> float:
    """Symmetric Hausdorff distance between the two point sets."""
    dist = _pairwise_matrix(a, b)
    forward = float(dist.min(axis=1).max())
    backward = float(dist.min(axis=0).max())
    return max(forward, backward)
