"""Trajectory clustering and anchorage discovery.

§3.1 asks for "machine learning methods supporting the identification
... of patterns": the two classic unsupervised tasks are grouping tracks
into routes (k-medoids under a trajectory metric) and discovering the
places where ships habitually stop (anchorages/berths) from stop
centroids.  Both are deliberately simple, deterministic and inspectable.
"""

import random
from dataclasses import dataclass, field

from repro.geo import haversine_m
from repro.trajectory.points import Trajectory
from repro.trajectory.resample import resample
from repro.trajectory.similarity import dtw_distance_m
from repro.trajectory.stops import StopSegment


@dataclass
class RouteCluster:
    """One discovered route: a medoid track and its members."""

    medoid_index: int
    member_indices: list[int] = field(default_factory=list)


def cluster_routes(
    trajectories: list[Trajectory],
    k: int,
    resample_step_s: float = 600.0,
    max_iterations: int = 20,
    seed: int = 0,
) -> list[RouteCluster]:
    """k-medoids (PAM-style alternation) under DTW distance.

    Tracks are resampled to a common cadence first so DTW compares shapes
    rather than sampling rates.  Deterministic given the seed.  Returns
    ``k`` clusters (possibly fewer when ``k > len(trajectories)``).
    """
    n = len(trajectories)
    if n == 0:
        return []
    k = min(k, n)
    sampled = [resample(tr, resample_step_s) for tr in trajectories]

    # Distance matrix (symmetric; n is expected to be modest).
    cache: dict[tuple[int, int], float] = {}

    def distance(i: int, j: int) -> float:
        if i == j:
            return 0.0
        key = (min(i, j), max(i, j))
        if key not in cache:
            cache[key] = dtw_distance_m(sampled[key[0]], sampled[key[1]])
        return cache[key]

    # Farthest-first initialisation: start from a seed-chosen track, then
    # repeatedly add the track farthest from every chosen medoid.  Far more
    # robust than random seeding when lanes share endpoints.
    rng = random.Random(seed)
    medoids = [rng.randrange(n)]
    while len(medoids) < k:
        farthest = max(
            (i for i in range(n) if i not in medoids),
            key=lambda i: min(distance(i, m) for m in medoids),
        )
        medoids.append(farthest)

    def assign(medoid_list: list[int]) -> list[int]:
        return [
            min(medoid_list, key=lambda m: distance(i, m)) for i in range(n)
        ]

    assignment = assign(medoids)
    for __ in range(max_iterations):
        changed = False
        for cluster_position, medoid in enumerate(medoids):
            members = [i for i, m in enumerate(assignment) if m == medoid]
            if not members:
                continue
            best = min(
                members,
                key=lambda candidate: sum(
                    distance(candidate, other) for other in members
                ),
            )
            if best != medoid:
                medoids[cluster_position] = best
                changed = True
        new_assignment = assign(medoids)
        if not changed and new_assignment == assignment:
            break
        assignment = new_assignment

    clusters = []
    for medoid in medoids:
        clusters.append(
            RouteCluster(
                medoid_index=medoid,
                member_indices=[
                    i for i, m in enumerate(assignment) if m == medoid
                ],
            )
        )
    return clusters


@dataclass(frozen=True)
class Anchorage:
    """A discovered habitual stopping place."""

    lat: float
    lon: float
    n_stops: int
    n_vessels: int
    total_dwell_s: float


def discover_anchorages(
    stops: list[StopSegment],
    merge_radius_m: float = 2_000.0,
    min_stops: int = 3,
) -> list[Anchorage]:
    """Greedy agglomeration of stop centroids into anchorages.

    Stops within ``merge_radius_m`` of a growing cluster centroid join it;
    clusters with at least ``min_stops`` stops are reported, busiest
    first.  A linear-scan DBSCAN-lite that is deterministic and entirely
    adequate for the cluster counts of a surveillance region.
    """
    clusters: list[list[StopSegment]] = []
    for stop in sorted(stops, key=lambda s: (s.t_start, s.mmsi)):
        best = None
        best_distance = merge_radius_m
        for cluster in clusters:
            lat_c = sum(s.lat for s in cluster) / len(cluster)
            lon_c = sum(s.lon for s in cluster) / len(cluster)
            d = haversine_m(stop.lat, stop.lon, lat_c, lon_c)
            if d <= best_distance:
                best = cluster
                best_distance = d
        if best is None:
            clusters.append([stop])
        else:
            best.append(stop)

    anchorages = []
    for cluster in clusters:
        if len(cluster) < min_stops:
            continue
        anchorages.append(
            Anchorage(
                lat=sum(s.lat for s in cluster) / len(cluster),
                lon=sum(s.lon for s in cluster) / len(cluster),
                n_stops=len(cluster),
                n_vessels=len({s.mmsi for s in cluster}),
                total_dwell_s=sum(s.duration_s for s in cluster),
            )
        )
    anchorages.sort(key=lambda a: a.n_stops, reverse=True)
    return anchorages
