"""Trajectory synopses: lossy compression with bounded deviation.

§2.1: "state of the art techniques have achieved a compression ratio of
95% over AIS vessel traces.  The challenge is to address high levels of
data compression without compromising the accuracy of the prediction /
detection components."  Three algorithms are provided:

- :func:`douglas_peucker` — classic offline shape simplification bounded
  by cross-track deviation;
- :func:`dead_reckoning_compress` — *online* synopsis: keep a fix only
  when dead reckoning from the last kept fix misses it by more than a
  threshold (this is what ships' own transceivers effectively do, and the
  natural in-situ synopsis operator);
- :func:`squish_e` — SQUISH-E priority-queue compression bounded by
  synchronised Euclidean distance (SED).

The error metrics (:func:`max_sed_error_m`, :func:`mean_sed_error_m`)
measure time-synchronised deviation of the original fixes from the
synopsis, which is the quantity that matters for downstream detection.
"""

import heapq

from repro.geo import (
    KNOTS_TO_MPS,
    cross_track_distance_m,
    haversine_m,
    destination_point,
    interpolate_track_at_time,
)
from repro.trajectory.points import TrackPoint, Trajectory


def _sed_m(before: TrackPoint, after: TrackPoint, point: TrackPoint) -> float:
    """Synchronised Euclidean distance: gap between ``point`` and the
    position interpolated at ``point.t`` on the segment before→after."""
    lat, lon = interpolate_track_at_time(
        before.t, before.lat, before.lon, after.t, after.lat, after.lon, point.t
    )
    return haversine_m(lat, lon, point.lat, point.lon)


def douglas_peucker(trajectory: Trajectory, tolerance_m: float) -> Trajectory:
    """Douglas-Peucker simplification with a cross-track tolerance."""
    if tolerance_m <= 0:
        raise ValueError("tolerance_m must be positive")
    points = trajectory.points
    if len(points) <= 2:
        return trajectory
    keep = [False] * len(points)
    keep[0] = keep[-1] = True
    stack = [(0, len(points) - 1)]
    while stack:
        lo, hi = stack.pop()
        if hi - lo < 2:
            continue
        anchor, floater = points[lo], points[hi]
        worst_index = -1
        worst_dist = 0.0
        degenerate = (
            haversine_m(anchor.lat, anchor.lon, floater.lat, floater.lon) < 1.0
        )
        for i in range(lo + 1, hi):
            if degenerate:
                dist = haversine_m(
                    anchor.lat, anchor.lon, points[i].lat, points[i].lon
                )
            else:
                dist = abs(
                    cross_track_distance_m(
                        points[i].lat, points[i].lon,
                        anchor.lat, anchor.lon, floater.lat, floater.lon,
                    )
                )
            if dist > worst_dist:
                worst_dist = dist
                worst_index = i
        if worst_dist > tolerance_m:
            keep[worst_index] = True
            stack.append((lo, worst_index))
            stack.append((worst_index, hi))
    kept = [p for p, k in zip(points, keep) if k]
    return Trajectory(trajectory.mmsi, kept)


def dead_reckoning_compress(
    trajectory: Trajectory, threshold_m: float
) -> Trajectory:
    """Online dead-reckoning synopsis.

    Keep the first fix; from each kept fix, project forward at its reported
    speed/course; keep the next fix whose actual position deviates from the
    projection by more than ``threshold_m``.  Single pass, O(1) state —
    suitable for in-situ placement (§2.1).
    """
    if threshold_m <= 0:
        raise ValueError("threshold_m must be positive")
    points = trajectory.points
    if len(points) <= 2:
        return trajectory
    kept = [points[0]]
    anchor = points[0]
    for point in points[1:-1]:
        dt = point.t - anchor.t
        sog = anchor.sog_knots
        cog = anchor.cog_deg
        if sog is None or cog is None:
            # No kinematics to reckon with: fall back to "hold position".
            predicted = (anchor.lat, anchor.lon)
        else:
            predicted = destination_point(
                anchor.lat, anchor.lon, cog, sog * KNOTS_TO_MPS * dt
            )
        deviation = haversine_m(
            predicted[0], predicted[1], point.lat, point.lon
        )
        if deviation > threshold_m:
            kept.append(point)
            anchor = point
    kept.append(points[-1])
    return Trajectory(trajectory.mmsi, kept)


def squish_e(trajectory: Trajectory, sed_bound_m: float) -> Trajectory:
    """SQUISH-E(λ): remove points cheapest-first until every removal would
    exceed the SED bound.

    Each interior point carries a priority: the SED it would introduce if
    removed, inflated by the priorities of already-removed neighbours (the
    standard SQUISH-E accumulation, which guarantees the bound)."""
    if sed_bound_m <= 0:
        raise ValueError("sed_bound_m must be positive")
    points = trajectory.points
    n = len(points)
    if n <= 2:
        return trajectory
    prev = list(range(-1, n - 1))
    nxt = list(range(1, n + 1))
    accumulated = [0.0] * n  # inflation from removed neighbours

    def priority(i: int) -> float:
        return accumulated[i] + _sed_m(points[prev[i]], points[nxt[i]], points[i])

    heap: list[tuple[float, int, int]] = []
    version = [0] * n
    for i in range(1, n - 1):
        heapq.heappush(heap, (priority(i), i, 0))
    removed = [False] * n
    while heap:
        prio, i, ver = heapq.heappop(heap)
        if removed[i] or ver != version[i]:
            continue
        if prio > sed_bound_m:
            break
        removed[i] = True
        left, right = prev[i], nxt[i]
        nxt[left] = right
        prev[right] = left
        for j in (left, right):
            if 0 < j < n - 1 and not removed[j]:
                accumulated[j] = max(accumulated[j], prio)
                version[j] += 1
                heapq.heappush(heap, (priority(j), j, version[j]))
    kept = [p for p, r in zip(points, removed) if not r]
    return Trajectory(trajectory.mmsi, kept)


def compression_ratio(original: Trajectory, synopsis: Trajectory) -> float:
    """Fraction of points removed: 0.95 == the paper's 95% figure."""
    if len(original) == 0:
        return 0.0
    return 1.0 - len(synopsis) / len(original)


def _sed_errors(original: Trajectory, synopsis: Trajectory) -> list[float]:
    """SED of every original fix against the synopsis timeline."""
    errors = []
    for point in original:
        lat, lon = synopsis.position_at(point.t)
        errors.append(haversine_m(lat, lon, point.lat, point.lon))
    return errors


def max_sed_error_m(original: Trajectory, synopsis: Trajectory) -> float:
    return max(_sed_errors(original, synopsis))


def mean_sed_error_m(original: Trajectory, synopsis: Trajectory) -> float:
    errors = _sed_errors(original, synopsis)
    return sum(errors) / len(errors)
