"""Constant-velocity Kalman filtering of vessel tracks.

Runs in a local tangent plane (metres).  Used for (a) smoothing noisy
fixes before analytics, and (b) short-horizon prediction with honest
uncertainty growth (the forecasting layer reuses the same model, §3.1).
"""

import math
from dataclasses import dataclass

import numpy as np

from repro.geo import LocalTangentPlane
from repro.trajectory.points import TrackPoint, Trajectory


@dataclass
class KalmanState:
    """Filter state: position/velocity mean and covariance, in plane metres."""

    t: float
    x: np.ndarray  # [x, y, vx, vy]
    P: np.ndarray  # 4x4 covariance

    @property
    def position_m(self) -> tuple[float, float]:
        return float(self.x[0]), float(self.x[1])

    @property
    def speed_mps(self) -> float:
        return float(math.hypot(self.x[2], self.x[3]))

    def position_sigma_m(self) -> float:
        """Circular 1-sigma position uncertainty (RMS of the axes)."""
        return float(math.sqrt((self.P[0, 0] + self.P[1, 1]) / 2.0))


class CvKalmanFilter:
    """Nearly-constant-velocity Kalman filter for one track.

    ``process_noise_accel`` is the white-acceleration intensity (m/s²);
    3e-2 suits large merchant vessels, higher for manoeuvring small craft.
    """

    def __init__(
        self,
        plane: LocalTangentPlane,
        measurement_sigma_m: float = 15.0,
        process_noise_accel: float = 0.05,
    ) -> None:
        self.plane = plane
        self.measurement_sigma_m = measurement_sigma_m
        self.process_noise_accel = process_noise_accel
        self.state: KalmanState | None = None
        self._H = np.array([[1.0, 0, 0, 0], [0, 1.0, 0, 0]])
        self._R = np.eye(2) * measurement_sigma_m**2

    def _transition(self, dt: float) -> tuple[np.ndarray, np.ndarray]:
        F = np.eye(4)
        F[0, 2] = dt
        F[1, 3] = dt
        q = self.process_noise_accel**2
        dt2, dt3, dt4 = dt * dt, dt**3, dt**4
        Q = q * np.array(
            [
                [dt4 / 4, 0, dt3 / 2, 0],
                [0, dt4 / 4, 0, dt3 / 2],
                [dt3 / 2, 0, dt2, 0],
                [0, dt3 / 2, 0, dt2],
            ]
        )
        return F, Q

    def predict(self, t: float) -> KalmanState:
        """Predicted state at a (possibly future) time, without updating."""
        if self.state is None:
            raise RuntimeError("filter not initialised; call update first")
        dt = t - self.state.t
        if dt < 0:
            raise ValueError("cannot predict into the past")
        F, Q = self._transition(dt)
        x = F @ self.state.x
        P = F @ self.state.P @ F.T + Q
        return KalmanState(t=t, x=x, P=P)

    def update(self, point: TrackPoint) -> KalmanState:
        """Fuse one fix; initialises on the first call."""
        x_m, y_m = self.plane.to_xy(point.lat, point.lon)
        z = np.array([x_m, y_m])
        if self.state is None:
            x0 = np.array([x_m, y_m, 0.0, 0.0])
            P0 = np.diag(
                [
                    self.measurement_sigma_m**2,
                    self.measurement_sigma_m**2,
                    25.0,
                    25.0,
                ]
            )
            self.state = KalmanState(t=point.t, x=x0, P=P0)
            return self.state
        predicted = self.predict(point.t)
        y = z - self._H @ predicted.x
        S = self._H @ predicted.P @ self._H.T + self._R
        K = predicted.P @ self._H.T @ np.linalg.inv(S)
        x = predicted.x + K @ y
        P = (np.eye(4) - K @ self._H) @ predicted.P
        self.state = KalmanState(t=point.t, x=x, P=P)
        return self.state

    def innovation_distance(self, point: TrackPoint) -> float:
        """Mahalanobis distance of a fix from the predicted state — the
        gating statistic used by fusion association and spoof detection."""
        if self.state is None:
            return 0.0
        predicted = self.predict(max(point.t, self.state.t))
        x_m, y_m = self.plane.to_xy(point.lat, point.lon)
        y = np.array([x_m, y_m]) - self._H @ predicted.x
        S = self._H @ predicted.P @ self._H.T + self._R
        return float(math.sqrt(y @ np.linalg.solve(S, y)))

    def position_latlon(self) -> tuple[float, float]:
        if self.state is None:
            raise RuntimeError("filter not initialised")
        return self.plane.to_latlon(float(self.state.x[0]), float(self.state.x[1]))


def rts_smooth_trajectory(
    trajectory: Trajectory,
    measurement_sigma_m: float = 15.0,
    process_noise_accel: float = 0.05,
) -> Trajectory:
    """Rauch-Tung-Striebel smoothing: forward filter + backward pass.

    Unlike :func:`smooth_trajectory`, every estimate is conditioned on the
    *whole* track, so early fixes benefit from later evidence — the right
    tool for offline analytics (pattern-of-life training, archival
    cleaning), while the forward filter remains the online tool.
    """
    mid = trajectory[len(trajectory) // 2]
    plane = LocalTangentPlane(mid.lat, mid.lon)
    kf = CvKalmanFilter(plane, measurement_sigma_m, process_noise_accel)
    filtered: list[KalmanState] = []
    predicted: list[KalmanState] = []
    for point in trajectory:
        if kf.state is None:
            state = kf.update(point)
            predicted.append(state)
        else:
            predicted.append(kf.predict(point.t))
            state = kf.update(point)
        filtered.append(KalmanState(state.t, state.x.copy(), state.P.copy()))

    # Backward pass.
    smoothed = [filtered[-1]]
    for k in range(len(filtered) - 2, -1, -1):
        dt = filtered[k + 1].t - filtered[k].t
        F, __ = kf._transition(dt)
        P_pred = predicted[k + 1].P
        gain = filtered[k].P @ F.T @ np.linalg.inv(P_pred)
        x = filtered[k].x + gain @ (smoothed[0].x - predicted[k + 1].x)
        P = filtered[k].P + gain @ (smoothed[0].P - P_pred) @ gain.T
        smoothed.insert(0, KalmanState(filtered[k].t, x, P))

    out: list[TrackPoint] = []
    for point, state in zip(trajectory, smoothed):
        lat, lon = plane.to_latlon(float(state.x[0]), float(state.x[1]))
        out.append(
            TrackPoint(
                t=point.t, lat=lat, lon=lon,
                sog_knots=state.speed_mps / (1852.0 / 3600.0),
                cog_deg=point.cog_deg, source=point.source,
            )
        )
    return Trajectory(trajectory.mmsi, out)


def smooth_trajectory(
    trajectory: Trajectory,
    measurement_sigma_m: float = 15.0,
    process_noise_accel: float = 0.05,
) -> Trajectory:
    """Forward-filter a trajectory and return the filtered fixes.

    Online-causal: each estimate uses only past fixes.  For offline
    smoothing conditioned on the whole track, use
    :func:`rts_smooth_trajectory`.
    """
    mid = trajectory[len(trajectory) // 2]
    plane = LocalTangentPlane(mid.lat, mid.lon)
    kf = CvKalmanFilter(plane, measurement_sigma_m, process_noise_accel)
    smoothed: list[TrackPoint] = []
    for point in trajectory:
        state = kf.update(point)
        lat, lon = plane.to_latlon(*state.position_m)
        smoothed.append(
            TrackPoint(
                t=point.t, lat=lat, lon=lon,
                sog_knots=state.speed_mps / (1852.0 / 3600.0),
                cog_deg=point.cog_deg, source=point.source,
            )
        )
    return Trajectory(trajectory.mmsi, smoothed)
