"""Stop/move segmentation and port-call detection.

The first step of *semantic trajectories* [34]: partition a track into
stop episodes (anchored, moored, drifting, loitering) and move episodes.
Stops near a known port become port calls; stops at open sea are exactly
the precondition for loitering/rendezvous events (§3.1).
"""

from dataclasses import dataclass

from repro.geo import haversine_m
from repro.simulation.world import Port
from repro.trajectory.points import Trajectory


@dataclass(frozen=True)
class StopSegment:
    """A maximal episode during which the vessel is effectively stationary."""

    mmsi: int
    t_start: float
    t_end: float
    lat: float  # centroid
    lon: float

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start


def detect_stops(
    trajectory: Trajectory,
    speed_threshold_knots: float = 1.0,
    min_duration_s: float = 900.0,
    max_radius_m: float = 500.0,
) -> list[StopSegment]:
    """Stops: runs of fixes below the speed threshold that stay within
    ``max_radius_m`` of their centroid for at least ``min_duration_s``.

    Uses reported SOG when available, otherwise the implied speed between
    consecutive fixes — dark/noisy feeds often lack SOG.
    """
    stops: list[StopSegment] = []
    run: list = []

    def speed_of(index: int) -> float:
        point = trajectory[index]
        if point.sog_knots is not None:
            return point.sog_knots
        if index == 0:
            return 0.0
        prev = trajectory[index - 1]
        dt = point.t - prev.t
        if dt <= 0:
            return 0.0
        return haversine_m(prev.lat, prev.lon, point.lat, point.lon) / dt / (
            1852.0 / 3600.0
        )

    def flush() -> None:
        if not run:
            return
        duration = run[-1].t - run[0].t
        if duration < min_duration_s:
            run.clear()
            return
        lat_c = sum(p.lat for p in run) / len(run)
        lon_c = sum(p.lon for p in run) / len(run)
        radius = max(haversine_m(lat_c, lon_c, p.lat, p.lon) for p in run)
        if radius <= max_radius_m:
            stops.append(
                StopSegment(
                    mmsi=trajectory.mmsi,
                    t_start=run[0].t,
                    t_end=run[-1].t,
                    lat=lat_c,
                    lon=lon_c,
                )
            )
        run.clear()

    for index, point in enumerate(trajectory):
        if speed_of(index) <= speed_threshold_knots:
            run.append(point)
        else:
            flush()
    flush()
    return stops


def stops_and_moves(
    trajectory: Trajectory,
    speed_threshold_knots: float = 1.0,
    min_duration_s: float = 900.0,
) -> list[tuple[str, float, float]]:
    """The full stop/move alternation as ``(label, t_start, t_end)``.

    Moves are the complement of the detected stops over the track's span.
    """
    stops = detect_stops(
        trajectory, speed_threshold_knots, min_duration_s
    )
    episodes: list[tuple[str, float, float]] = []
    cursor = trajectory.t_start
    for stop in stops:
        if stop.t_start > cursor:
            episodes.append(("move", cursor, stop.t_start))
        episodes.append(("stop", stop.t_start, stop.t_end))
        cursor = stop.t_end
    if cursor < trajectory.t_end:
        episodes.append(("move", cursor, trajectory.t_end))
    return episodes


def port_calls(
    stops: list[StopSegment],
    ports: list[Port],
    port_radius_m: float = 8_000.0,
) -> list[tuple[StopSegment, Port]]:
    """Stops within ``port_radius_m`` of a catalogued port, labelled."""
    calls = []
    for stop in stops:
        best: Port | None = None
        best_dist = port_radius_m
        for port in ports:
            dist = haversine_m(stop.lat, stop.lon, port.lat, port.lon)
            if dist <= best_dist:
                best = port
                best_dist = dist
        if best is not None:
            calls.append((stop, best))
    return calls
