"""Uniform-rate resampling of trajectories.

Similarity measures and the pattern-of-life grid want fixes at a fixed
cadence; raw AIS cadence varies from 2 s to 3 min with speed (and coverage
holes).  Resampling interpolates along the great circle between fixes.
"""

from repro.trajectory.points import TrackPoint, Trajectory


def resample(trajectory: Trajectory, step_s: float) -> Trajectory:
    """New trajectory sampled every ``step_s`` over the original span.

    Speeds/courses are carried from the fix immediately before each sample
    (they are step functions, not interpolatable angles).
    """
    if step_s <= 0:
        raise ValueError("step_s must be positive")
    if len(trajectory) == 1:
        return trajectory
    samples: list[TrackPoint] = []
    t = trajectory.t_start
    source_index = 0
    points = trajectory.points
    while t <= trajectory.t_end:
        lat, lon = trajectory.position_at(t)
        while (
            source_index + 1 < len(points) and points[source_index + 1].t <= t
        ):
            source_index += 1
        reference = points[source_index]
        samples.append(
            TrackPoint(
                t=t, lat=lat, lon=lon,
                sog_knots=reference.sog_knots,
                cog_deg=reference.cog_deg,
                source="resampled",
            )
        )
        t += step_s
    if samples[-1].t < trajectory.t_end:
        last = points[-1]
        samples.append(
            TrackPoint(
                t=trajectory.t_end, lat=last.lat, lon=last.lon,
                sog_knots=last.sog_knots, cog_deg=last.cog_deg,
                source="resampled",
            )
        )
    return Trajectory(trajectory.mmsi, samples)
