"""Online trajectory reconstruction from decoded AIS position messages.

The "real-time reconstruction of vessel trajectories" challenge of §3.1:
messages arrive noisy, duplicated, out of order and with conflicting
positions (spoofing); the reconstructor maintains one clean track per MMSI
by deduplicating, gating physically impossible jumps, and segmenting on
reporting gaps.
"""

import dataclasses
from dataclasses import dataclass, field

from repro.ais.types import ClassBPositionReport, PositionReport
from repro.geo import KNOTS_TO_MPS, distance_bound_m, haversine_m
from repro.trajectory.points import TrackPoint, Trajectory


@dataclass(frozen=True)
class ReconstructionConfig:
    """Tunables for the cleaning rules."""

    #: Fastest speed considered physically possible; implied speeds above
    #: this reject the fix (or open a conflict, see spoofing detection).
    max_speed_knots: float = 50.0
    #: Reports closer in time than this to the previous accepted fix are
    #: duplicates (AIS repeaters, double reception).
    min_dt_s: float = 1.0
    #: A silence longer than this closes the current segment.
    gap_timeout_s: float = 1800.0
    #: Fixes rejected by the speed gate this many times in a row are
    #: accepted as a new reality (the vessel jumped — e.g. decoded after a
    #: long outage or genuine spoof); the segment is split instead.
    max_consecutive_rejects: int = 3


@dataclass
class _TrackState:
    points: list[TrackPoint] = field(default_factory=list)
    consecutive_rejects: int = 0


@dataclass
class ReconstructorStats:
    accepted: int = 0
    duplicates: int = 0
    speed_rejected: int = 0
    out_of_order: int = 0
    segments_closed: int = 0


class TrackReconstructor:
    """Incremental reconstructor: feed position messages, collect segments.

    Usage::

        rec = TrackReconstructor()
        for t, msg in feed:
            rec.add(msg, t)
        trajectories = rec.finish()
    """

    def __init__(self, config: ReconstructionConfig | None = None) -> None:
        self.config = config or ReconstructionConfig()
        self.stats = ReconstructorStats()
        self._states: dict[int, _TrackState] = {}
        self._finished: list[Trajectory] = []

    def add(
        self,
        msg: PositionReport | ClassBPositionReport,
        t: float,
        source: str = "ais",
    ) -> TrackPoint | None:
        """Offer one position message observed at epoch ``t``.

        Returns the accepted :class:`TrackPoint`, or ``None`` if the
        message was rejected (the reason is counted in ``stats``).
        """
        if not msg.has_position:
            return None
        return self.add_point(msg.mmsi, TrackPoint(
            t=t, lat=msg.lat, lon=msg.lon,
            sog_knots=msg.sog_knots, cog_deg=msg.cog_deg, source=source,
        ))

    def add_point(self, mmsi: int, point: TrackPoint) -> TrackPoint | None:
        """Offer one already-built fix for ``mmsi``.

        The hot-path entry: callers that already hold a
        :class:`TrackPoint` for the fix (the vessel phase builds one per
        record regardless) hand it in directly, and the accepted track
        shares that object instead of constructing a second identical
        one.  The caller must have filtered position-availability
        sentinels (``msg.has_position``); :meth:`add` does both steps.
        """
        state = self._states.setdefault(mmsi, _TrackState())
        if not state.points:
            state.points.append(point)
            self.stats.accepted += 1
            return point
        last = state.points[-1]
        dt = point.t - last.t
        if dt <= 0:
            self.stats.out_of_order += 1
            return None
        if dt < self.config.min_dt_s:
            self.stats.duplicates += 1
            return None
        if dt > self.config.gap_timeout_s:
            self._close_segment(mmsi, state)
            state.points.append(point)
            self.stats.accepted += 1
            return point
        # Speed gate, cheapest-proof-first: the distance upper bound is
        # monotone through the division, so a bound-implied speed at or
        # under the limit proves the exact implied speed is too — the
        # common accept case skips the haversine entirely.  Only when the
        # bound cannot prove acceptance does the exact test run, so the
        # accept/reject decision is bit-identical to always computing it.
        if (
            distance_bound_m(last.lat, last.lon, point.lat, point.lon)
            / dt / KNOTS_TO_MPS > self.config.max_speed_knots
        ) and (
            haversine_m(last.lat, last.lon, point.lat, point.lon)
            / dt / KNOTS_TO_MPS > self.config.max_speed_knots
        ):
            state.consecutive_rejects += 1
            self.stats.speed_rejected += 1
            if state.consecutive_rejects >= self.config.max_consecutive_rejects:
                # The new position is persistent: split and accept it.
                self._close_segment(mmsi, state)
                state.points.append(point)
                state.consecutive_rejects = 0
                self.stats.accepted += 1
                return point
            return None
        state.consecutive_rejects = 0
        state.points.append(point)
        self.stats.accepted += 1
        return point

    def _close_segment(self, mmsi: int, state: _TrackState) -> None:
        if len(state.points) >= 2:
            self._finished.append(Trajectory(mmsi, state.points))
            self.stats.segments_closed += 1
        state.points = []

    def active_track(self, mmsi: int) -> list[TrackPoint]:
        """The open (not yet closed) segment for a vessel, possibly empty."""
        state = self._states.get(mmsi)
        return list(state.points) if state else []

    def open_segment_length(self, mmsi: int) -> int:
        """Points in the open segment (0 when none) — cheap, no copy."""
        state = self._states.get(mmsi)
        return len(state.points) if state else 0

    def drain_finished(self) -> list[Trajectory]:
        """Segments closed since the last drain, in the order they closed.

        The incremental counterpart of :meth:`finish`: open segments stay
        open, so the caller can keep feeding and drain again.  Per vessel
        the drained order is chronological (a segment closes before its
        successor opens).
        """
        out = self._finished
        self._finished = []
        return out

    def n_open_segments(self) -> int:
        return sum(1 for s in self._states.values() if s.points)

    def evict_idle(self, before_t: float) -> int:
        """Close and discard open per-vessel state idle since ``before_t``.

        For unbounded live runs: a vessel whose last accepted fix is older
        than the horizon has its open segment closed (recoverable via
        :meth:`drain_finished`) and its per-vessel entry dropped; if it
        returns, it simply starts a fresh segment.  Returns the number of
        vessels evicted.
        """
        stale = [
            mmsi for mmsi, state in self._states.items()
            if not state.points or state.points[-1].t < before_t
        ]
        for mmsi in stale:
            self._close_segment(mmsi, self._states[mmsi])
            del self._states[mmsi]
        return len(stale)

    def last_point(self, mmsi: int) -> TrackPoint | None:
        state = self._states.get(mmsi)
        if state and state.points:
            return state.points[-1]
        return None

    # -- durable state -----------------------------------------------------

    def export_state(self) -> dict:
        """Every mutable structure, as plain copies (checkpointing).

        ``states`` maps MMSI to the open segment and reject counter,
        ``finished`` is the not-yet-drained closed-segment list in close
        order, ``stats`` a copy of the cumulative counters.  The copies
        share the frozen :class:`TrackPoint`/:class:`Trajectory` payloads
        but none of the mutable containers.
        """
        return {
            "states": {
                mmsi: (list(state.points), state.consecutive_rejects)
                for mmsi, state in self._states.items()
            },
            "finished": list(self._finished),
            "stats": dataclasses.replace(self.stats),
        }

    def load_state(self, snapshot: dict) -> None:
        """Restore :meth:`export_state` output (config stays as built)."""
        self._states = {
            mmsi: _TrackState(list(points), rejects)
            for mmsi, (points, rejects) in snapshot["states"].items()
        }
        self._finished = list(snapshot["finished"])
        self.stats = dataclasses.replace(snapshot["stats"])

    def finish(self) -> list[Trajectory]:
        """Close all open segments and return every reconstructed segment,
        ordered by (mmsi, start time)."""
        for mmsi, state in self._states.items():
            self._close_segment(mmsi, state)
        self._states.clear()
        out = sorted(self._finished, key=lambda tr: (tr.mmsi, tr.t_start))
        self._finished = []
        return out
