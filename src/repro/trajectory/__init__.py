"""Trajectory substrate: reconstruction, filtering, synopses, analysis.

Implements the trajectory-specific machinery the paper's infrastructure
needs (§2.1, §2.6, §3.1): online reconstruction of clean per-vessel tracks
from noisy message streams, Kalman smoothing, compression synopses at the
95% ratios of [29], similarity measures for pattern mining, and stop/move
semantic segmentation.
"""

from repro.trajectory.points import TrackPoint, Trajectory
from repro.trajectory.reconstruction import TrackReconstructor, ReconstructionConfig
from repro.trajectory.kalman import (
    CvKalmanFilter,
    KalmanState,
    smooth_trajectory,
    rts_smooth_trajectory,
)
from repro.trajectory.clustering import (
    RouteCluster,
    cluster_routes,
    Anchorage,
    discover_anchorages,
)
from repro.trajectory.compression import (
    douglas_peucker,
    dead_reckoning_compress,
    squish_e,
    compression_ratio,
    max_sed_error_m,
    mean_sed_error_m,
)
from repro.trajectory.similarity import (
    dtw_distance_m,
    frechet_distance_m,
    hausdorff_distance_m,
)
from repro.trajectory.stops import (
    StopSegment,
    detect_stops,
    stops_and_moves,
    port_calls,
)
from repro.trajectory.resample import resample

__all__ = [
    "TrackPoint",
    "Trajectory",
    "TrackReconstructor",
    "ReconstructionConfig",
    "CvKalmanFilter",
    "KalmanState",
    "smooth_trajectory",
    "rts_smooth_trajectory",
    "RouteCluster",
    "cluster_routes",
    "Anchorage",
    "discover_anchorages",
    "douglas_peucker",
    "dead_reckoning_compress",
    "squish_e",
    "compression_ratio",
    "max_sed_error_m",
    "mean_sed_error_m",
    "dtw_distance_m",
    "frechet_distance_m",
    "hausdorff_distance_m",
    "StopSegment",
    "detect_stops",
    "stops_and_moves",
    "port_calls",
    "resample",
]
