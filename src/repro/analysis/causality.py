"""Rules ``causal-lookahead`` and ``config-mutation``.

**causal-lookahead** — the pipeline's causality invariant (stage
protocol rule 2: anything computed at time *t* reads only state from
records with event time <= *t*) dies quietly when a detector helper that
expects a *time-ordered, released* trajectory is fed data still sitting
in a buffer.  Two shapes are flagged:

- reaching into the private internals of a buffered component
  (``state.reorderer._buffer``, ``state.cep._pending`` — any
  underscore attribute on the fields in :data:`BUFFERED_FIELDS`);
- calling a time-ordered lookahead helper (:data:`LOOKAHEAD_HELPERS`)
  with an argument derived from such a peek, or from a peek-style
  accessor (:data:`PEEK_METHODS`) on a buffered field.  Derivation is
  tracked through plain local assignments.

**config-mutation** — configuration is immutable once validated:
variants come from ``PipelineConfig.replace()`` / ``from_overrides()``,
never from attribute assignment (the nested dataclasses are frozen; the
top-level config relies on this rule).  Any attribute store whose
target path goes through a ``config`` component
(``state.config.workers = 2``, ``cfg.gap_min_s = 0``) is flagged,
except inside ``core/config.py`` itself, which owns construction.
"""

import ast

from repro.analysis.base import Finding, attr_path

RULES = ("causal-lookahead", "config-mutation")

#: ``PipelineState`` fields that buffer records past the watermark.
BUFFERED_FIELDS = frozenset({
    "reorderer", "cep", "rendezvous", "collisions",
    "radar_queue", "lrit_queue",
})

#: Helpers whose contract requires released, time-ordered data.
LOOKAHEAD_HELPERS = frozenset({
    "detect_gaps", "detect_loitering", "detect_zone_events",
    "detect_anomalies", "dead_reckoning_compress", "resample",
    "slice_time", "predict",
})

#: Accessors that expose buffered-but-unreleased data.
PEEK_METHODS = frozenset({
    "peek", "peek_pending", "pending_records", "staged", "unreleased",
})

#: Local/parameter names treated as config objects for the mutation rule.
_CONFIG_NAMES = frozenset({"config", "cfg"})


def _is_peek(node) -> tuple | None:
    """(line, description) when ``node`` reads unreleased buffered data."""
    if isinstance(node, ast.Attribute):
        base = node.value
        if isinstance(base, ast.Attribute) and \
                base.attr in BUFFERED_FIELDS and \
                node.attr.startswith("_"):
            return (node.lineno,
                    f"{base.attr}.{node.attr} (private buffer internals)")
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        func = node.func
        base = func.value
        if isinstance(base, ast.Attribute) and \
                base.attr in BUFFERED_FIELDS and \
                func.attr in PEEK_METHODS:
            return (node.lineno, f"{base.attr}.{func.attr}() (peek)")
    return None


def _check_lookahead(module) -> list:
    findings: list[Finding] = []
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        # Taint: locals assigned from a peeked expression.
        tainted: dict[str, str] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                for sub in ast.walk(node.value):
                    peek = _is_peek(sub)
                    if peek is not None:
                        tainted[node.targets[0].id] = peek[1]
                        break
                else:
                    # Propagate through derived locals.
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name) and sub.id in tainted:
                            tainted[node.targets[0].id] = tainted[sub.id]
                            break
        for node in ast.walk(func):
            peek = _is_peek(node)
            if peek is not None and isinstance(node, ast.Attribute):
                # Direct reach into private buffer internals is always
                # a violation, wherever the value flows.
                findings.append(Finding(
                    "causal-lookahead", str(module.path), peek[0],
                    f"reads {peek[1]} — unreleased records must never "
                    "be consumed before the watermark releases them",
                ))
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            helper = None
            if isinstance(callee, ast.Name):
                helper = callee.id
            elif isinstance(callee, ast.Attribute):
                helper = callee.attr
            if helper not in LOOKAHEAD_HELPERS:
                continue
            for arg in [*node.args, *[k.value for k in node.keywords]]:
                source = None
                for sub in ast.walk(arg):
                    peek = _is_peek(sub)
                    if peek is not None:
                        source = peek[1]
                        break
                    if isinstance(sub, ast.Name) and sub.id in tainted:
                        source = tainted[sub.id]
                        break
                if source is not None:
                    findings.append(Finding(
                        "causal-lookahead", str(module.path), node.lineno,
                        f"{helper}() called on unflushed data from "
                        f"{source} — time-ordered helpers require "
                        "released records only",
                    ))
                    break
    return findings


def _check_config_mutation(module) -> list:
    if module.path.name == "config.py" and \
            module.path.parent.name == "core":
        return []
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            path = attr_path(target)
            if path is None or len(path) < 2:
                continue
            # The stored-to attribute's owner chain: flag when it goes
            # through a config object (base name `config`/`cfg`, or any
            # intermediate `.config` / `.reconstruction` etc. attribute
            # of one).
            owners = path[:-1]
            is_config = owners[0] in _CONFIG_NAMES or "config" in owners[1:]
            if not is_config:
                continue
            # Allow `self.config = ...` style installation (storing a
            # new validated instance) — only mutation *of* a config
            # object is the violation, i.e. the final attr lands on it.
            findings.append(Finding(
                "config-mutation", str(module.path), target.lineno,
                f"mutates {'.'.join(path)} — validated configs are "
                "immutable; derive variants with replace() or "
                "from_overrides()",
            ))
    return findings


def check(modules) -> list:
    findings: list[Finding] = []
    for module in modules:
        findings.extend(_check_lookahead(module))
        findings.extend(_check_config_mutation(module))
    return findings
