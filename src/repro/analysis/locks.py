"""Rule ``lock-discipline``: shared mutable attributes stay under the lock.

The threaded sources and sinks (``sources/tcp.py``, ``sources/merge.py``,
``sinks/dispatch.py``) follow one concurrency pattern: a worker thread
(``threading.Thread(target=self._method)``) and the public caller-side
methods communicate through instance attributes guarded by ``with
self._lock`` / ``with self._condition`` blocks.  This checker enforces
the pattern per class:

1. **Sync attributes** are those assigned a
   ``threading.Lock/RLock/Condition/Event/Semaphore`` in ``__init__``;
   the lock attributes among them define what "inside the lock" means.
2. The **worker set** W is every method reachable from a
   ``Thread(target=self.x)`` entry point; the **public set** P is every
   method reachable from the class's public API (non-underscore methods
   plus iteration/len dunders).  ``__init__`` runs before the thread
   exists and is exempt.
3. An attribute path written from both W and P is **shared-mutated**;
   every touch of it (read or write, from any method) must then happen
   inside a lock block — either lexically, or inside a helper whose
   every call site holds the lock (propagated to a fixed point, e.g.
   ``AsyncDispatcher._drop``).

Writes are attribute stores, ``del``, augmented assignments, mutating
container calls (``append``/``popleft``/…) and
``heapq.heappush/heappop`` on the attribute.  Element state reached
through a container of bookkeeping objects (``MergedSource._feeds``
holding ``_Feed`` instances, ``DispatchPool._lanes`` holding
``_Lane``) is tracked as one element path (``_feeds[].field``) —
covering annotated parameters, indexing, iteration and
``pop``/``popleft`` bindings.  A private element class reached through
*several* containers (lanes live in ``_lanes`` and transit ``_ready``)
gets one canonical label, so worker-side and caller-side touches of
the same object intersect no matter which container it was reached
through.  Sync attributes themselves are exempt (they *are* the
discipline), as is anything named in a class-level ``_lock_free``
tuple, the documented lock-free allowlist.

Classes without a ``Thread(target=self.x)`` worker can opt in with a
class-level ``_thread_shared = True`` marker (``SubscriptionHub``, the
serve gateway's state): the class declares that *any* public method may
run on any thread — pool workers deliver callbacks that re-enter it —
so every publicly-written attribute is treated as shared and must obey
the lock discipline on every touch (a strict monitor).
"""

import ast
from dataclasses import dataclass

from repro.analysis.base import (
    Finding,
    attr_path,
    class_literal_attr,
    class_methods,
    iter_classes,
    parent_map,
)

RULE = "lock-discipline"

_SYNC_TYPES = frozenset({
    "Lock", "RLock", "Condition", "Event", "Semaphore", "BoundedSemaphore",
    "Barrier",
})

#: Method names that mutate their receiver (containers, events).
_MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert",
    "pop", "popleft", "popitem", "remove", "discard", "clear",
    "add", "update", "setdefault", "sort", "reverse",
    "put", "put_nowait", "get_nowait", "set",
})

_HEAP_FUNCTIONS = frozenset({
    "heappush", "heappop", "heappushpop", "heapreplace",
})


@dataclass
class _Touch:
    path: tuple        # e.g. ("_queue",) or ("_feeds[]", "n_staged")
    write: bool
    line: int
    in_lock: bool      # lexically inside a ``with self.<sync>`` block
    method: str


class _ClassModel:
    """Everything the rule needs to know about one class."""

    def __init__(self, module, cls) -> None:
        self.module = module
        self.cls = cls
        self.methods = {m.name: m for m in class_methods(cls)}
        self.sync_attrs = self._sync_attrs()
        self.element_types, self.element_containers = \
            self._element_container_types()
        self.worker_entries = self._worker_entries()
        self.lock_free = set(class_literal_attr(cls, "_lock_free") or ())
        self.calls: dict[str, list] = {}       # method -> [(callee, in_lock)]
        self.touches: dict[str, list] = {}     # method -> [_Touch]
        for name, func in self.methods.items():
            self._scan_method(name, func)

    # -- structure discovery ----------------------------------------------

    def _sync_attrs(self) -> set:
        """self attributes assigned a threading primitive in __init__."""
        out: set[str] = set()
        init = self.methods.get("__init__")
        if init is None:
            return out
        for node in ast.walk(init):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            callee = value.func
            type_name = None
            if isinstance(callee, ast.Attribute):
                type_name = callee.attr
            elif isinstance(callee, ast.Name):
                type_name = callee.id
            if type_name not in _SYNC_TYPES:
                continue
            for target in node.targets:
                path = attr_path(target)
                if path is not None and len(path) == 2 and \
                        path[0] == "self":
                    out.add(path[1])
        return out

    @staticmethod
    def _private_class_name(node):
        """``_Feed`` / ``_Lane`` constructor calls, by naming convention."""
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            name = node.func.id
            if len(name) > 1 and name[0] == "_" and name[1].isupper():
                return name
        return None

    @staticmethod
    def _annotated_class(arg):
        """A parameter's private-class annotation (``lane: "_Lane"``)."""
        ann = arg.annotation
        name = None
        if isinstance(ann, ast.Name):
            name = ann.id
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            name = ann.value
        if name and len(name) > 1 and name[0] == "_" and name[1].isupper():
            return name
        return None

    def _element_container_types(self) -> tuple:
        """Map private bookkeeping classes to the containers holding them.

        ``self._feeds = [_Feed(i, src) for ...]`` maps ``_Feed`` to the
        container attribute ``_feeds`` — parameters annotated ``_Feed``
        then count as element accesses.  Construction need not happen in
        ``__init__`` or inline: ``made = _Lane(...)`` followed by
        ``self._lanes.append(made)`` counts too, and once a name is known
        to hold an element (constructed, annotated, or drawn out of a
        tracked container) appending it to another self container tracks
        that container as well — iterated to a fixed point, so transit
        containers like ``DispatchPool._ready`` carry the same element
        class as ``_lanes``.  Each class then gets ONE canonical label
        shared by all its containers, making worker-side and caller-side
        touches of the same object intersect regardless of the container
        it was reached through.

        Returns ``(element_types, element_containers)``: class name →
        label, and container attribute → label.
        """
        containers: dict[str, set] = {}   # class name -> container attrs

        def self_container(expr):
            if isinstance(expr, ast.Subscript):
                expr = expr.value
            path = attr_path(expr)
            if path is not None and len(path) == 2 and path[0] == "self":
                return path[1]
            return None

        def class_of_container(attr):
            for cls_name, attrs in containers.items():
                if attr in attrs:
                    return cls_name
            return None

        # Seed: containers assigned a value that constructs elements.
        for func in self.methods.values():
            for node in ast.walk(func):
                if not isinstance(node, ast.Assign) or not node.targets:
                    continue
                path = attr_path(node.targets[0])
                if path is None or len(path) != 2 or path[0] != "self":
                    continue
                for sub in ast.walk(node.value):
                    name = self._private_class_name(sub)
                    if name:
                        containers.setdefault(name, set()).add(path[1])

        # Flow: element-holding names appended to other containers.
        while True:
            changed = False
            for func in self.methods.values():
                known: dict[str, str] = {}
                args = func.args
                for arg in [*args.posonlyargs, *args.args,
                            *args.kwonlyargs]:
                    name = self._annotated_class(arg)
                    if name:
                        known[arg.arg] = name
                for node in ast.walk(func):
                    if isinstance(node, ast.Assign) and \
                            len(node.targets) == 1 and \
                            isinstance(node.targets[0], ast.Name):
                        name = self._private_class_name(node.value)
                        if name:
                            known[node.targets[0].id] = name
                        elif isinstance(node.value, ast.Call) and \
                                isinstance(node.value.func, ast.Attribute) \
                                and node.value.func.attr in ("pop",
                                                             "popleft"):
                            attr = self_container(node.value.func.value)
                            cls_name = (
                                class_of_container(attr) if attr else None
                            )
                            if cls_name:
                                known[node.targets[0].id] = cls_name
                    elif isinstance(node, (ast.For, ast.comprehension)):
                        attr = self_container(node.iter)
                        cls_name = (
                            class_of_container(attr) if attr else None
                        )
                        if cls_name and isinstance(node.target, ast.Name):
                            known[node.target.id] = cls_name
                for node in ast.walk(func):
                    if not (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr in ("append", "appendleft",
                                                   "add")
                            and node.args
                            and isinstance(node.args[0], ast.Name)):
                        continue
                    cls_name = known.get(node.args[0].id)
                    if cls_name is None:
                        continue
                    attr = self_container(node.func.value)
                    if attr and attr not in containers.get(cls_name, set()):
                        containers.setdefault(cls_name, set()).add(attr)
                        changed = True
            if not changed:
                break

        element_types: dict[str, str] = {}
        element_containers: dict[str, str] = {}
        for cls_name in sorted(containers):
            label = min(containers[cls_name])
            element_types[cls_name] = label
            for attr in containers[cls_name]:
                element_containers[attr] = label
        return element_types, element_containers

    def _worker_entries(self) -> set:
        """Methods passed as ``target=self.x`` to a Thread anywhere."""
        out: set[str] = set()
        for func in self.methods.values():
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                is_thread = (
                    isinstance(callee, ast.Attribute)
                    and callee.attr == "Thread"
                ) or (isinstance(callee, ast.Name) and callee.id == "Thread")
                if not is_thread:
                    continue
                for keyword in node.keywords:
                    if keyword.arg != "target":
                        continue
                    path = attr_path(keyword.value)
                    if path is not None and len(path) == 2 and \
                            path[0] == "self":
                        out.add(path[1])
        return out

    # -- per-method scan ----------------------------------------------------

    def _element_roots(self, func) -> dict:
        """Local names that are elements of a tracked container.

        Annotated parameters (``feed: _Feed``), ``for x in
        self._feeds`` loops/comprehensions, ``x = self._feeds[...]``
        indexing, and ``x = self._ready.popleft()`` draws.  Values map
        to the element class's canonical label, not the container name.
        """
        roots: dict[str, str] = {}
        args = func.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            name = self._annotated_class(arg)
            if name in self.element_types:
                roots[arg.arg] = self.element_types[name]

        def label_of(expr):
            if isinstance(expr, ast.Subscript):
                expr = expr.value
            path = attr_path(expr)
            if path is not None and len(path) == 2 and path[0] == "self":
                return self.element_containers.get(path[1])
            return None

        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.comprehension)):
                label = label_of(node.iter)
                if label and isinstance(node.target, ast.Name):
                    roots[node.target.id] = label
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                label = None
                if isinstance(node.value, ast.Subscript):
                    label = label_of(node.value)
                elif isinstance(node.value, ast.Call) and \
                        isinstance(node.value.func, ast.Attribute) and \
                        node.value.func.attr in ("pop", "popleft"):
                    label = label_of(node.value.func.value)
                if label:
                    roots[node.targets[0].id] = label
        return roots

    def _self_aliases(self, func) -> dict:
        """Locals assigned ``x = self.attr`` → path prefix ``(attr,)``."""
        aliases: dict[str, tuple] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                path = attr_path(node.value)
                if path is not None and path[0] == "self" and \
                        2 <= len(path) <= 3:
                    aliases[node.targets[0].id] = tuple(path[1:])
        return aliases

    def _scan_method(self, name: str, func) -> None:
        parents = parent_map(func)
        element_roots = self._element_roots(func)
        aliases = self._self_aliases(func)
        touches: list[_Touch] = []
        calls: list[tuple] = []

        def in_lock(node) -> bool:
            probe = node
            while probe is not None:
                if isinstance(probe, ast.With):
                    for item in probe.items:
                        path = attr_path(item.context_expr)
                        if path is not None and len(path) == 2 and \
                                path[0] == "self" and \
                                path[1] in self.sync_attrs:
                            return True
                probe = parents.get(probe)
            return False

        def resolve(node):
            """Map an expression to a tracked attribute path, if any.

            ``self.a`` → ``(a,)``; ``self.a.b`` → ``(a, b)``;
            ``feed.x`` with feed an element root → ``(container[], x)``;
            ``alias.x`` with ``alias = self.a`` → ``(a, x)``.
            Subscripts on ``self._feeds`` resolve to the element path.
            """
            path = attr_path(node)
            if path is not None and path[0] == "self" and len(path) >= 2:
                return tuple(path[1:3])
            if isinstance(node, ast.Attribute):
                base = node.value
                if isinstance(base, ast.Name):
                    if base.id in element_roots:
                        return (element_roots[base.id] + "[]", node.attr)
                    if base.id in aliases:
                        return (aliases[base.id] + (node.attr,))[:2]
                elif isinstance(base, ast.Subscript):
                    container = attr_path(base.value)
                    if container is not None and len(container) == 2 and \
                            container[0] == "self":
                        label = self.element_containers.get(
                            container[1], container[1]
                        )
                        return (label + "[]", node.attr)
            elif isinstance(node, ast.Name) and node.id in aliases:
                return aliases[node.id][:2]
            return None

        def record(node, path, write) -> None:
            if path is None:
                return
            if path[0] in self.sync_attrs:
                return
            touches.append(_Touch(
                path=path, write=write, line=node.lineno,
                in_lock=in_lock(node), method=name,
            ))

        for node in ast.walk(func):
            # Calls: self.helper(...) edges, mutating container methods,
            # heapq functions.
            if isinstance(node, ast.Call):
                callee = node.func
                path = attr_path(callee)
                if path is not None and len(path) == 2 and \
                        path[0] == "self" and path[1] in self.methods:
                    calls.append((path[1], in_lock(node)))
                elif isinstance(callee, ast.Attribute):
                    receiver = resolve(callee.value)
                    if receiver is not None and \
                            callee.attr in _MUTATING_METHODS:
                        record(node, receiver, write=True)
                    elif callee.attr in _HEAP_FUNCTIONS and node.args:
                        record(node, resolve(node.args[0]), write=True)
            # Stores/deletes.
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets if not isinstance(node, ast.AugAssign)
                    else [node.target]
                )
                for target in targets:
                    probe = target
                    while isinstance(probe, (ast.Subscript, ast.Starred)):
                        probe = probe.value
                    path = resolve(probe)
                    # Rebinding a bare local is not an attribute write.
                    if isinstance(probe, ast.Name) and not isinstance(
                        target, ast.Subscript
                    ):
                        continue
                    record(target, path, write=True)
            # Plain reads.
            elif isinstance(node, ast.Attribute):
                parent = parents.get(node)
                if isinstance(parent, ast.Attribute):
                    continue  # the outer attribute resolves the path
                if isinstance(parent, (ast.Assign, ast.Delete)) and \
                        node in getattr(parent, "targets", ()):
                    continue  # handled as a store
                if isinstance(parent, ast.AugAssign) and \
                        node is parent.target:
                    continue
                if isinstance(parent, ast.Call) and parent.func is node:
                    continue  # method call, handled above
                record(node, resolve(node), write=False)

        self.touches[name] = touches
        self.calls[name] = calls

    # -- reachability and verdicts ------------------------------------------

    def _closure(self, roots) -> set:
        reached = set()
        frontier = [r for r in roots if r in self.methods]
        while frontier:
            name = frontier.pop()
            if name in reached:
                continue
            reached.add(name)
            for callee, __ in self.calls.get(name, ()):
                if callee not in reached:
                    frontier.append(callee)
        return reached

    def _lock_held_only(self) -> set:
        """Helpers whose every call site holds the lock (fixed point)."""
        public = {
            name for name in self.methods
            if not name.startswith("_") or name in ("__iter__", "__len__",
                                                    "__next__", "__enter__",
                                                    "__exit__")
        }
        held: set = set()
        while True:
            changed = False
            for name in self.methods:
                if name in held or name in public or \
                        name in self.worker_entries or name == "__init__":
                    continue
                sites = [
                    (caller, locked)
                    for caller, edges in self.calls.items()
                    if caller != "__init__"
                    for callee, locked in edges if callee == name
                ]
                if not sites:
                    continue
                if all(
                    locked or caller in held for caller, locked in sites
                ):
                    held.add(name)
                    changed = True
            if not changed:
                return held

    def findings(self) -> list:
        thread_shared = class_literal_attr(self.cls, "_thread_shared") is True
        if not self.sync_attrs:
            return []
        if not self.worker_entries and not thread_shared:
            return []
        public_roots = [
            name for name in self.methods
            if (not name.startswith("_") or name in (
                "__iter__", "__len__", "__next__", "__enter__", "__exit__"
            )) and name not in self.worker_entries
        ]
        if thread_shared:
            # Monitor discipline: any public method may run on any thread
            # (hub callbacks arrive from pool workers), so every publicly
            # reachable method counts as both sides of the race.
            worker_set = self._closure(
                set(public_roots) | self.worker_entries
            )
            public_set = worker_set - {"__init__"}
        else:
            worker_set = self._closure(self.worker_entries)
            public_set = self._closure(public_roots) - {"__init__"}
        held = self._lock_held_only()

        def written_paths(method_names) -> set:
            return {
                touch.path
                for name in method_names
                for touch in self.touches.get(name, ())
                if touch.write and name != "__init__"
            }

        shared = written_paths(worker_set) & written_paths(public_set)
        shared = {
            path for path in shared
            if path[0] not in self.lock_free
            and ".".join(path) not in self.lock_free
        }
        findings: list[Finding] = []
        for name, touches in sorted(self.touches.items()):
            if name == "__init__":
                continue
            if name not in worker_set and name not in public_set:
                continue
            for touch in touches:
                if touch.path not in shared:
                    continue
                if touch.in_lock or name in held:
                    continue
                dotted = ".".join(touch.path).replace("[]", "[i]")
                verb = "writes" if touch.write else "reads"
                findings.append(Finding(
                    RULE, str(self.module.path), touch.line,
                    f"{self.cls.name}.{name} {verb} self.{dotted} "
                    "outside the lock, but the attribute is mutated by "
                    "both the worker thread and public methods — guard "
                    "it with the lock or allowlist it in _lock_free",
                ))
        return findings


def check(modules) -> list:
    findings: list[Finding] = []
    for module in modules:
        for cls in iter_classes(module.tree):
            model = _ClassModel(module, cls)
            findings.extend(model.findings())
    return findings
