"""Rule ``single-writer``: one writing class per shared state field.

``PipelineState``'s ownership contract (see its docstring and
``src/repro/core/README.md``) is that every field is written by exactly
one stage; everything else only reads it.  ``ShardState`` is stricter
still — all three detector slices belong to the reconstruct stage's
vessel phase.  This checker verifies both by attribute-assignment
analysis across the whole tree:

- the field universes come from the ``__init__`` self-assignments of
  the ``PipelineState``/``ShardState`` class definitions found among
  the analysed modules (when absent — fixture runs — the universe is
  whatever gets written);
- writes are collected from every class whose methods see a
  ``PipelineState``/``ShardState`` (annotated parameter or
  ``x = self.state``), plus the module-level helpers those methods
  call; a write is an attribute store, ``del``, augmented assignment,
  or a non-pure method call on the field (see
  :data:`~repro.analysis.base.PURE_METHODS`);
- the classes defining the state (``PipelineState`` itself, whose
  ``purge`` is owner-side maintenance) are exempt;
- a field with two or more distinct writing classes is a finding, at
  the second writer's location.
"""

import ast

from repro.analysis.base import (
    Finding,
    attr_path,
    called_helpers,
    class_methods,
    field_accesses,
    iter_classes,
    module_functions,
    state_roots,
)

RULE = "single-writer"

#: Classes that *are* the state (owner-side maintenance is exempt).
_OWNER_CLASSES = frozenset({"PipelineState", "ShardState", "TtlTable"})


def _init_fields(cls) -> set:
    """Field names a class assigns on ``self`` in its ``__init__``."""
    fields: set[str] = set()
    for func in class_methods(cls):
        if func.name != "__init__":
            continue
        for node in ast.walk(func):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            for target in targets:
                path = attr_path(target)
                if path is not None and len(path) == 2 and \
                        path[0] == "self":
                    fields.add(path[1])
    return fields


def check(modules) -> list:
    # Pass 1: the field universes, from the state class definitions.
    state_fields: set = set()
    shard_fields: set = set()
    for module in modules:
        for cls in iter_classes(module.tree):
            if cls.name == "PipelineState":
                state_fields |= _init_fields(cls)
            elif cls.name == "ShardState":
                shard_fields |= _init_fields(cls)

    # Pass 2: every write, attributed to its class.
    # (root, field) -> {class: (path, line of first write)}
    writers: dict[tuple, dict] = {}
    for module in modules:
        helpers = module_functions(module.tree)
        for cls in iter_classes(module.tree):
            if cls.name in _OWNER_CLASSES:
                continue
            methods = class_methods(cls)
            reached = called_helpers(methods, helpers)
            functions = methods + [helpers[n] for n in sorted(reached)]
            for func in functions:
                roots = state_roots(func)
                if not roots:
                    continue
                for access in field_accesses(func, roots):
                    if not access.write:
                        continue
                    universe = (
                        state_fields if access.root == "state"
                        else shard_fields
                    )
                    if universe and access.fld not in universe:
                        # Not a known state field (a method, a typo the
                        # phase checker owns) — not a write conflict.
                        continue
                    by_class = writers.setdefault(
                        (access.root, access.fld), {}
                    )
                    by_class.setdefault(
                        cls.name, (str(module.path), access.line)
                    )

    findings: list[Finding] = []
    for (root, fld), by_class in sorted(writers.items()):
        if len(by_class) <= 1:
            continue
        names = sorted(by_class)
        owner = names[0]
        prefix = "state" if root == "state" else "shard"
        for name in names[1:]:
            path, line = by_class[name]
            findings.append(Finding(
                RULE, path, line,
                f"{prefix}.{fld} has multiple writing classes: "
                f"{name} also writes it (first writer here: {owner} at "
                f"{by_class[owner][0]}:{by_class[owner][1]}) — every "
                "shared state field must have exactly one writer",
            ))
    return findings
