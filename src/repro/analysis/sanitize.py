"""Runtime ownership sanitizer: TSan-for-Python on the shard runtime.

The static checkers prove what the *source* does; this module watches
what the *threads* do.  When ``REPRO_SANITIZE=1`` is set,
``PipelineState`` construction (see ``repro/core/stages/state.py``)
wraps every :class:`ShardState` and the shared per-vessel tables
(``current``, ``gap_heads``) in instrumenting proxies, and the
reconstruct stage runs each shard task inside a
:meth:`OwnershipSanitizer.shard_task` window.  The proxies then assert
the two-phase ownership rules on every attribute access:

- inside shard *i*'s task window, only shard *i*'s ``ShardState`` may
  be touched — task 0 runs on the barrier thread
  (:class:`~repro.core.stages.shard.ShardPool` keeps one task inline),
  so ownership is bound to the *task window*, never to thread identity;
- outside any task window (the serial barrier phase) every shard is
  fair game — that is where merge, flush and purge legitimately run;
- the shared tables are barrier-owned: touching them from inside any
  shard task window is a violation, whichever shard.

Modes (``REPRO_SANITIZE=``): any truthy value raises
:class:`OwnershipViolation` at the offending access (tests, CI);
``report`` records violations instead, so a monitored deployment can
surface them as health alarms (the session registers a
``HealthRegistry`` probe over :meth:`OwnershipSanitizer.drain`).

Everything here is import-light on purpose: ``repro.core`` imports this
module, not the other way round.  With the environment variable unset
:func:`create_sanitizer` returns ``None`` and the runtime pays nothing.
"""

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "OwnershipSanitizer",
    "OwnershipViolation",
    "ShardStateGuard",
    "TableGuard",
    "Violation",
    "create_sanitizer",
    "sanitize_mode",
]


class OwnershipViolation(AssertionError):
    """A thread touched state it does not own under the sanitizer."""


def sanitize_mode() -> str | None:
    """The requested sanitizer mode: ``None``, ``"raise"`` or ``"report"``.

    Driven by ``REPRO_SANITIZE``: unset/empty/``0``/``false``/``off``
    disable, ``report`` records without raising, anything else raises.
    """
    value = os.environ.get("REPRO_SANITIZE", "").strip().lower()
    if value in ("", "0", "false", "off", "no"):
        return None
    if value == "report":
        return "report"
    return "raise"


def create_sanitizer() -> "OwnershipSanitizer | None":
    """An :class:`OwnershipSanitizer` per the environment, or ``None``."""
    mode = sanitize_mode()
    if mode is None:
        return None
    return OwnershipSanitizer(mode=mode)


@dataclass
class Violation:
    """One recorded ownership violation."""

    kind: str          # "shard" | "table"
    detail: str
    thread: str
    #: Shard index of the *task window* the access happened in.
    actor_shard: int | None

    def describe(self) -> str:
        where = (
            f"shard-{self.actor_shard} task" if self.actor_shard is not None
            else "barrier phase"
        )
        return f"[{self.kind}] {self.detail} (from {where} "\
               f"on thread '{self.thread}')"


class OwnershipSanitizer:
    """Tracks task windows and checks every guarded access against them."""

    def __init__(self, mode: str = "raise") -> None:
        if mode not in ("raise", "report"):
            raise ValueError(f"mode must be 'raise' or 'report', got {mode!r}")
        self.mode = mode
        self.n_checks = 0
        self._tls = threading.local()
        self._lock = threading.Lock()
        self._violations: list[Violation] = []
        self._drained = 0

    # -- task windows --------------------------------------------------------

    def current_shard(self) -> int | None:
        """The shard task window this thread is inside, if any."""
        return getattr(self._tls, "shard", None)

    @contextmanager
    def shard_task(self, index: int):
        """Mark this thread as running shard ``index``'s per-vessel task."""
        previous = getattr(self._tls, "shard", None)
        self._tls.shard = index
        try:
            yield
        finally:
            self._tls.shard = previous

    def wrap_task(self, index: int, task):
        """A zero-arg callable running ``task`` inside a task window."""
        def run():
            with self.shard_task(index):
                return task()
        return run

    # -- guards --------------------------------------------------------------

    def guard_shard(self, shard) -> "ShardStateGuard":
        return ShardStateGuard(shard, self)

    def guard_table(self, table, name: str) -> "TableGuard":
        return TableGuard(table, self, name)

    def check_shard_access(self, index: int, attr: str) -> None:
        self.n_checks += 1
        actor = self.current_shard()
        if actor is None or actor == index:
            # Barrier phase (serial, sees everything) or the owner.
            return
        self._record(Violation(
            kind="shard",
            detail=(
                f"shard-{actor} task touched ShardState[{index}].{attr} "
                f"(owned by shard {index})"
            ),
            thread=threading.current_thread().name,
            actor_shard=actor,
        ))

    def check_table_access(self, name: str, attr: str) -> None:
        self.n_checks += 1
        actor = self.current_shard()
        if actor is None:
            return  # barrier phase owns the shared tables
        self._record(Violation(
            kind="table",
            detail=(
                f"shard-{actor} task touched shared table "
                f"'{name}' (.{attr}) — shared tables are barrier-owned"
            ),
            thread=threading.current_thread().name,
            actor_shard=actor,
        ))

    # -- accounting ----------------------------------------------------------

    def _record(self, violation: Violation) -> None:
        with self._lock:
            self._violations.append(violation)
        if self.mode == "raise":
            raise OwnershipViolation(violation.describe())

    @property
    def violations(self) -> list:
        """Every violation recorded so far (snapshot)."""
        with self._lock:
            return list(self._violations)

    def drain(self) -> list:
        """Violations recorded since the last drain (for health probes)."""
        with self._lock:
            fresh = self._violations[self._drained:]
            self._drained = len(self._violations)
            return fresh

    def clear(self) -> None:
        with self._lock:
            self._violations.clear()
            self._drained = 0


class ShardStateGuard:
    """Attribute-forwarding proxy asserting shard-task ownership.

    Wraps one ``ShardState``; every attribute get/set first checks the
    accessing thread's task window against the shard's index.  The
    wrapped object's components (reconstructor, detectors) are returned
    as-is — the guard polices the *field fetch*, keeping the hot path
    one extra call, not a proxy per touch.
    """

    __slots__ = ("_target", "_sanitizer")

    def __init__(self, target, sanitizer: OwnershipSanitizer) -> None:
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_sanitizer", sanitizer)

    @property
    def __wrapped__(self):
        return object.__getattribute__(self, "_target")

    @property
    def __class__(self):
        # Transparent to isinstance(): the guard *is* its ShardState
        # as far as type checks go.
        return type(object.__getattribute__(self, "_target"))

    def __getattr__(self, name: str):
        target = object.__getattribute__(self, "_target")
        sanitizer = object.__getattribute__(self, "_sanitizer")
        sanitizer.check_shard_access(target.index, name)
        return getattr(target, name)

    def __setattr__(self, name: str, value) -> None:
        target = object.__getattribute__(self, "_target")
        sanitizer = object.__getattribute__(self, "_sanitizer")
        sanitizer.check_shard_access(target.index, name)
        setattr(target, name, value)

    def __repr__(self) -> str:
        target = object.__getattribute__(self, "_target")
        return f"ShardStateGuard({target!r})"


class TableGuard:
    """Proxy over a shared table (``TtlTable``): barrier-thread-owned.

    Any access from inside a shard task window is a violation —
    vessel-phase code must stay on its ``ShardState``.  Container
    dunders are forwarded explicitly (``__getattr__`` never sees them).
    """

    __slots__ = ("_target", "_sanitizer", "_name")

    def __init__(self, target, sanitizer: OwnershipSanitizer,
                 name: str) -> None:
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_sanitizer", sanitizer)
        object.__setattr__(self, "_name", name)

    @property
    def __wrapped__(self):
        return object.__getattribute__(self, "_target")

    @property
    def __class__(self):
        return type(object.__getattribute__(self, "_target"))

    def _check(self, attr: str):
        sanitizer = object.__getattribute__(self, "_sanitizer")
        sanitizer.check_table_access(
            object.__getattribute__(self, "_name"), attr
        )
        return object.__getattribute__(self, "_target")

    def __getattr__(self, name: str):
        return getattr(self._check(name), name)

    def __setattr__(self, name: str, value) -> None:
        setattr(self._check(name), name, value)

    def __len__(self) -> int:
        return len(self._check("__len__"))

    def __contains__(self, key) -> bool:
        return key in self._check("__contains__")

    def __iter__(self):
        return iter(self._check("__iter__"))

    def __repr__(self) -> str:
        target = object.__getattribute__(self, "_target")
        name = object.__getattribute__(self, "_name")
        return f"TableGuard({name}={target!r})"
