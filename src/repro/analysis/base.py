"""Shared infrastructure for the invariant checkers.

The checkers (:mod:`repro.analysis.phase`, ``writers``, ``locks``,
``causality``) are pure AST passes: they parse every Python file handed
to :func:`repro.analysis.analyze_paths`, never import or execute it, and
emit :class:`Finding` objects keyed by a *rule* name.

Suppressions are inline, counted, and must carry a reason::

    state.current.put(k, t, v)  # repro: allow(phase-ownership) — barrier publishes for the shard

A suppression silences findings of the named rule(s) on its own line.
One without a reason, or one that silences nothing, is itself reported
(rules ``suppression-reason`` / ``suppression-unused``) — the allowlist
stays as honest as the code it excuses.

This module also hosts the field-access analysis shared by the phase and
single-writer checkers: given a function whose parameter (or local
alias) is a ``PipelineState``/``ShardState``-like object, it reports
which fields the function reads and writes.  A *write* is an attribute
assignment, augmented assignment, ``del``, or a method call that is not
in :data:`PURE_METHODS` — calling an unknown method on a stateful
component is assumed to mutate it, which errs toward flagging.
"""

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "AnalysisError",
    "FieldAccess",
    "Finding",
    "Module",
    "PURE_METHODS",
    "Suppression",
    "attr_path",
    "field_accesses",
    "iter_python_files",
    "literal_str_tuple",
    "load_module",
    "parent_map",
]


class AnalysisError(Exception):
    """A file could not be analysed (syntax error, unreadable)."""


#: Methods assumed side-effect free when called on a stateful component.
#: Anything absent from this set counts as a mutation of the component.
PURE_METHODS = frozenset({
    # generic containers / accessors
    "get", "items", "keys", "values", "copy", "count", "index",
    # TtlTable / detector read-side
    "timestamp", "buffered", "next_due", "n_pending_instants",
    "n_open_runs", "n_open_segments", "open_segment_length",
    # stateless helpers
    "predict", "predict_many", "snapshot", "describe", "stats", "contains",
    "slice_time", "index_at_or_before", "headline", "cell_counts",
    "size_report", "liveness", "queue_depths", "stats_by_source",
    "events_of", "isdisjoint", "report", "last",
})


_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\(\s*([A-Za-z0-9_\-, ]+?)\s*\)"
    r"(?:\s*(?:[—–:-]|--)\s*(?P<reason>\S.*?))?\s*$"
)


@dataclass
class Suppression:
    """One inline ``# repro: allow(rule, ...) — reason`` comment."""

    rules: frozenset
    reason: str
    line: int
    used: bool = False

    def covers(self, rule: str) -> bool:
        return rule in self.rules or "all" in self.rules


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    suppressed: bool = False
    suppression_reason: str = ""

    def render(self) -> str:
        tag = " (suppressed: {})".format(self.suppression_reason) \
            if self.suppressed else ""
        return f"{self.path}:{self.line}: {self.rule}: {self.message}{tag}"


@dataclass
class Module:
    """One parsed source file plus its inline suppressions."""

    path: Path
    source: str
    tree: ast.Module
    suppressions: dict = field(default_factory=dict)  # line -> Suppression

    @property
    def name(self) -> str:
        return self.path.stem

    def suppression_for(self, line: int, rule: str):
        sup = self.suppressions.get(line)
        if sup is not None and sup.covers(rule):
            return sup
        return None


def load_module(path: Path) -> Module:
    """Parse one file and collect its inline suppression comments."""
    try:
        source = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"{path}: unreadable ({exc})") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(f"{path}: syntax error: {exc}") from exc
    suppressions: dict[int, Suppression] = {}
    # Real comment tokens only — a suppression quoted in a docstring
    # (this package documents its own syntax) must not register.
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenizeError:  # pragma: no cover - parse already passed
        comments = []
    for i, comment in comments:
        match = _SUPPRESS_RE.search(comment)
        if match is None:
            continue
        rules = frozenset(
            rule.strip() for rule in match.group(1).split(",") if rule.strip()
        )
        suppressions[i] = Suppression(
            rules=rules, reason=(match.group("reason") or "").strip(), line=i
        )
    return Module(
        path=Path(path), source=source, tree=tree, suppressions=suppressions
    )


def iter_python_files(paths) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            out.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            out.append(p)
        else:
            raise AnalysisError(f"{p}: not a Python file or directory")
    return out


# -- AST helpers -------------------------------------------------------------


def attr_path(node) -> tuple | None:
    """``self._stats.queue_depth`` → ``("self", "_stats", "queue_depth")``.

    Returns ``None`` for anything other than a plain Name/Attribute
    chain (calls, subscripts, literals break the chain).
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def parent_map(root) -> dict:
    """Child node → parent node for every node under ``root``."""
    parents: dict = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def literal_str_tuple(node) -> tuple | None:
    """Evaluate a literal tuple/list of strings (manifests), else None."""
    if isinstance(node, (ast.Tuple, ast.List)):
        out = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                out.append(element.value)
            else:
                return None
        return tuple(out)
    return None


def annotation_names(node) -> set:
    """Every type name mentioned in an annotation expression.

    Handles plain names, dotted names, unions (``ShardState | None``)
    and string annotations — good enough to ask "is this parameter a
    PipelineState/ShardState?" without evaluating anything.
    """
    out: set[str] = set()
    if node is None:
        return out
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            for part in re.split(r"[\[\]|, ]+", sub.value):
                if part:
                    out.add(part.split(".")[-1])
    return out


def state_roots(func, annotations: dict | None = None) -> dict:
    """Parameter/local names bound to analysed state objects.

    Returns ``{name: "state" | "shard"}`` for parameters annotated
    ``PipelineState``/``ShardState`` (configurable via ``annotations``)
    and for locals assigned ``x = self.state``.
    """
    annotations = annotations or {
        "PipelineState": "state", "ShardState": "shard"
    }
    roots: dict[str, str] = {}
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        names = annotation_names(arg.annotation)
        for type_name, root in annotations.items():
            if type_name in names:
                roots[arg.arg] = root
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            if attr_path(node.value) == ("self", "state"):
                roots[node.targets[0].id] = "state"
    return roots


def iter_classes(tree):
    """Top-level class definitions of a parsed module."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            yield node


def class_methods(cls) -> list:
    """Function definitions directly inside a class body."""
    return [
        node for node in cls.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def class_literal_attr(cls, name: str):
    """The literal value of a class-level attribute, or None.

    Supports string constants (``phase = "vessel"``) and string tuples
    (``state_writes = ("decoder",)``); anything computed returns None.
    """
    for node in cls.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                if isinstance(node.value, ast.Constant):
                    return node.value.value
                return literal_str_tuple(node.value)
    return None


def module_functions(tree) -> dict:
    """Top-level function definitions of a module, by name."""
    return {
        node.name: node for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def called_helpers(funcs, helpers: dict) -> set:
    """Names of module-level helpers reachable from ``funcs``.

    Follows plain-name references (calls and closures alike) through
    the helper bodies to a fixed point — a lambda wrapping
    ``_vessel_phase`` still attributes the helper to the caller.
    """
    reached: set[str] = set()
    frontier = list(funcs)
    while frontier:
        func = frontier.pop()
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and node.id in helpers and \
                    node.id not in reached:
                reached.add(node.id)
                frontier.append(helpers[node.id])
    return reached


def _assign_targets(node):
    if isinstance(node, ast.Assign):
        return node.targets
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    if isinstance(node, ast.Delete):
        return node.targets
    return []


@dataclass
class FieldAccess:
    """One read or write of a field on an analysed state object."""

    root: str     # which analysed object ("state", "shard", ...)
    fld: str      # field name on that object
    write: bool
    line: int
    #: True when the access drills past the field into a sub-attribute
    #: or element (``state.shards[0].reconstructor``).
    deep: bool = False


def field_accesses(func, roots: dict) -> list[FieldAccess]:
    """Every field read/write on the given root objects inside ``func``.

    ``roots`` maps parameter/variable names to a root label (usually
    the class the object is an instance of, e.g. ``{"state": "state"}``).
    Local aliases created by plain assignment (``decoder =
    state.decoder``) are followed; an aliased component's method calls
    and attribute stores count against the original field.
    """
    parents = parent_map(func)
    # name -> (root, field) for simple "x = state.field" aliases.
    aliases: dict[str, tuple] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            path = attr_path(node.value)
            if path is not None and len(path) == 2 and path[0] in roots:
                aliases[node.targets[0].id] = (roots[path[0]], path[1])
            elif node.targets[0].id in aliases:
                del aliases[node.targets[0].id]

    accesses: list[FieldAccess] = []

    def classify(node, root: str, fld: str, deep: bool) -> None:
        """Decide read vs write from the node's syntactic context."""
        parent = parents.get(node)
        write = False
        # Direct store/del: state.field = ..., del state.field,
        # state.field += ...
        probe, probe_parent = node, parent
        while isinstance(probe_parent, (ast.Subscript, ast.Starred)):
            # del state.queue[:n] / state.queue[i] = x target chains
            probe, probe_parent = probe_parent, parents.get(probe_parent)
            deep = True
        for stmt in (probe_parent,) if probe_parent is not None else ():
            if probe in _assign_targets(stmt):
                write = True
        # Method call: state.field.method(...) — mutation unless pure.
        if isinstance(parent, ast.Attribute):
            grand = parents.get(parent)
            if isinstance(grand, ast.Call) and grand.func is parent:
                if parent.attr not in PURE_METHODS:
                    write = True
            else:
                deep = True
            # Drilling deeper than one method/attr level is "deep".
        if isinstance(parent, ast.Subscript) and parent.value is node:
            # state.shards[i]... — handled above for stores; loads of an
            # element are deep reads (may be followed by classify of the
            # subscript's own parent, conservatively merged here).
            grand = parents.get(parent)
            if isinstance(grand, ast.Attribute):
                deep = True
                great = parents.get(grand)
                if isinstance(great, ast.Call) and great.func is grand and \
                        grand.attr not in PURE_METHODS:
                    write = True
        accesses.append(FieldAccess(
            root=root, fld=fld, write=write,
            line=getattr(node, "lineno", func.lineno), deep=deep,
        ))

    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name) and base.id in roots:
                classify(node, roots[base.id], node.attr, deep=False)
            elif isinstance(base, ast.Name) and base.id in aliases:
                root, fld = aliases[base.id]
                # alias.method(...) / alias.sub = ... acts on the field.
                parent = parents.get(node)
                write = False
                if isinstance(parent, ast.Call) and parent.func is node:
                    write = node.attr not in PURE_METHODS
                elif node in _assign_targets(parent) if parent else False:
                    write = True
                accesses.append(FieldAccess(
                    root=root, fld=fld, write=write, line=node.lineno,
                    deep=True,
                ))
        elif isinstance(node, ast.Name) and node.id in aliases:
            root, fld = aliases[node.id]
            parent = parents.get(node)
            write = False
            deep = False
            if isinstance(parent, ast.Subscript) and parent.value is node:
                deep = True
                grand = parents.get(parent)
                if parent in _assign_targets(grand) if grand else False:
                    write = True
                if isinstance(grand, ast.Delete):
                    write = True
            if isinstance(parent, (ast.Assign, ast.AugAssign, ast.Delete)) \
                    and node in _assign_targets(parent):
                # Rebinding the alias name itself is not a field write.
                continue
            accesses.append(FieldAccess(
                root=root, fld=fld, write=write, line=node.lineno, deep=deep,
            ))
    return accesses
