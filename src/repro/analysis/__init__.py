"""Static invariant checkers for the sharded pipeline runtime.

``repro.analysis`` enforces, by AST analysis, the conventions the
concurrency design rests on (see ``src/repro/core/README.md`` for the
invariant table and ``src/repro/analysis/README.md`` for each rule):

- ``phase-ownership`` — stage phase discipline and per-stage
  ``PipelineState`` ownership manifests (:mod:`repro.analysis.phase`);
- ``single-writer`` — one writing class per shared state field
  (:mod:`repro.analysis.writers`);
- ``lock-discipline`` — attributes shared between worker threads and
  public methods stay under the lock (:mod:`repro.analysis.locks`);
- ``causal-lookahead`` / ``config-mutation`` — no peeking past the
  watermark, no mutating validated configs
  (:mod:`repro.analysis.causality`).

Use :func:`analyze_paths` programmatically or ``repro analyze`` from
the command line; the runtime companion — the ownership sanitizer
enabled by ``REPRO_SANITIZE=1`` — lives in
:mod:`repro.analysis.sanitize`.
"""

from dataclasses import dataclass, field

from repro.analysis import causality, locks, phase, writers
from repro.analysis.base import (
    AnalysisError,
    Finding,
    Module,
    Suppression,
    iter_python_files,
    load_module,
)
from repro.analysis.sanitize import (
    OwnershipSanitizer,
    OwnershipViolation,
    create_sanitizer,
    sanitize_mode,
)

__all__ = [
    "ALL_RULES",
    "AnalysisError",
    "AnalysisReport",
    "Finding",
    "Module",
    "OwnershipSanitizer",
    "OwnershipViolation",
    "Suppression",
    "analyze_paths",
    "create_sanitizer",
    "sanitize_mode",
]

#: rule name -> checker module.  Meta rules (suppression accounting) are
#: produced by :func:`analyze_paths` itself.
_CHECKERS = {
    phase.RULE: phase,
    writers.RULE: writers,
    locks.RULE: locks,
    causality.RULES[0]: causality,
    causality.RULES[1]: causality,
}

ALL_RULES = tuple(sorted(_CHECKERS)) + (
    "suppression-reason", "suppression-unused",
)


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: list = field(default_factory=list)
    n_files: int = 0
    #: Files that failed to parse, as (path, message).
    broken: list = field(default_factory=list)

    @property
    def errors(self) -> list:
        """Findings that fail a strict run (unsuppressed)."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> list:
        return [f for f in self.findings if f.suppressed]

    @property
    def ok(self) -> bool:
        return not self.errors and not self.broken

    def render(self, show_suppressed: bool = True) -> str:
        lines: list[str] = []
        for path, message in self.broken:
            lines.append(f"{path}: analysis-error: {message}")
        for finding in self.findings:
            if finding.suppressed and not show_suppressed:
                continue
            lines.append(finding.render())
        lines.append(
            f"{self.n_files} file(s): {len(self.errors)} finding(s), "
            f"{len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)


def _rule_order(finding) -> tuple:
    return (finding.path, finding.line, finding.rule, finding.message)


def analyze_paths(paths, rules=None) -> AnalysisReport:
    """Run the invariant checkers over files/directories.

    ``rules`` optionally restricts to a subset of :data:`ALL_RULES`
    (suppression accounting always runs for the selected rules).
    Suppressions (``# repro: allow(<rule>) — <reason>``) mark matching
    same-line findings as suppressed; a suppression that silences
    nothing, or silences without a reason, is itself a finding.
    """
    selected = set(rules or _CHECKERS)
    unknown = selected - set(ALL_RULES)
    if unknown:
        raise AnalysisError(
            f"unknown rule(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(ALL_RULES)})"
        )
    report = AnalysisReport()
    modules: list[Module] = []
    for file_path in iter_python_files(paths):
        try:
            modules.append(load_module(file_path))
        except AnalysisError as exc:
            report.broken.append((str(file_path), str(exc)))
    report.n_files = len(modules)

    checkers = []
    for checker in dict.fromkeys(_CHECKERS.values()):
        checker_rules = (
            {checker.RULE} if hasattr(checker, "RULE")
            else set(checker.RULES)
        )
        if checker_rules & selected:
            checkers.append(checker)

    raw: list[Finding] = []
    for checker in checkers:
        for finding in checker.check(modules):
            if finding.rule in selected:
                raw.append(finding)

    by_path = {str(m.path): m for m in modules}
    for finding in raw:
        module = by_path.get(finding.path)
        if module is None:
            continue
        suppression = module.suppression_for(finding.line, finding.rule)
        if suppression is not None:
            suppression.used = True
            finding.suppressed = True
            finding.suppression_reason = (
                suppression.reason or "<no reason given>"
            )
    report.findings = sorted(raw, key=_rule_order)

    # Suppression accounting: every allow() must carry a reason and
    # actually silence something, or it is a finding itself.
    for module in modules:
        for suppression in module.suppressions.values():
            covered = {r for r in suppression.rules if r in selected}
            if not covered and "all" not in suppression.rules:
                continue
            if suppression.used and not suppression.reason:
                report.findings.append(Finding(
                    "suppression-reason", str(module.path),
                    suppression.line,
                    "suppression without a reason — write "
                    "'# repro: allow(<rule>) — <why this is safe>'",
                ))
            elif not suppression.used and selected == set(_CHECKERS):
                # Only meaningful on a full run: a partial-rule run
                # cannot tell an unused suppression from an unselected
                # one.
                report.findings.append(Finding(
                    "suppression-unused", str(module.path),
                    suppression.line,
                    "suppression silences nothing — remove it (rules: "
                    f"{', '.join(sorted(suppression.rules))})",
                ))
    report.findings.sort(key=_rule_order)
    return report
