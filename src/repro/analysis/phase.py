"""Rule ``phase-ownership``: stage phase discipline and state manifests.

The two-phase sharded runtime (see ``repro/core/stages/shard.py``) rests
on every :class:`~repro.core.stages.base.Stage` subclass respecting its
declared ``phase``:

- every stage's ``phase`` must be one of ``"vessel"``, ``"barrier"`` or
  ``"cross"``;
- a **vessel**-phase stage must declare an ownership manifest
  (``state_reads``/``state_writes`` class attributes) and may only touch
  the ``PipelineState`` fields listed there — reads against
  ``state_reads | state_writes``, writes against ``state_writes`` only;
- a **cross**/**barrier** stage must never reach into a ``ShardState``:
  not through an annotated parameter, not by indexing or iterating
  ``state.shards``, not via a module-level helper it calls;
- any stage that declares a manifest (whatever its phase) is held to it
  — the manifest is the contract the single-writer checker and the
  core README's ownership table are built from.

Accesses are collected from the stage's methods plus every module-level
helper the stage calls (``_vessel_phase`` counts against
``ReconstructStage``).
"""

import ast

from repro.analysis.base import (
    Finding,
    called_helpers,
    class_literal_attr,
    class_methods,
    field_accesses,
    iter_classes,
    module_functions,
    state_roots,
)

RULE = "phase-ownership"

_PHASES = ("vessel", "barrier", "cross")


def _is_stage(cls) -> bool:
    for base in cls.bases:
        if isinstance(base, ast.Name) and base.id == "Stage":
            return True
        if isinstance(base, ast.Attribute) and base.attr == "Stage":
            return True
    return False


def _shard_locals(func) -> set:
    """Local names holding a ShardState pulled out of ``state.shards``.

    Covers ``x = state.shards[i]``, ``for x in state.shards`` and
    comprehension bindings over ``state.shards`` — enough for a checker
    that treats any such binding in a cross stage as a violation.
    """
    names: set[str] = set()

    def from_shards(expr) -> bool:
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        if isinstance(expr, ast.Attribute) and expr.attr == "shards":
            return True
        return False

    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            if from_shards(node.value):
                names.add(node.targets[0].id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            if isinstance(target, ast.Name) and from_shards(node.iter):
                names.add(target.id)
    return names


def _check_stage(module, cls, helpers) -> list:
    findings: list[Finding] = []
    phase = class_literal_attr(cls, "phase") or "cross"
    if phase not in _PHASES:
        findings.append(Finding(
            RULE, str(module.path), cls.lineno,
            f"{cls.name}: unknown phase {phase!r} "
            f"(must be one of {_PHASES})",
        ))
        return findings

    reads = class_literal_attr(cls, "state_reads")
    writes = class_literal_attr(cls, "state_writes")
    if phase == "vessel" and reads is None and writes is None:
        findings.append(Finding(
            RULE, str(module.path), cls.lineno,
            f"{cls.name}: vessel-phase stage declares no ownership "
            "manifest (state_reads/state_writes)",
        ))
    has_manifest = reads is not None or writes is not None
    reads = set(reads or ())
    writes = set(writes or ())

    methods = class_methods(cls)
    reached = called_helpers(methods, helpers)
    functions = methods + [helpers[name] for name in sorted(reached)]

    for func in functions:
        roots = state_roots(func)
        accesses = field_accesses(func, roots)
        for access in accesses:
            if access.root == "state" and has_manifest:
                allowed = writes if access.write else reads | writes
                if access.fld not in allowed:
                    verb = "writes" if access.write else "reads"
                    findings.append(Finding(
                        RULE, str(module.path), access.line,
                        f"{cls.name} ({phase} phase) {verb} "
                        f"state.{access.fld}, not in its "
                        f"{'state_writes' if access.write else 'ownership'}"
                        " manifest",
                    ))
            if access.root == "shard" and phase in ("cross", "barrier"):
                findings.append(Finding(
                    RULE, str(module.path), access.line,
                    f"{cls.name} ({phase} phase) touches ShardState "
                    f"field .{access.fld} — shard state is exclusively "
                    "vessel-phase",
                ))
        if phase in ("cross", "barrier"):
            findings.extend(_cross_shard_touches(module, cls, phase, func))
    return findings


def _cross_shard_touches(module, cls, phase, func) -> list:
    """Shard reach-ins a cross/barrier stage makes without annotations."""
    findings: list[Finding] = []
    shard_names = _shard_locals(func)
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            if node.attr == "shards":
                findings.append(Finding(
                    RULE, str(module.path), node.lineno,
                    f"{cls.name} ({phase} phase) reads state.shards — "
                    "shard state is exclusively vessel-phase",
                ))
            elif isinstance(node.value, ast.Name) and \
                    node.value.id in shard_names:
                findings.append(Finding(
                    RULE, str(module.path), node.lineno,
                    f"{cls.name} ({phase} phase) touches ShardState "
                    f"field .{node.attr} via local "
                    f"'{node.value.id}' — shard state is exclusively "
                    "vessel-phase",
                ))
    return findings


def check(modules) -> list:
    findings: list[Finding] = []
    for module in modules:
        helpers = module_functions(module.tree)
        for cls in iter_classes(module.tree):
            if not _is_stage(cls):
                continue
            findings.extend(_check_stage(module, cls, helpers))
    return findings
