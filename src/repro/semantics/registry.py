"""Synthetic vessel registries with controlled corruption.

Stand-ins for the MarineTraffic and Lloyd's registries of §4's conflict
example.  Both derive from the simulator's ground-truth fleet; each is
independently corrupted (stale flags, slightly different lengths, name
typos, missing fields) at configurable rates, so the linkage (E7) and
conflict-resolution (E5) experiments have exact ground truth.
"""

import random
from dataclasses import dataclass, asdict

from repro.simulation.vessel import VesselSpec


@dataclass(frozen=True)
class RegistryRecord:
    """One registry row.  ``id`` is registry-local (registries do not share
    keys — that is the whole linkage problem)."""

    id: str
    name: str
    callsign: str
    imo: int
    flag: str
    length_m: float
    ship_type: str
    #: Epoch of last update, drives most-recent conflict resolution.
    updated_at: float = 0.0
    #: Ground truth for scoring only.
    truth_mmsi: int = 0

    def as_linkage_dict(self) -> dict:
        """The attribute dict the linkage engine consumes."""
        return {
            "id": self.id,
            "name": self.name,
            "callsign": self.callsign,
            "imo": self.imo or None,
            "length_m": self.length_m or None,
            "flag": self.flag or None,
        }


_TYPO_NEIGHBOURS = {
    "A": "QS", "B": "VN", "C": "XV", "D": "SF", "E": "WR", "F": "DG",
    "G": "FH", "H": "GJ", "I": "UO", "J": "HK", "K": "JL", "L": "K",
    "M": "N", "N": "BM", "O": "IP", "P": "O", "Q": "WA", "R": "ET",
    "S": "AD", "T": "RY", "U": "YI", "V": "CB", "W": "QE", "X": "ZC",
    "Y": "TU", "Z": "X",
}


def _typo(name: str, rng: random.Random) -> str:
    """One keyboard-neighbour substitution, as data-entry errors make."""
    letters = [i for i, c in enumerate(name) if c.isalpha()]
    if not letters:
        return name
    index = rng.choice(letters)
    char = name[index].upper()
    replacement = rng.choice(_TYPO_NEIGHBOURS.get(char, "X"))
    return name[:index] + replacement + name[index + 1 :]


def build_registry(
    specs: list[VesselSpec], registry_name: str, updated_at: float = 0.0
) -> list[RegistryRecord]:
    """A clean registry straight from ground truth."""
    return [
        RegistryRecord(
            id=f"{registry_name}-{i:05d}",
            name=spec.name,
            callsign=spec.callsign,
            imo=spec.imo,
            flag=spec.flag,
            length_m=float(spec.length_m),
            ship_type=spec.ship_type.name,
            updated_at=updated_at,
            truth_mmsi=spec.mmsi,
        )
        for i, spec in enumerate(specs)
    ]


def corrupt_registry(
    records: list[RegistryRecord],
    seed: int,
    typo_rate: float = 0.05,
    stale_flag_rate: float = 0.05,
    length_jitter_rate: float = 0.30,
    length_jitter_m: float = 4.0,
    missing_imo_rate: float = 0.05,
) -> list[RegistryRecord]:
    """Independently corrupt a registry copy.

    Default rates follow the paper's anchors: ~5% hard errors ([44]),
    plus benign length differences (measurement convention) on a third of
    records — §4's "the length may differ slightly".
    """
    rng = random.Random(seed)
    flags = sorted({r.flag for r in records} | {"PA", "LR", "MT"})
    out: list[RegistryRecord] = []
    for record in records:
        fields = asdict(record)
        if rng.random() < typo_rate:
            fields["name"] = _typo(record.name, rng)
        if rng.random() < stale_flag_rate:
            fields["flag"] = rng.choice([f for f in flags if f != record.flag])
        if rng.random() < length_jitter_rate:
            fields["length_m"] = max(
                5.0, record.length_m + rng.uniform(-length_jitter_m, length_jitter_m)
            )
        if rng.random() < missing_imo_rate:
            fields["imo"] = 0
        out.append(RegistryRecord(**fields))
    return out


def registry_from_specs(
    specs: list[VesselSpec],
    registry_name: str,
    seed: int,
    updated_at: float = 0.0,
    **corruption_rates,
) -> list[RegistryRecord]:
    """Build-and-corrupt in one call."""
    return corrupt_registry(
        build_registry(specs, registry_name, updated_at),
        seed=seed,
        **corruption_rates,
    )
