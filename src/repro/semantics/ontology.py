"""A small maritime taxonomy with subsumption reasoning.

Not a full OWL stack — §2.5 itself notes "existing semantic approaches and
technologies are not adequate" and that semantics is best addressed at the
application level.  What the pipeline actually needs is: a class
hierarchy over vessels and activities, subsumption queries ("is a trawler
a fishing vessel?"), and a stable vocabulary of predicate names shared by
the annotator and the queries.
"""

from repro.ais.types import ShipType


class Taxonomy:
    """An is-a hierarchy with subsumption queries."""

    def __init__(self) -> None:
        self._parent: dict[str, str] = {}

    def add(self, child: str, parent: str) -> None:
        if child == parent:
            raise ValueError("a class cannot subsume itself")
        # Reject cycles: walking up from parent must not reach child.
        cursor = parent
        while cursor is not None:
            if cursor == child:
                raise ValueError(f"cycle: {child} -> {parent}")
            cursor = self._parent.get(cursor)
        self._parent[child] = parent

    def ancestors(self, cls: str) -> list[str]:
        out = []
        cursor = self._parent.get(cls)
        while cursor is not None:
            out.append(cursor)
            cursor = self._parent.get(cursor)
        return out

    def is_a(self, cls: str, maybe_ancestor: str) -> bool:
        """Subsumption: cls == ancestor or ancestor ∈ ancestors(cls)."""
        return cls == maybe_ancestor or maybe_ancestor in self.ancestors(cls)

    def descendants(self, cls: str) -> set[str]:
        return {
            child for child in self._parent
            if self.is_a(child, cls) and child != cls
        }

    def classes(self) -> set[str]:
        return set(self._parent) | set(self._parent.values())


def _build_maritime_taxonomy() -> Taxonomy:
    t = Taxonomy()
    # Vessel classes.
    for child, parent in [
        ("Vessel", "MaritimeObject"),
        ("MerchantVessel", "Vessel"),
        ("CargoVessel", "MerchantVessel"),
        ("ContainerShip", "CargoVessel"),
        ("BulkCarrier", "CargoVessel"),
        ("Tanker", "MerchantVessel"),
        ("PassengerVessel", "MerchantVessel"),
        ("Ferry", "PassengerVessel"),
        ("FishingVessel", "Vessel"),
        ("Trawler", "FishingVessel"),
        ("ServiceVessel", "Vessel"),
        ("Tug", "ServiceVessel"),
        ("PilotVessel", "ServiceVessel"),
        ("PleasureCraft", "Vessel"),
    ]:
        t.add(child, parent)
    # Activity classes (§3.1's event vocabulary).
    for child, parent in [
        ("Activity", "MaritimeObject"),
        ("Voyage", "Activity"),
        ("PortCall", "Activity"),
        ("Fishing", "Activity"),
        ("Anchoring", "Activity"),
        ("Loitering", "SuspiciousActivity"),
        ("SuspiciousActivity", "Activity"),
        ("Rendezvous", "SuspiciousActivity"),
        ("GoingDark", "SuspiciousActivity"),
        ("Spoofing", "SuspiciousActivity"),
    ]:
        t.add(child, parent)
    return t


#: The library's shared taxonomy instance.
MARITIME_TAXONOMY = _build_maritime_taxonomy()

#: Mapping from AIS ship types to taxonomy classes.
SHIP_TYPE_CLASS: dict[ShipType, str] = {
    ShipType.CARGO: "CargoVessel",
    ShipType.TANKER: "Tanker",
    ShipType.PASSENGER: "PassengerVessel",
    ShipType.FISHING: "FishingVessel",
    ShipType.TUG: "Tug",
    ShipType.PILOT_VESSEL: "PilotVessel",
    ShipType.PLEASURE_CRAFT: "PleasureCraft",
}


class VOCAB:
    """Predicate vocabulary for the triple store (SEM-flavoured [41])."""

    TYPE = "rdf:type"
    NAME = "vessel:name"
    FLAG = "vessel:flag"
    CALLSIGN = "vessel:callsign"
    IMO = "vessel:imo"
    LENGTH = "vessel:length_m"
    HAS_TRACK = "vessel:hasTrack"
    EVENT_TYPE = "sem:eventType"
    ACTOR = "sem:hasActor"
    PLACE_LAT = "sem:placeLat"
    PLACE_LON = "sem:placeLon"
    TIME_BEGIN = "sem:hasBeginTimeStamp"
    TIME_END = "sem:hasEndTimeStamp"
    NEAR_PORT = "geo:nearPort"
    IN_WEATHER = "met:condition"
    CONFIDENCE = "repro:confidence"
