"""Semantic trajectory annotation into the triple store.

The "automatic, real-time semantic annotation and linking of maritime
data towards generating coherent views" challenge of §2.6: reconstructed
trajectories, their stops/moves, detected events and weather context are
written as SEM-style triples [41], so the same store answers questions
like "fishing vessels that loitered near a protected area in bad weather".
"""

from repro.events.base import Event
from repro.semantics.ontology import SHIP_TYPE_CLASS, VOCAB
from repro.simulation.vessel import VesselSpec
from repro.simulation.weather import WeatherProvider
from repro.simulation.world import Port
from repro.storage.triples import TripleStore
from repro.trajectory.points import Trajectory
from repro.trajectory.stops import detect_stops, port_calls


class SemanticAnnotator:
    """Writes vessels, trajectories, stops and events into a TripleStore."""

    def __init__(
        self,
        store: TripleStore,
        ports: list[Port],
        weather: WeatherProvider | None = None,
    ) -> None:
        self.store = store
        self.ports = ports
        self.weather = weather
        self._event_counter = 0

    # -- identities ----------------------------------------------------------

    def annotate_vessel(self, spec: VesselSpec) -> str:
        """Insert a vessel's identity; returns its node id."""
        node = f"vessel:{spec.mmsi}"
        cls = SHIP_TYPE_CLASS.get(spec.ship_type, "Vessel")
        self.store.add(node, VOCAB.TYPE, cls)
        self.store.add(node, VOCAB.NAME, spec.name)
        self.store.add(node, VOCAB.FLAG, spec.flag)
        self.store.add(node, VOCAB.CALLSIGN, spec.callsign)
        if spec.imo:
            self.store.add(node, VOCAB.IMO, spec.imo)
        self.store.add(node, VOCAB.LENGTH, spec.length_m)
        return node

    # -- movement ------------------------------------------------------------

    def annotate_trajectory(self, trajectory: Trajectory) -> str:
        """Insert a trajectory node with span and endpoints; annotate its
        stops and port calls as activities."""
        node = f"track:{trajectory.mmsi}:{int(trajectory.t_start)}"
        vessel = f"vessel:{trajectory.mmsi}"
        self.store.add(vessel, VOCAB.HAS_TRACK, node)
        self.store.add(node, VOCAB.TYPE, "Voyage")
        self.store.add(node, VOCAB.TIME_BEGIN, trajectory.t_start)
        self.store.add(node, VOCAB.TIME_END, trajectory.t_end)
        stops = detect_stops(trajectory)
        for stop, port in port_calls(stops, self.ports):
            call_node = self._next_event_node()
            self.store.add(call_node, VOCAB.TYPE, "PortCall")
            self.store.add(call_node, VOCAB.ACTOR, vessel)
            self.store.add(call_node, VOCAB.NEAR_PORT, port.name)
            self.store.add(call_node, VOCAB.TIME_BEGIN, stop.t_start)
            self.store.add(call_node, VOCAB.TIME_END, stop.t_end)
        return node

    # -- events ---------------------------------------------------------------

    def annotate_event(self, event: Event) -> str:
        """Insert a detected event as a SEM-style event instance, with
        weather context at its time and place when available."""
        node = self._next_event_node()
        self.store.add(node, VOCAB.TYPE, "Activity")
        self.store.add(node, VOCAB.EVENT_TYPE, event.kind.value)
        for mmsi in event.mmsis:
            self.store.add(node, VOCAB.ACTOR, f"vessel:{mmsi}")
        self.store.add(node, VOCAB.PLACE_LAT, round(event.lat, 5))
        self.store.add(node, VOCAB.PLACE_LON, round(event.lon, 5))
        self.store.add(node, VOCAB.TIME_BEGIN, event.t_start)
        self.store.add(node, VOCAB.TIME_END, event.t_end)
        self.store.add(node, VOCAB.CONFIDENCE, round(event.confidence, 3))
        if self.weather is not None:
            sample = self.weather.sample_gridded(
                event.lat, event.lon, event.t_start
            )
            condition = (
                "rough" if sample.wave_height_m > 2.5 else
                "moderate" if sample.wave_height_m > 1.0 else "calm"
            )
            self.store.add(node, VOCAB.IN_WEATHER, condition)
        return node

    def _next_event_node(self) -> str:
        self._event_counter += 1
        return f"event:{self._event_counter}"
