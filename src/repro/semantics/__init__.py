"""Semantic layer: ontology-lite, registries, trajectory annotation (§2.5).

Bridges "low level data from maritime sensors and maritime domain
semantics": a small vessel/activity taxonomy with subsumption, synthetic
registries standing in for MarineTraffic/Lloyd's (with controlled
corruption for the fusion experiments), and annotation of reconstructed
trajectories into the triple store as SEM-style events [41].
"""

from repro.semantics.ontology import Taxonomy, MARITIME_TAXONOMY, VOCAB
from repro.semantics.registry import (
    RegistryRecord,
    build_registry,
    corrupt_registry,
    registry_from_specs,
)
from repro.semantics.annotate import SemanticAnnotator

__all__ = [
    "Taxonomy",
    "MARITIME_TAXONOMY",
    "VOCAB",
    "RegistryRecord",
    "build_registry",
    "corrupt_registry",
    "registry_from_specs",
    "SemanticAnnotator",
]
