"""The embeddable monitoring service: source → session → subscriptions.

:class:`MaritimeMonitor` is the one-object public API over the Figure 2
infrastructure — the receiver-to-alarm path as a service instead of a
pair of driver methods::

    from repro import MaritimeMonitor
    from repro.sources import NmeaFileSource, NmeaTcpSource
    from repro.sinks import AlertLogSink

    monitor = MaritimeMonitor()                      # default config
    monitor.attach(                                  # several feeds,
        NmeaTcpSource("ais.example", 4001),          # merged on
        NmeaFileSource("satellite.nmea", tail=True), # reception time
    )
    alerts = AlertLogSink()
    alerts.attach(monitor.hub)
    monitor.subscribe(
        on_event=print, kinds=["rendezvous", "gap"],
        async_dispatch=True,                         # never stall feed
    ).run(tick_s=60.0)

It wraps — without replacing — the existing layers: configuration is a
validated :class:`~repro.core.PipelineConfig`, execution is a
:class:`~repro.core.MaritimePipeline` driving a
:class:`~repro.core.PipelineSession`, input is anything satisfying the
:class:`~repro.sources.Source` protocol (bare iterables are wrapped),
and output flows through the session's subscription hub.  ``process``
and ``run_live`` keep working unchanged for callers that want the raw
drivers.
"""

import math
import os
from dataclasses import dataclass, field

from repro.core.config import PipelineConfig
from repro.core.pipeline import MaritimePipeline, PipelineResult
from repro.core.stages import PipelineSession, StageStats
from repro.sinks.subscription import SubscriptionHub
from repro.sources.base import (
    FeedLiveness,
    Source,
    SourcePosition,
    SourceStats,
)
from repro.sources.iterable import IterableSource
from repro.sources.merge import MergedSource
from repro.visual.overview import MonitoringAlarm

__all__ = ["MaritimeMonitor", "MonitorReport", "SubscriptionReport"]


class _SourceCursor:
    """Iterate a source while tracking the barrier-consistent resume point.

    ``run_live`` closes each micro-batch on the observation that opens
    the *next* one, so at an increment boundary exactly one observation
    may have been handed out but not fed.  The cursor records the
    source's position before every read; :meth:`resume_position`
    compares handed vs fed counts and returns the position *before* the
    pending look-ahead observation — the exact point a restored run
    must re-read from.  Sources without ``position()`` yield ``None``
    positions (recorded as such in the checkpoint manifest).
    """

    def __init__(self, source) -> None:
        self.source = source
        self.n_handed = 0
        self._before_last = self._position()

    def _position(self) -> SourcePosition | None:
        if hasattr(self.source, "position"):
            return self.source.position()
        return None

    def __iter__(self):
        iterator = iter(self.source)
        while True:
            before = self._position()
            try:
                obs = next(iterator)
            except StopIteration:
                return
            self._before_last = before
            self.n_handed += 1
            yield obs

    def resume_position(self, n_fed: int) -> SourcePosition | None:
        if self.n_handed > n_fed:
            return self._before_last
        return self._position()


@dataclass
class SubscriptionReport:
    """End-of-run accounting for one subscription."""

    #: Counts by product ("increments", "events", "alarms", "forecasts",
    #: plus "dropped_increments" for async subscriptions).
    delivered: dict = field(default_factory=dict)
    async_dispatch: bool = False
    #: Async only: increments handed to / delivered by / dropped from
    #: the dispatcher queue.  After the run, submitted == delivered +
    #: dropped exactly (the hub drains on teardown).
    n_submitted: int = 0
    n_delivered: int = 0
    n_dropped: int = 0
    queue_high_water: int = 0
    #: Async only: the end-of-run drain outlived its timeout — a sink
    #: slower than the teardown budget still held increments when the
    #: report was taken, so the books above were not final.
    drain_timed_out: bool = False
    #: Async only: the exception that killed the worker, if any (sync
    #: subscription failures propagate out of ``run`` instead).
    error: BaseException | None = None


@dataclass
class MonitorReport:
    """What one :meth:`MaritimeMonitor.run` consumed and produced."""

    n_increments: int = 0
    n_observations: int = 0
    n_records: int = 0
    n_events: int = 0
    n_complex_events: int = 0
    n_alarms: int = 0
    n_forecast_updates: int = 0
    #: Wall seconds spent inside feed/flush, per increment (tick
    #: latencies; the flush is the last entry).
    tick_seconds: list[float] = field(default_factory=list)
    source: SourceStats | None = None
    #: Per-feed accounting when several sources were attached (one entry
    #: per feed, in attach order); ``[source]`` for a single feed.
    sources: list[SourceStats] = field(default_factory=list)
    #: Per-feed liveness at end of run (multi-feed monitors only): which
    #: child feeds were still alive, how far each trailed the lead feed,
    #: and the effective merge holdback each was granted.
    feeds: list[FeedLiveness] = field(default_factory=list)
    stages: list[StageStats] = field(default_factory=list)
    #: Per-subscription delivery accounting, in subscribe order.
    subscriptions: list[SubscriptionReport] = field(default_factory=list)
    #: Final status of every registered health probe
    #: (``{name: HealthStatus}`` — feed liveness, ownership sanitizer).
    health: dict = field(default_factory=dict)

    @property
    def wall_s(self) -> float:
        return sum(self.tick_seconds)

    def latency_quantile_s(self, q: float) -> float:
        """Per-tick feed latency quantile (flush excluded)."""
        ticks = sorted(self.tick_seconds[:-1])
        if not ticks:
            return 0.0
        return ticks[min(len(ticks) - 1, int(q * (len(ticks) - 1)))]

    def describe(self) -> str:
        source = f" from {self.source.name}" if self.source else ""
        return (
            f"{self.n_records} records{source} in {self.n_increments} "
            f"ticks: {self.n_events} events "
            f"(+{self.n_complex_events} complex), {self.n_alarms} alarms, "
            f"{self.n_forecast_updates} forecast updates"
        )


class MaritimeMonitor:
    """Façade: configure once, attach a source, subscribe, run."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        ports=None,
        cep_patterns=None,
        zones=None,
        specs: dict | None = None,
        weather=None,
        keep_products: bool = False,
        dispatch_workers: int | None = None,
    ) -> None:
        self.pipeline = MaritimePipeline(
            config, ports=ports, cep_patterns=cep_patterns, zones=zones
        )
        self.specs = specs
        self.weather = weather
        self.keep_products = keep_products
        #: Subscriptions registered before and during the run; installed
        #: as the session's hub, so sinks may attach here at any time
        #: (``sink.attach(monitor.hub)``).  The hub routes dispatch
        #: through its subscription index and, for async subscribers,
        #: a shared worker pool sized by ``dispatch_workers`` (default:
        #: a small machine-derived constant, independent of subscriber
        #: count).
        self.hub = SubscriptionHub(dispatch_workers=dispatch_workers)
        self.session: PipelineSession | None = None
        #: The running/last run's accounting — populated even when a
        #: failing subscriber aborts :meth:`run` mid-stream.
        self.report: MonitorReport | None = None
        self._source = None
        #: ``(session, manifest)`` staged by :meth:`restore`; consumed
        #: by the next :meth:`run`.
        self._restored = None

    @property
    def config(self) -> PipelineConfig:
        return self.pipeline.config

    # -- fluent wiring -----------------------------------------------------

    def attach(self, *sources, holdback_s: float | None = None) -> "MaritimeMonitor":
        """Set the observation feed(s); returns ``self`` for chaining.

        Each argument is a :class:`~repro.sources.Source` or any
        iterable of observations (wrapped in ``IterableSource``).  With
        several sources — terrestrial + satellite + radar-site feeds —
        they are combined through a
        :class:`~repro.sources.MergedSource` ordered by reception time.
        Merge disorder *adds to* each feed's own event-time lateness
        against the reorder stage's single ``config.max_lateness_s``
        budget, so by default the merge runs in **adaptive** mode: each
        feed's holdback tracks the inter-feed skew actually observed
        (an EWMA of frontier gaps), capped at **half** the budget — the
        static default's old value, leaving the other half for the
        latency the budget was sized for (satellite passes).  Feeds
        that keep up are merged near-strictly; only demonstrated skew
        is admitted as disorder.  Pass an explicit ``holdback_s`` float
        to pin a fixed bound instead.  ``holdback_s`` only shapes that
        cross-feed merge: with a single source there is no cross-feed
        disorder to bound, so the source is consumed directly and the
        parameter has no effect.
        """
        if not sources:
            raise ValueError("attach() needs at least one source")
        if len(sources) == 1:
            source = sources[0]
            self._source = (
                source if isinstance(source, Source)
                else IterableSource(source)
            )
        else:
            # Raw arguments go straight to MergedSource: it wraps bare
            # iterables itself with per-index names, keeping multi-feed
            # reports distinguishable.
            if holdback_s is None:
                self._source = MergedSource(
                    *sources,
                    holdback_s="auto",
                    holdback_cap_s=self.config.max_lateness_s / 2.0,
                )
            else:
                self._source = MergedSource(*sources, holdback_s=holdback_s)
        return self

    def subscribe(
        self,
        on_increment=None,
        on_event=None,
        on_alarm=None,
        on_forecast=None,
        kinds=None,
        region=None,
        mmsis=None,
        async_dispatch: bool = False,
        max_queue: int = 256,
        overflow: str = "drop_oldest",
    ) -> "MaritimeMonitor":
        """Register a consumer; returns ``self`` for chaining.

        The created handle is appended to ``self.hub`` — grab it from
        there (or call ``self.hub.subscribe`` directly) when you need to
        close one subscription mid-run.  ``async_dispatch=True`` hands
        this consumer its own bounded queue + worker thread
        (:class:`~repro.sinks.AsyncDispatcher`) so it can never stall
        ingestion; ``overflow`` picks what a full queue does
        (``"drop_oldest"`` or ``"block"``).
        """
        self.hub.subscribe(
            on_increment=on_increment,
            on_event=on_event,
            on_alarm=on_alarm,
            on_forecast=on_forecast,
            kinds=kinds,
            region=region,
            mmsis=mmsis,
            async_dispatch=async_dispatch,
            max_queue=max_queue,
            overflow=overflow,
        )
        return self

    # -- crash recovery ----------------------------------------------------

    def restore(self, path: str) -> "MaritimeMonitor":
        """Stage a checkpointed session; the next :meth:`run` continues it.

        The checkpoint's configuration fingerprint must match this
        monitor's pipeline (config minus performance knobs, ports,
        zones, CEP patterns) — a mismatch raises
        :class:`~repro.persist.CheckpointError` before any state moves.
        The restored session keeps the snapshot's retention policy and
        may run under a different ``workers`` count than the writer.

        At :meth:`run`, the attached source is sought back to the
        position recorded at the checkpoint barrier (catch-up replay of
        exactly the unprocessed suffix); a non-seekable stream source
        reconnects live instead, relying on the restored watermark to
        drop already-processed records.  Returns ``self`` for chaining::

            MaritimeMonitor(config).restore("ckpt/ckpt-00000042.ckpt") \\
                .attach(NmeaFileSource("feed.nmea")).run(tick_s=60.0)
        """
        if self.session is not None:
            raise RuntimeError("this monitor has already run")
        session, manifest = self.pipeline.restore_session(path)
        self.keep_products = session.state.keep_products
        self._restored = (session, manifest)
        return self

    def _seek_source(self, source, manifest) -> None:
        """Seek the attached source to the checkpoint's recorded position."""
        positions = manifest.source_positions
        recorded = positions[0] if positions else None
        if recorded is None:
            return  # writer's source was not position-aware
        position = SourcePosition(**recorded)
        if position.kind == "stream":
            return  # live socket: reconnect, watermark drops replays
        if not hasattr(source, "seek"):
            raise RuntimeError(
                f"checkpoint recorded a {position.kind!r} source position "
                f"but the attached source ({type(source).__name__}) cannot "
                "seek — attach the same kind of source the writing run "
                "used, or a seekable one"
            )
        source.seek(position)

    # -- execution ---------------------------------------------------------

    def run(
        self,
        tick_s: float = 60.0,
        pol_split_t: float | None = None,
        radar_contacts=(),
        lrit_reports=(),
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 1,
    ) -> MonitorReport:
        """Consume the attached source to exhaustion; returns the report.

        Blocks until the source ends (EOF, remote close with reconnect
        exhausted, or ``source.close()`` from another thread — the clean
        way to stop an endless live feed).  A monitor runs once;
        construct a new one for a new session.

        With ``checkpoint_dir``, every ``checkpoint_every``-th increment
        barrier writes a watermark-consistent checkpoint
        (``ckpt-<n>.ckpt``, atomically replaced) recording the pipeline
        state and the source position to resume from —
        :meth:`restore` + ``run`` on a fresh monitor continues where a
        crash stopped, with products identical to a never-interrupted
        run.
        """
        if self._source is None:
            raise RuntimeError("no source attached — call attach() first")
        if self.session is not None:
            raise RuntimeError("this monitor has already run")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        source = self._source
        n_base = 0
        if self._restored is not None:
            session, manifest = self._restored
            self._restored = None
            n_base = manifest.n_increments
            self._seek_source(source, manifest)
        else:
            session = self.pipeline.new_session(
                specs=self.specs,
                weather=self.weather,
                pol_split_t=pol_split_t,
                keep_products=self.keep_products,
            )
        session.subscriptions = self.hub
        if hasattr(source, "queue_depths"):
            # Merged feeds report one depth per child plus the total.
            session.queue_probes.append(source.queue_depths)
        else:
            session.queue_probes.append(
                lambda: {"source": source.stats().queue_depth}
            )
        if hasattr(source, "liveness"):
            # A child feed dying is an operational alarm, not just a
            # stats entry: surface it to subscribers like any model
            # alarm, once per dead feed, at the next increment.
            session.health.register(
                "feed-liveness", self._feed_death_probe(source)
            )
        self.session = session
        report = self.report = MonitorReport()
        cursor = None
        stream = source
        if checkpoint_dir is not None:
            os.makedirs(checkpoint_dir, exist_ok=True)
            # The cursor tracks handed-vs-fed counts so each checkpoint
            # records the position before run_live's one-observation
            # look-ahead; only paid for when checkpointing is on.
            cursor = _SourceCursor(source)
            stream = cursor
        try:
            for increment in self.pipeline.run_live(
                iter(stream),
                tick_s=tick_s,
                radar_contacts=radar_contacts,
                lrit_reports=lrit_reports,
                session=session,
            ):
                report.n_increments += 1
                report.n_observations += increment.n_observations
                report.n_records += increment.n_records
                report.n_events += len(increment.new_events)
                report.n_complex_events += len(increment.new_complex_events)
                report.n_alarms += len(increment.new_alarms)
                report.n_forecast_updates += len(increment.updated_forecasts)
                report.tick_seconds.append(increment.seconds)
                if (
                    cursor is not None
                    and not session.flushed
                    and report.n_increments % checkpoint_every == 0
                ):
                    n = n_base + report.n_increments
                    session.checkpoint(
                        os.path.join(checkpoint_dir, f"ckpt-{n:08d}.ckpt"),
                        source_positions=[
                            cursor.resume_position(report.n_observations)
                        ],
                        n_increments=n,
                    )
        finally:
            # However the run ends — exhaustion or a subscriber raising
            # (sync callbacks are fail-fast) — stop the source so a TCP
            # reader thread does not keep the socket reconnecting, drain
            # the async dispatchers so delivery accounting is final, and
            # keep the partial accounting diagnosable via self.report.
            source.close()
            self.hub.close(drain=True)
            report.source = source.stats()
            report.sources = (
                source.stats_by_source()
                if hasattr(source, "stats_by_source")
                else [report.source]
            )
            report.stages = session.stages
            if hasattr(source, "liveness"):
                report.feeds = source.liveness()
            report.subscriptions = [
                self._subscription_report(s) for s in self.hub.registry
            ]
            report.health = session.health.report()
        return report

    @staticmethod
    def _feed_death_probe(source):
        """An alarm probe emitting one alarm per feed whose reader died.

        A feed that merely finished (clean EOF) is not a death; one that
        raised mid-iteration is.  The probe runs once per increment at
        the watermark barrier, so the alarm reaches subscribers through
        the ordinary delivery path.
        """
        reported: set[str] = set()

        def probe(watermark: float) -> list[MonitoringAlarm]:
            alarms: list[MonitoringAlarm] = []
            for feed in source.liveness():
                if feed.error is None or feed.name in reported:
                    continue
                reported.add(feed.name)
                alarms.append(
                    MonitoringAlarm(
                        t=watermark if math.isfinite(watermark) else 0.0,
                        mmsi=0,
                        lat=0.0,
                        lon=0.0,
                        score=1.0,
                        explanation=(
                            f"feed '{feed.name}' died: {feed.error!r}"
                        ),
                    )
                )
            return alarms

        return probe

    @staticmethod
    def _subscription_report(subscription) -> SubscriptionReport:
        dispatcher = subscription.dispatcher
        if dispatcher is None:
            return SubscriptionReport(delivered=dict(subscription.delivered))
        return SubscriptionReport(
            delivered=dict(subscription.delivered),
            async_dispatch=True,
            n_submitted=dispatcher.n_submitted,
            n_delivered=dispatcher.n_delivered,
            n_dropped=dispatcher.n_dropped,
            queue_high_water=dispatcher.queue_high_water,
            drain_timed_out=dispatcher.drain_timed_out,
            error=dispatcher.error,
        )

    def result(self) -> PipelineResult:
        """The classic batch result — only for ``keep_products=True``
        monitors whose run has finished."""
        if self.session is None or not self.session.flushed:
            raise RuntimeError("run() has not completed")
        if not self.keep_products:
            raise RuntimeError(
                "products were not kept; construct the monitor with "
                "keep_products=True"
            )
        return self.pipeline.result(self.session)
