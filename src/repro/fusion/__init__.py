"""Multi-source fusion (§2.4).

Implements the fusion ladder the paper describes: low-level contact-to-
track association (radar contacts without identity onto AIS tracks),
track-level state fusion, source-reliability estimation, and attribute
conflict resolution for registry data (the MarineTraffic-vs-Lloyd's
example of §4), plus hard+soft fusion of human reports.
"""

from repro.fusion.association import (
    AssociationConfig,
    Assignment,
    associate_contacts,
    MultiSourceTracker,
)
from repro.fusion.reliability import SourceReliability, estimate_reliability
from repro.fusion.conflict import (
    AttributeConflict,
    detect_conflicts,
    resolve_majority,
    resolve_weighted,
    resolve_most_recent,
)
from repro.fusion.hardsoft import SoftReport, fuse_hard_soft

__all__ = [
    "AssociationConfig",
    "Assignment",
    "associate_contacts",
    "MultiSourceTracker",
    "SourceReliability",
    "estimate_reliability",
    "AttributeConflict",
    "detect_conflicts",
    "resolve_majority",
    "resolve_weighted",
    "resolve_most_recent",
    "SoftReport",
    "fuse_hard_soft",
]
