"""Hard-and-soft fusion: combining human reports with sensor tracks.

§4: "The fusion of human generated information ('soft') with sensor data
('hard') ... brings promising avenue to the MSA problem, in keeping the
human at the core of the processing."  A soft report is a vague sighting
("a trawler around here, maybe an hour ago") with explicit positional and
temporal uncertainty plus a self-assessed confidence.  Fusion scores each
candidate track by spatio-temporal consistency with the report, weighted
by the reporter's confidence.
"""

import math
from dataclasses import dataclass

from repro.geo import haversine_m
from repro.trajectory.points import Trajectory


@dataclass(frozen=True)
class SoftReport:
    """A human observation with explicit vagueness."""

    t: float
    lat: float
    lon: float
    #: 1-sigma positional vagueness of the sighting, metres.
    sigma_m: float
    #: 1-sigma temporal vagueness, seconds.
    sigma_t_s: float
    #: Reporter's self-assessed confidence in [0, 1].
    confidence: float
    #: Free-text content kept for the operator's display.
    text: str = ""
    #: Optional claimed vessel category ("fishing", "cargo", ...).
    claimed_type: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError("confidence must be in [0, 1]")
        if self.sigma_m <= 0 or self.sigma_t_s <= 0:
            raise ValueError("sigmas must be positive")


@dataclass(frozen=True)
class HardSoftMatch:
    """One track scored against a soft report."""

    mmsi: int
    #: Consistency likelihood in [0, 1] (Gaussian kernels in space & time).
    consistency: float
    #: consistency * reporter confidence.
    weight: float
    distance_m: float
    dt_s: float


def fuse_hard_soft(
    report: SoftReport,
    tracks: list[Trajectory],
    search_window_sigmas: float = 3.0,
) -> list[HardSoftMatch]:
    """Rank tracks by consistency with a soft report, best first.

    For each track, the vessel position is interpolated over a time window
    of ``±search_window_sigmas * sigma_t`` around the reported time and the
    best spatio-temporal agreement is kept.  Tracks outside the window
    entirely score 0 and are omitted.

    An empty result means *no* known track explains the sighting — under
    the open-world stance of §4 that is itself actionable: a possible dark
    vessel.
    """
    matches: list[HardSoftMatch] = []
    t_lo = report.t - search_window_sigmas * report.sigma_t_s
    t_hi = report.t + search_window_sigmas * report.sigma_t_s
    for track in tracks:
        if track.t_end < t_lo or track.t_start > t_hi:
            continue
        best: HardSoftMatch | None = None
        # Evaluate at a handful of instants across the window.
        steps = 9
        for i in range(steps):
            t = t_lo + (t_hi - t_lo) * i / (steps - 1)
            t_clamped = min(track.t_end, max(track.t_start, t))
            lat, lon = track.position_at(t_clamped)
            distance = haversine_m(report.lat, report.lon, lat, lon)
            dt = t_clamped - report.t
            consistency = math.exp(
                -0.5 * (distance / report.sigma_m) ** 2
            ) * math.exp(-0.5 * (dt / report.sigma_t_s) ** 2)
            candidate = HardSoftMatch(
                mmsi=track.mmsi,
                consistency=consistency,
                weight=consistency * report.confidence,
                distance_m=distance,
                dt_s=dt,
            )
            if best is None or candidate.consistency > best.consistency:
                best = candidate
        if best is not None and best.consistency > 1e-4:
            matches.append(best)
    matches.sort(key=lambda m: m.weight, reverse=True)
    return matches
