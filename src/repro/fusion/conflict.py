"""Attribute conflict detection and resolution across sources.

§4's concrete example: "ship information from the MarineTraffic database
may conflict with that from Lloyd's: the length may differ slightly, or
the flag may be different due to a lack of update in one source.  In this
regard, additional knowledge on sources' quality may help solving the
issue."  Three resolution strategies are provided; E5 compares them under
controlled corruption.
"""

from collections import Counter
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class AttributeConflict:
    """Disagreement on one attribute of one entity."""

    entity_id: Any
    attribute: str
    values_by_source: dict  # source -> value

    @property
    def distinct_values(self) -> set:
        return set(self.values_by_source.values())


def detect_conflicts(
    records_by_source: dict[str, dict[Any, dict]],
    attributes: list[str],
    numeric_tolerance: dict[str, float] | None = None,
) -> list[AttributeConflict]:
    """Find entities whose sources disagree on an attribute.

    ``records_by_source[source][entity_id]`` is an attribute dict.  Numeric
    attributes within ``numeric_tolerance`` of each other do not conflict
    (small length differences are measurement convention, not error).
    Missing/empty values never conflict — absence is incompleteness, not
    contradiction (the open-world stance of §4).
    """
    numeric_tolerance = numeric_tolerance or {}
    entity_ids = set()
    for records in records_by_source.values():
        entity_ids.update(records)
    conflicts: list[AttributeConflict] = []
    for entity_id in sorted(entity_ids, key=str):
        for attribute in attributes:
            values = {}
            for source, records in records_by_source.items():
                record = records.get(entity_id)
                if record is None:
                    continue
                value = record.get(attribute)
                if value in (None, "", 0):
                    continue
                values[source] = value
            if len(values) < 2:
                continue
            tolerance = numeric_tolerance.get(attribute)
            if tolerance is not None:
                numeric = [float(v) for v in values.values()]
                if max(numeric) - min(numeric) <= tolerance:
                    continue
                conflicts.append(AttributeConflict(entity_id, attribute, values))
            elif len(set(values.values())) > 1:
                conflicts.append(AttributeConflict(entity_id, attribute, values))
    return conflicts


def resolve_majority(conflict: AttributeConflict) -> Any:
    """Most common value wins; ties broken by source-name order for
    determinism."""
    counts = Counter(conflict.values_by_source.values())
    top = max(counts.values())
    winners = sorted(
        (str(source), value)
        for source, value in conflict.values_by_source.items()
        if counts[value] == top
    )
    return winners[0][1]


def resolve_weighted(
    conflict: AttributeConflict, reliability: dict[str, float]
) -> Any:
    """Value with the highest summed source reliability wins.

    Sources without a reliability estimate count 0.5 (unknown, not
    untrusted).
    """
    weights: dict[Any, float] = {}
    for source, value in conflict.values_by_source.items():
        weights[value] = weights.get(value, 0.0) + reliability.get(source, 0.5)
    best_weight = max(weights.values())
    winners = sorted(
        str(v) for v, w in weights.items() if w == best_weight
    )
    for value, weight in weights.items():
        if weight == best_weight and str(value) == winners[0]:
            return value
    raise AssertionError("unreachable")


def resolve_most_recent(
    conflict: AttributeConflict, updated_at: dict[str, float]
) -> Any:
    """Freshest source wins (for attributes that legitimately change,
    like flag after re-registration)."""
    freshest = max(
        conflict.values_by_source,
        key=lambda source: (updated_at.get(source, float("-inf")), str(source)),
    )
    return conflict.values_by_source[freshest]
