"""Contact-to-track association and multi-source track fusion.

Radar contacts carry no identity (§2.4's "new sensor measurements are
associated to tracks"); the associator assigns each contact to the AIS
track whose predicted position is nearest, inside a gate.  Unassigned
contacts become *uncorrelated* — these are the interesting ones, because
dark ships show up only on radar.
"""

import bisect
from dataclasses import dataclass, field

from repro.geo import KNOTS_TO_MPS, destination_point
from repro.simulation.sensors import RadarContact
from repro.spatial import StreamingGridIndex, build_index
from repro.trajectory.points import TrackPoint, Trajectory


@dataclass(frozen=True)
class AssociationConfig:
    """Gating parameters."""

    #: Hard association gate: contacts farther than this from every
    #: predicted track position stay uncorrelated.
    gate_m: float = 1500.0
    #: Maximum extrapolation age of a track before it cannot gate contacts.
    max_track_age_s: float = 600.0
    #: Spatial backend for per-sweep candidate gating: "auto", "grid" or
    #: "rtree".
    index_backend: str = "auto"


@dataclass(frozen=True)
class Assignment:
    """One contact-to-track decision."""

    contact: RadarContact
    mmsi: int | None  # None == uncorrelated
    distance_m: float | None


def _predict(track: list[TrackPoint], t: float) -> tuple[float, float] | None:
    """Dead-reckoned position of a track at ``t`` from its last fix."""
    if not track:
        return None
    last = track[-1]
    dt = t - last.t
    if dt < 0:
        # Contact predates the newest fix: use the nearest fix instead.
        candidates = [p for p in track if p.t <= t] or [track[0]]
        last = candidates[-1]
        dt = max(0.0, t - last.t)
    if last.sog_knots is None or last.cog_deg is None or dt == 0.0:
        return last.lat, last.lon
    return destination_point(
        last.lat, last.lon, last.cog_deg, last.sog_knots * KNOTS_TO_MPS * dt
    )


def associate_contacts(
    contacts: list[RadarContact],
    tracks: dict[int, list[TrackPoint]],
    config: AssociationConfig | None = None,
) -> list[Assignment]:
    """Greedy nearest-neighbour association with gating.

    Contacts are processed in time order; for each sweep instant, pairs are
    assigned globally nearest-first (greedy GNN), each track taking at most
    one contact per sweep.
    """
    config = config or AssociationConfig()
    assignments: list[Assignment] = []
    # Group contacts by sweep time so one track can't absorb two returns
    # from the same scan.
    by_sweep: dict[float, list[RadarContact]] = {}
    for contact in contacts:
        by_sweep.setdefault(contact.t, []).append(contact)

    for sweep_t in sorted(by_sweep):
        sweep = by_sweep[sweep_t]
        candidate_pairs: list[tuple[float, int, int]] = []  # (dist, ci, mmsi)
        predictions: dict[int, tuple[float, float]] = {}
        for mmsi, track in tracks.items():
            if not track:
                continue
            age = sweep_t - track[-1].t
            if age > config.max_track_age_s:
                continue
            predicted = _predict(track, sweep_t)
            if predicted is not None:
                predictions[mmsi] = predicted
        # Index the predicted positions so each contact probes only its
        # neighbourhood instead of every live track (candidate gating).
        index = build_index(
            [
                (mmsi, plat, plon)
                for mmsi, (plat, plon) in predictions.items()
            ],
            cell_size_m=config.gate_m,
            hint=config.index_backend,
        )
        for ci, contact in enumerate(sweep):
            for mmsi, dist in index.radius_query(
                contact.lat, contact.lon, config.gate_m
            ):
                candidate_pairs.append((dist, ci, mmsi))
        candidate_pairs.sort()
        used_contacts: set[int] = set()
        used_tracks: set[int] = set()
        for dist, ci, mmsi in candidate_pairs:
            if ci in used_contacts or mmsi in used_tracks:
                continue
            used_contacts.add(ci)
            used_tracks.add(mmsi)
            assignments.append(Assignment(sweep[ci], mmsi, dist))
        for ci, contact in enumerate(sweep):
            if ci not in used_contacts:
                assignments.append(Assignment(contact, None, None))
    return assignments


@dataclass
class FusedTrack:
    """A track built from several sources, fixes interleaved by time."""

    track_id: int
    mmsi: int | None
    points: list[TrackPoint] = field(default_factory=list)
    sources: set[str] = field(default_factory=set)

    def add(self, point: TrackPoint) -> None:
        self.points.append(point)
        self.sources.add(point.source)

    def add_sorted(self, point: TrackPoint) -> None:
        """Insert keeping ``points`` time-ordered (multi-source feeds may
        deliver a late source after a newer one).

        In-order arrivals — the overwhelmingly common case — append in
        O(1); only a genuinely late fix pays for a positional insert.
        """
        if not self.points or point.t >= self.points[-1].t:
            self.points.append(point)
        else:
            index = bisect.bisect_right(
                [p.t for p in self.points], point.t
            )
            self.points.insert(index, point)
        self.sources.add(point.source)

    def index_at_or_before(self, t: float) -> int:
        """Count of time-ordered fixes with ``fix.t <= t``.

        Scans backwards from the newest fix: causal reads sit near the
        head of the track, so this is O(#newer fixes), not O(track).
        """
        index = len(self.points)
        while index and self.points[index - 1].t > t:
            index -= 1
        return index

    def last_fix_at_or_before(self, t: float) -> TrackPoint | None:
        """Newest time-ordered fix with ``fix.t <= t`` (causal reads)."""
        index = self.index_at_or_before(t)
        return self.points[index - 1] if index else None

    def prune_before(self, t: float) -> int:
        """Drop fixes older than ``t``; returns how many were removed."""
        cut = 0
        points = self.points
        while cut < len(points) and points[cut].t < t:
            cut += 1
        if cut:
            del points[:cut]
        return cut

    def to_trajectory(self) -> Trajectory | None:
        ordered = sorted(self.points, key=lambda p: p.t)
        deduped = [p for i, p in enumerate(ordered)
                   if i == 0 or p.t > ordered[i - 1].t]
        if len(deduped) < 2:
            return None
        return Trajectory(self.mmsi or -self.track_id, deduped)


class MultiSourceTracker:
    """Maintains fused tracks from AIS fixes, radar contacts and LRIT.

    AIS fixes seed identified tracks; radar contacts are associated to the
    nearest predicted track or open anonymous tracks; LRIT reports merge
    into identified tracks by MMSI.  The completeness gain of fusion —
    anonymous radar tracks covering dark ships — is what E5 measures.
    """

    def __init__(
        self,
        config: AssociationConfig | None = None,
        head_max_age_s: float | None = None,
    ) -> None:
        self.config = config or AssociationConfig()
        self.tracks: dict[int, FusedTrack] = {}
        self._by_mmsi: dict[int, int] = {}
        self._next_id = 1
        #: Cached heads (latest point) of anonymous tracks, so contact
        #: gating probes a neighbourhood instead of scanning every track
        #: and re-deriving max(points) per candidate.  ``head_max_age_s``
        #: (for unbounded live runs) evicts heads of tracks silent far
        #: longer than the association age gate — results-neutral as long
        #: as it exceeds ``config.max_track_age_s``.
        self._anonymous_heads = StreamingGridIndex(
            cell_size_m=self.config.gate_m, max_age_s=head_max_age_s
        )

    def _track_for_mmsi(self, mmsi: int) -> FusedTrack:
        track_id = self._by_mmsi.get(mmsi)
        if track_id is None:
            track_id = self._next_id
            self._next_id += 1
            self.tracks[track_id] = FusedTrack(track_id, mmsi)
            self._by_mmsi[mmsi] = track_id
        return self.tracks[track_id]

    def track_for(self, mmsi: int) -> FusedTrack:
        """The identified track for an MMSI, created on first use."""
        return self._track_for_mmsi(mmsi)

    def add_ais_fix(self, mmsi: int, point: TrackPoint) -> None:
        self._track_for_mmsi(mmsi).add(point)

    def add_lrit(self, mmsi: int, point: TrackPoint) -> None:
        self._track_for_mmsi(mmsi).add(point)

    def nearest_anonymous_track(self, contact: RadarContact) -> FusedTrack | None:
        """Public causal lookup used by the incremental fuse stage."""
        return self._nearest_anonymous(contact)

    def open_anonymous(self, point: TrackPoint) -> FusedTrack:
        """Start a new anonymous track seeded with one contact point."""
        track_id = self._next_id
        self._next_id += 1
        track = FusedTrack(track_id, None)
        track.add(point)
        self.tracks[track_id] = track
        self._observe_anonymous_head(track, point)
        return track

    def extend_anonymous(self, track: FusedTrack, point: TrackPoint) -> None:
        track.add(point)
        self._observe_anonymous_head(track, point)

    def prune_anonymous_before(self, t: float) -> int:
        """Drop anonymous tracks whose newest fix predates ``t`` (for
        unbounded live runs; such tracks can never gate a contact again
        when ``t`` trails the clock by more than the age gate)."""
        stale = [
            track_id
            for track_id, track in self.tracks.items()
            if track.mmsi is None and track.points and track.points[-1].t < t
        ]
        for track_id in stale:
            del self.tracks[track_id]
            if track_id in self._anonymous_heads:
                self._anonymous_heads.remove(track_id)
        return len(stale)

    def add_radar_contacts(self, contacts: list[RadarContact]) -> list[Assignment]:
        """Associate a batch of contacts; unassociated ones open or extend
        anonymous tracks (nearest anonymous track within the gate)."""
        track_points = {
            track.mmsi: track.points
            for track in self.tracks.values()
            if track.mmsi is not None
        }
        assignments = associate_contacts(contacts, track_points, self.config)
        for assignment in assignments:
            contact = assignment.contact
            point = TrackPoint(
                t=contact.t, lat=contact.lat, lon=contact.lon, source="radar"
            )
            if assignment.mmsi is not None:
                self._track_for_mmsi(assignment.mmsi).add(point)
                continue
            anonymous = self._nearest_anonymous(contact)
            if anonymous is not None:
                anonymous.add(point)
                self._observe_anonymous_head(anonymous, point)
            else:
                track_id = self._next_id
                self._next_id += 1
                track = FusedTrack(track_id, None)
                track.add(point)
                self.tracks[track_id] = track
                self._observe_anonymous_head(track, point)
        return assignments

    def _observe_anonymous_head(self, track: FusedTrack, point: TrackPoint) -> None:
        """Keep the cached head current (older fixes are ignored)."""
        self._anonymous_heads.observe(track.track_id, point.t, point.lat, point.lon)

    def _nearest_anonymous(self, contact: RadarContact) -> FusedTrack | None:
        """Nearest open anonymous track whose head gates this contact.

        Probes the streaming index of cached track heads instead of
        scanning every track and recomputing ``max(points)`` per
        candidate; ties break toward the older (lower-id) track.
        """
        best: tuple[float, int] | None = None
        heads = self._anonymous_heads
        for track_id, dist in heads.radius_query(
            contact.lat, contact.lon, self.config.gate_m
        ):
            head_t = heads.timestamp(track_id)
            if contact.t - head_t > self.config.max_track_age_s or contact.t < head_t:
                continue
            if best is None or (dist, track_id) < best:
                best = (dist, track_id)
        return self.tracks[best[1]] if best is not None else None

    @property
    def anonymous_tracks(self) -> list[FusedTrack]:
        return [t for t in self.tracks.values() if t.mmsi is None]

    @property
    def identified_tracks(self) -> list[FusedTrack]:
        return [t for t in self.tracks.values() if t.mmsi is not None]
