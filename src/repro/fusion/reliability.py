"""Source reliability estimation (§4, after Ceolin et al. [8]).

A source's reliability is estimated from how well its reports agree with
the consensus of the other sources at the same instants.  The scores feed
(a) weighted conflict resolution and (b) evidence discounting in
:mod:`repro.uncertainty.evidence`.
"""

from dataclasses import dataclass

from repro.geo import haversine_m


@dataclass(frozen=True)
class SourceReliability:
    """Agreement-based reliability estimate for one source."""

    source: str
    n_comparisons: int
    mean_disagreement_m: float
    #: Reliability in [0, 1]: exp(-disagreement / scale).
    reliability: float


def estimate_reliability(
    reports_by_source: dict[str, list[tuple[float, float, float]]],
    truth_fn,
    scale_m: float = 500.0,
) -> dict[str, SourceReliability]:
    """Reliability of each source against a reference position function.

    ``reports_by_source`` maps source name to ``(t, lat, lon)`` reports;
    ``truth_fn(t) -> (lat, lon) | None`` provides the reference (in
    production, the multi-source fused track; in tests, ground truth).
    """
    import math

    out: dict[str, SourceReliability] = {}
    for source, reports in reports_by_source.items():
        errors = []
        for t, lat, lon in reports:
            reference = truth_fn(t)
            if reference is None:
                continue
            errors.append(haversine_m(lat, lon, reference[0], reference[1]))
        if not errors:
            out[source] = SourceReliability(source, 0, float("nan"), 0.5)
            continue
        mean_error = sum(errors) / len(errors)
        out[source] = SourceReliability(
            source=source,
            n_comparisons=len(errors),
            mean_disagreement_m=mean_error,
            reliability=math.exp(-mean_error / scale_m),
        )
    return out
