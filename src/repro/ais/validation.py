"""Semantic validation of decoded AIS messages.

The paper cites [44]: roughly 5% of AIS *static* transmissions contain
errors of some kind.  This module is the programmatic form of that audit —
it checks decoded messages against ITU/IMO plausibility rules and returns a
list of issues, each tagged with a severity.  The validator is pure (no
state); cross-message checks (identity clashes, teleports) live in
:mod:`repro.events.spoofing`, which has track context.
"""

import enum
from dataclasses import dataclass

from repro.ais.types import (
    AisMessage,
    ClassBPositionReport,
    PositionReport,
    StaticDataReport,
    StaticVoyageData,
)

#: Maritime Identification Digits are 3-digit country codes in [201, 775].
_MID_RANGE = (201, 775)


class IssueSeverity(enum.Enum):
    """How bad a validation finding is for downstream processing."""

    #: Field unusable; consumers must treat it as missing.
    ERROR = "error"
    #: Field suspicious; usable but should lower source confidence.
    WARNING = "warning"


@dataclass(frozen=True)
class ValidationIssue:
    field_name: str
    severity: IssueSeverity
    reason: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.field_name}: {self.reason}"


def _check_mmsi(mmsi: int, issues: list[ValidationIssue]) -> None:
    if not (100_000_000 <= mmsi <= 999_999_999):
        issues.append(
            ValidationIssue("mmsi", IssueSeverity.ERROR, f"not 9 digits: {mmsi}")
        )
        return
    mid = mmsi // 1_000_000
    if not (_MID_RANGE[0] <= mid <= _MID_RANGE[1]):
        issues.append(
            ValidationIssue(
                "mmsi",
                IssueSeverity.WARNING,
                f"MID {mid} outside ship range [201, 775]",
            )
        )


def _imo_check_digit_ok(imo: int) -> bool:
    """IMO numbers carry a weighted check digit (weights 7..2)."""
    digits = [int(d) for d in f"{imo:07d}"]
    if len(digits) != 7:
        return False
    weighted = sum(d * w for d, w in zip(digits[:6], range(7, 1, -1)))
    return weighted % 10 == digits[6]


def _check_position(msg: PositionReport | ClassBPositionReport, issues: list[ValidationIssue]) -> None:
    if not msg.has_position:
        issues.append(
            ValidationIssue(
                "position", IssueSeverity.ERROR, "position-unavailable sentinel"
            )
        )
    if msg.sog_knots is not None and msg.sog_knots > 60.0:
        issues.append(
            ValidationIssue(
                "sog", IssueSeverity.WARNING, f"implausible speed {msg.sog_knots:.1f} kn"
            )
        )
    if msg.cog_deg is None:
        issues.append(
            ValidationIssue("cog", IssueSeverity.WARNING, "course not available")
        )


def _check_static_voyage(msg: StaticVoyageData, issues: list[ValidationIssue]) -> None:
    if msg.imo == 0:
        issues.append(
            ValidationIssue("imo", IssueSeverity.WARNING, "IMO number missing")
        )
    elif not (1_000_000 <= msg.imo <= 9_999_999) or not _imo_check_digit_ok(msg.imo):
        issues.append(
            ValidationIssue(
                "imo", IssueSeverity.ERROR, f"invalid IMO number {msg.imo}"
            )
        )
    if not msg.shipname:
        issues.append(
            ValidationIssue("shipname", IssueSeverity.WARNING, "ship name empty")
        )
    if not msg.callsign:
        issues.append(
            ValidationIssue("callsign", IssueSeverity.WARNING, "callsign empty")
        )
    if msg.length_m == 0:
        issues.append(
            ValidationIssue(
                "dimensions", IssueSeverity.WARNING, "length not reported"
            )
        )
    elif msg.length_m > 460:
        issues.append(
            ValidationIssue(
                "dimensions",
                IssueSeverity.ERROR,
                f"length {msg.length_m} m exceeds the largest ship afloat",
            )
        )
    if msg.draught_m > 25.0:
        issues.append(
            ValidationIssue(
                "draught", IssueSeverity.ERROR, f"draught {msg.draught_m:.1f} m implausible"
            )
        )
    if msg.ship_type_code == 0:
        issues.append(
            ValidationIssue(
                "ship_type", IssueSeverity.WARNING, "ship type not available"
            )
        )
    if msg.eta_month == 0 and not msg.destination:
        issues.append(
            ValidationIssue(
                "voyage", IssueSeverity.WARNING, "neither ETA nor destination set"
            )
        )


def validate_message(msg: AisMessage) -> list[ValidationIssue]:
    """Run every applicable plausibility rule; empty list means clean."""
    issues: list[ValidationIssue] = []
    _check_mmsi(msg.mmsi, issues)
    if isinstance(msg, (PositionReport, ClassBPositionReport)):
        _check_position(msg, issues)
    if isinstance(msg, StaticVoyageData):
        _check_static_voyage(msg, issues)
    if isinstance(msg, StaticDataReport) and msg.part == 0 and not msg.shipname:
        issues.append(
            ValidationIssue("shipname", IssueSeverity.WARNING, "ship name empty")
        )
    return issues


def error_rate(messages: list[AisMessage]) -> float:
    """Fraction of messages with at least one validation issue.

    Reproduces the audit style of [44] (the "~5% of static transmissions
    have errors" figure) against simulator output.
    """
    if not messages:
        return 0.0
    flagged = sum(1 for m in messages if validate_message(m))
    return flagged / len(messages)
