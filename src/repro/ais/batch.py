"""Vectorised micro-batch decoding of assembled AIS payloads.

The scalar path (:mod:`repro.ais.decoder` over :class:`BitBuffer`) walks
every payload character-by-character and every field bit-by-bit — fine
for one sentence, ruinous for a feed.  This module decodes a whole
micro-batch of *assembled* payloads in a handful of numpy passes:

1. **De-armour** — the payload strings become one ``(rows, chars)``
   ``uint8`` matrix; a 256-entry lookup table (lifted from
   :data:`repro.ais.sixbit.ARMOR_TO_CODE`) maps every byte to its 6-bit
   value in one gather, flagging invalid characters with ``-1``.
2. **Unpack** — ``np.unpackbits`` on the left-shifted codes yields a
   packed bit matrix; bits past each row's ``6*len - fill_bits`` extent
   are masked to zero, reproducing the scalar path's fill-bit stripping
   and zero-extension exactly.
3. **Slice** — each fixed-layout field of the hot message types
   (position reports 1/2/3, class B 18, static 5/24) is a precomputed
   ``[start, start+width)`` column slice dotted with a power-of-two
   weight vector; text fields reduce to ``(rows, chars, 6)`` code
   matrices handed to the same :func:`~repro.ais.sixbit.sixbit_to_ascii`
   the scalar path uses.

Accepted position rows land in a :class:`FixBatch` — a columnar
(struct-of-arrays) micro-batch whose python-scalar columns feed both the
lazy per-fix message materialisation and the object-free
:meth:`FixBatch.trackpoints` path.

**Parity contract.**  The batch decoder only ever *accepts* rows; every
row it cannot prove clean — unknown or extended message type, truncation
below the type minimum, any invalid armour character, out-of-range fill
bits — is routed through the unchanged scalar
:func:`~repro.ais.decoder.finish_payload`, so rejection reasons, stats
counter keys and output order are byte-identical to a scalar-only run.
Field values come out of the same integer raws and the same scaling
expressions (python ints divided by the same float constants), so
decoded messages compare equal field-for-field.

**Fallback semantics.**  Without numpy — the import is guarded, and
``REPRO_NO_NUMPY=1`` forces the guard shut for testing — every call
degrades to the scalar loop with identical behaviour.  Batches smaller
than :data:`MIN_BATCH` take the scalar loop too: below that, array
setup costs more than it saves.
"""

import os
from collections import Counter
from itertools import repeat as _repeat

from repro.ais.decoder import (
    _LATLON_SCALE,
    _decode_rot,
    finish_payload,
)
from repro.ais.sixbit import ARMOR_TO_CODE, sixbit_to_ascii
from repro.ais.types import (
    ClassBPositionReport,
    NavigationStatus,
    PositionReport,
    StaticDataReport,
    StaticVoyageData,
)
from repro.trajectory.points import TrackPoint


def _load_numpy():
    """numpy, or ``None`` when unavailable or disabled for testing."""
    if os.environ.get("REPRO_NO_NUMPY") == "1":
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - environment-dependent
        return None
    return numpy


np = _load_numpy()

#: Below this many staged payloads the scalar loop wins: building the
#: char matrix and bit planes has fixed cost.  Execution choice only —
#: results never depend on it.
MIN_BATCH = 24

#: 256-entry armour LUT as an array (int16 keeps the -1 invalid marker).
_ARMOR_LUT = np.array(ARMOR_TO_CODE, dtype=np.int16) if np is not None else None
#: 4-bit nav-status values are all defined, so decode is a list probe.
_NAV = [NavigationStatus(value) for value in range(16)]

# Raw position-report fields have tiny domains, so sentinel handling and
# scaling become table probes.  Each table is built by the *scalar*
# decoder's expression (or the helper itself, for rot), so every looked-
# up value is bit-identical to what the scalar path computes.
_SOG_TABLE = [None if raw == 1023 else raw / 10.0 for raw in range(1024)]
_COG_TABLE = [None if raw >= 3600 else raw / 10.0 for raw in range(4096)]
_HDG_TABLE = [None if raw == 511 else float(raw) for raw in range(512)]
_SEC_TABLE = [None if sec >= 60 else sec for sec in range(64)]
#: Indexed by the *unsigned* 8-bit raw (no sign pass needed).
_ROT_TABLE = [
    _decode_rot(raw - 256 if raw >= 128 else raw) for raw in range(256)
]

# -- bit-slice layout tables -------------------------------------------------
# (start, width) offsets transcribed from the scalar read sequence in
# repro.ais.decoder; the common header (type 0/6, repeat 6/2, mmsi 8/30)
# is shared.  ``extent`` is the last bit any field of the type touches —
# the bit matrix is padded to at least that many columns so truncated
# rows zero-extend exactly like BitBuffer.read_uint past the end.
_EXTENT = {"pos_a": 149, "pos_b": 148, "static5": 422, "static24": 162}


class FixBatch:
    """Columnar micro-batch of decoded position fixes (struct of arrays).

    One instance carries the accepted position-report rows (types 1/2/3
    and 18) of a decode micro-batch as parallel python-scalar columns:
    ``t`` (transmission epoch), ``mmsi``, ``lat``/``lon`` (degrees,
    availability sentinels 91/181 ride along exactly as in the object
    form), ``sog`` (knots or ``None``), ``cog`` (degrees or ``None``).
    The vectorised decode writes columns once; consumers either
    materialise per-fix objects lazily from the columns or skip objects
    entirely via :meth:`trackpoints`.
    """

    __slots__ = ("t", "mmsi", "lat", "lon", "sog", "cog")

    def __init__(self) -> None:
        self.t: list[float] = []
        self.mmsi: list[int] = []
        self.lat: list[float] = []
        self.lon: list[float] = []
        self.sog: list[float | None] = []
        self.cog: list[float | None] = []

    def __len__(self) -> int:
        return len(self.t)

    def append(self, t, mmsi, lat, lon, sog, cog) -> None:
        self.t.append(t)
        self.mmsi.append(mmsi)
        self.lat.append(lat)
        self.lon.append(lon)
        self.sog.append(sog)
        self.cog.append(cog)

    def trackpoints(self) -> list[TrackPoint]:
        """Materialise one :class:`TrackPoint` per fix, straight from the
        columns — no intermediate message objects."""
        return [
            TrackPoint(t, lat, lon, sog, cog)
            for t, lat, lon, sog, cog in zip(
                self.t, self.lat, self.lon, self.sog, self.cog
            )
        ]


def available() -> bool:
    """True when the vectorised path can run (numpy importable and not
    disabled via ``REPRO_NO_NUMPY=1``)."""
    return np is not None


def decode_staged(
    staged: list[tuple[float, str, int, float]],
    stats: Counter,
    *,
    force_scalar: bool = False,
    fixes: FixBatch | None = None,
) -> list[tuple[float, object]]:
    """Decode assembled payloads, vectorising the hot message types.

    ``staged`` rows are ``(t_transmitted, payload, fill_bits,
    received_at)`` as produced by :meth:`AisDecoder.assemble`.  Returns
    ``(t_transmitted, message)`` pairs in input order with undecodable
    rows dropped; acceptance and rejection are counted into ``stats``
    with exactly the keys the scalar path produces.  When ``fixes`` is
    given, every accepted position row (types 1/2/3, 18) is also
    appended to it — grouped by message type, release order within a
    group (the reorder stage re-sorts on event time regardless).
    """
    if force_scalar or np is None or len(staged) < MIN_BATCH:
        return _decode_scalar(staged, stats, fixes)

    out: list[tuple[float, object] | None] = [None] * len(staged)
    groups: dict[str, list[int]] = {
        "pos_a": [], "pos_b": [], "static5": [], "static24": [],
    }
    scalar_rows: list[int] = []
    scalar = scalar_rows.append
    pos_a = groups["pos_a"].append
    pos_b = groups["pos_b"].append
    static5 = groups["static5"].append
    static24 = groups["static24"].append
    lut = ARMOR_TO_CODE
    for i, (t, payload, fill, received_at) in enumerate(staged):
        n = len(payload)
        if n == 0 or not 0 <= fill <= 5:
            scalar(i)
            continue
        first = ord(payload[0])
        msg_type = lut[first] if first < 256 else -1
        nbits = 6 * n - fill
        if nbits < 38:
            scalar(i)
        elif msg_type in (1, 2, 3):
            (pos_a if nbits >= 168 else scalar)(i)
        elif msg_type == 18:
            pos_b(i)
        elif msg_type == 5:
            (static5 if nbits >= 420 else scalar)(i)
        elif msg_type == 24:
            static24(i)
        else:
            scalar(i)

    for key, idxs in groups.items():
        if not idxs:
            continue
        bitmat, rows, bad = _bit_matrix(staged, idxs, _EXTENT[key])
        scalar_rows.extend(bad)
        if not rows:
            continue
        if key == "pos_a":
            _materialise_pos_a(staged, rows, bitmat, out, fixes)
        elif key == "pos_b":
            _materialise_pos_b(staged, rows, bitmat, out, fixes)
        elif key == "static5":
            _materialise_static5(staged, rows, bitmat, out)
        else:
            _materialise_static24(staged, rows, bitmat, out)
        stats["decoded"] += len(rows)

    # Rows the vector pass could not prove clean take the scalar path —
    # same errors, same counter keys, same (t, message) slot.
    for i in scalar_rows:
        t, payload, fill, received_at = staged[i]
        message = finish_payload(payload, fill, received_at, stats)
        if message is not None:
            out[i] = (t, message)
            _append_fix(fixes, t, message)
    return [pair for pair in out if pair is not None]


def _decode_scalar(staged, stats, fixes=None):
    """The unchanged scalar loop (numpy-less fallback / tiny batches)."""
    decoded: list[tuple[float, object]] = []
    for t, payload, fill, received_at in staged:
        message = finish_payload(payload, fill, received_at, stats)
        if message is not None:
            decoded.append((t, message))
            _append_fix(fixes, t, message)
    return decoded


def _append_fix(fixes, t, message) -> None:
    if fixes is not None and isinstance(
        message, (PositionReport, ClassBPositionReport)
    ):
        fixes.append(
            t, message.mmsi, message.lat, message.lon,
            message.sog_knots, message.cog_deg,
        )


# -- vector plumbing ---------------------------------------------------------


def _bit_matrix(staged, idxs, extent):
    """Char matrix -> validated code matrix -> masked bit matrix.

    Returns ``(bitmat, rows, bad)`` where ``rows`` are the staged
    indices whose payloads de-armoured cleanly (bit matrix row order)
    and ``bad`` are the indices to re-route through the scalar path.
    """
    k = len(idxs)
    payloads = [staged[i][1] for i in idxs]
    lengths = list(map(len, payloads))
    width = max((extent + 5) // 6, max(lengths))
    unencodable: set[int] = set()
    chars = None
    if min(lengths) == width:
        # Fixed-layout types assemble to one payload length, so whole
        # groups are usually uniform: encode them in a single pass
        # instead of row by row.
        try:
            raw = "".join(payloads).encode("latin-1")
        except UnicodeEncodeError:
            pass  # some row has codepoints > 255; find it below
        else:
            chars = np.frombuffer(raw, dtype=np.uint8).reshape(k, width)
    if chars is None:
        buf = bytearray(b"0" * (width * k))  # '0' armours 6-bit value 0
        for r, payload in enumerate(payloads):
            try:
                raw = payload.encode("latin-1")
            except UnicodeEncodeError:
                unencodable.add(r)  # codepoints > 255: invalid armour
                continue
            buf[r * width : r * width + len(raw)] = raw
        chars = np.frombuffer(bytes(buf), dtype=np.uint8).reshape(k, width)
    codes = _ARMOR_LUT[chars]
    bad_mask = (codes < 0).any(axis=1)
    for r in unencodable:
        bad_mask[r] = True
    good = ~bad_mask
    rows = [idxs[r] for r in range(k) if good[r]]
    bad = [idxs[r] for r in range(k) if not good[r]]
    if not rows:
        return None, rows, bad
    # Left-shift each 6-bit code into a byte's high bits; unpackbits then
    # yields 8 columns per char of which the first 6 are the code.
    planes = np.unpackbits(
        (codes[good].astype(np.uint8)) << 2, axis=1
    ).reshape(len(rows), width, 8)
    bitmat = planes[:, :, :6].reshape(len(rows), width * 6)
    # Zero bits past each row's payload extent: this is both the fill-bit
    # strip and the read-past-end zero-extension of the scalar path.
    nbits = np.array(
        [6 * len(staged[i][1]) - staged[i][2] for i in rows],
        dtype=np.int64,
    )
    bitmat = bitmat & (
        np.arange(width * 6, dtype=np.int64)[None, :] < nbits[:, None]
    ).astype(np.uint8)
    return bitmat, rows, bad


def _uint(bitmat, start, width):
    """Unsigned big-endian field: one masked slice, one matmul."""
    weights = (1 << np.arange(width - 1, -1, -1, dtype=np.int64))
    return bitmat[:, start : start + width].astype(np.int64) @ weights


def _sint(bitmat, start, width):
    """Two's-complement field."""
    vals = _uint(bitmat, start, width)
    half = 1 << (width - 1)
    return np.where(vals >= half, vals - (1 << width), vals)


def _text(bitmat, start, nchars):
    """6-bit text field -> per-row code lists for sixbit_to_ascii."""
    weights = (1 << np.arange(5, -1, -1, dtype=np.int64))
    codes = (
        bitmat[:, start : start + 6 * nchars]
        .astype(np.int64)
        .reshape(len(bitmat), nchars, 6)
        @ weights
    )
    return codes.tolist()


# -- per-type materialisation ------------------------------------------------
# Raw integer columns come out of the bit matrix in one vectorised pass;
# scaling and sentinel handling then run per row through the *same*
# helpers and expressions as the scalar decoder, so every produced field
# is computed by the identical final operation on the identical integer.


def _header(bitmat):
    return (
        _uint(bitmat, 0, 6).tolist(),
        _uint(bitmat, 6, 2).tolist(),
        _uint(bitmat, 8, 30).tolist(),
    )


def _position_columns(staged, rows, bitmat, offsets):
    """The shared position-report columns as python-scalar lists.

    Scaling and sentinel handling use the *same expressions* as the
    scalar helpers (`_decode_sog` and friends) on the same python ints,
    so every value is bit-identical; the per-column list comprehensions
    just run them without a per-row interpreter frame.  Longitude and
    latitude divide as int64 arrays — conversion to float64 is exact
    below 2**53 and IEEE division is correctly rounded either way, so
    the quotients match the scalar ``int / float`` bit for bit.
    """
    o_sog, o_acc, o_lon, o_lat, o_cog, o_hdg, o_sec, o_raim = offsets
    sog = _uint(bitmat, o_sog, 10).tolist()
    acc = _uint(bitmat, o_acc, 1).tolist()
    lon = (_sint(bitmat, o_lon, 28) / _LATLON_SCALE).tolist()
    lat = (_sint(bitmat, o_lat, 27) / _LATLON_SCALE).tolist()
    cog = _uint(bitmat, o_cog, 12).tolist()
    heading = _uint(bitmat, o_hdg, 9).tolist()
    second = _uint(bitmat, o_sec, 6).tolist()
    raim = _uint(bitmat, o_raim, 1).tolist()
    return (
        lat,
        lon,
        [_SOG_TABLE[raw] for raw in sog],
        [_COG_TABLE[raw] for raw in cog],
        [_HDG_TABLE[raw] for raw in heading],
        [_SEC_TABLE[sec] for sec in second],
        [bool(v) for v in acc],
        [bool(v) for v in raim],
    )


def _emit(out, fixes, rows, t_col, messages):
    """Place ``(t, message)`` pairs into their output slots."""
    pairs = zip(t_col, messages)
    if fixes is None:
        for i, pair in zip(rows, pairs):
            out[i] = pair
    else:
        for i, pair in zip(rows, pairs):
            out[i] = pair
            _append_fix(fixes, pair[0], pair[1])


def _materialise_pos_a(staged, rows, bitmat, out, fixes):
    msg_type, rpt, mmsi = _header(bitmat)
    lat, lon, sog, cog, heading, ts, acc, raim = _position_columns(
        staged, rows, bitmat, (50, 60, 61, 89, 116, 128, 137, 148)
    )
    nav = [_NAV[v] for v in _uint(bitmat, 38, 4).tolist()]
    rot = [_ROT_TABLE[v] for v in _uint(bitmat, 42, 8).tolist()]
    t_col = [staged[i][0] for i in rows]
    received = [staged[i][3] for i in rows]
    # map() drives the constructors at C speed, positionally — the
    # argument order is the dataclass field order.
    messages = map(
        PositionReport, mmsi, lat, lon, sog, cog, heading, nav, rot,
        ts, acc, raim, msg_type, rpt, received,
    )
    _emit(out, fixes, rows, t_col, messages)


def _materialise_pos_b(staged, rows, bitmat, out, fixes):
    _, rpt, mmsi = _header(bitmat)
    lat, lon, sog, cog, heading, ts, acc, raim = _position_columns(
        staged, rows, bitmat, (46, 56, 57, 85, 112, 124, 133, 147)
    )
    t_col = [staged[i][0] for i in rows]
    received = [staged[i][3] for i in rows]
    messages = map(
        ClassBPositionReport, mmsi, lat, lon, sog, cog, heading,
        ts, acc, raim, _repeat(18), rpt, received,
    )
    _emit(out, fixes, rows, t_col, messages)


def _materialise_static5(staged, rows, bitmat, out):
    _, repeat, mmsi = _header(bitmat)
    imo = _uint(bitmat, 40, 30).tolist()
    callsign = _text(bitmat, 70, 7)
    shipname = _text(bitmat, 112, 20)
    ship_type = _uint(bitmat, 232, 8).tolist()
    to_bow = _uint(bitmat, 240, 9).tolist()
    to_stern = _uint(bitmat, 249, 9).tolist()
    to_port = _uint(bitmat, 258, 6).tolist()
    to_starboard = _uint(bitmat, 264, 6).tolist()
    eta_month = _uint(bitmat, 274, 4).tolist()
    eta_day = _uint(bitmat, 278, 5).tolist()
    eta_hour = _uint(bitmat, 283, 5).tolist()
    eta_minute = _uint(bitmat, 288, 6).tolist()
    draught = _uint(bitmat, 294, 8).tolist()
    destination = _text(bitmat, 302, 20)
    for r, i in enumerate(rows):
        t, _, __, received_at = staged[i]
        out[i] = (t, StaticVoyageData(
            mmsi=mmsi[r],
            imo=imo[r],
            callsign=sixbit_to_ascii(callsign[r]),
            shipname=sixbit_to_ascii(shipname[r]),
            ship_type_code=ship_type[r],
            to_bow_m=to_bow[r],
            to_stern_m=to_stern[r],
            to_port_m=to_port[r],
            to_starboard_m=to_starboard[r],
            eta_month=eta_month[r],
            eta_day=eta_day[r],
            eta_hour=eta_hour[r],
            eta_minute=eta_minute[r],
            draught_m=draught[r] / 10.0,
            destination=sixbit_to_ascii(destination[r]),
            repeat=repeat[r],
            received_at=received_at,
        ))


def _materialise_static24(staged, rows, bitmat, out):
    _, repeat, mmsi = _header(bitmat)
    part = _uint(bitmat, 38, 2).tolist()
    shipname = _text(bitmat, 40, 20)  # part A layout
    ship_type = _uint(bitmat, 40, 8).tolist()  # part B layout
    vendor = _text(bitmat, 48, 7)
    callsign = _text(bitmat, 90, 7)
    to_bow = _uint(bitmat, 132, 9).tolist()
    to_stern = _uint(bitmat, 141, 9).tolist()
    to_port = _uint(bitmat, 150, 6).tolist()
    to_starboard = _uint(bitmat, 156, 6).tolist()
    for r, i in enumerate(rows):
        t, _, __, received_at = staged[i]
        if part[r] == 0:
            message = StaticDataReport(
                mmsi=mmsi[r],
                part=0,
                shipname=sixbit_to_ascii(shipname[r]),
                repeat=repeat[r],
                received_at=received_at,
            )
        else:
            message = StaticDataReport(
                mmsi=mmsi[r],
                part=part[r],
                ship_type_code=ship_type[r],
                vendor_id=sixbit_to_ascii(vendor[r]),
                callsign=sixbit_to_ascii(callsign[r]),
                to_bow_m=to_bow[r],
                to_stern_m=to_stern[r],
                to_port_m=to_port[r],
                to_starboard_m=to_starboard[r],
                repeat=repeat[r],
                received_at=received_at,
            )
        out[i] = (t, message)
