"""AIS substrate: a from-scratch AIVDM (NMEA 0183) encoder/decoder.

The paper's entire data layer rides on the Automatic Identification System.
This package implements the link format itself so that the simulator emits
*genuine* `!AIVDM` sentences and the pipeline ingests them exactly as a real
receiver feed would, including multi-sentence messages, checksums, padding
and the field quirks (value 511 = "heading unavailable", etc.) that make AIS
data messy in practice (§1 of the paper).

Supported message types:

====  =========================================  =========
Type  Name                                       Direction
====  =========================================  =========
1-3   Class A position report                    decoded + encoded
4     Base station report                        decoded + encoded
5     Class A static & voyage data               decoded + encoded
18    Class B position report                    decoded + encoded
24    Class B static data (parts A and B)        decoded + encoded
====  =========================================  =========
"""

from repro.ais.types import (
    NavigationStatus,
    ShipType,
    PositionReport,
    BaseStationReport,
    StaticVoyageData,
    ClassBPositionReport,
    StaticDataReport,
    AisMessage,
)
from repro.ais.sixbit import BitBuffer, sixbit_to_ascii, ascii_to_sixbit
from repro.ais.checksum import nmea_checksum, verify_checksum
from repro.ais.encoder import encode_message, encode_sentences
from repro.ais.decoder import (
    AisDecoder,
    decode_sentences,
    decode_payload,
    DecodeError,
)
from repro.ais.validation import validate_message, ValidationIssue, IssueSeverity
from repro.ais.extended import (
    SarAircraftReport,
    AidToNavigationReport,
    LongRangeReport,
)

__all__ = [
    "NavigationStatus",
    "ShipType",
    "PositionReport",
    "BaseStationReport",
    "StaticVoyageData",
    "ClassBPositionReport",
    "StaticDataReport",
    "AisMessage",
    "BitBuffer",
    "sixbit_to_ascii",
    "ascii_to_sixbit",
    "nmea_checksum",
    "verify_checksum",
    "encode_message",
    "encode_sentences",
    "AisDecoder",
    "decode_sentences",
    "decode_payload",
    "DecodeError",
    "validate_message",
    "ValidationIssue",
    "IssueSeverity",
    "SarAircraftReport",
    "AidToNavigationReport",
    "LongRangeReport",
]
