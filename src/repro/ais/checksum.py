"""NMEA 0183 sentence checksum (XOR of the bytes between '!' and '*')."""

from functools import reduce
from operator import xor


def nmea_checksum(sentence_body: str) -> str:
    """Checksum of the sentence body (without the leading '!'/'$' and
    without the '*hh' trailer), as two uppercase hex digits."""
    try:
        data = sentence_body.encode("ascii")
    except UnicodeEncodeError:
        # NMEA is 7-bit; non-ASCII bodies still get the per-codepoint
        # XOR the spec-shaped fold would produce (they can only ever
        # fail verification, since a transmitted checksum is two hex
        # digits of a 7-bit fold).
        return f"{reduce(xor, map(ord, sentence_body), 0):02X}"
    # bytes iterate as ints, so the fold runs at C speed — this is on
    # the per-sentence ingest hot path.
    return f"{reduce(xor, data, 0):02X}"


def verify_checksum(sentence: str) -> bool:
    """True when a full `!AIVDM...*hh` sentence has a valid checksum."""
    if not sentence or sentence[0] not in "!$":
        return False
    star = sentence.rfind("*")
    if star == -1 or len(sentence) < star + 3:
        return False
    body = sentence[1:star]
    expected = sentence[star + 1 : star + 3].upper()
    return nmea_checksum(body) == expected
