"""NMEA 0183 sentence checksum (XOR of the bytes between '!' and '*')."""


def nmea_checksum(sentence_body: str) -> str:
    """Checksum of the sentence body (without the leading '!'/'$' and
    without the '*hh' trailer), as two uppercase hex digits."""
    value = 0
    for char in sentence_body:
        value ^= ord(char)
    return f"{value:02X}"


def verify_checksum(sentence: str) -> bool:
    """True when a full `!AIVDM...*hh` sentence has a valid checksum."""
    if not sentence or sentence[0] not in "!$":
        return False
    star = sentence.rfind("*")
    if star == -1 or len(sentence) < star + 3:
        return False
    body = sentence[1:star]
    expected = sentence[star + 1 : star + 3].upper()
    return nmea_checksum(body) == expected
