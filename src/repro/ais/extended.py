"""Extended AIS message types: 9 (SAR aircraft), 21 (AtoN), 27 (long-range).

Type 27 matters most for this library: it is the short (96-bit) position
report designed specifically for *satellite* reception — reduced position
resolution (1/10 arc-minute) in exchange for a shorter, more
collision-resistant burst.  The global scenario's satellite path can use
it to model the real ORBCOMM feed of Figure 1 more closely.
"""

from dataclasses import dataclass

from repro.ais.sixbit import BitBuffer
from repro.ais.types import NavigationStatus

_LATLON_SCALE_HIGH = 600_000.0  # 1/10000 arc-minute (types 9, 21)
_LATLON_SCALE_LOW = 600.0       # 1/10 arc-minute (type 27)


@dataclass(frozen=True)
class SarAircraftReport:
    """Search-and-rescue aircraft position report (message type 9)."""

    mmsi: int
    lat: float
    lon: float
    altitude_m: int | None = None  # 4095 = not available
    sog_knots: float | None = None
    cog_deg: float | None = None
    timestamp_s: int | None = None
    msg_type: int = 9
    repeat: int = 0
    received_at: float | None = None

    @property
    def has_position(self) -> bool:
        return abs(self.lat) <= 90.0 and abs(self.lon) <= 180.0


@dataclass(frozen=True)
class AidToNavigationReport:
    """Aid-to-navigation report (message type 21): buoys, beacons.

    ``off_position`` is the alarming field: a drifting buoy is itself a
    maritime safety event.
    """

    mmsi: int
    aton_type: int
    name: str
    lat: float
    lon: float
    off_position: bool = False
    virtual: bool = False
    msg_type: int = 21
    repeat: int = 0
    received_at: float | None = None


@dataclass(frozen=True)
class LongRangeReport:
    """Long-range AIS broadcast (message type 27, 96 bits).

    Coarse position (±1/10 arc-minute ≈ ±185 m), coarse speed (1 kn) and
    course (1°), designed for satellite reception.
    """

    mmsi: int
    lat: float
    lon: float
    sog_knots: float | None = None  # 63 = N/A, resolution 1 kn
    cog_deg: float | None = None    # 511 = N/A, resolution 1°
    nav_status: NavigationStatus = NavigationStatus.UNDEFINED
    position_accuracy: bool = False
    raim: bool = False
    msg_type: int = 27
    repeat: int = 0
    received_at: float | None = None

    @property
    def has_position(self) -> bool:
        return abs(self.lat) <= 90.0 and abs(self.lon) <= 180.0


# -- encoding -----------------------------------------------------------------


def encode_sar_aircraft(msg: SarAircraftReport) -> BitBuffer:
    buf = BitBuffer()
    buf.write_uint(9, 6)
    buf.write_uint(msg.repeat, 2)
    buf.write_uint(msg.mmsi, 30)
    altitude = 4095 if msg.altitude_m is None else min(4094, max(0, msg.altitude_m))
    buf.write_uint(altitude, 12)
    sog = 1023 if msg.sog_knots is None else min(1022, int(round(msg.sog_knots)))
    buf.write_uint(sog, 10)
    buf.write_uint(0, 1)  # position accuracy
    buf.write_int(int(round(msg.lon * _LATLON_SCALE_HIGH)), 28)
    buf.write_int(int(round(msg.lat * _LATLON_SCALE_HIGH)), 27)
    cog = 3600 if msg.cog_deg is None else int(round((msg.cog_deg % 360.0) * 10.0)) % 3600
    buf.write_uint(cog, 12)
    buf.write_uint(60 if msg.timestamp_s is None else msg.timestamp_s % 64, 6)
    buf.write_uint(0, 8)  # regional reserved
    buf.write_uint(0, 1)  # DTE
    buf.write_uint(0, 3)  # spare
    buf.write_uint(0, 1)  # assigned
    buf.write_uint(0, 1)  # RAIM
    buf.write_uint(0, 20)  # radio
    return buf


def decode_sar_aircraft(buf: BitBuffer, repeat: int, mmsi: int) -> SarAircraftReport:
    altitude = buf.read_uint(12)
    sog = buf.read_uint(10)
    buf.read_uint(1)
    lon = buf.read_int(28) / _LATLON_SCALE_HIGH
    lat = buf.read_int(27) / _LATLON_SCALE_HIGH
    cog = buf.read_uint(12)
    second = buf.read_uint(6)
    return SarAircraftReport(
        mmsi=mmsi,
        lat=lat,
        lon=lon,
        altitude_m=None if altitude == 4095 else altitude,
        sog_knots=None if sog == 1023 else float(sog),
        cog_deg=None if cog >= 3600 else cog / 10.0,
        timestamp_s=None if second >= 60 else second,
        repeat=repeat,
    )


def encode_aton(msg: AidToNavigationReport) -> BitBuffer:
    buf = BitBuffer()
    buf.write_uint(21, 6)
    buf.write_uint(msg.repeat, 2)
    buf.write_uint(msg.mmsi, 30)
    buf.write_uint(msg.aton_type & 0x1F, 5)
    buf.write_text(msg.name, 20)
    buf.write_uint(0, 1)  # position accuracy
    buf.write_int(int(round(msg.lon * _LATLON_SCALE_HIGH)), 28)
    buf.write_int(int(round(msg.lat * _LATLON_SCALE_HIGH)), 27)
    buf.write_uint(0, 9 + 9 + 6 + 6)  # dimensions
    buf.write_uint(1, 4)  # EPFD
    buf.write_uint(60, 6)  # UTC second N/A
    buf.write_uint(1 if msg.off_position else 0, 1)
    buf.write_uint(0, 8)  # regional
    buf.write_uint(0, 1)  # RAIM
    buf.write_uint(1 if msg.virtual else 0, 1)
    buf.write_uint(0, 1)  # assigned
    buf.write_uint(0, 1)  # spare
    return buf


def decode_aton(buf: BitBuffer, repeat: int, mmsi: int) -> AidToNavigationReport:
    aton_type = buf.read_uint(5)
    name = buf.read_text(20)
    buf.read_uint(1)
    lon = buf.read_int(28) / _LATLON_SCALE_HIGH
    lat = buf.read_int(27) / _LATLON_SCALE_HIGH
    buf.read_uint(9 + 9 + 6 + 6)
    buf.read_uint(4)
    buf.read_uint(6)
    off_position = bool(buf.read_uint(1))
    buf.read_uint(8)
    buf.read_uint(1)  # RAIM
    virtual = bool(buf.read_uint(1))
    return AidToNavigationReport(
        mmsi=mmsi,
        aton_type=aton_type,
        name=name,
        lat=lat,
        lon=lon,
        off_position=off_position,
        virtual=virtual,
        repeat=repeat,
    )


def encode_long_range(msg: LongRangeReport) -> BitBuffer:
    buf = BitBuffer()
    buf.write_uint(27, 6)
    buf.write_uint(msg.repeat, 2)
    buf.write_uint(msg.mmsi, 30)
    buf.write_uint(1 if msg.position_accuracy else 0, 1)
    buf.write_uint(1 if msg.raim else 0, 1)
    buf.write_uint(int(msg.nav_status), 4)
    buf.write_int(int(round(msg.lon * _LATLON_SCALE_LOW)), 18)
    buf.write_int(int(round(msg.lat * _LATLON_SCALE_LOW)), 17)
    sog = 63 if msg.sog_knots is None else min(62, int(round(msg.sog_knots)))
    buf.write_uint(sog, 6)
    cog = 511 if msg.cog_deg is None else int(round(msg.cog_deg % 360.0)) % 360
    buf.write_uint(cog, 9)
    buf.write_uint(0, 1)  # GNSS position, current
    buf.write_uint(0, 1)  # spare
    return buf


def decode_long_range(buf: BitBuffer, repeat: int, mmsi: int) -> LongRangeReport:
    accuracy = bool(buf.read_uint(1))
    raim = bool(buf.read_uint(1))
    status = NavigationStatus(buf.read_uint(4))
    lon = buf.read_int(18) / _LATLON_SCALE_LOW
    lat = buf.read_int(17) / _LATLON_SCALE_LOW
    sog = buf.read_uint(6)
    cog = buf.read_uint(9)
    return LongRangeReport(
        mmsi=mmsi,
        lat=lat,
        lon=lon,
        sog_knots=None if sog == 63 else float(sog),
        cog_deg=None if cog == 511 else float(cog),
        nav_status=status,
        position_accuracy=accuracy,
        raim=raim,
        repeat=repeat,
    )
