"""Bit-level plumbing for AIS payloads.

AIS packs message fields into a bit string, then "armours" every 6 bits as
one printable ASCII character for transport in NMEA sentences.  Text fields
inside messages use a *different* 6-bit alphabet.  Both live here.
"""

#: The 6-bit text alphabet used inside AIS messages ('@' is the null/pad).
SIXBIT_ALPHABET = (
    "@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_ !\"#$%&'()*+,-./0123456789:;<=>?"
)
_SIXBIT_INDEX = {c: i for i, c in enumerate(SIXBIT_ALPHABET)}

#: Armour lookup tables.  ``ARMOR_TO_CODE[byte]`` is the 6-bit value of a
#: payload character (-1 for the bytes outside the armour alphabet), so
#: both the scalar decoder and the vectorised batch decoder
#: (:mod:`repro.ais.batch`, which lifts this table into a numpy LUT)
#: classify a character with a single probe instead of range arithmetic.
ARMOR_TO_CODE: tuple[int, ...] = tuple(
    code - 48 if 48 <= code <= 87
    else code - 56 if 96 <= code <= 119
    else -1
    for code in range(256)
)
#: ``CODE_TO_ARMOR[value]`` armours a 6-bit value as its payload character.
CODE_TO_ARMOR: str = "".join(
    chr(value + 48 if value < 40 else value + 56) for value in range(64)
)
#: Text lookup: 6-bit code (mod 64) -> alphabet byte, for bytes.translate.
_TEXT_TABLE = bytes(ord(SIXBIT_ALPHABET[i & 0x3F]) for i in range(256))


def char_to_armor(value: int) -> str:
    """Armour one 6-bit value (0..63) as a payload character."""
    if not 0 <= value <= 63:
        raise ValueError(f"6-bit value out of range: {value}")
    return CODE_TO_ARMOR[value]


def armor_to_char(char: str) -> int:
    """Recover the 6-bit value from a payload character."""
    code = ord(char)
    value = ARMOR_TO_CODE[code] if code < 256 else -1
    if value < 0:
        raise ValueError(f"invalid AIS payload character: {char!r}")
    return value


def sixbit_to_ascii(values: list[int]) -> str:
    """Decode a sequence of 6-bit codes into message text, trimming the
    trailing '@' padding and whitespace per the AIS convention."""
    text = bytes(v & 0x3F for v in values).translate(_TEXT_TABLE)
    return text.decode("ascii").split("@", 1)[0].rstrip()


def ascii_to_sixbit(text: str, width_chars: int) -> list[int]:
    """Encode message text as exactly ``width_chars`` 6-bit codes,
    '@'-padded.  Unrepresentable characters become '?'; lowercase is
    upcased, matching shipborne transceiver behaviour."""
    codes = []
    for char in text.upper()[:width_chars]:
        codes.append(_SIXBIT_INDEX.get(char, _SIXBIT_INDEX["?"]))
    while len(codes) < width_chars:
        codes.append(0)  # '@' padding
    return codes


class BitBuffer:
    """Append-or-read bit buffer for AIS payload (de)serialisation.

    Writing and reading are independent: encoders only append, decoders
    construct from a payload and only read.  Integers are big-endian within
    the buffer, as the AIS standard requires.
    """

    def __init__(self, bits: list[int] | None = None) -> None:
        self._bits: list[int] = list(bits) if bits else []
        self._pos = 0

    def __len__(self) -> int:
        return len(self._bits)

    # -- writing ---------------------------------------------------------

    def write_uint(self, value: int, width: int) -> None:
        """Append an unsigned integer of ``width`` bits."""
        if value < 0 or value >= (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self._bits.append((value >> shift) & 1)

    def write_int(self, value: int, width: int) -> None:
        """Append a signed (two's-complement) integer of ``width`` bits."""
        lo = -(1 << (width - 1))
        hi = (1 << (width - 1)) - 1
        if not lo <= value <= hi:
            raise ValueError(f"value {value} does not fit in signed {width} bits")
        self.write_uint(value & ((1 << width) - 1), width)

    def write_text(self, text: str, width_chars: int) -> None:
        """Append a 6-bit text field of ``width_chars`` characters."""
        for code in ascii_to_sixbit(text, width_chars):
            self.write_uint(code, 6)

    # -- reading ---------------------------------------------------------

    @property
    def remaining(self) -> int:
        return len(self._bits) - self._pos

    def read_uint(self, width: int) -> int:
        """Read an unsigned integer; missing trailing bits read as zero,
        which mirrors how receivers treat truncated payloads."""
        value = 0
        for _ in range(width):
            bit = self._bits[self._pos] if self._pos < len(self._bits) else 0
            value = (value << 1) | bit
            self._pos += 1
        return value

    def read_int(self, width: int) -> int:
        """Read a signed (two's-complement) integer."""
        value = self.read_uint(width)
        if value & (1 << (width - 1)):
            value -= 1 << width
        return value

    def read_text(self, width_chars: int) -> str:
        """Read a 6-bit text field."""
        return sixbit_to_ascii([self.read_uint(6) for _ in range(width_chars)])

    def seek(self, bit_position: int) -> None:
        self._pos = bit_position

    # -- armouring -------------------------------------------------------

    def to_payload(self) -> tuple[str, int]:
        """Armour the buffer as ``(payload, fill_bits)``.

        ``fill_bits`` is the number of padding bits appended to reach a
        multiple of 6, reported in the NMEA sentence trailer.
        """
        fill = (-len(self._bits)) % 6
        bits = self._bits + [0] * fill
        chars = []
        for i in range(0, len(bits), 6):
            value = 0
            for bit in bits[i : i + 6]:
                value = (value << 1) | bit
            chars.append(char_to_armor(value))
        return "".join(chars), fill

    @classmethod
    def from_payload(cls, payload: str, fill_bits: int = 0) -> "BitBuffer":
        """De-armour an NMEA payload back into a bit buffer."""
        bits: list[int] = []
        for char in payload:
            value = armor_to_char(char)
            for shift in range(5, -1, -1):
                bits.append((value >> shift) & 1)
        if fill_bits:
            if fill_bits > 5 or fill_bits > len(bits):
                raise ValueError(f"invalid fill_bits: {fill_bits}")
            bits = bits[:-fill_bits]
        return cls(bits)
