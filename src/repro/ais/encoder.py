"""Encode AIS messages into bit payloads and `!AIVDM` sentences."""

import math

from repro.ais.checksum import nmea_checksum
from repro.ais.sixbit import BitBuffer
from repro.ais.types import (
    AisMessage,
    BaseStationReport,
    ClassBPositionReport,
    PositionReport,
    StaticDataReport,
    StaticVoyageData,
)

#: Maximum armoured payload characters per sentence.  Keeps each NMEA line
#: within the 82-character budget; longer payloads are fragmented.
MAX_PAYLOAD_CHARS = 60

_LATLON_SCALE = 600_000.0  # 1/10000 arc-minute units
_LON_NA = 0x6791AC0  # 181 degrees: "longitude not available"
_LAT_NA = 0x3412140  # 91 degrees: "latitude not available"


def _encode_rot(rot_deg_per_min: float | None) -> int:
    """Encode rate-of-turn using the AIS 4.733*sqrt law; -128 = unavailable."""
    if rot_deg_per_min is None:
        return -128
    magnitude = min(126.0, 4.733 * math.sqrt(abs(rot_deg_per_min)))
    return int(round(math.copysign(magnitude, rot_deg_per_min)))


def _encode_sog(sog_knots: float | None) -> int:
    if sog_knots is None:
        return 1023
    return min(1022, max(0, int(round(sog_knots * 10.0))))


def _encode_cog(cog_deg: float | None) -> int:
    if cog_deg is None:
        return 3600
    return int(round((cog_deg % 360.0) * 10.0)) % 3600


def _encode_heading(heading_deg: float | None) -> int:
    if heading_deg is None:
        return 511
    return int(round(heading_deg % 360.0)) % 360


def _encode_latlon(buffer: BitBuffer, lat: float, lon: float) -> None:
    if abs(lon) > 180.0:
        buffer.write_int(_LON_NA, 28)
    else:
        buffer.write_int(int(round(lon * _LATLON_SCALE)), 28)
    if abs(lat) > 90.0:
        buffer.write_int(_LAT_NA, 27)
    else:
        buffer.write_int(int(round(lat * _LATLON_SCALE)), 27)


def _encode_position_report(msg: PositionReport) -> BitBuffer:
    buf = BitBuffer()
    buf.write_uint(msg.msg_type, 6)
    buf.write_uint(msg.repeat, 2)
    buf.write_uint(msg.mmsi, 30)
    buf.write_uint(int(msg.nav_status), 4)
    buf.write_int(_encode_rot(msg.rot_deg_per_min), 8)
    buf.write_uint(_encode_sog(msg.sog_knots), 10)
    buf.write_uint(1 if msg.position_accuracy else 0, 1)
    _encode_latlon(buf, msg.lat, msg.lon)
    buf.write_uint(_encode_cog(msg.cog_deg), 12)
    buf.write_uint(_encode_heading(msg.heading_deg), 9)
    buf.write_uint(60 if msg.timestamp_s is None else msg.timestamp_s % 64, 6)
    buf.write_uint(0, 2)  # manoeuvre indicator: not available
    buf.write_uint(0, 3)  # spare
    buf.write_uint(1 if msg.raim else 0, 1)
    buf.write_uint(0, 19)  # radio status (SOTDMA), irrelevant to analytics
    return buf


def _encode_base_station(msg: BaseStationReport) -> BitBuffer:
    buf = BitBuffer()
    buf.write_uint(msg.msg_type, 6)
    buf.write_uint(msg.repeat, 2)
    buf.write_uint(msg.mmsi, 30)
    buf.write_uint(msg.year, 14)
    buf.write_uint(msg.month, 4)
    buf.write_uint(msg.day, 5)
    buf.write_uint(msg.hour, 5)
    buf.write_uint(msg.minute, 6)
    buf.write_uint(msg.second, 6)
    buf.write_uint(1 if msg.position_accuracy else 0, 1)
    _encode_latlon(buf, msg.lat, msg.lon)
    buf.write_uint(1, 4)  # EPFD: GPS
    buf.write_uint(0, 10)  # spare
    buf.write_uint(1 if msg.raim else 0, 1)
    buf.write_uint(0, 19)
    return buf


def _encode_static_voyage(msg: StaticVoyageData) -> BitBuffer:
    buf = BitBuffer()
    buf.write_uint(msg.msg_type, 6)
    buf.write_uint(msg.repeat, 2)
    buf.write_uint(msg.mmsi, 30)
    buf.write_uint(0, 2)  # AIS version
    buf.write_uint(msg.imo, 30)
    buf.write_text(msg.callsign, 7)
    buf.write_text(msg.shipname, 20)
    buf.write_uint(msg.ship_type_code & 0xFF, 8)
    buf.write_uint(min(511, msg.to_bow_m), 9)
    buf.write_uint(min(511, msg.to_stern_m), 9)
    buf.write_uint(min(63, msg.to_port_m), 6)
    buf.write_uint(min(63, msg.to_starboard_m), 6)
    buf.write_uint(1, 4)  # EPFD: GPS
    buf.write_uint(msg.eta_month, 4)
    buf.write_uint(msg.eta_day, 5)
    buf.write_uint(msg.eta_hour, 5)
    buf.write_uint(msg.eta_minute, 6)
    buf.write_uint(min(255, int(round(msg.draught_m * 10.0))), 8)
    buf.write_text(msg.destination, 20)
    buf.write_uint(0, 1)  # DTE
    buf.write_uint(0, 1)  # spare
    return buf


def _encode_class_b(msg: ClassBPositionReport) -> BitBuffer:
    buf = BitBuffer()
    buf.write_uint(msg.msg_type, 6)
    buf.write_uint(msg.repeat, 2)
    buf.write_uint(msg.mmsi, 30)
    buf.write_uint(0, 8)  # regional reserved
    buf.write_uint(_encode_sog(msg.sog_knots), 10)
    buf.write_uint(1 if msg.position_accuracy else 0, 1)
    _encode_latlon(buf, msg.lat, msg.lon)
    buf.write_uint(_encode_cog(msg.cog_deg), 12)
    buf.write_uint(_encode_heading(msg.heading_deg), 9)
    buf.write_uint(60 if msg.timestamp_s is None else msg.timestamp_s % 64, 6)
    buf.write_uint(0, 2)  # regional reserved
    buf.write_uint(1, 1)  # CS unit: carrier-sense
    buf.write_uint(0, 1)  # no display
    buf.write_uint(0, 1)  # no DSC
    buf.write_uint(0, 1)  # band
    buf.write_uint(0, 1)  # msg22
    buf.write_uint(0, 1)  # assigned mode
    buf.write_uint(1 if msg.raim else 0, 1)
    buf.write_uint(0, 20)
    return buf


def _encode_static_data(msg: StaticDataReport) -> BitBuffer:
    buf = BitBuffer()
    buf.write_uint(msg.msg_type, 6)
    buf.write_uint(msg.repeat, 2)
    buf.write_uint(msg.mmsi, 30)
    buf.write_uint(msg.part, 2)
    if msg.part == 0:
        buf.write_text(msg.shipname, 20)
    else:
        buf.write_uint(msg.ship_type_code & 0xFF, 8)
        buf.write_text(msg.vendor_id, 7)
        buf.write_text(msg.callsign, 7)
        buf.write_uint(min(511, msg.to_bow_m), 9)
        buf.write_uint(min(511, msg.to_stern_m), 9)
        buf.write_uint(min(63, msg.to_port_m), 6)
        buf.write_uint(min(63, msg.to_starboard_m), 6)
        buf.write_uint(0, 6)  # spare
    return buf


def encode_message(msg) -> BitBuffer:
    """Serialise a message dataclass into its AIS bit layout."""
    from repro.ais.extended import (
        AidToNavigationReport,
        LongRangeReport,
        SarAircraftReport,
        encode_aton,
        encode_long_range,
        encode_sar_aircraft,
    )

    if isinstance(msg, PositionReport):
        return _encode_position_report(msg)
    if isinstance(msg, BaseStationReport):
        return _encode_base_station(msg)
    if isinstance(msg, StaticVoyageData):
        return _encode_static_voyage(msg)
    if isinstance(msg, ClassBPositionReport):
        return _encode_class_b(msg)
    if isinstance(msg, StaticDataReport):
        return _encode_static_data(msg)
    if isinstance(msg, SarAircraftReport):
        return encode_sar_aircraft(msg)
    if isinstance(msg, AidToNavigationReport):
        return encode_aton(msg)
    if isinstance(msg, LongRangeReport):
        return encode_long_range(msg)
    raise TypeError(f"cannot encode message of type {type(msg).__name__}")


def encode_sentences(
    msg: AisMessage, channel: str = "A", sequence_id: int = 0
) -> list[str]:
    """Encode a message as one or more complete `!AIVDM` sentences.

    Multi-part messages (type 5 mainly) are fragmented at
    :data:`MAX_PAYLOAD_CHARS` and share ``sequence_id`` per the standard.
    """
    payload, fill = encode_message(msg).to_payload()
    fragments = [
        payload[i : i + MAX_PAYLOAD_CHARS]
        for i in range(0, len(payload), MAX_PAYLOAD_CHARS)
    ] or [""]
    total = len(fragments)
    sentences = []
    for index, fragment in enumerate(fragments, start=1):
        frag_fill = fill if index == total else 0
        seq = str(sequence_id % 10) if total > 1 else ""
        body = f"AIVDM,{total},{index},{seq},{channel},{fragment},{frag_fill}"
        sentences.append(f"!{body}*{nmea_checksum(body)}")
    return sentences
