"""Decode `!AIVDM` sentences back into message dataclasses.

The decoder is deliberately defensive: real AIS feeds contain truncated
lines, bad checksums and unknown message types (§1 of the paper highlights
AIS veracity problems), and an ingest pipeline must skip garbage without
dying.  Every rejection is counted by reason in :attr:`AisDecoder.stats`.
"""

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.ais.checksum import nmea_checksum
from repro.ais.sixbit import BitBuffer
from repro.ais.types import (
    AisMessage,
    BaseStationReport,
    ClassBPositionReport,
    NavigationStatus,
    PositionReport,
    StaticDataReport,
    StaticVoyageData,
)

_LATLON_SCALE = 600_000.0


class DecodeError(ValueError):
    """Raised by :func:`decode_payload` for undecodable payloads."""


def _decode_rot(raw: int) -> float | None:
    if raw == -128:
        return None
    magnitude = (abs(raw) / 4.733) ** 2
    return math.copysign(magnitude, raw)


def _decode_sog(raw: int) -> float | None:
    return None if raw == 1023 else raw / 10.0


def _decode_cog(raw: int) -> float | None:
    return None if raw >= 3600 else raw / 10.0


def _decode_heading(raw: int) -> float | None:
    return None if raw == 511 else float(raw)


def _decode_position_report(buf: BitBuffer, msg_type: int, repeat: int, mmsi: int) -> PositionReport:
    nav_status = NavigationStatus(buf.read_uint(4))
    rot = _decode_rot(buf.read_int(8))
    sog = _decode_sog(buf.read_uint(10))
    accuracy = bool(buf.read_uint(1))
    lon = buf.read_int(28) / _LATLON_SCALE
    lat = buf.read_int(27) / _LATLON_SCALE
    cog = _decode_cog(buf.read_uint(12))
    heading = _decode_heading(buf.read_uint(9))
    second = buf.read_uint(6)
    buf.read_uint(2)  # manoeuvre
    buf.read_uint(3)  # spare
    raim = bool(buf.read_uint(1))
    return PositionReport(
        mmsi=mmsi,
        lat=lat,
        lon=lon,
        sog_knots=sog,
        cog_deg=cog,
        heading_deg=heading,
        nav_status=nav_status,
        rot_deg_per_min=rot,
        timestamp_s=None if second >= 60 else second,
        position_accuracy=accuracy,
        raim=raim,
        msg_type=msg_type,
        repeat=repeat,
    )


def _decode_base_station(buf: BitBuffer, repeat: int, mmsi: int) -> BaseStationReport:
    year = buf.read_uint(14)
    month = buf.read_uint(4)
    day = buf.read_uint(5)
    hour = buf.read_uint(5)
    minute = buf.read_uint(6)
    second = buf.read_uint(6)
    accuracy = bool(buf.read_uint(1))
    lon = buf.read_int(28) / _LATLON_SCALE
    lat = buf.read_int(27) / _LATLON_SCALE
    buf.read_uint(4)  # EPFD
    buf.read_uint(10)  # spare
    raim = bool(buf.read_uint(1))
    return BaseStationReport(
        mmsi=mmsi,
        year=year,
        month=month,
        day=day,
        hour=hour,
        minute=minute,
        second=second,
        lat=lat,
        lon=lon,
        position_accuracy=accuracy,
        raim=raim,
        repeat=repeat,
    )


def _decode_static_voyage(buf: BitBuffer, repeat: int, mmsi: int) -> StaticVoyageData:
    buf.read_uint(2)  # AIS version
    imo = buf.read_uint(30)
    callsign = buf.read_text(7)
    shipname = buf.read_text(20)
    ship_type = buf.read_uint(8)
    to_bow = buf.read_uint(9)
    to_stern = buf.read_uint(9)
    to_port = buf.read_uint(6)
    to_starboard = buf.read_uint(6)
    buf.read_uint(4)  # EPFD
    eta_month = buf.read_uint(4)
    eta_day = buf.read_uint(5)
    eta_hour = buf.read_uint(5)
    eta_minute = buf.read_uint(6)
    draught = buf.read_uint(8) / 10.0
    destination = buf.read_text(20)
    return StaticVoyageData(
        mmsi=mmsi,
        imo=imo,
        callsign=callsign,
        shipname=shipname,
        ship_type_code=ship_type,
        to_bow_m=to_bow,
        to_stern_m=to_stern,
        to_port_m=to_port,
        to_starboard_m=to_starboard,
        eta_month=eta_month,
        eta_day=eta_day,
        eta_hour=eta_hour,
        eta_minute=eta_minute,
        draught_m=draught,
        destination=destination,
        repeat=repeat,
    )


def _decode_class_b(buf: BitBuffer, repeat: int, mmsi: int) -> ClassBPositionReport:
    buf.read_uint(8)  # regional
    sog = _decode_sog(buf.read_uint(10))
    accuracy = bool(buf.read_uint(1))
    lon = buf.read_int(28) / _LATLON_SCALE
    lat = buf.read_int(27) / _LATLON_SCALE
    cog = _decode_cog(buf.read_uint(12))
    heading = _decode_heading(buf.read_uint(9))
    second = buf.read_uint(6)
    buf.read_uint(2 + 1 + 1 + 1 + 1 + 1 + 1)  # flags
    raim = bool(buf.read_uint(1))
    return ClassBPositionReport(
        mmsi=mmsi,
        lat=lat,
        lon=lon,
        sog_knots=sog,
        cog_deg=cog,
        heading_deg=heading,
        timestamp_s=None if second >= 60 else second,
        position_accuracy=accuracy,
        raim=raim,
        repeat=repeat,
    )


def _decode_static_data(buf: BitBuffer, repeat: int, mmsi: int) -> StaticDataReport:
    part = buf.read_uint(2)
    if part == 0:
        return StaticDataReport(
            mmsi=mmsi, part=0, shipname=buf.read_text(20), repeat=repeat
        )
    ship_type = buf.read_uint(8)
    vendor = buf.read_text(7)
    callsign = buf.read_text(7)
    to_bow = buf.read_uint(9)
    to_stern = buf.read_uint(9)
    to_port = buf.read_uint(6)
    to_starboard = buf.read_uint(6)
    return StaticDataReport(
        mmsi=mmsi,
        part=part,
        ship_type_code=ship_type,
        vendor_id=vendor,
        callsign=callsign,
        to_bow_m=to_bow,
        to_stern_m=to_stern,
        to_port_m=to_port,
        to_starboard_m=to_starboard,
        repeat=repeat,
    )


def decode_payload(payload: str, fill_bits: int = 0) -> AisMessage:
    """Decode an armoured payload into a message dataclass.

    Raises :class:`DecodeError` for unsupported types or malformed payloads.
    """
    try:
        buf = BitBuffer.from_payload(payload, fill_bits)
    except ValueError as exc:
        raise DecodeError(str(exc)) from exc
    if len(buf) < 38:
        raise DecodeError("payload too short for the common header")
    msg_type = buf.read_uint(6)
    repeat = buf.read_uint(2)
    mmsi = buf.read_uint(30)
    if msg_type in (1, 2, 3):
        if len(buf) < 168:
            raise DecodeError(f"type {msg_type} payload truncated: {len(buf)} bits")
        return _decode_position_report(buf, msg_type, repeat, mmsi)
    if msg_type == 4:
        return _decode_base_station(buf, repeat, mmsi)
    if msg_type == 5:
        if len(buf) < 420:
            raise DecodeError(f"type 5 payload truncated: {len(buf)} bits")
        return _decode_static_voyage(buf, repeat, mmsi)
    if msg_type == 18:
        return _decode_class_b(buf, repeat, mmsi)
    if msg_type == 24:
        return _decode_static_data(buf, repeat, mmsi)
    if msg_type in (9, 21, 27):
        from repro.ais.extended import (
            decode_aton,
            decode_long_range,
            decode_sar_aircraft,
        )

        if msg_type == 9:
            return decode_sar_aircraft(buf, repeat, mmsi)
        if msg_type == 21:
            return decode_aton(buf, repeat, mmsi)
        return decode_long_range(buf, repeat, mmsi)
    raise DecodeError(f"unsupported message type {msg_type}")


@dataclass
class _Fragment:
    total: int
    received: dict[int, str] = field(default_factory=dict)
    fill_bits: int = 0


class AisDecoder:
    """Stateful sentence-stream decoder with multi-part reassembly.

    Feed raw NMEA lines in arrival order; complete messages come back as
    dataclasses.  ``stats`` counts every accepted and rejected line by
    reason, which the ingest benchmarks report.
    """

    def __init__(self, check_checksum: bool = True) -> None:
        self.check_checksum = check_checksum
        self.stats: Counter[str] = Counter()
        self._pending: dict[tuple[str, str], _Fragment] = {}

    def feed(self, sentence: str, received_at: float | None = None) -> AisMessage | None:
        """Process one NMEA line; returns a message when one completes."""
        ready = self.assemble(sentence)
        if ready is None:
            return None
        return finish_payload(ready[0], ready[1], received_at, self.stats)

    def assemble(self, sentence: str) -> tuple[str, int] | None:
        """Line framing and multipart reassembly only — no bit decoding.

        Returns ``(payload, fill_bits)`` once a complete armoured
        payload is available, ``None`` otherwise (rejects counted in
        ``stats``, fragments buffered).  This is the *stateful, serial*
        half of decoding: fragments must arrive in order through one
        assembler.  The returned payload is position-independent data —
        hand it to :func:`finish_payload` on any thread.
        """
        sentence = sentence.strip()
        if not sentence.startswith(("!AIVDM", "!AIVDO")):
            self.stats["not_aivdm"] += 1
            return None
        star = sentence.rfind("*")
        if self.check_checksum:
            # Inlined verify_checksum: this runs once per sentence on
            # the serial half of the hot path, and the '*' position and
            # body slice are reused for field parsing below.  The
            # leading-character test is covered by startswith above.
            if star == -1 or len(sentence) < star + 3 or (
                nmea_checksum(sentence[1:star])
                != sentence[star + 1 : star + 3].upper()
            ):
                self.stats["bad_checksum"] += 1
                return None
        fields = sentence[1:star].split(",")
        if len(fields) != 7:
            self.stats["bad_field_count"] += 1
            return None
        __, total_s, index_s, seq_id, channel, payload, fill_s = fields
        try:
            total = int(total_s)
            index = int(index_s)
            fill = int(fill_s)
        except ValueError:
            self.stats["bad_numeric_field"] += 1
            return None
        if total == 1:
            return payload, fill
        key = (seq_id, channel)
        fragment = self._pending.get(key)
        if fragment is None or fragment.total != total:
            fragment = _Fragment(total=total)
            self._pending[key] = fragment
        fragment.received[index] = payload
        if index == total:
            fragment.fill_bits = fill
        if len(fragment.received) == total:
            del self._pending[key]
            assembled = "".join(fragment.received[i] for i in range(1, total + 1))
            return assembled, fragment.fill_bits
        self.stats["fragment_buffered"] += 1
        return None


def finish_payload(
    payload: str,
    fill: int,
    received_at: float | None,
    stats: Counter,
) -> AisMessage | None:
    """Decode one assembled payload, counting outcomes into ``stats``.

    Stateless apart from the caller-supplied counter, so shard workers
    decode chunks concurrently with thread-local counters and merge
    them afterwards (Counter addition is order-insensitive).
    """
    try:
        message = decode_payload(payload, fill)
    except DecodeError as exc:
        stats["decode_error"] += 1
        stats[f"decode_error:{exc.args[0][:40]}"] += 1
        return None
    stats["decoded"] += 1
    if received_at is not None:
        # Dataclasses are frozen; rebuild with the reception time.
        message = type(message)(
            **{**message.__dict__, "received_at": received_at}
        )
    return message


def decode_sentences(sentences: list[str]) -> list[AisMessage]:
    """Decode a batch of NMEA lines, skipping undecodable ones."""
    decoder = AisDecoder()
    messages = []
    for sentence in sentences:
        message = decoder.feed(sentence)
        if message is not None:
            messages.append(message)
    return messages
