"""AIS message dataclasses and enumerations.

Field semantics (sentinel values, scaling) follow ITU-R M.1371-5.  Decoded
messages keep sentinels as ``None`` at the Python level: a ``PositionReport``
with no heading has ``heading is None``, never ``511``.
"""

import enum
from dataclasses import dataclass


class NavigationStatus(enum.IntEnum):
    """Class A navigation status (4-bit field)."""

    UNDER_WAY_ENGINE = 0
    AT_ANCHOR = 1
    NOT_UNDER_COMMAND = 2
    RESTRICTED_MANOEUVRABILITY = 3
    CONSTRAINED_BY_DRAUGHT = 4
    MOORED = 5
    AGROUND = 6
    ENGAGED_IN_FISHING = 7
    UNDER_WAY_SAILING = 8
    RESERVED_9 = 9
    RESERVED_10 = 10
    POWER_DRIVEN_TOWING_ASTERN = 11
    POWER_DRIVEN_PUSHING_AHEAD = 12
    RESERVED_13 = 13
    AIS_SART = 14
    UNDEFINED = 15


class ShipType(enum.IntEnum):
    """Coarse ship-type groups from the 8-bit AIS ship type code.

    AIS uses decades (30 = fishing, 60-69 = passenger, 70-79 = cargo,
    80-89 = tanker ...); we expose the codes the simulator and the semantic
    layer care about and map everything else to OTHER.
    """

    NOT_AVAILABLE = 0
    WING_IN_GROUND = 20
    FISHING = 30
    TOWING = 31
    DREDGING = 33
    DIVING = 34
    MILITARY = 35
    SAILING = 36
    PLEASURE_CRAFT = 37
    HIGH_SPEED_CRAFT = 40
    PILOT_VESSEL = 50
    SEARCH_AND_RESCUE = 51
    TUG = 52
    PASSENGER = 60
    CARGO = 70
    TANKER = 80
    OTHER = 90

    @classmethod
    def from_code(cls, code: int) -> "ShipType":
        """Collapse any raw 8-bit code onto the enum, preserving decades."""
        if code in cls._value2member_map_:
            return cls(code)
        decade = (code // 10) * 10
        if decade in (40, 60, 70, 80, 90):
            return cls(decade)
        return cls.OTHER

    @property
    def decade_label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class PositionReport:
    """Class A position report (message types 1, 2 and 3)."""

    mmsi: int
    lat: float
    lon: float
    sog_knots: float | None = None
    cog_deg: float | None = None
    heading_deg: float | None = None
    nav_status: NavigationStatus = NavigationStatus.UNDEFINED
    rot_deg_per_min: float | None = None
    timestamp_s: int | None = None
    position_accuracy: bool = False
    raim: bool = False
    msg_type: int = 1
    repeat: int = 0
    #: Receiver-assigned reception epoch (seconds); not part of the wire
    #: format but carried once decoded.
    received_at: float | None = None

    @property
    def has_position(self) -> bool:
        """False for the 'position unavailable' sentinel (lat=91, lon=181)."""
        return abs(self.lat) <= 90.0 and abs(self.lon) <= 180.0


@dataclass(frozen=True)
class BaseStationReport:
    """Base station report (message type 4): UTC time + position."""

    mmsi: int
    year: int
    month: int
    day: int
    hour: int
    minute: int
    second: int
    lat: float
    lon: float
    position_accuracy: bool = False
    raim: bool = False
    msg_type: int = 4
    repeat: int = 0
    received_at: float | None = None


@dataclass(frozen=True)
class StaticVoyageData:
    """Class A static and voyage-related data (message type 5)."""

    mmsi: int
    imo: int = 0
    callsign: str = ""
    shipname: str = ""
    ship_type_code: int = 0
    to_bow_m: int = 0
    to_stern_m: int = 0
    to_port_m: int = 0
    to_starboard_m: int = 0
    eta_month: int = 0
    eta_day: int = 0
    eta_hour: int = 24
    eta_minute: int = 60
    draught_m: float = 0.0
    destination: str = ""
    msg_type: int = 5
    repeat: int = 0
    received_at: float | None = None

    @property
    def ship_type(self) -> ShipType:
        return ShipType.from_code(self.ship_type_code)

    @property
    def length_m(self) -> int:
        return self.to_bow_m + self.to_stern_m

    @property
    def beam_m(self) -> int:
        return self.to_port_m + self.to_starboard_m


@dataclass(frozen=True)
class ClassBPositionReport:
    """Class B equipment position report (message type 18)."""

    mmsi: int
    lat: float
    lon: float
    sog_knots: float | None = None
    cog_deg: float | None = None
    heading_deg: float | None = None
    timestamp_s: int | None = None
    position_accuracy: bool = False
    raim: bool = False
    msg_type: int = 18
    repeat: int = 0
    received_at: float | None = None

    @property
    def has_position(self) -> bool:
        return abs(self.lat) <= 90.0 and abs(self.lon) <= 180.0


@dataclass(frozen=True)
class StaticDataReport:
    """Class B static data report (message type 24, parts A and B)."""

    mmsi: int
    part: int
    shipname: str = ""
    ship_type_code: int = 0
    vendor_id: str = ""
    callsign: str = ""
    to_bow_m: int = 0
    to_stern_m: int = 0
    to_port_m: int = 0
    to_starboard_m: int = 0
    msg_type: int = 24
    repeat: int = 0
    received_at: float | None = None

    @property
    def ship_type(self) -> ShipType:
        return ShipType.from_code(self.ship_type_code)


#: Union of every message the codec produces.
AisMessage = (
    PositionReport
    | BaseStationReport
    | StaticVoyageData
    | ClassBPositionReport
    | StaticDataReport
)
