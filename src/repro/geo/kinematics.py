"""Relative-motion kinematics: CPA/TCPA, dead-reckoning projection.

Collision-risk events (§3.1) and short-horizon forecasting (§4) both reduce
to these primitives.  Computations run in a local tangent plane around the
ownship position, which is accurate for the <50 nm separations where CPA
matters.
"""

import math
from dataclasses import dataclass

from repro.geo.constants import KNOTS_TO_MPS
from repro.geo.distance import (
    destination_point,
    haversine_m,
    initial_bearing_deg,
    pair_midpoint,
)
from repro.geo.projection import LocalTangentPlane


@dataclass(frozen=True)
class CpaResult:
    """Closest point of approach between two constant-velocity tracks."""

    #: Time to CPA in seconds from now; negative means the CPA is in the past
    #: (the vessels are already diverging).
    tcpa_s: float
    #: Distance at CPA in metres.
    dcpa_m: float
    #: Current separation in metres.
    range_m: float


def project_position(
    lat: float,
    lon: float,
    sog_knots: float,
    cog_deg: float,
    dt_s: float,
) -> tuple[float, float]:
    """Dead-reckon a position forward ``dt_s`` seconds at constant
    speed-over-ground / course-over-ground."""
    distance = sog_knots * KNOTS_TO_MPS * dt_s
    return destination_point(lat, lon, cog_deg, distance)


def speed_course_between(
    t1: float, lat1: float, lon1: float, t2: float, lat2: float, lon2: float
) -> tuple[float, float]:
    """Mean speed (knots) and course (deg) implied by two timestamped fixes.

    Raises ``ValueError`` for non-increasing timestamps: callers must feed
    fixes in time order (reconstruction sorts them first).
    """
    if t2 <= t1:
        raise ValueError("fixes must be strictly increasing in time")
    dist_m = haversine_m(lat1, lon1, lat2, lon2)
    speed_knots = dist_m / (t2 - t1) / KNOTS_TO_MPS
    course = initial_bearing_deg(lat1, lon1, lat2, lon2) if dist_m > 0.5 else 0.0
    return speed_knots, course


def turn_rate_deg_per_min(
    course1_deg: float, course2_deg: float, dt_s: float
) -> float:
    """Signed turn rate between two course observations (deg/minute),
    positive clockwise."""
    if dt_s <= 0:
        raise ValueError("dt_s must be positive")
    delta = (course2_deg - course1_deg + 540.0) % 360.0 - 180.0
    return delta / (dt_s / 60.0)


def cpa_tcpa(
    lat_a: float,
    lon_a: float,
    sog_a_knots: float,
    cog_a_deg: float,
    lat_b: float,
    lon_b: float,
    sog_b_knots: float,
    cog_b_deg: float,
) -> CpaResult:
    """CPA/TCPA for two constant-velocity vessels.

    The classic relative-motion solution: in a tangent plane centred between
    the vessels, minimise ``|p_rel + v_rel * t|`` over ``t``.
    """
    # Centre the plane on the *wrapped* midpoint: the naive lon average
    # lands ~180° away for pairs straddling the antimeridian, which blew
    # the tangent-plane approximation up to half-circumference ranges.
    plane = LocalTangentPlane(*pair_midpoint(lat_a, lon_a, lat_b, lon_b))
    xa, ya = plane.to_xy(lat_a, lon_a)
    xb, yb = plane.to_xy(lat_b, lon_b)

    def velocity(sog_knots: float, cog_deg: float) -> tuple[float, float]:
        speed = sog_knots * KNOTS_TO_MPS
        theta = math.radians(cog_deg)
        # Course is measured clockwise from north: x=east, y=north.
        return speed * math.sin(theta), speed * math.cos(theta)

    vax, vay = velocity(sog_a_knots, cog_a_deg)
    vbx, vby = velocity(sog_b_knots, cog_b_deg)
    px, py = xb - xa, yb - ya
    vx, vy = vbx - vax, vby - vay
    range_now = math.hypot(px, py)
    v_sq = vx * vx + vy * vy
    if v_sq < 1e-12:
        # Identical velocities: separation never changes.
        return CpaResult(tcpa_s=0.0, dcpa_m=range_now, range_m=range_now)
    tcpa = -(px * vx + py * vy) / v_sq
    dcpa = math.hypot(px + vx * tcpa, py + vy * tcpa)
    return CpaResult(tcpa_s=tcpa, dcpa_m=dcpa, range_m=range_now)
