"""Geohash encoding, used as the cheap spatial key for blocking and
summaries (link discovery in §2.2 and density aggregation for Figure 1)."""

_BASE32 = "0123456789bcdefghjkmnpqrstuvwxyz"
_BASE32_INDEX = {c: i for i, c in enumerate(_BASE32)}


def geohash_encode(lat: float, lon: float, precision: int = 7) -> str:
    """Encode a position as a geohash string of ``precision`` characters."""
    if not (-90.0 <= lat <= 90.0):
        raise ValueError("latitude out of range")
    if precision < 1:
        raise ValueError("precision must be >= 1")
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    bits = []
    even = True
    while len(bits) < precision * 5:
        if even:
            mid = (lon_lo + lon_hi) / 2.0
            if lon >= mid:
                bits.append(1)
                lon_lo = mid
            else:
                bits.append(0)
                lon_hi = mid
        else:
            mid = (lat_lo + lat_hi) / 2.0
            if lat >= mid:
                bits.append(1)
                lat_lo = mid
            else:
                bits.append(0)
                lat_hi = mid
        even = not even
    chars = []
    for i in range(0, len(bits), 5):
        value = 0
        for bit in bits[i : i + 5]:
            value = (value << 1) | bit
        chars.append(_BASE32[value])
    return "".join(chars)


def geohash_decode(geohash: str) -> tuple[float, float, float, float]:
    """Decode a geohash to ``(lat, lon, lat_err, lon_err)`` — cell centre
    plus half-cell sizes."""
    lat_lo, lat_hi = -90.0, 90.0
    lon_lo, lon_hi = -180.0, 180.0
    even = True
    for char in geohash:
        try:
            value = _BASE32_INDEX[char]
        except KeyError:
            raise ValueError(f"invalid geohash character: {char!r}") from None
        for shift in range(4, -1, -1):
            bit = (value >> shift) & 1
            if even:
                mid = (lon_lo + lon_hi) / 2.0
                if bit:
                    lon_lo = mid
                else:
                    lon_hi = mid
            else:
                mid = (lat_lo + lat_hi) / 2.0
                if bit:
                    lat_lo = mid
                else:
                    lat_hi = mid
            even = not even
    lat = (lat_lo + lat_hi) / 2.0
    lon = (lon_lo + lon_hi) / 2.0
    return lat, lon, (lat_hi - lat_lo) / 2.0, (lon_hi - lon_lo) / 2.0


def geohash_neighbors(geohash: str) -> list[str]:
    """The 8 neighbouring cells of a geohash (may wrap in longitude).

    Computed by decoding to the centre and re-encoding offset points, which
    is simple and fully adequate for blocking purposes.
    """
    lat, lon, lat_err, lon_err = geohash_decode(geohash)
    out = []
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            if dy == 0 and dx == 0:
                continue
            nlat = lat + dy * 2 * lat_err
            nlon = lon + dx * 2 * lon_err
            if nlat > 90.0 or nlat < -90.0:
                continue
            if nlon >= 180.0:
                nlon -= 360.0
            if nlon < -180.0:
                nlon += 360.0
            out.append(geohash_encode(nlat, nlon, len(geohash)))
    # Deduplicate while keeping order (polar cells can collide).
    seen: set[str] = set()
    unique = []
    for g in out:
        if g not in seen and g != geohash:
            seen.add(g)
            unique.append(g)
    return unique
