"""Geodesy substrate: distances, bearings, interpolation, regions, kinematics.

All angular quantities use degrees at the public API boundary (latitudes in
[-90, 90], longitudes in [-180, 180], courses/bearings in [0, 360)), and all
distances are in metres unless a function name says otherwise.  Speeds use
knots at the API boundary because that is the unit AIS transmits.

The module is deliberately self-contained: the rest of the library treats it
as "the Earth" and never re-derives spherical trigonometry.
"""

from repro.geo.constants import (
    EARTH_RADIUS_M,
    KNOTS_TO_MPS,
    MPS_TO_KNOTS,
    NM_TO_M,
    M_TO_NM,
)
from repro.geo.distance import (
    distance_bound_m,
    haversine_m,
    haversine_nm,
    initial_bearing_deg,
    destination_point,
    equirectangular_m,
    cross_track_distance_m,
    along_track_distance_m,
    normalize_lon,
    normalize_course,
    angular_difference_deg,
    pair_midpoint,
)
from repro.geo.interpolate import (
    interpolate_great_circle,
    interpolate_fraction,
    interpolate_track_at_time,
)
from repro.geo.region import BoundingBox, PolygonRegion, CircleRegion
from repro.geo.geohash import geohash_encode, geohash_decode, geohash_neighbors
from repro.geo.kinematics import (
    cpa_tcpa,
    project_position,
    speed_course_between,
    turn_rate_deg_per_min,
)
from repro.geo.projection import LocalTangentPlane

__all__ = [
    "EARTH_RADIUS_M",
    "KNOTS_TO_MPS",
    "MPS_TO_KNOTS",
    "NM_TO_M",
    "M_TO_NM",
    "distance_bound_m",
    "haversine_m",
    "haversine_nm",
    "initial_bearing_deg",
    "destination_point",
    "equirectangular_m",
    "cross_track_distance_m",
    "along_track_distance_m",
    "normalize_lon",
    "normalize_course",
    "angular_difference_deg",
    "pair_midpoint",
    "interpolate_great_circle",
    "interpolate_fraction",
    "interpolate_track_at_time",
    "BoundingBox",
    "PolygonRegion",
    "CircleRegion",
    "geohash_encode",
    "geohash_decode",
    "geohash_neighbors",
    "cpa_tcpa",
    "project_position",
    "speed_course_between",
    "turn_rate_deg_per_min",
    "LocalTangentPlane",
]
