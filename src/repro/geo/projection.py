"""Local tangent plane (east-north) projection around a reference point.

Kalman filtering, association gating and CPA computation all run in metres
on a plane; this class owns the lat/lon ↔ metres conversion so the rest of
the library never hand-rolls ``cos(lat)`` scalings.
"""

import math

from repro.geo.constants import EARTH_RADIUS_M
from repro.geo.distance import normalize_lon


class LocalTangentPlane:
    """Equirectangular projection centred on ``(lat0, lon0)``.

    Accurate to well under 0.1% within ~200 km of the origin, which covers
    every local computation in the library (association gates, CPA, port
    approaches).  x points east, y points north, both in metres.
    """

    def __init__(self, lat0: float, lon0: float) -> None:
        if not (-90.0 <= lat0 <= 90.0):
            raise ValueError("lat0 out of range")
        self.lat0 = float(lat0)
        self.lon0 = normalize_lon(float(lon0))
        self._cos_lat0 = math.cos(math.radians(lat0))
        if abs(self._cos_lat0) < 1e-6:
            raise ValueError("tangent plane undefined at the poles")

    def to_xy(self, lat: float, lon: float) -> tuple[float, float]:
        """Project a lat/lon to plane coordinates in metres."""
        x = (
            math.radians(normalize_lon(lon - self.lon0))
            * self._cos_lat0
            * EARTH_RADIUS_M
        )
        y = math.radians(lat - self.lat0) * EARTH_RADIUS_M
        return x, y

    def to_latlon(self, x: float, y: float) -> tuple[float, float]:
        """Inverse of :meth:`to_xy`."""
        lat = self.lat0 + math.degrees(y / EARTH_RADIUS_M)
        lon = self.lon0 + math.degrees(x / (EARTH_RADIUS_M * self._cos_lat0))
        return lat, normalize_lon(lon)

    def __repr__(self) -> str:
        return f"LocalTangentPlane(lat0={self.lat0:.4f}, lon0={self.lon0:.4f})"
