"""Great-circle distances, bearings and track geometry on a spherical Earth.

These are the workhorse primitives of the library.  They intentionally use
``math`` rather than ``numpy`` because the common call pattern is scalar
(one vessel position at a time inside a stream operator); vectorised
variants for analytics live in :mod:`repro.visual.density`.
"""

import math

from repro.geo.constants import EARTH_RADIUS_M, M_TO_NM


def normalize_lon(lon: float) -> float:
    """Wrap a longitude into [-180, 180).

    Values already in range pass through unchanged (no floating-point
    drift from the modulo round-trip).

    >>> normalize_lon(190.0)
    -170.0
    """
    if -180.0 <= lon < 180.0:
        return lon
    wrapped = math.fmod(lon + 180.0, 360.0)
    if wrapped < 0:
        wrapped += 360.0
    if wrapped >= 360.0:  # float rounding of tiny negatives
        wrapped = 0.0
    return wrapped - 180.0


def pair_midpoint(
    lat1: float, lon1: float, lat2: float, lon2: float
) -> tuple[float, float]:
    """Arithmetic midpoint of a nearby pair, safe across the antimeridian.

    The longitude is offset from point 1 by half the *wrapped* delta, so a
    pair straddling lon ±180° lands on the seam instead of ~180° away.
    Adequate for the short separations where event/CPA midpoints are used;
    not a great-circle midpoint.
    """
    return (
        (lat1 + lat2) / 2.0,
        normalize_lon(lon1 + normalize_lon(lon2 - lon1) / 2.0),
    )


def normalize_course(course: float) -> float:
    """Wrap a course/bearing into [0, 360)."""
    if 0.0 <= course < 360.0:
        return course
    wrapped = math.fmod(course, 360.0)
    if wrapped < 0:
        wrapped += 360.0
    if wrapped >= 360.0:  # float rounding of tiny negatives
        wrapped = 0.0
    return wrapped


def angular_difference_deg(a: float, b: float) -> float:
    """Smallest absolute difference between two courses, in [0, 180]."""
    diff = abs(normalize_course(a) - normalize_course(b))
    if diff > 180.0:
        diff = 360.0 - diff
    return diff


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two points in metres.

    Uses the haversine formulation, which is numerically stable for the
    short distances that dominate maritime tracking.
    """
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(normalize_lon(lon2 - lon1))
    a = (
        math.sin(dphi / 2.0) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    )
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(a))


def haversine_nm(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in nautical miles."""
    return haversine_m(lat1, lon1, lat2, lon2) * M_TO_NM


#: Relative inflation applied to :func:`distance_bound_m` so the bound
#: stays >= the *computed* :func:`haversine_m` even when the two are
#: mathematically equal (a pure-meridian pair) and float rounding could
#: otherwise order them either way.  1e-9 relative dwarfs the few-ulp
#: rounding of either expression while staying far below any threshold
#: a caller would compare against.
_BOUND_MARGIN = 1.0 + 1e-9


def distance_bound_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Cheap upper bound on :func:`haversine_m` (one cosine, no roots).

    Follows the meridian from ``lat1`` to ``lat2``, then the parallel at
    ``lat2`` across the wrapped longitude delta; any path is at least as
    long as the great circle, so the sum bounds the distance from above.
    Hot-loop gates use it to *skip* the haversine when the bound already
    proves the decision (``bound < threshold`` implies
    ``haversine_m(...) < threshold``); when the bound cannot prove it,
    callers fall through to the exact distance, so decisions are
    bit-identical to always computing it.  Requires in-range latitudes
    (``|lat| <= 90``) — position-availability sentinels (lat 91) must be
    filtered first, as every caller already does.
    """
    dphi = abs(math.radians(lat2 - lat1))
    dlam = abs(math.radians(normalize_lon(lon2 - lon1)))
    return (
        EARTH_RADIUS_M
        * (dphi + math.cos(math.radians(lat2)) * dlam)
        * _BOUND_MARGIN
    )


def equirectangular_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Fast flat-Earth distance approximation in metres.

    Adequate below ~100 km; used in inner loops (index gating, clustering)
    where the haversine trigonometry would dominate the profile.
    """
    mean_phi = math.radians((lat1 + lat2) / 2.0)
    dx = math.radians(normalize_lon(lon2 - lon1)) * math.cos(mean_phi)
    dy = math.radians(lat2 - lat1)
    return EARTH_RADIUS_M * math.hypot(dx, dy)


def initial_bearing_deg(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Initial great-circle bearing from point 1 to point 2, in [0, 360)."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dlam = math.radians(normalize_lon(lon2 - lon1))
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(
        dlam
    )
    return normalize_course(math.degrees(math.atan2(y, x)))


def destination_point(
    lat: float, lon: float, bearing_deg: float, distance_m: float
) -> tuple[float, float]:
    """Point reached travelling ``distance_m`` along ``bearing_deg``.

    Returns ``(lat, lon)`` in degrees.  The inverse of
    :func:`initial_bearing_deg` + :func:`haversine_m` up to floating error.
    """
    delta = distance_m / EARTH_RADIUS_M
    theta = math.radians(bearing_deg)
    phi1 = math.radians(lat)
    lam1 = math.radians(lon)
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(
        delta
    ) * math.cos(theta)
    sin_phi2 = min(1.0, max(-1.0, sin_phi2))
    phi2 = math.asin(sin_phi2)
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * sin_phi2
    lam2 = lam1 + math.atan2(y, x)
    return math.degrees(phi2), normalize_lon(math.degrees(lam2))


def cross_track_distance_m(
    lat: float,
    lon: float,
    lat1: float,
    lon1: float,
    lat2: float,
    lon2: float,
) -> float:
    """Signed distance of a point from the great circle through two points.

    Positive means the point lies to the right of the path 1→2.  This is the
    error metric used by the trajectory compression algorithms ("SED-like"
    spatial deviation).
    """
    d13 = haversine_m(lat1, lon1, lat, lon) / EARTH_RADIUS_M
    theta13 = math.radians(initial_bearing_deg(lat1, lon1, lat, lon))
    theta12 = math.radians(initial_bearing_deg(lat1, lon1, lat2, lon2))
    return (
        math.asin(
            min(1.0, max(-1.0, math.sin(d13) * math.sin(theta13 - theta12)))
        )
        * EARTH_RADIUS_M
    )


def along_track_distance_m(
    lat: float,
    lon: float,
    lat1: float,
    lon1: float,
    lat2: float,
    lon2: float,
) -> float:
    """Distance from point 1 to the foot of the perpendicular from the point.

    Together with :func:`cross_track_distance_m` this decomposes a deviation
    from a leg into along/across components.
    """
    d13 = haversine_m(lat1, lon1, lat, lon) / EARTH_RADIUS_M
    dxt = cross_track_distance_m(lat, lon, lat1, lon1, lat2, lon2) / EARTH_RADIUS_M
    cos_d13 = math.cos(d13)
    cos_dxt = math.cos(dxt)
    if abs(cos_dxt) < 1e-15:
        return 0.0
    ratio = min(1.0, max(-1.0, cos_d13 / cos_dxt))
    return math.acos(ratio) * EARTH_RADIUS_M
