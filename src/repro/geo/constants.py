"""Physical constants and unit conversions used across the library."""

#: Mean Earth radius in metres (IUGG), sufficient for maritime accuracy.
EARTH_RADIUS_M = 6_371_008.8

#: One international nautical mile in metres.
NM_TO_M = 1852.0

#: Metres to nautical miles.
M_TO_NM = 1.0 / NM_TO_M

#: One knot (nautical mile per hour) in metres per second.
KNOTS_TO_MPS = NM_TO_M / 3600.0

#: Metres per second to knots.
MPS_TO_KNOTS = 1.0 / KNOTS_TO_MPS

#: Approximate metres per degree of latitude (used only for quick gating).
METERS_PER_DEG_LAT = 111_194.9
