"""Great-circle interpolation between timestamped positions."""

import math

from repro.geo.constants import EARTH_RADIUS_M
from repro.geo.distance import haversine_m, normalize_lon


def interpolate_fraction(
    lat1: float, lon1: float, lat2: float, lon2: float, fraction: float
) -> tuple[float, float]:
    """Point at ``fraction`` of the great circle from point 1 to point 2.

    ``fraction`` 0 returns point 1, 1 returns point 2; values outside [0, 1]
    extrapolate along the same great circle.
    """
    if fraction == 0.0:
        return lat1, lon1
    if fraction == 1.0:
        return lat2, lon2
    delta = haversine_m(lat1, lon1, lat2, lon2) / EARTH_RADIUS_M
    if delta < 1e-12:
        return lat1, lon1
    if delta > math.pi - 1e-9:
        # Antipodal endpoints: the great circle is not unique and the
        # slerp below is numerically degenerate.  Nudge one endpoint by a
        # few centimetres to select a route deterministically.
        lat1 = lat1 + (1e-9 if lat1 < 89.0 else -1e-9)
        delta = haversine_m(lat1, lon1, lat2, lon2) / EARTH_RADIUS_M
    phi1, lam1 = math.radians(lat1), math.radians(lon1)
    phi2, lam2 = math.radians(lat2), math.radians(lon2)
    sin_delta = math.sin(delta)
    a = math.sin((1.0 - fraction) * delta) / sin_delta
    b = math.sin(fraction * delta) / sin_delta
    x = a * math.cos(phi1) * math.cos(lam1) + b * math.cos(phi2) * math.cos(lam2)
    y = a * math.cos(phi1) * math.sin(lam1) + b * math.cos(phi2) * math.sin(lam2)
    z = a * math.sin(phi1) + b * math.sin(phi2)
    phi = math.atan2(z, math.hypot(x, y))
    lam = math.atan2(y, x)
    return math.degrees(phi), normalize_lon(math.degrees(lam))


def interpolate_great_circle(
    lat1: float, lon1: float, lat2: float, lon2: float, n_points: int
) -> list[tuple[float, float]]:
    """Evenly spaced points along the great circle, endpoints included.

    ``n_points`` is the total number of points returned and must be >= 2.
    """
    if n_points < 2:
        raise ValueError("n_points must be >= 2")
    step = 1.0 / (n_points - 1)
    return [
        interpolate_fraction(lat1, lon1, lat2, lon2, i * step)
        for i in range(n_points)
    ]


def interpolate_track_at_time(
    t1: float,
    lat1: float,
    lon1: float,
    t2: float,
    lat2: float,
    lon2: float,
    t: float,
) -> tuple[float, float]:
    """Linear-in-time great-circle interpolation between two fixes.

    ``t`` outside ``[t1, t2]`` extrapolates.  Raises ``ValueError`` when the
    fixes are simultaneous, because direction is then undefined.
    """
    if t2 == t1:
        raise ValueError("cannot interpolate between simultaneous fixes")
    fraction = (t - t1) / (t2 - t1)
    return interpolate_fraction(lat1, lon1, lat2, lon2, fraction)
