"""Spatial regions: bounding boxes, polygons and circles.

Regions are the vocabulary for zones of interest (harbours, anchorages,
EEZ borders, protected areas) used by event detection (§3.1 of the paper)
and by the spatio-temporal query layer (§2.3).
"""

from dataclasses import dataclass

from repro.geo.distance import haversine_m, normalize_lon


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned lat/lon box.  ``lon_min > lon_max`` means it crosses
    the antimeridian."""

    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float

    def __post_init__(self) -> None:
        if self.lat_min > self.lat_max:
            raise ValueError("lat_min must be <= lat_max")
        if not (-90.0 <= self.lat_min <= 90.0 and -90.0 <= self.lat_max <= 90.0):
            raise ValueError("latitudes must be in [-90, 90]")

    @property
    def crosses_antimeridian(self) -> bool:
        return self.lon_min > self.lon_max

    def contains(self, lat: float, lon: float) -> bool:
        """True when the point falls inside the box (edges inclusive)."""
        if not (self.lat_min <= lat <= self.lat_max):
            return False
        lon = normalize_lon(lon)
        if self.crosses_antimeridian:
            return lon >= self.lon_min or lon <= self.lon_max
        return self.lon_min <= lon <= self.lon_max

    def intersects(self, other: "BoundingBox") -> bool:
        """True when the two boxes overlap (edge contact counts)."""
        if self.lat_max < other.lat_min or other.lat_max < self.lat_min:
            return False
        return self._lon_overlap(other)

    def _lon_overlap(self, other: "BoundingBox") -> bool:
        def spans(box: "BoundingBox") -> list[tuple[float, float]]:
            if box.crosses_antimeridian:
                return [(box.lon_min, 180.0), (-180.0, box.lon_max)]
            return [(box.lon_min, box.lon_max)]

        for a_lo, a_hi in spans(self):
            for b_lo, b_hi in spans(other):
                if a_lo <= b_hi and b_lo <= a_hi:
                    return True
        return False

    def expand(self, margin_deg: float) -> "BoundingBox":
        """Box grown by ``margin_deg`` on every side (lat clamped to poles)."""
        return BoundingBox(
            max(-90.0, self.lat_min - margin_deg),
            min(90.0, self.lat_max + margin_deg),
            normalize_lon(self.lon_min - margin_deg),
            normalize_lon(self.lon_max + margin_deg),
        )

    @property
    def center(self) -> tuple[float, float]:
        lat_c = (self.lat_min + self.lat_max) / 2.0
        if self.crosses_antimeridian:
            width = (180.0 - self.lon_min) + (self.lon_max + 180.0)
            lon_c = normalize_lon(self.lon_min + width / 2.0)
        else:
            lon_c = (self.lon_min + self.lon_max) / 2.0
        return lat_c, lon_c


@dataclass(frozen=True)
class CircleRegion:
    """Great-circle disc: all points within ``radius_m`` of the centre."""

    lat: float
    lon: float
    radius_m: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.radius_m < 0:
            raise ValueError("radius_m must be non-negative")

    def contains(self, lat: float, lon: float) -> bool:
        return haversine_m(self.lat, self.lon, lat, lon) <= self.radius_m

    def bounding_box(self) -> BoundingBox:
        """Conservative lat/lon box enclosing the disc."""
        dlat = self.radius_m / 111_194.9
        import math

        coslat = max(0.01, math.cos(math.radians(self.lat)))
        dlon = dlat / coslat
        if dlon >= 180.0:
            # The disc wraps more than half the globe in longitude;
            # normalising lon±dlon would produce a box covering the
            # *complement* of the disc.  Full longitude span instead.
            return BoundingBox(
                max(-90.0, self.lat - dlat),
                min(90.0, self.lat + dlat),
                -180.0,
                180.0,
            )
        return BoundingBox(
            max(-90.0, self.lat - dlat),
            min(90.0, self.lat + dlat),
            normalize_lon(self.lon - dlon),
            normalize_lon(self.lon + dlon),
        )


class PolygonRegion:
    """Simple (non-self-intersecting) polygon on the lat/lon plane.

    Point-in-polygon uses the even-odd ray casting rule in plate carrée
    coordinates, which is standard practice for maritime zones of the size
    this library deals with (harbours to EEZ segments).  Polygons spanning
    the antimeridian should be split by the caller.
    """

    def __init__(self, vertices: list[tuple[float, float]], name: str = "") -> None:
        if len(vertices) < 3:
            raise ValueError("a polygon needs at least 3 vertices")
        self.vertices = [(float(lat), float(lon)) for lat, lon in vertices]
        self.name = name
        lats = [v[0] for v in self.vertices]
        lons = [v[1] for v in self.vertices]
        self._bbox = BoundingBox(min(lats), max(lats), min(lons), max(lons))

    def bounding_box(self) -> BoundingBox:
        return self._bbox

    def contains(self, lat: float, lon: float) -> bool:
        """Even-odd rule point-in-polygon test (boundary points may go
        either way, as usual for ray casting)."""
        if not self._bbox.contains(lat, lon):
            return False
        inside = False
        n = len(self.vertices)
        j = n - 1
        for i in range(n):
            yi, xi = self.vertices[i]
            yj, xj = self.vertices[j]
            if (yi > lat) != (yj > lat):
                x_cross = xi + (lat - yi) / (yj - yi) * (xj - xi)
                if lon < x_cross:
                    inside = not inside
            j = i
        return inside

    def area_sq_deg(self) -> float:
        """Shoelace area in square degrees (plate carrée); used only for
        sanity checks and zone ordering, never for physical area."""
        total = 0.0
        n = len(self.vertices)
        for i in range(n):
            y1, x1 = self.vertices[i]
            y2, x2 = self.vertices[(i + 1) % n]
            total += x1 * y2 - x2 * y1
        return abs(total) / 2.0

    def __repr__(self) -> str:
        return f"PolygonRegion(name={self.name!r}, n={len(self.vertices)})"
