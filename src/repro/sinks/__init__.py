"""Selective consumers of pipeline output (the operator side).

:class:`Subscription` and :class:`SubscriptionHub` implement the
``session.subscribe(...)`` dispatch; :class:`JsonlSink`,
:class:`CallbackSink` and :class:`AlertLogSink` package the common
downstream consumers.  See :mod:`repro.sinks.subscription` for the
filter semantics.
"""

from repro.sinks.subscription import Subscription, SubscriptionHub
from repro.sinks.builtins import (
    AlertLogSink,
    CallbackSink,
    JsonlSink,
    event_to_dict,
    increment_to_dict,
)

__all__ = [
    "Subscription",
    "SubscriptionHub",
    "AlertLogSink",
    "CallbackSink",
    "JsonlSink",
    "event_to_dict",
    "increment_to_dict",
]
