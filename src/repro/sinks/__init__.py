"""Selective consumers of pipeline output (the operator side).

:class:`Subscription` and :class:`SubscriptionHub` implement the
``session.subscribe(...)`` dispatch — synchronous by default, or
behind a per-subscription :class:`AsyncDispatcher` (bounded handoff
queue + worker thread) with ``async_dispatch=True`` so a slow sink
never stalls ingestion; :class:`JsonlSink`, :class:`CallbackSink` and
:class:`AlertLogSink` package the common downstream consumers.  See
:mod:`repro.sinks.subscription` for the filter semantics and
``src/repro/sinks/README.md`` for the dispatch contract.
"""

from repro.sinks.dispatch import AsyncDispatcher
from repro.sinks.subscription import Subscription, SubscriptionHub
from repro.sinks.builtins import (
    AlertLogSink,
    CallbackSink,
    JsonlSink,
    event_to_dict,
    increment_to_dict,
)

__all__ = [
    "AsyncDispatcher",
    "Subscription",
    "SubscriptionHub",
    "AlertLogSink",
    "CallbackSink",
    "JsonlSink",
    "event_to_dict",
    "increment_to_dict",
]
