"""Selective consumers of pipeline output (the operator side).

:class:`Subscription` and :class:`SubscriptionHub` implement the
``session.subscribe(...)`` dispatch — synchronous by default, or
behind a bounded per-subscription FIFO lane on the hub's shared
:class:`DispatchPool` with ``async_dispatch=True`` so a slow sink never
stalls ingestion.  The hub routes through a
:class:`~repro.sinks.index.SubscriptionIndex` (MMSI inverted index,
region cell cover, kind buckets), probing candidates per increment
instead of scanning every subscription.  :class:`JsonlSink`,
:class:`CallbackSink` and :class:`AlertLogSink` package the common
downstream consumers, all sharing one JSON rendering per tick
(:func:`render`).  See :mod:`repro.sinks.subscription` for the filter
semantics and ``src/repro/sinks/README.md`` for the dispatch contract.
"""

from repro.sinks.dispatch import AsyncDispatcher, DispatchLane, DispatchPool
from repro.sinks.index import SubscriptionIndex
from repro.sinks.subscription import Subscription, SubscriptionHub
from repro.sinks.render import (
    IncrementRendering,
    event_to_dict,
    increment_to_dict,
    render,
)
from repro.sinks.builtins import (
    AlertLogSink,
    CallbackSink,
    JsonlSink,
)

__all__ = [
    "AsyncDispatcher",
    "DispatchLane",
    "DispatchPool",
    "IncrementRendering",
    "Subscription",
    "SubscriptionHub",
    "SubscriptionIndex",
    "AlertLogSink",
    "CallbackSink",
    "JsonlSink",
    "event_to_dict",
    "increment_to_dict",
    "render",
]
