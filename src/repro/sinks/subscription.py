"""Selective consumption of pipeline increments: the subscription API.

A :class:`Subscription` is a set of callbacks plus filters.  The session
dispatches every :class:`~repro.core.stages.PipelineIncrement` through
its :class:`SubscriptionHub`; each subscription routes the parts its
owner asked for:

- ``on_increment(increment)`` — the whole increment, unfiltered;
- ``on_event(event)`` — each new primitive *and* complex event passing
  the ``kinds`` / ``region`` / ``mmsis`` filters;
- ``on_alarm(alarm)`` — each situation-monitor alarm (region/mmsi
  filters apply; alarms carry no kind);
- ``on_forecast(mmsi, predictions)`` — each vessel whose forecast set
  was recomputed this increment.

Filters: ``kinds`` accepts :class:`~repro.events.base.EventKind` members
or their string values; ``region`` is anything with
``contains(lat, lon)`` (every :mod:`repro.geo.region` shape qualifies);
``mmsis`` keeps events involving at least one listed vessel.

Dispatch modes:

- **Sync** (default): callbacks run synchronously on the pipeline
  thread in subscription order; a callback raising propagates to the
  driver — fail fast, the operator must know a consumer is broken.
- **Async** (``async_dispatch=True``): increments are handed to a
  bounded per-subscription FIFO lane drained by the hub's shared
  :class:`~repro.sinks.dispatch.DispatchPool`, so a slow sink never
  stalls ingestion and the thread count stays a constant of the hub,
  not of the subscriber count.  See that module for the overflow
  policies and the weaker failure contract.

Scaling: the hub routes through a
:class:`~repro.sinks.index.SubscriptionIndex` by default — dispatch
probes the index (MMSI inverted index, region cell cover, kind buckets)
for the candidate set of each increment instead of filter-checking
every subscription.  The index only ever over-selects; each candidate's
exact filters still run at delivery, so ``indexed=False`` (the scan
baseline, kept for benchmarking) is observably identical, just
O(subscribers) per increment.

Candidate gating changes *async accounting* for filtered subscriptions:
a lane's ``n_submitted`` counts the increments that held something the
index considered possibly relevant, not every tick (an ``on_increment``
subscription is always a candidate, so its books are unchanged).  The
``n_submitted == n_delivered + n_dropped`` reconciliation is unaffected.
"""

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.events.base import Event, EventKind
from repro.sinks.dispatch import DispatchPool, validate_lane_params
from repro.sinks.index import SubscriptionIndex

__all__ = ["Subscription", "SubscriptionHub"]


def _normalise_kinds(kinds) -> frozenset[EventKind] | None:
    if kinds is None:
        return None
    out = set()
    for kind in kinds:
        out.add(kind if isinstance(kind, EventKind) else EventKind(kind))
    return frozenset(out)


@dataclass(eq=False)
class Subscription:
    """One consumer's view of the increment stream.

    ``eq=False`` keeps identity hashing: the hub's index stores
    subscriptions in sets, and two subscriptions with identical filters
    are still distinct consumers.
    """

    on_increment: Callable | None = None
    on_event: Callable[[Event], None] | None = None
    on_alarm: Callable | None = None
    on_forecast: Callable | None = None
    kinds: frozenset[EventKind] | None = None
    region: object | None = None
    mmsis: frozenset[int] | None = None
    #: Dispatch accounting (events/alarms/forecast updates delivered;
    #: async subscriptions also count ``dropped_increments``).
    delivered: dict = field(default_factory=dict)
    active: bool = True
    #: Present on async subscriptions: the bounded handoff that delivers
    #: increments off the pipeline thread (a
    #: :class:`~repro.sinks.dispatch.DispatchLane` on the hub's shared
    #: pool; a standalone ``AsyncDispatcher`` also satisfies the
    #: surface).
    dispatcher: object | None = None
    #: Subscribe-order rank, assigned by the hub: candidate sets come
    #: back unordered from the index, and sorting by ``seq`` restores
    #: the delivery order a full scan would have used.
    seq: int = -1

    def __post_init__(self) -> None:
        self.kinds = _normalise_kinds(self.kinds)
        if self.mmsis is not None:
            self.mmsis = frozenset(self.mmsis)
        if self.region is not None and not hasattr(self.region, "contains"):
            raise TypeError("region must expose contains(lat, lon)")

    # -- filters -----------------------------------------------------------

    def _wants_event(self, event: Event) -> bool:
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        # isdisjoint takes the mmsis tuple as-is: no per-event set() on
        # the hot dispatch path.
        if self.mmsis is not None and self.mmsis.isdisjoint(event.mmsis):
            return False
        if self.region is not None and not self.region.contains(
            event.lat, event.lon
        ):
            return False
        return True

    def _wants_alarm(self, alarm) -> bool:
        if self.mmsis is not None and alarm.mmsi not in self.mmsis:
            return False
        if self.region is not None and not self.region.contains(
            alarm.lat, alarm.lon
        ):
            return False
        return True

    # -- dispatch ----------------------------------------------------------

    def deliver(self, increment) -> None:
        """Hub entry point: hand off (async) or run callbacks (sync)."""
        if self.dispatcher is not None:
            if self.active:
                self.dispatcher.submit(increment)
            return
        self.dispatch(increment)

    def dispatch(self, increment) -> None:
        """Route one increment through this subscription's callbacks."""
        if not self.active:
            return
        if self.on_increment is not None:
            self.on_increment(increment)
            self._count("increments")
        if self.on_event is not None:
            for event in (*increment.new_events, *increment.new_complex_events):
                if self._wants_event(event):
                    self.on_event(event)
                    self._count("events")
        if self.on_alarm is not None:
            for alarm in increment.new_alarms:
                if self._wants_alarm(alarm):
                    self.on_alarm(alarm)
                    self._count("alarms")
        if self.on_forecast is not None:
            for mmsi, predictions in increment.updated_forecasts.items():
                if self.mmsis is None or mmsi in self.mmsis:
                    self.on_forecast(mmsi, predictions)
                    self._count("forecasts")

    def _count(self, what: str) -> None:
        self.delivered[what] = self.delivered.get(what, 0) + 1

    def close(self) -> None:
        """Stop receiving; the hub forgets the subscription lazily.

        An async subscription's queued backlog is discarded (counted as
        dropped) — close means "stop", not "finish up"; use the hub's
        :meth:`SubscriptionHub.close` to drain instead.  The lane is
        signalled, never waited on: closing a stuck sink from the
        pipeline thread must not stall ingestion (an in-flight callback
        finishes on its own time, then the lane goes quiet).
        """
        self.active = False
        if self.dispatcher is not None:
            self.dispatcher.close(drain=False, timeout_s=0.0)


class SubscriptionHub:
    """The session-side registry dispatching increments to subscribers.

    Thread-shared: ``subscribe``/``close`` may race dispatch (pool
    workers run callbacks that re-enter the hub), so all registry and
    index state is guarded by one lock.  Deliveries run outside it —
    dispatch snapshots the subscription list and the candidate set under
    the lock, then delivers lock-free, so a callback subscribing or
    closing mid-dispatch never deadlocks (the newcomer simply misses
    the in-flight increment; a closed subscription's ``active`` flag
    suppresses its delivery).
    """

    _thread_shared = True

    def __init__(
        self,
        indexed: bool = True,
        dispatch_workers: int | None = None,
    ) -> None:
        self._lock = threading.Lock()
        self._seq = itertools.count()
        self._subscriptions: list[Subscription] = []
        #: Every subscription ever registered, in subscribe order —
        #: closed ones included, so end-of-run accounting (and async
        #: worker errors) survive the active list's lazy pruning.
        #: This is deliberately unbounded *per hub*: a hub is scoped to
        #: one session/run (the monitor façade builds a fresh one per
        #: monitor).  A long-lived hub with per-query subscription churn
        #: should be recreated per run rather than reused forever.
        self.registry: list[Subscription] = []
        #: Candidate routing; ``None`` means scan every subscription
        #: (the pre-index behaviour, kept as the bench baseline).
        self._index: SubscriptionIndex | None = (
            SubscriptionIndex() if indexed else None
        )
        self._dispatch_workers = dispatch_workers
        #: Shared worker pool for async subscriptions, created on the
        #: first async subscribe — a sync-only hub owns no threads.
        self._pool: DispatchPool | None = None

    def __len__(self) -> int:
        with self._lock:
            return len([s for s in self._subscriptions if s.active])

    def subscribe(
        self,
        on_increment: Callable | None = None,
        on_event: Callable | None = None,
        on_alarm: Callable | None = None,
        on_forecast: Callable | None = None,
        kinds=None,
        region=None,
        mmsis=None,
        async_dispatch: bool = False,
        max_queue: int = 256,
        overflow: str = "drop_oldest",
    ) -> Subscription:
        """Register a consumer; see the module docstring for semantics.

        ``async_dispatch=True`` registers the subscription on the hub's
        shared :class:`~repro.sinks.dispatch.DispatchPool`: a bounded
        per-subscription FIFO lane (``max_queue`` deep, ``overflow``
        policy ``"drop_oldest"`` or ``"block"``) drained by the pool's
        workers, so this consumer can never stall the pipeline thread.
        """
        if not any((on_increment, on_event, on_alarm, on_forecast)):
            raise ValueError("a subscription needs at least one callback")
        if async_dispatch:
            # Fail before the pool (and its worker threads) exists.
            validate_lane_params(max_queue, overflow)
        subscription = Subscription(
            on_increment=on_increment,
            on_event=on_event,
            on_alarm=on_alarm,
            on_forecast=on_forecast,
            kinds=kinds,
            region=region,
            mmsis=mmsis,
        )
        if async_dispatch:
            subscription.dispatcher = self._ensure_pool().lane(
                subscription, max_queue=max_queue, overflow=overflow
            )
        with self._lock:
            subscription.seq = next(self._seq)
            self._subscriptions.append(subscription)
            self.registry.append(subscription)
            if self._index is not None:
                self._index.add(subscription)
        return subscription

    def _ensure_pool(self) -> DispatchPool:
        with self._lock:
            if self._pool is None:
                self._pool = DispatchPool(workers=self._dispatch_workers)
            return self._pool

    def dispatch(self, increment) -> None:
        # Snapshot under the lock: a callback may subscribe() (the
        # newcomer must not receive the in-flight increment) or close()
        # mid-iteration, possibly from a pool worker.
        with self._lock:
            subscriptions = tuple(self._subscriptions)
            candidates = (
                self._index.candidates(increment)
                if self._index is not None
                else None
            )
        if candidates is None or len(candidates) >= len(subscriptions):
            # Full scan (or everyone matched): the list is already in
            # delivery order.
            targets = subscriptions
        else:
            # Deliver only to candidates — the whole point of the index
            # at 10k subscribers — sorted back into subscribe order so
            # the ordering contract matches the scan exactly.  The index
            # only over-selects; each candidate's exact filters still
            # run inside ``deliver``.
            targets = sorted(candidates, key=lambda s: s.seq)
        closed = False
        for subscription in targets:
            subscription.deliver(increment)
            closed = closed or not subscription.active
        if closed:
            with self._lock:
                if self._index is not None:
                    for subscription in self._subscriptions:
                        if not subscription.active:
                            self._index.discard(subscription)
                self._subscriptions = [
                    s for s in self._subscriptions if s.active
                ]

    def close(self, drain: bool = True) -> None:
        """Tear down the dispatch pool (draining lanes by default).

        After close the delivered/dropped accounting is final —
        ``n_submitted == n_delivered + n_dropped`` for every async
        subscription — unless a sink outlived the pool's drain timeout
        (then its lane's ``drain_timed_out`` flags the still-open
        books).  Sync subscriptions are untouched and keep receiving;
        async subscriptions are *terminated*, so this is an end-of-run
        call — the monitor façade makes it once, after the source is
        exhausted (``run()`` refuses to run a monitor twice, so a
        closed hub is never re-driven).
        """
        with self._lock:
            pool = self._pool
        if pool is not None:
            pool.shutdown(drain=drain)
