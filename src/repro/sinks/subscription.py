"""Selective consumption of pipeline increments: the subscription API.

A :class:`Subscription` is a set of callbacks plus filters.  The session
dispatches every :class:`~repro.core.stages.PipelineIncrement` through
its :class:`SubscriptionHub`; each subscription routes the parts its
owner asked for:

- ``on_increment(increment)`` — the whole increment, unfiltered;
- ``on_event(event)`` — each new primitive *and* complex event passing
  the ``kinds`` / ``region`` / ``mmsis`` filters;
- ``on_alarm(alarm)`` — each situation-monitor alarm (region/mmsi
  filters apply; alarms carry no kind);
- ``on_forecast(mmsi, predictions)`` — each vessel whose forecast set
  was recomputed this increment.

Filters: ``kinds`` accepts :class:`~repro.events.base.EventKind` members
or their string values; ``region`` is anything with
``contains(lat, lon)`` (every :mod:`repro.geo.region` shape qualifies);
``mmsis`` keeps events involving at least one listed vessel.

Callbacks run synchronously on the pipeline thread in subscription
order; a sink that must not stall ingestion should hand off to its own
queue.  A callback raising propagates to the driver — fail fast, the
operator must know a consumer is broken.
"""

from dataclasses import dataclass, field
from typing import Callable

from repro.events.base import Event, EventKind

__all__ = ["Subscription", "SubscriptionHub"]


def _normalise_kinds(kinds) -> frozenset[EventKind] | None:
    if kinds is None:
        return None
    out = set()
    for kind in kinds:
        out.add(kind if isinstance(kind, EventKind) else EventKind(kind))
    return frozenset(out)


@dataclass
class Subscription:
    """One consumer's view of the increment stream."""

    on_increment: Callable | None = None
    on_event: Callable[[Event], None] | None = None
    on_alarm: Callable | None = None
    on_forecast: Callable | None = None
    kinds: frozenset[EventKind] | None = None
    region: object | None = None
    mmsis: frozenset[int] | None = None
    #: Dispatch accounting (events/alarms/forecast updates delivered).
    delivered: dict = field(default_factory=dict)
    active: bool = True

    def __post_init__(self) -> None:
        self.kinds = _normalise_kinds(self.kinds)
        if self.mmsis is not None:
            self.mmsis = frozenset(self.mmsis)
        if self.region is not None and not hasattr(self.region, "contains"):
            raise TypeError("region must expose contains(lat, lon)")

    # -- filters -----------------------------------------------------------

    def _wants_event(self, event: Event) -> bool:
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        if self.mmsis is not None and not (self.mmsis & set(event.mmsis)):
            return False
        if self.region is not None and not self.region.contains(
            event.lat, event.lon
        ):
            return False
        return True

    def _wants_alarm(self, alarm) -> bool:
        if self.mmsis is not None and alarm.mmsi not in self.mmsis:
            return False
        if self.region is not None and not self.region.contains(
            alarm.lat, alarm.lon
        ):
            return False
        return True

    # -- dispatch ----------------------------------------------------------

    def dispatch(self, increment) -> None:
        """Route one increment through this subscription's callbacks."""
        if not self.active:
            return
        if self.on_increment is not None:
            self.on_increment(increment)
            self._count("increments")
        if self.on_event is not None:
            for event in (*increment.new_events, *increment.new_complex_events):
                if self._wants_event(event):
                    self.on_event(event)
                    self._count("events")
        if self.on_alarm is not None:
            for alarm in increment.new_alarms:
                if self._wants_alarm(alarm):
                    self.on_alarm(alarm)
                    self._count("alarms")
        if self.on_forecast is not None:
            for mmsi, predictions in increment.updated_forecasts.items():
                if self.mmsis is None or mmsi in self.mmsis:
                    self.on_forecast(mmsi, predictions)
                    self._count("forecasts")

    def _count(self, what: str) -> None:
        self.delivered[what] = self.delivered.get(what, 0) + 1

    def close(self) -> None:
        """Stop receiving; the hub forgets the subscription lazily."""
        self.active = False


class SubscriptionHub:
    """The session-side registry dispatching increments to subscribers."""

    def __init__(self) -> None:
        self._subscriptions: list[Subscription] = []

    def __len__(self) -> int:
        return len([s for s in self._subscriptions if s.active])

    def subscribe(
        self,
        on_increment: Callable | None = None,
        on_event: Callable | None = None,
        on_alarm: Callable | None = None,
        on_forecast: Callable | None = None,
        kinds=None,
        region=None,
        mmsis=None,
    ) -> Subscription:
        if not any((on_increment, on_event, on_alarm, on_forecast)):
            raise ValueError("a subscription needs at least one callback")
        subscription = Subscription(
            on_increment=on_increment,
            on_event=on_event,
            on_alarm=on_alarm,
            on_forecast=on_forecast,
            kinds=kinds,
            region=region,
            mmsis=mmsis,
        )
        self._subscriptions.append(subscription)
        return subscription

    def dispatch(self, increment) -> None:
        closed = False
        for subscription in self._subscriptions:
            subscription.dispatch(increment)
            closed = closed or not subscription.active
        if closed:
            self._subscriptions = [
                s for s in self._subscriptions if s.active
            ]
