"""Selective consumption of pipeline increments: the subscription API.

A :class:`Subscription` is a set of callbacks plus filters.  The session
dispatches every :class:`~repro.core.stages.PipelineIncrement` through
its :class:`SubscriptionHub`; each subscription routes the parts its
owner asked for:

- ``on_increment(increment)`` — the whole increment, unfiltered;
- ``on_event(event)`` — each new primitive *and* complex event passing
  the ``kinds`` / ``region`` / ``mmsis`` filters;
- ``on_alarm(alarm)`` — each situation-monitor alarm (region/mmsi
  filters apply; alarms carry no kind);
- ``on_forecast(mmsi, predictions)`` — each vessel whose forecast set
  was recomputed this increment.

Filters: ``kinds`` accepts :class:`~repro.events.base.EventKind` members
or their string values; ``region`` is anything with
``contains(lat, lon)`` (every :mod:`repro.geo.region` shape qualifies);
``mmsis`` keeps events involving at least one listed vessel.

Dispatch modes:

- **Sync** (default): callbacks run synchronously on the pipeline
  thread in subscription order; a callback raising propagates to the
  driver — fail fast, the operator must know a consumer is broken.
- **Async** (``async_dispatch=True``): increments are handed to a
  bounded queue drained by a per-subscription worker thread
  (:class:`~repro.sinks.dispatch.AsyncDispatcher`), so a slow sink
  never stalls ingestion.  See that module for the overflow policies
  and the weaker failure contract.
"""

from dataclasses import dataclass, field
from typing import Callable

from repro.events.base import Event, EventKind
from repro.sinks.dispatch import AsyncDispatcher

__all__ = ["Subscription", "SubscriptionHub"]


def _normalise_kinds(kinds) -> frozenset[EventKind] | None:
    if kinds is None:
        return None
    out = set()
    for kind in kinds:
        out.add(kind if isinstance(kind, EventKind) else EventKind(kind))
    return frozenset(out)


@dataclass
class Subscription:
    """One consumer's view of the increment stream."""

    on_increment: Callable | None = None
    on_event: Callable[[Event], None] | None = None
    on_alarm: Callable | None = None
    on_forecast: Callable | None = None
    kinds: frozenset[EventKind] | None = None
    region: object | None = None
    mmsis: frozenset[int] | None = None
    #: Dispatch accounting (events/alarms/forecast updates delivered;
    #: async subscriptions also count ``dropped_increments``).
    delivered: dict = field(default_factory=dict)
    active: bool = True
    #: Present on async subscriptions: the bounded handoff that delivers
    #: increments off the pipeline thread.
    dispatcher: AsyncDispatcher | None = None

    def __post_init__(self) -> None:
        self.kinds = _normalise_kinds(self.kinds)
        if self.mmsis is not None:
            self.mmsis = frozenset(self.mmsis)
        if self.region is not None and not hasattr(self.region, "contains"):
            raise TypeError("region must expose contains(lat, lon)")

    # -- filters -----------------------------------------------------------

    def _wants_event(self, event: Event) -> bool:
        if self.kinds is not None and event.kind not in self.kinds:
            return False
        # isdisjoint takes the mmsis tuple as-is: no per-event set() on
        # the hot dispatch path.
        if self.mmsis is not None and self.mmsis.isdisjoint(event.mmsis):
            return False
        if self.region is not None and not self.region.contains(
            event.lat, event.lon
        ):
            return False
        return True

    def _wants_alarm(self, alarm) -> bool:
        if self.mmsis is not None and alarm.mmsi not in self.mmsis:
            return False
        if self.region is not None and not self.region.contains(
            alarm.lat, alarm.lon
        ):
            return False
        return True

    # -- dispatch ----------------------------------------------------------

    def deliver(self, increment) -> None:
        """Hub entry point: hand off (async) or run callbacks (sync)."""
        if self.dispatcher is not None:
            if self.active:
                self.dispatcher.submit(increment)
            return
        self.dispatch(increment)

    def dispatch(self, increment) -> None:
        """Route one increment through this subscription's callbacks."""
        if not self.active:
            return
        if self.on_increment is not None:
            self.on_increment(increment)
            self._count("increments")
        if self.on_event is not None:
            for event in (*increment.new_events, *increment.new_complex_events):
                if self._wants_event(event):
                    self.on_event(event)
                    self._count("events")
        if self.on_alarm is not None:
            for alarm in increment.new_alarms:
                if self._wants_alarm(alarm):
                    self.on_alarm(alarm)
                    self._count("alarms")
        if self.on_forecast is not None:
            for mmsi, predictions in increment.updated_forecasts.items():
                if self.mmsis is None or mmsi in self.mmsis:
                    self.on_forecast(mmsi, predictions)
                    self._count("forecasts")

    def _count(self, what: str) -> None:
        self.delivered[what] = self.delivered.get(what, 0) + 1

    def close(self) -> None:
        """Stop receiving; the hub forgets the subscription lazily.

        An async subscription's queued backlog is discarded (counted as
        dropped) — close means "stop", not "finish up"; use the hub's
        :meth:`SubscriptionHub.close` to drain instead.  The worker is
        signalled, never joined: closing a stuck sink from the pipeline
        thread must not stall ingestion (an in-flight callback finishes
        on its own time, then the worker exits).
        """
        self.active = False
        if self.dispatcher is not None:
            self.dispatcher.close(drain=False, timeout_s=0.0)


class SubscriptionHub:
    """The session-side registry dispatching increments to subscribers."""

    def __init__(self) -> None:
        self._subscriptions: list[Subscription] = []
        #: Every subscription ever registered, in subscribe order —
        #: closed ones included, so end-of-run accounting (and async
        #: worker errors) survive the active list's lazy pruning.
        #: This is deliberately unbounded *per hub*: a hub is scoped to
        #: one session/run (the monitor façade builds a fresh one per
        #: monitor).  A long-lived hub with per-query subscription churn
        #: should be recreated per run rather than reused forever.
        self.registry: list[Subscription] = []

    def __len__(self) -> int:
        return len([s for s in self._subscriptions if s.active])

    def subscribe(
        self,
        on_increment: Callable | None = None,
        on_event: Callable | None = None,
        on_alarm: Callable | None = None,
        on_forecast: Callable | None = None,
        kinds=None,
        region=None,
        mmsis=None,
        async_dispatch: bool = False,
        max_queue: int = 256,
        overflow: str = "drop_oldest",
    ) -> Subscription:
        """Register a consumer; see the module docstring for semantics.

        ``async_dispatch=True`` gives the subscription its own
        :class:`~repro.sinks.dispatch.AsyncDispatcher` — a bounded
        handoff queue (``max_queue`` deep, ``overflow`` policy
        ``"drop_oldest"`` or ``"block"``) drained by a worker thread,
        so this consumer can never stall the pipeline thread.
        """
        if not any((on_increment, on_event, on_alarm, on_forecast)):
            raise ValueError("a subscription needs at least one callback")
        subscription = Subscription(
            on_increment=on_increment,
            on_event=on_event,
            on_alarm=on_alarm,
            on_forecast=on_forecast,
            kinds=kinds,
            region=region,
            mmsis=mmsis,
        )
        if async_dispatch:
            subscription.dispatcher = AsyncDispatcher(
                subscription, max_queue=max_queue, overflow=overflow
            )
        self._subscriptions.append(subscription)
        self.registry.append(subscription)
        return subscription

    def dispatch(self, increment) -> None:
        # Snapshot: a callback may subscribe() (the newcomer must not
        # receive the in-flight increment) or close() mid-iteration.
        subscriptions = tuple(self._subscriptions)
        closed = False
        for subscription in subscriptions:
            subscription.deliver(increment)
            closed = closed or not subscription.active
        if closed:
            self._subscriptions = [
                s for s in self._subscriptions if s.active
            ]

    def close(self, drain: bool = True) -> None:
        """Tear down every async dispatcher (draining by default).

        After close the delivered/dropped accounting is final —
        ``n_submitted == n_delivered + n_dropped`` for every async
        subscription — unless a sink outlived the dispatcher's drain
        timeout (then its ``drain_timed_out`` flags the still-open
        books).  Sync subscriptions are untouched and keep receiving;
        async subscriptions are *terminated*, so this is an end-of-run
        call — the monitor façade makes it once, after the source is
        exhausted (``run()`` refuses to run a monitor twice, so a
        closed hub is never re-driven).
        """
        for subscription in self.registry:
            if subscription.dispatcher is not None:
                subscription.dispatcher.close(drain=drain)
