"""Built-in sinks: JSON lines, plain callbacks, triaged alert logs.

Sinks are ordinary subscription consumers packaged for the common cases
of Figure 2's downstream operators: ship increments to a store as JSON
(:class:`JsonlSink`), hand selected events to a function
(:class:`CallbackSink`), or run events through decision-support triage
and keep the operator-facing alerts (:class:`AlertLogSink`).  Each sink
exposes ``attach(target, ...)`` returning the subscription handle;
``target`` is a :class:`~repro.core.stages.PipelineSession`, a
:class:`~repro.sinks.subscription.SubscriptionHub`, or a
:class:`~repro.monitor.MaritimeMonitor` (whose ``hub`` is used, since
the monitor's own fluent ``subscribe`` returns the monitor).
"""

import json
from typing import IO, Callable

from repro.core.decision import DecisionSupport, OperatorProfile
from repro.events.base import Event
from repro.sinks.render import event_to_dict, increment_to_dict, render

__all__ = [
    "AlertLogSink",
    "CallbackSink",
    "JsonlSink",
    "event_to_dict",
    "increment_to_dict",
]


def _subscribable(target):
    """The object whose ``subscribe`` returns a Subscription handle.

    The monitor façade's fluent ``subscribe`` returns the monitor
    itself, so sinks attach to its hub instead.
    """
    return getattr(target, "hub", target)


class JsonlSink:
    """Stream increments (or just events) as JSON lines.

    ``target`` is a path (opened and owned by the sink — call
    :meth:`close`) or any writable text file object (borrowed).
    ``mode="increments"`` writes one line per increment;
    ``mode="events"`` writes one line per event passing the
    subscription's filters.
    """

    def __init__(self, target: str | IO[str], mode: str = "increments") -> None:
        if mode not in ("increments", "events"):
            raise ValueError("mode must be 'increments' or 'events'")
        self.mode = mode
        self._owns = isinstance(target, str)
        self._fh = open(target, "w") if isinstance(target, str) else target
        self.n_lines = 0

    def write_increment(self, increment) -> None:
        # The shared rendering: every JSON consumer of this tick — other
        # JSONL sinks, the serve gateway — reuses the same dumped line.
        self._write_line(render(increment).json_line)

    def write_event(self, event: Event) -> None:
        self._write_line(json.dumps(event_to_dict(event), sort_keys=True) + "\n")

    def _write_line(self, line: str) -> None:
        self._fh.write(line)
        # Per-line flush: this sink serves live streams (the CLI --json
        # mode pipes it), where block buffering would delay increments
        # by whole ticks and lose the tail on interrupt.
        self._fh.flush()
        self.n_lines += 1

    def attach(self, target, kinds=None, region=None, mmsis=None):
        """Subscribe this sink; returns the subscription handle.

        ``kinds``/``region``/``mmsis`` select events — they only apply
        in ``mode="events"``; passing them with the increment mode is
        rejected rather than silently archiving everything.
        """
        target = _subscribable(target)
        if self.mode == "events":
            return target.subscribe(
                on_event=self.write_event,
                kinds=kinds, region=region, mmsis=mmsis,
            )
        if kinds is not None or region is not None or mmsis is not None:
            raise ValueError(
                "event filters require mode='events'; increment mode "
                "archives every increment whole"
            )
        return target.subscribe(on_increment=self.write_increment)

    def close(self) -> None:
        self._fh.flush()
        if self._owns:
            self._fh.close()


class CallbackSink:
    """Hand each selected event to a function — the thinnest consumer.

    Exists so ad-hoc consumers read like the other sinks::

        CallbackSink(print, kinds=["rendezvous"]).attach(monitor)
    """

    def __init__(
        self,
        fn: Callable[[Event], None],
        kinds=None,
        region=None,
        mmsis=None,
    ) -> None:
        self.fn = fn
        self.kinds = kinds
        self.region = region
        self.mmsis = mmsis
        self.n_delivered = 0

    def _deliver(self, event: Event) -> None:
        self.n_delivered += 1
        self.fn(event)

    def attach(self, target):
        return _subscribable(target).subscribe(
            on_event=self._deliver,
            kinds=self.kinds, region=self.region, mmsis=self.mmsis,
        )


class AlertLogSink:
    """Run events through decision-support triage and log the alerts.

    The downstream operator of §4: every increment's events are filtered,
    deduplicated, discounted and explained by a
    :class:`~repro.core.decision.DecisionSupport` instance; resulting
    alerts accumulate in :attr:`alerts` (bounded by ``max_alerts``,
    oldest dropped) and optionally append to a text log, one rendered
    line each.
    """

    def __init__(
        self,
        profile: OperatorProfile | None = None,
        target: IO[str] | None = None,
        max_alerts: int | None = None,
    ) -> None:
        self.support = DecisionSupport(
            profile or OperatorProfile(name="alert-log")
        )
        self._fh = target
        self.max_alerts = max_alerts
        self.alerts: list = []

    def _on_increment(self, increment) -> None:
        events = list(increment.new_events) + list(
            increment.new_complex_events
        )
        if not events:
            return
        for alert in self.support.triage(events):
            self.alerts.append(alert)
            if self._fh is not None:
                self._fh.write(alert.render() + "\n")
        if self.max_alerts is not None and len(self.alerts) > self.max_alerts:
            del self.alerts[: len(self.alerts) - self.max_alerts]

    def attach(self, target):
        return _subscribable(target).subscribe(
            on_increment=self._on_increment
        )
