"""Asynchronous subscription dispatch: a bounded handoff per slow sink.

Subscription callbacks run synchronously on the pipeline thread
(:mod:`repro.sinks.subscription`), so one stalled consumer stalls
ingestion for every feed.  :class:`AsyncDispatcher` is the opt-in
escape hatch, mirroring the TCP source's queue semantics on the
consumer side: the hub hands each increment to a bounded queue and
returns immediately; a dedicated worker thread drains the queue and
runs the subscription's callbacks in order.

Overflow policy (``overflow=``):

- ``"drop_oldest"`` (default) — the oldest queued increment is
  discarded and counted (``n_dropped``, and
  ``Subscription.delivered["dropped_increments"]``).  The consumer sees
  the freshest picture, exactly like the TCP receive queue: a
  surveillance sink wants current events, not a complete backlog.
- ``"block"`` — the pipeline thread waits for queue space: no increment
  is ever lost, at the price of backpressure reaching ingestion again
  once the queue is full (a bounded stall instead of an unbounded one).

Delivery contract versus the sync path:

- Per-subscription order is preserved (one worker per subscription);
  cross-subscription order is not — two async sinks see increments
  independently.
- A callback raising does **not** propagate to the driver (it cannot:
  the driver has moved on).  The dispatcher records the exception
  (:attr:`error`), deactivates the subscription, and stops; callers
  that need fail-fast semantics stay on the sync path.
- ``close(drain=True)`` (the default, called by the hub's ``close``)
  blocks until every queued increment is delivered, so
  delivered/dropped accounting reconciles exactly:
  ``n_submitted == n_delivered + n_dropped`` after close.
"""

import threading
from collections import deque

__all__ = ["AsyncDispatcher"]

_POLICIES = ("drop_oldest", "block")


class AsyncDispatcher:
    """Bounded queue + worker thread delivering to one subscription."""

    def __init__(
        self,
        subscription,
        max_queue: int = 256,
        overflow: str = "drop_oldest",
    ) -> None:
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if overflow not in _POLICIES:
            raise ValueError(f"overflow must be one of {_POLICIES}")
        self.subscription = subscription
        self.max_queue = max_queue
        self.overflow = overflow
        #: First exception a callback raised on the worker, if any.
        self.error: BaseException | None = None
        #: Set by :meth:`close`: the worker outlived the drain timeout,
        #: so the delivered/dropped books were not final when read.
        self.drain_timed_out = False
        self.n_submitted = 0
        self.n_delivered = 0
        self.n_dropped = 0
        self.queue_high_water = 0
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._closing = False
        self._worker = threading.Thread(
            target=self._run, name="sink-dispatch", daemon=True
        )
        self._worker.start()

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- pipeline side -----------------------------------------------------

    def submit(self, increment) -> None:
        """Hand one increment off; never blocks under ``drop_oldest``."""
        with self._changed:
            if self._closing or self.error is not None:
                return
            if self.overflow == "block":
                while len(self._queue) >= self.max_queue:
                    if self._closing or self.error is not None:
                        return
                    # Every transition notifies; the timeout is pure
                    # liveness insurance, so keep it long (idle wakeup
                    # cost, not latency).
                    self._changed.wait(timeout=1.0)
            elif len(self._queue) >= self.max_queue:
                self._queue.popleft()  # drop-oldest: newest picture wins
                self._drop(1)
            self._queue.append(increment)
            self.n_submitted += 1
            if len(self._queue) > self.queue_high_water:
                self.queue_high_water = len(self._queue)
            self._changed.notify_all()

    # -- worker side -------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._changed:
                while not self._queue and not self._closing:
                    # Submit/close/error all notify; long timeout keeps
                    # an idle subscription's worker near-silent.
                    self._changed.wait(timeout=1.0)
                if not self._queue and self._closing:
                    self._changed.notify_all()
                    return
                increment = self._queue.popleft()
                self._changed.notify_all()  # wake a blocked submit
            try:
                self.subscription.dispatch(increment)
            except BaseException as exc:  # noqa: BLE001 — recorded, not lost
                with self._changed:
                    self.error = exc
                    self.subscription.active = False
                    # The in-flight increment and the undelivered
                    # backlog are all dropped, keeping the submitted ==
                    # delivered + dropped invariant exact.
                    self._drop(1 + len(self._queue))
                    self._queue.clear()
                    self._changed.notify_all()
                return
            with self._changed:
                self.n_delivered += 1

    def _drop(self, n: int) -> None:
        """Account ``n`` lost increments on both sides of the handoff
        (dispatcher counters and ``Subscription.delivered``); callers
        hold the lock."""
        if n <= 0:
            return
        self.n_dropped += n
        delivered = self.subscription.delivered
        delivered["dropped_increments"] = (
            delivered.get("dropped_increments", 0) + n
        )

    # -- teardown ----------------------------------------------------------

    def close(self, drain: bool = True, timeout_s: float = 10.0) -> bool:
        """Stop the worker; with ``drain`` deliver the backlog first.

        Returns whether the worker actually finished within
        ``timeout_s``.  ``False`` means a sink slower than the timeout
        still holds undelivered increments: the books are not final yet
        (``n_submitted > n_delivered + n_dropped`` until the daemon
        worker drains them) — also recorded in :attr:`drain_timed_out`.
        ``timeout_s=0`` is fire-and-forget: flag the shutdown and
        return without waiting on the worker at all (what
        ``Subscription.close()`` uses, so closing a stuck sink from the
        pipeline thread never stalls ingestion).
        """
        with self._changed:
            if not drain:
                self._drop(len(self._queue))
                self._queue.clear()
            self._closing = True
            self._changed.notify_all()
        if timeout_s <= 0 or self._worker is threading.current_thread():
            # Fire-and-forget, or close() from inside a callback (the
            # worker itself) which must not join itself; the worker
            # exits on its next loop either way.
            return True
        self._worker.join(timeout=timeout_s)
        self.drain_timed_out = self._worker.is_alive()
        return not self.drain_timed_out
