"""Asynchronous subscription dispatch: pooled workers, per-lane FIFO.

Subscription callbacks run synchronously on the pipeline thread
(:mod:`repro.sinks.subscription`), so one stalled consumer stalls
ingestion for every feed.  Asynchronous dispatch is the opt-in escape
hatch: the hub hands each increment to a bounded per-subscription queue
and returns immediately; worker threads drain the queues and run the
subscription's callbacks in order.

Through PR 5 every async subscription owned a dedicated worker thread.
That shape cannot serve 10k+ subscribers (10k threads), so dispatch is
now a :class:`DispatchPool`: ``workers`` shared threads (named
``sink-dispatch``, like the dedicated workers they replace) multiplex
every subscription's **lane** — a bounded FIFO queue plus delivery
books.  A lane is handed to at most one worker at a time (it stays
"scheduled" from the moment it enters the ready queue until its
delivery completes), so per-subscription order is exactly the dedicated
-thread contract while the thread count is a constant of the hub, not
of the subscriber count.

Overflow policy (``overflow=``):

- ``"drop_oldest"`` (default) — the oldest queued increment is
  discarded and counted (``n_dropped``, and
  ``Subscription.delivered["dropped_increments"]``).  The consumer sees
  the freshest picture, exactly like the TCP receive queue: a
  surveillance sink wants current events, not a complete backlog.
- ``"block"`` — the pipeline thread waits for queue space: no increment
  is ever lost, at the price of backpressure reaching ingestion again
  once the queue is full (a bounded stall instead of an unbounded one).

Delivery contract versus the sync path (unchanged from PR 5):

- Per-subscription order is preserved (serial lanes); cross-subscription
  order is not — two async sinks see increments independently.
- A callback raising does **not** propagate to the driver (it cannot:
  the driver has moved on).  The pool records the exception on the lane
  (:attr:`DispatchLane.error`), deactivates the subscription and drops
  its backlog; the worker itself survives to serve other lanes.
- ``close(drain=True)`` (the default, what the hub's ``close`` does for
  every lane via :meth:`DispatchPool.shutdown`) blocks until every
  queued increment is delivered, so delivered/dropped accounting
  reconciles exactly: ``n_submitted == n_delivered + n_dropped`` after
  close.

:class:`AsyncDispatcher` — the PR 5 dedicated-thread dispatcher — is
retained verbatim at the bottom of this module.  The hub no longer
creates it; it exists as a standalone utility and as the reference
implementation the pooled-vs-dedicated delivery-book parity suite
(``tests/test_dispatch_pool.py``) measures the pool against.
"""

import os
import threading
import time
from collections import deque

__all__ = ["AsyncDispatcher", "DispatchLane", "DispatchPool"]

_POLICIES = ("drop_oldest", "block")


def validate_lane_params(max_queue: int, overflow: str) -> None:
    """Reject bad queue parameters before any thread or lane exists."""
    if max_queue <= 0:
        raise ValueError("max_queue must be positive")
    if overflow not in _POLICIES:
        raise ValueError(f"overflow must be one of {_POLICIES}")


def default_pool_workers() -> int:
    """Worker count when the hub does not pin one: small and fixed.

    The pool exists to decouple thread count from subscriber count, so
    the default scales with the machine, never with the hub.
    """
    return max(1, min(4, os.cpu_count() or 1))


class _Lane:
    """One subscription's bounded FIFO view onto a :class:`DispatchPool`.

    The lane is a passive record plus thin delegates: every touch of its
    queue and books happens inside :class:`DispatchPool` methods under
    the pool lock (the lock-discipline checker tracks lanes as elements
    of the pool's containers).  It intentionally exposes the same
    surface as the retired dedicated-thread ``AsyncDispatcher`` —
    ``submit``/``close``/``__len__`` plus the accounting attributes the
    monitor report reads — so ``Subscription.dispatcher`` consumers are
    indifferent to the pooling.
    """

    def __init__(self, pool, subscription, max_queue, overflow) -> None:
        validate_lane_params(max_queue, overflow)
        self.pool = pool
        self.subscription = subscription
        self.max_queue = max_queue
        self.overflow = overflow
        #: First exception a callback raised on a worker, if any.
        self.error: BaseException | None = None
        #: Set by a draining close that outlived its timeout: the books
        #: were not final when read.
        self.drain_timed_out = False
        self.n_submitted = 0
        self.n_delivered = 0
        self.n_dropped = 0
        self.queue_high_water = 0
        self._queue: deque = deque()
        #: True from entering the pool's ready queue until the worker
        #: finishes delivering — the serial-FIFO exclusivity token.
        self._scheduled = False
        self._closing = False

    def __len__(self) -> int:
        return self.pool.lane_depth(self)

    def submit(self, increment) -> None:
        """Hand one increment off; never blocks under ``drop_oldest``."""
        self.pool.submit(self, increment)

    def close(self, drain: bool = True, timeout_s: float = 10.0) -> bool:
        """Stop this lane; with ``drain`` deliver its backlog first."""
        return self.pool.close_lane(self, drain=drain, timeout_s=timeout_s)

    @property
    def _worker(self):
        """Liveness shim kept for callers that join/probe the PR 5
        dedicated worker: the pool answers ``is_alive`` for its threads."""
        return self.pool


#: Public name for the per-subscription handle (``Subscription.dispatcher``).
DispatchLane = _Lane


class DispatchPool:
    """Shared workers draining per-subscription serial FIFO lanes.

    One pool per :class:`~repro.sinks.subscription.SubscriptionHub`,
    created on the first async subscription.  All lane state — queues,
    books, scheduling flags — is guarded by the single pool condition;
    deliveries run outside it.
    """

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers <= 0:
            raise ValueError("workers must be positive")
        self.workers = workers or default_pool_workers()
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        #: Every lane ever registered (accounting survives lane close).
        self._lanes: list = []
        #: Lanes with queued work and no worker attending them.
        self._ready: deque = deque()
        self._closing = False
        self._threads = [
            # Same thread name as the dedicated-thread era: operators
            # (and tests) identify dispatch work by name, not by count.
            threading.Thread(
                target=self._run, name="sink-dispatch", daemon=True
            )
            for _ in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()

    def is_alive(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    # -- pipeline side -----------------------------------------------------

    def lane(self, subscription, max_queue: int = 256,
             overflow: str = "drop_oldest") -> _Lane:
        """Register a subscription; returns its serial FIFO lane."""
        made = _Lane(self, subscription, max_queue, overflow)
        with self._changed:
            if self._closing:
                raise RuntimeError("dispatch pool is closed")
            self._lanes.append(made)
        return made

    def lane_depth(self, lane: "_Lane") -> int:
        with self._changed:
            return len(lane._queue)

    def submit(self, lane: "_Lane", increment) -> None:
        """Queue one increment on a lane; never blocks under
        ``drop_oldest``."""
        with self._changed:
            if lane._closing or self._closing or lane.error is not None:
                return
            if lane.overflow == "block":
                while len(lane._queue) >= lane.max_queue:
                    if lane._closing or self._closing or \
                            lane.error is not None:
                        return
                    # Every transition notifies; the timeout is pure
                    # liveness insurance, so keep it long (idle wakeup
                    # cost, not latency).
                    self._changed.wait(timeout=1.0)
            elif len(lane._queue) >= lane.max_queue:
                lane._queue.popleft()  # drop-oldest: newest picture wins
                self._drop(lane, 1)
            lane._queue.append(increment)
            lane.n_submitted += 1
            if len(lane._queue) > lane.queue_high_water:
                lane.queue_high_water = len(lane._queue)
            if not lane._scheduled:
                lane._scheduled = True
                self._ready.append(lane)
            self._changed.notify_all()

    # -- worker side -------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._changed:
                while not self._ready and not self._closing:
                    # Submit/close/shutdown all notify; long timeout
                    # keeps an idle pool near-silent.
                    self._changed.wait(timeout=1.0)
                if not self._ready:
                    # Shutting down with nothing left to drain.
                    self._changed.notify_all()
                    return
                lane = self._ready.popleft()
                if not lane._queue:
                    # Backlog discarded (lane closed without drain)
                    # between scheduling and service.
                    lane._scheduled = False
                    self._changed.notify_all()
                    continue
                increment = lane._queue.popleft()
                self._changed.notify_all()  # wake a blocked submit
            # The lane stays scheduled while its delivery runs: no other
            # worker may touch it, which is the per-subscription FIFO.
            try:
                lane.subscription.dispatch(increment)
            except BaseException as exc:  # noqa: BLE001 — recorded, not lost
                with self._changed:
                    lane.error = exc
                    lane.subscription.active = False
                    # The in-flight increment and the undelivered
                    # backlog are all dropped, keeping the submitted ==
                    # delivered + dropped invariant exact.  The worker
                    # survives: only the lane is dead.
                    self._drop(lane, 1 + len(lane._queue))
                    lane._queue.clear()
                    lane._scheduled = False
                    self._changed.notify_all()
                continue
            with self._changed:
                lane.n_delivered += 1
                if lane._queue:
                    self._ready.append(lane)
                else:
                    lane._scheduled = False
                self._changed.notify_all()

    def _drop(self, lane: "_Lane", n: int) -> None:
        """Account ``n`` lost increments on both sides of the handoff
        (lane books and ``Subscription.delivered``); callers hold the
        pool lock."""
        if n <= 0:
            return
        lane.n_dropped += n
        delivered = lane.subscription.delivered
        delivered["dropped_increments"] = (
            delivered.get("dropped_increments", 0) + n
        )

    # -- teardown ----------------------------------------------------------

    def close_lane(self, lane: "_Lane", drain: bool = True,
                   timeout_s: float = 10.0) -> bool:
        """Stop one lane; with ``drain`` wait for its backlog to deliver.

        Returns whether the lane went quiescent within ``timeout_s``
        (``False`` also recorded in ``lane.drain_timed_out``: the books
        were not final when read).  ``timeout_s=0`` is fire-and-forget —
        what ``Subscription.close()`` uses, so closing a stuck sink from
        the pipeline thread never stalls ingestion.  Called from a pool
        worker (a callback closing its own subscription) it never
        waits: the in-flight delivery *is* the current frame.
        """
        with self._changed:
            if not drain:
                self._drop(lane, len(lane._queue))
                lane._queue.clear()
            lane._closing = True
            self._changed.notify_all()
        if not drain or timeout_s <= 0 or self._on_worker():
            return True
        deadline = time.monotonic() + timeout_s
        with self._changed:
            while lane._queue or lane._scheduled:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._changed.wait(timeout=min(remaining, 1.0))
            lane.drain_timed_out = bool(lane._queue or lane._scheduled)
            return not lane.drain_timed_out

    def shutdown(self, drain: bool = True, timeout_s: float = 10.0) -> bool:
        """Stop the pool; with ``drain`` deliver every backlog first.

        Returns whether every worker finished within ``timeout_s``.
        ``False`` means a sink slower than the timeout still holds
        undelivered increments — the lanes left non-quiescent get their
        ``drain_timed_out`` flagged, since their books were not final
        when read.  Idempotent; called from a pool worker (a callback
        tearing the hub down) it flags the shutdown and returns without
        self-joining.
        """
        with self._changed:
            if not drain:
                for lane in self._lanes:
                    self._drop(lane, len(lane._queue))
                    lane._queue.clear()
            self._closing = True
            self._changed.notify_all()
        if self._on_worker():
            return True
        deadline = time.monotonic() + max(0.0, timeout_s)
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        finished = not self.is_alive()
        with self._changed:
            for lane in self._lanes:
                if lane._queue or lane._scheduled:
                    lane.drain_timed_out = True
        return finished

    def _on_worker(self) -> bool:
        return threading.current_thread() in self._threads


class AsyncDispatcher:
    """Bounded queue + dedicated worker thread for one subscription.

    The PR 5 dispatcher, kept as a standalone utility and as the
    reference implementation for the pooled-vs-dedicated delivery-book
    parity suite.  The hub now routes async subscriptions through
    :class:`DispatchPool` instead; construct this directly when one
    consumer genuinely wants a private thread.
    """

    def __init__(
        self,
        subscription,
        max_queue: int = 256,
        overflow: str = "drop_oldest",
    ) -> None:
        if max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if overflow not in _POLICIES:
            raise ValueError(f"overflow must be one of {_POLICIES}")
        self.subscription = subscription
        self.max_queue = max_queue
        self.overflow = overflow
        #: First exception a callback raised on the worker, if any.
        self.error: BaseException | None = None
        #: Set by :meth:`close`: the worker outlived the drain timeout,
        #: so the delivered/dropped books were not final when read.
        self.drain_timed_out = False
        self.n_submitted = 0
        self.n_delivered = 0
        self.n_dropped = 0
        self.queue_high_water = 0
        self._queue: deque = deque()
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._closing = False
        self._worker = threading.Thread(
            target=self._run, name="sink-dispatch", daemon=True
        )
        self._worker.start()

    def __len__(self) -> int:
        with self._lock:
            return len(self._queue)

    # -- pipeline side -----------------------------------------------------

    def submit(self, increment) -> None:
        """Hand one increment off; never blocks under ``drop_oldest``."""
        with self._changed:
            if self._closing or self.error is not None:
                return
            if self.overflow == "block":
                while len(self._queue) >= self.max_queue:
                    if self._closing or self.error is not None:
                        return
                    # Every transition notifies; the timeout is pure
                    # liveness insurance, so keep it long (idle wakeup
                    # cost, not latency).
                    self._changed.wait(timeout=1.0)
            elif len(self._queue) >= self.max_queue:
                self._queue.popleft()  # drop-oldest: newest picture wins
                self._drop(1)
            self._queue.append(increment)
            self.n_submitted += 1
            if len(self._queue) > self.queue_high_water:
                self.queue_high_water = len(self._queue)
            self._changed.notify_all()

    # -- worker side -------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._changed:
                while not self._queue and not self._closing:
                    # Submit/close/error all notify; long timeout keeps
                    # an idle subscription's worker near-silent.
                    self._changed.wait(timeout=1.0)
                if not self._queue and self._closing:
                    self._changed.notify_all()
                    return
                increment = self._queue.popleft()
                self._changed.notify_all()  # wake a blocked submit
            try:
                self.subscription.dispatch(increment)
            except BaseException as exc:  # noqa: BLE001 — recorded, not lost
                with self._changed:
                    self.error = exc
                    self.subscription.active = False
                    # The in-flight increment and the undelivered
                    # backlog are all dropped, keeping the submitted ==
                    # delivered + dropped invariant exact.
                    self._drop(1 + len(self._queue))
                    self._queue.clear()
                    self._changed.notify_all()
                return
            with self._changed:
                self.n_delivered += 1

    def _drop(self, n: int) -> None:
        """Account ``n`` lost increments on both sides of the handoff
        (dispatcher counters and ``Subscription.delivered``); callers
        hold the lock."""
        if n <= 0:
            return
        self.n_dropped += n
        delivered = self.subscription.delivered
        delivered["dropped_increments"] = (
            delivered.get("dropped_increments", 0) + n
        )

    # -- teardown ----------------------------------------------------------

    def close(self, drain: bool = True, timeout_s: float = 10.0) -> bool:
        """Stop the worker; with ``drain`` deliver the backlog first.

        Returns whether the worker actually finished within
        ``timeout_s``.  ``False`` means a sink slower than the timeout
        still holds undelivered increments: the books are not final yet
        (``n_submitted > n_delivered + n_dropped`` until the daemon
        worker drains them) — also recorded in :attr:`drain_timed_out`.
        ``timeout_s=0`` is fire-and-forget: flag the shutdown and
        return without waiting on the worker at all (so closing a stuck
        sink from the pipeline thread never stalls ingestion).
        """
        with self._changed:
            if not drain:
                self._drop(len(self._queue))
                self._queue.clear()
            self._closing = True
            self._changed.notify_all()
        if timeout_s <= 0 or self._worker is threading.current_thread():
            # Fire-and-forget, or close() from inside a callback (the
            # worker itself) which must not join itself; the worker
            # exits on its next loop either way.
            return True
        self._worker.join(timeout=timeout_s)
        self.drain_timed_out = self._worker.is_alive()
        return not self.drain_timed_out
