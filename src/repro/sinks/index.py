"""Routing index over subscriptions: probe candidates, don't scan.

``SubscriptionHub.dispatch`` used to filter-check every subscription per
increment — O(subscribers) per tick even when an increment carries a
single event interesting to three consumers.  The
:class:`SubscriptionIndex` inverts the filters instead, so dispatch
probes O(events x filters-hit) candidate sets:

- **MMSI inverted index** — a subscription with ``mmsis`` is registered
  under each of its vessels; an event probes the bucket of every MMSI it
  involves.
- **Cell cover** — a subscription with a ``region`` (and no ``mmsis``)
  is registered under the coarse :class:`~repro.spatial.cells.CellGrid`
  cells covering its region's bounding box; an event or alarm probes
  the single cell containing its position.  The cover is conservative
  (bounding box, whole cells), so the index only ever *over*-selects:
  the subscription's exact ``_wants_event``/``_wants_alarm`` filters
  still run at delivery, and semantics are byte-identical to the scan.
- **Kind buckets** — kind-only event subscriptions are registered per
  :class:`~repro.events.base.EventKind`.
- **Small dedicated buckets** for the rest: unfiltered event/alarm/
  forecast consumers, whole-increment (``on_increment``) consumers, and
  region subscriptions whose cover would be unreasonably large
  (``broad``): these are scanned, but they are the consumers that want
  (nearly) everything anyway.

The index is a pure data structure with no locking of its own: the hub
owns it and serialises every mutation *and* every probe under its lock
(probing touches only immutable snapshots after that — the returned
candidate set is freshly built per increment).
"""

from repro.geo.region import BoundingBox
from repro.spatial.cells import CellGrid, CellKey

__all__ = ["SubscriptionIndex", "cell_cover", "region_bounding_box"]

#: Default routing-cell size.  Sized so a typical harbour/anchorage
#: watch region (tens of km) covers a handful of cells: much coarser
#: and every event's cell probe drags in region subscriptions whose
#: exact ``contains`` (a haversine) then dominates dispatch; much finer
#: and broad regions blow past ``MAX_COVER_CELLS`` into the broad
#: bucket.  75 km keeps the whole globe at ~100k cells, populated
#: lazily.
INDEX_CELL_M = 75_000.0

#: A region whose bounding box covers more cells than this is treated
#: as "broad" and scanned instead of indexed — beyond this point the
#: per-event cell probe saves less than the registration costs.
MAX_COVER_CELLS = 512

_EMPTY: frozenset = frozenset()


def region_bounding_box(region) -> BoundingBox | None:
    """A conservative :class:`BoundingBox` for a region, if derivable.

    Accepts a :class:`BoundingBox` itself, anything exposing
    ``bounding_box()`` (:class:`~repro.geo.region.CircleRegion`,
    :class:`~repro.geo.region.PolygonRegion`), or anything carrying the
    four ``lat_min``/``lat_max``/``lon_min``/``lon_max`` attributes.
    Returns ``None`` for contains-only objects — those can't be indexed
    spatially and fall into the broad bucket.
    """
    if isinstance(region, BoundingBox):
        return region
    derive = getattr(region, "bounding_box", None)
    if callable(derive):
        box = derive()
        if isinstance(box, BoundingBox):
            return box
    if all(
        hasattr(region, name)
        for name in ("lat_min", "lat_max", "lon_min", "lon_max")
    ):
        try:
            return BoundingBox(
                float(region.lat_min),
                float(region.lat_max),
                float(region.lon_min),
                float(region.lon_max),
            )
        except (TypeError, ValueError):
            return None
    return None


def cell_cover(
    grid: CellGrid, box: BoundingBox, max_cells: int = MAX_COVER_CELLS
) -> list[CellKey] | None:
    """Every grid cell intersecting a bounding box, or ``None`` if more
    than ``max_cells`` would be needed.

    Wrap-aware: an antimeridian-crossing box walks each band's longitude
    cells modulo the band's cell count, so the cover never splits at
    ±180 (cells don't either).  Edges are inclusive on both sides —
    matching :meth:`BoundingBox.contains` — so any point the box
    contains keys into a covered cell.
    """
    keys: list[CellKey] = []
    band_lo = grid.band_of(box.lat_min)
    band_hi = grid.band_of(box.lat_max)
    full_span = (
        not box.crosses_antimeridian
        and box.lon_max - box.lon_min >= 360.0 - 1e-9
    )
    for band in range(band_lo, band_hi + 1):
        n_lon, __ = grid.band_geometry(band)
        if full_span:
            count = n_lon
            ix_lo = 0
        else:
            ix_lo = grid.lon_cell(box.lon_min, n_lon)
            ix_hi = grid.lon_cell(box.lon_max, n_lon)
            # Modulo walk from the west cell to the east cell handles
            # both orderings (a crossing box has ix_lo > ix_hi in most
            # bands; a band with one cell collapses to it).
            count = (ix_hi - ix_lo) % n_lon + 1
        if len(keys) + count > max_cells:
            return None
        for step in range(count):
            keys.append((band, (ix_lo + step) % n_lon))
    return keys


class SubscriptionIndex:
    """Inverted indexes from filter values to candidate subscriptions.

    Subscriptions must be hashable by identity (the hub's
    ``Subscription`` is ``@dataclass(eq=False)``).  Registration picks
    the most selective usable facet per delivery channel:

    - events/alarms: ``mmsis`` > ``region`` cell cover > (events only)
      ``kinds`` > the channel's catch-all bucket;
    - forecasts: ``mmsis`` or the forecast catch-all (``region`` and
      ``kinds`` never gate forecasts — mirroring ``dispatch``);
    - ``on_increment`` consumers always match every increment.

    ``kinds`` never gates alarms (alarms carry no kind), so a
    kinds-only subscription with ``on_alarm`` still lands in the alarm
    catch-all.
    """

    def __init__(self, grid: CellGrid | None = None,
                 max_cover_cells: int = MAX_COVER_CELLS) -> None:
        self.grid = grid if grid is not None else CellGrid(INDEX_CELL_M)
        self.max_cover_cells = max_cover_cells
        #: ``on_increment`` consumers: candidates for every increment.
        self._always: set = set()
        self._by_mmsi: dict[int, set] = {}
        self._by_cell: dict[CellKey, set] = {}
        self._by_kind: dict[object, set] = {}
        #: Unfiltered event consumers (no kinds/region/mmsis).
        self._event_all: set = set()
        #: Alarm consumers not selective by mmsi or indexable region.
        self._alarm_all: set = set()
        #: Forecast consumers without an mmsi filter.
        self._forecast_all: set = set()
        #: Region subscriptions whose cover is too large (or whose
        #: region has no derivable bounding box): scanned per event and
        #: alarm, like the pre-index hub scanned everyone.
        self._broad: set = set()
        #: Reverse map for :meth:`discard`: the (bucket, key) pairs a
        #: subscription was registered under.
        self._registered: dict = {}

    def __len__(self) -> int:
        return len(self._registered)

    # -- registration ------------------------------------------------------

    def add(self, subscription) -> None:
        """Register a subscription under its most selective facets."""
        if subscription in self._registered:
            return
        entries: list[tuple[str, object]] = []
        if subscription.on_increment is not None:
            # Whole-increment consumers match unconditionally; no finer
            # facet can prune them.
            self._always.add(subscription)
            entries.append(("always", None))
            self._registered[subscription] = entries
            return
        by_mmsi = subscription.mmsis is not None
        wants_positional = (
            subscription.on_event is not None
            or subscription.on_alarm is not None
        )
        if wants_positional:
            if by_mmsi:
                for mmsi in subscription.mmsis:
                    self._by_mmsi.setdefault(mmsi, set()).add(subscription)
                    entries.append(("mmsi", mmsi))
            elif subscription.region is not None:
                cover = None
                box = region_bounding_box(subscription.region)
                if box is not None:
                    cover = cell_cover(self.grid, box, self.max_cover_cells)
                if cover is None:
                    self._broad.add(subscription)
                    entries.append(("broad", None))
                else:
                    for cell in cover:
                        self._by_cell.setdefault(cell, set()).add(
                            subscription
                        )
                        entries.append(("cell", cell))
            else:
                if subscription.on_event is not None:
                    if subscription.kinds is not None:
                        for kind in subscription.kinds:
                            self._by_kind.setdefault(kind, set()).add(
                                subscription
                            )
                            entries.append(("kind", kind))
                    else:
                        self._event_all.add(subscription)
                        entries.append(("event_all", None))
                if subscription.on_alarm is not None:
                    # Alarms carry no kind, so a kinds filter cannot
                    # prune them: the alarm channel needs its own
                    # catch-all registration.
                    self._alarm_all.add(subscription)
                    entries.append(("alarm_all", None))
        if subscription.on_forecast is not None and not by_mmsi:
            self._forecast_all.add(subscription)
            entries.append(("forecast_all", None))
        self._registered[subscription] = entries

    def discard(self, subscription) -> None:
        """Remove a subscription from every bucket it was indexed under."""
        entries = self._registered.pop(subscription, None)
        if not entries:
            return
        for bucket, key in entries:
            if bucket == "always":
                self._always.discard(subscription)
            elif bucket == "mmsi":
                self._unbucket(self._by_mmsi, key, subscription)
            elif bucket == "cell":
                self._unbucket(self._by_cell, key, subscription)
            elif bucket == "kind":
                self._unbucket(self._by_kind, key, subscription)
            elif bucket == "event_all":
                self._event_all.discard(subscription)
            elif bucket == "alarm_all":
                self._alarm_all.discard(subscription)
            elif bucket == "forecast_all":
                self._forecast_all.discard(subscription)
            elif bucket == "broad":
                self._broad.discard(subscription)

    @staticmethod
    def _unbucket(table: dict, key, subscription) -> None:
        bucket = table.get(key)
        if bucket is None:
            return
        bucket.discard(subscription)
        if not bucket:
            del table[key]

    # -- probing -----------------------------------------------------------

    def candidates(self, increment) -> set:
        """Every subscription that *might* want part of this increment.

        A superset by construction: the caller still runs each
        candidate's exact filters at delivery.  Probes one MMSI bucket
        per vessel involved, one cell bucket per event/alarm position,
        one kind bucket per event kind, plus the relevant catch-alls.
        """
        out = set(self._always)
        if increment.new_events or increment.new_complex_events:
            by_mmsi = self._by_mmsi
            by_cell = self._by_cell
            by_kind = self._by_kind
            grid_key = self.grid.key
            for event in (
                *increment.new_events,
                *increment.new_complex_events,
            ):
                if by_mmsi:
                    for mmsi in event.mmsis:
                        out |= by_mmsi.get(mmsi, _EMPTY)
                if by_cell:
                    out |= by_cell.get(grid_key(event.lat, event.lon), _EMPTY)
                if by_kind:
                    out |= by_kind.get(event.kind, _EMPTY)
            out |= self._event_all
            out |= self._broad
        if increment.new_alarms:
            by_mmsi = self._by_mmsi
            by_cell = self._by_cell
            grid_key = self.grid.key
            for alarm in increment.new_alarms:
                if by_mmsi and alarm.mmsi is not None:
                    out |= by_mmsi.get(alarm.mmsi, _EMPTY)
                if by_cell:
                    out |= by_cell.get(grid_key(alarm.lat, alarm.lon), _EMPTY)
            out |= self._alarm_all
            out |= self._broad
        if increment.updated_forecasts:
            by_mmsi = self._by_mmsi
            if by_mmsi:
                for mmsi in increment.updated_forecasts:
                    out |= by_mmsi.get(mmsi, _EMPTY)
            out |= self._forecast_all
        return out
