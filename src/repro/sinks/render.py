"""Shared, per-tick JSON rendering of pipeline increments.

Before this module every JSON-shaped consumer serialised each increment
for itself: two JSONL sinks plus a gateway on the same hub meant three
identical ``json.dumps`` of the same tick.  Rendering is now computed
once per increment and shared: :func:`render` attaches a lazy
:class:`IncrementRendering` to the increment object itself, and every
consumer — :class:`~repro.sinks.builtins.JsonlSink`, the ``repro
serve`` gateway, the CLI ``--json`` mode — reads the same immutable
dicts and pre-dumped line.

The canonical dict shapes (:func:`increment_to_dict`,
:func:`event_to_dict`, :func:`alarm_to_dict`, :func:`overview_to_dict`)
live here; :mod:`repro.sinks.builtins` re-exports the first two under
their original names.

Thread-safety: renderings are built outside any lock and cached with a
plain attribute write.  Two dispatch-pool workers racing on a fresh
increment may both build a rendering — the last write wins and both are
equal, so the race is benign; after the first tick every reader shares
one object.  The cached dicts are shared *by reference* and must be
treated as immutable by every consumer.
"""

import json

from repro.events.base import Event

__all__ = [
    "IncrementRendering",
    "alarm_to_dict",
    "event_to_dict",
    "increment_to_dict",
    "overview_to_dict",
    "position_to_dict",
    "render",
]


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return str(value)


def event_to_dict(event: Event) -> dict:
    """JSON-safe view of one event (details included: explanations are
    part of the product, §4)."""
    return {
        "kind": event.kind.value,
        "t_start": event.t_start,
        "t_end": event.t_end,
        "mmsis": list(event.mmsis),
        "lat": event.lat,
        "lon": event.lon,
        "confidence": event.confidence,
        "details": {str(k): _json_safe(v) for k, v in event.details.items()},
    }


def alarm_to_dict(alarm) -> dict:
    """JSON-safe view of one situation-monitor alarm."""
    return {
        "t": alarm.t,
        "mmsi": alarm.mmsi,
        "lat": alarm.lat,
        "lon": alarm.lon,
        "score": alarm.score,
        "explanation": alarm.explanation,
    }


def position_to_dict(mmsi: int, point) -> dict:
    """JSON-safe view of one vessel's latest accepted fix."""
    return {
        "mmsi": mmsi,
        "t": point.t,
        "lat": point.lat,
        "lon": point.lon,
        "sog_knots": point.sog_knots,
        "cog_deg": point.cog_deg,
    }


def overview_to_dict(overview) -> dict | None:
    """JSON-safe view of a :class:`SituationOverview` (or ``None``)."""
    if overview is None:
        return None
    box = overview.box
    return {
        "t": overview.t,
        "box": {
            "lat_min": box.lat_min,
            "lat_max": box.lat_max,
            "lon_min": box.lon_min,
            "lon_max": box.lon_max,
        },
        "n_vessels": overview.n_vessels,
        "n_underway": overview.n_underway,
        "n_stationary": overview.n_stationary,
        "mean_speed_knots": overview.mean_speed_knots,
        "events_last_hour": len(overview.events_last_hour),
    }


def increment_to_dict(increment) -> dict:
    """JSON-safe view of one :class:`PipelineIncrement` (the unit the
    ``--json`` CLI mode and the JSONL sink stream)."""
    backpressure = increment.backpressure
    return {
        "t_watermark": increment.t_watermark,
        "n_observations": increment.n_observations,
        "n_records": increment.n_records,
        "n_segments": len(increment.new_segments),
        "n_synopses": len(increment.new_synopses),
        "events": [event_to_dict(e) for e in increment.new_events],
        "complex_events": [
            event_to_dict(e) for e in increment.new_complex_events
        ],
        "forecasts": {
            str(mmsi): [
                {
                    "lat": p.lat,
                    "lon": p.lon,
                    "sigma_m": p.sigma_m,
                    "horizon_s": p.horizon_s,
                }
                for p in predictions
            ]
            for mmsi, predictions in increment.updated_forecasts.items()
        },
        "alarms": [alarm_to_dict(a) for a in increment.new_alarms],
        "positions": [
            position_to_dict(mmsi, point)
            for mmsi, point in increment.updated_positions.items()
        ],
        "seconds": increment.seconds,
        "backpressure": {
            "feed_latency_s": backpressure.feed_latency_s,
            "records_deferred": backpressure.records_deferred,
            "queue_depths": dict(backpressure.queue_depths),
        },
    }


class IncrementRendering:
    """Lazy, memoised JSON views of one increment.

    Built at most once per increment per view; attributes are computed
    on first read and shared by reference afterwards — consumers must
    not mutate them.
    """

    __slots__ = ("increment", "_dict", "_json_line", "_overview")

    _UNSET = object()

    def __init__(self, increment) -> None:
        self.increment = increment
        self._dict = None
        self._json_line = None
        self._overview = self._UNSET

    @property
    def as_dict(self) -> dict:
        """The canonical :func:`increment_to_dict` view, computed once."""
        made = self._dict
        if made is None:
            made = increment_to_dict(self.increment)
            self._dict = made
        return made

    @property
    def json_line(self) -> str:
        """The increment as one newline-terminated JSON line."""
        line = self._json_line
        if line is None:
            line = json.dumps(self.as_dict, sort_keys=True) + "\n"
            self._json_line = line
        return line

    @property
    def overview_dict(self) -> dict | None:
        """The increment's situation overview, rendered once."""
        made = self._overview
        if made is self._UNSET:
            made = overview_to_dict(self.increment.overview)
            self._overview = made
        return made


def render(increment) -> IncrementRendering:
    """The shared rendering of an increment, created on first request.

    The rendering is cached on the increment object itself, so its
    lifetime is exactly the increment's and any consumer of the same
    tick — across threads, hubs or sinks — shares one serialisation.
    """
    cached = getattr(increment, "_rendering", None)
    if cached is None:
        cached = IncrementRendering(increment)
        # Benign race: concurrent builders produce equal renderings and
        # the last write wins.
        increment._rendering = cached
    return cached
