"""Visual analytics substrate (§3.2).

Terminal-native visual analytics: density maps (the Figure 1 renderer),
a spatio-temporal aggregation cube with drill-down/roll-up (the "scalable
spatio-temporal analytical querying" challenge), and a situation
overview/monitoring layer that compares observed traffic against the
pattern-of-life model and explains its alarms.
"""

from repro.visual.density import DensityMap, render_ascii_map
from repro.visual.cube import SpatioTemporalCube, CubeQuery
from repro.visual.overview import SituationOverview, MonitoringAlarm, SituationMonitor

__all__ = [
    "DensityMap",
    "render_ascii_map",
    "SpatioTemporalCube",
    "CubeQuery",
    "SituationOverview",
    "MonitoringAlarm",
    "SituationMonitor",
]
