"""Spatio-temporal aggregation cube with drill-down / roll-up.

§3.2 asks for "scalable spatio-temporal analytical querying, such as
drill-down / zoom-in and on user-defined spatio-temporal regions of
interest".  The cube bins observations by (space cell, time bucket,
category) at a base resolution and serves aggregates at any coarser
resolution by summation, so zooming never rescans raw data.

Spatial keying rides the shared latitude-aware
:class:`~repro.spatial.cells.CellGrid` (the same geometry the spatial
indexes, the density map and the pattern-of-life model use), so

- cells keep their metric size at high latitude instead of shrinking,
- the antimeridian never splits a cell (± 180° longitudes key together),
- a :class:`CubeQuery` box may cross the antimeridian
  (``lon_min > lon_max``), and
- cube slices export as geohash-named counts for external systems.

Query region matching is by cell/box *intersection*: a cell contributes
to a query when any part of it overlaps the box (the former
centre-in-box rule silently excluded edge cells whose centre fell just
outside the region of interest).
"""

import math
from dataclasses import dataclass

from repro.geo import BoundingBox
from repro.geo.constants import METERS_PER_DEG_LAT
from repro.spatial.cells import CellGrid, CellKey, geohash_counts


@dataclass(frozen=True)
class CubeQuery:
    """An aggregate request: region x time span x optional category.

    ``box`` may cross the antimeridian (``lon_min > lon_max``), exactly
    like every other :class:`~repro.geo.region.BoundingBox` consumer.
    """

    box: BoundingBox | None = None
    t0: float | None = None
    t1: float | None = None
    category: str | None = None


class SpatioTemporalCube:
    """Base-resolution count cube over (lat, lon, time, category).

    ``cell_deg`` fixes the cell *height* in degrees of latitude; the
    metric cell size everywhere is ``cell_deg * METERS_PER_DEG_LAT``
    (longitude splitting adapts per latitude band).  Cube keys are
    ``(band, lon_cell, time_bucket, category)``.
    """

    def __init__(
        self,
        cell_deg: float = 0.1,
        time_bucket_s: float = 3600.0,
    ) -> None:
        if cell_deg <= 0 or time_bucket_s <= 0:
            raise ValueError("resolutions must be positive")
        self.cell_deg = cell_deg
        self.time_bucket_s = time_bucket_s
        self.grid = CellGrid(cell_size_m=cell_deg * METERS_PER_DEG_LAT)
        self._cells: dict[tuple[int, int, int, str], int] = {}
        self._total = 0
        #: Cell bounding boxes are derived per distinct cell, memoised.
        self._cell_boxes: dict[CellKey, BoundingBox] = {}

    def add(self, lat: float, lon: float, t: float, category: str = "all") -> None:
        band, lon_cell = self.grid.key(lat, lon)
        key = (
            band,
            lon_cell,
            int(math.floor(t / self.time_bucket_s)),
            category,
        )
        self._cells[key] = self._cells.get(key, 0) + 1
        self._total += 1

    @property
    def total(self) -> int:
        return self._total

    def count(self, query: CubeQuery) -> int:
        """Total observations matching the query."""
        return sum(
            count for key, count in self._cells.items()
            if self._matches(key, query)
        )

    def _cell_box(self, cell: CellKey) -> BoundingBox:
        box = self._cell_boxes.get(cell)
        if box is None:
            lat0, lat1, lon_w, lon_e = self.grid.bounds(cell)
            n_lon, __ = self.grid.band_geometry(cell[0])
            if n_lon == 1:
                lon_w, lon_e = -180.0, 180.0
            box = BoundingBox(lat0, lat1, lon_w, lon_e)
            self._cell_boxes[cell] = box
        return box

    def _matches(
        self, key: tuple[int, int, int, str], query: CubeQuery
    ) -> bool:
        band, lon_cell, time_i, category = key
        if query.category is not None and category != query.category:
            return False
        if query.t0 is not None and (time_i + 1) * self.time_bucket_s <= query.t0:
            return False
        if query.t1 is not None and time_i * self.time_bucket_s > query.t1:
            return False
        if query.box is not None:
            if not query.box.intersects(self._cell_box((band, lon_cell))):
                return False
        return True

    def roll_up_space(
        self, factor: int, query: CubeQuery | None = None
    ) -> dict[CellKey, int]:
        """Counts aggregated onto a grid ``factor`` x coarser (keys are
        cells of that coarser latitude-aware grid)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        query = query or CubeQuery()
        coarse_grid = CellGrid(cell_size_m=self.grid.cell_size_m * factor)
        coarse_of: dict[CellKey, CellKey] = {}
        out: dict[CellKey, int] = {}
        for key, count in self._cells.items():
            if not self._matches(key, query):
                continue
            cell = (key[0], key[1])
            coarse = coarse_of.get(cell)
            if coarse is None:
                coarse = coarse_of[cell] = coarse_grid.key(
                    *self.grid.center(cell)
                )
            out[coarse] = out.get(coarse, 0) + count
        return out

    def roll_up_time(
        self, factor: int, query: CubeQuery | None = None
    ) -> dict[int, int]:
        """Counts per time bucket ``factor`` x coarser (e.g. hour→day)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        query = query or CubeQuery()
        out: dict[int, int] = {}
        for key, count in self._cells.items():
            if not self._matches(key, query):
                continue
            coarse = key[2] // factor
            out[coarse] = out.get(coarse, 0) + count
        return out

    def drill_down(
        self, box: BoundingBox, t0: float, t1: float
    ) -> dict[tuple[int, int, int], int]:
        """Base-resolution cells inside a region of interest — the zoom-in
        operation after a coarse view localised something."""
        query = CubeQuery(box=box, t0=t0, t1=t1)
        out: dict[tuple[int, int, int], int] = {}
        for key, count in self._cells.items():
            if self._matches(key, query):
                out[(key[0], key[1], key[2])] = (
                    out.get((key[0], key[1], key[2]), 0) + count
                )
        return out

    def categories(self) -> set[str]:
        return {key[3] for key in self._cells}

    # -- export ------------------------------------------------------------

    def cell_counts(self, query: CubeQuery | None = None) -> dict[CellKey, int]:
        """Spatial counts (summed over time and category) for a query."""
        query = query or CubeQuery()
        out: dict[CellKey, int] = {}
        for key, count in self._cells.items():
            if not self._matches(key, query):
                continue
            cell = (key[0], key[1])
            out[cell] = out.get(cell, 0) + count
        return out

    def to_geohash_counts(
        self,
        query: CubeQuery | None = None,
        precision: int | None = None,
    ) -> dict[str, int]:
        """A query's spatial counts as geohash-named buckets — the
        exchange format for handing cube slices to external systems."""
        return geohash_counts(
            self.grid, self.cell_counts(query).items(), precision
        )
