"""Spatio-temporal aggregation cube with drill-down / roll-up.

§3.2 asks for "scalable spatio-temporal analytical querying, such as
drill-down / zoom-in and on user-defined spatio-temporal regions of
interest".  The cube bins observations by (space cell, time bucket,
category) at a base resolution and serves aggregates at any coarser
resolution by summation, so zooming never rescans raw data.
"""

import math
from dataclasses import dataclass

from repro.geo import BoundingBox


@dataclass(frozen=True)
class CubeQuery:
    """An aggregate request: region x time span x optional category."""

    box: BoundingBox | None = None
    t0: float | None = None
    t1: float | None = None
    category: str | None = None


class SpatioTemporalCube:
    """Base-resolution count cube over (lat, lon, time, category)."""

    def __init__(
        self,
        cell_deg: float = 0.1,
        time_bucket_s: float = 3600.0,
    ) -> None:
        if cell_deg <= 0 or time_bucket_s <= 0:
            raise ValueError("resolutions must be positive")
        self.cell_deg = cell_deg
        self.time_bucket_s = time_bucket_s
        self._cells: dict[tuple[int, int, int, str], int] = {}
        self._total = 0

    def add(self, lat: float, lon: float, t: float, category: str = "all") -> None:
        key = (
            int(math.floor(lat / self.cell_deg)),
            int(math.floor(lon / self.cell_deg)),
            int(math.floor(t / self.time_bucket_s)),
            category,
        )
        self._cells[key] = self._cells.get(key, 0) + 1
        self._total += 1

    @property
    def total(self) -> int:
        return self._total

    def count(self, query: CubeQuery) -> int:
        """Total observations matching the query."""
        return sum(
            count for key, count in self._cells.items()
            if self._matches(key, query)
        )

    def _matches(
        self, key: tuple[int, int, int, str], query: CubeQuery
    ) -> bool:
        lat_i, lon_i, time_i, category = key
        if query.category is not None and category != query.category:
            return False
        if query.t0 is not None and (time_i + 1) * self.time_bucket_s <= query.t0:
            return False
        if query.t1 is not None and time_i * self.time_bucket_s > query.t1:
            return False
        if query.box is not None:
            lat_c = (lat_i + 0.5) * self.cell_deg
            lon_c = (lon_i + 0.5) * self.cell_deg
            if not query.box.contains(lat_c, lon_c):
                return False
        return True

    def roll_up_space(
        self, factor: int, query: CubeQuery | None = None
    ) -> dict[tuple[int, int], int]:
        """Counts aggregated to cells ``factor`` x coarser."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        query = query or CubeQuery()
        out: dict[tuple[int, int], int] = {}
        for key, count in self._cells.items():
            if not self._matches(key, query):
                continue
            coarse = (key[0] // factor, key[1] // factor)
            out[coarse] = out.get(coarse, 0) + count
        return out

    def roll_up_time(
        self, factor: int, query: CubeQuery | None = None
    ) -> dict[int, int]:
        """Counts per time bucket ``factor`` x coarser (e.g. hour→day)."""
        if factor < 1:
            raise ValueError("factor must be >= 1")
        query = query or CubeQuery()
        out: dict[int, int] = {}
        for key, count in self._cells.items():
            if not self._matches(key, query):
                continue
            coarse = key[2] // factor
            out[coarse] = out.get(coarse, 0) + count
        return out

    def drill_down(
        self, box: BoundingBox, t0: float, t1: float
    ) -> dict[tuple[int, int, int], int]:
        """Base-resolution cells inside a region of interest — the zoom-in
        operation after a coarse view localised something."""
        query = CubeQuery(box=box, t0=t0, t1=t1)
        out: dict[tuple[int, int, int], int] = {}
        for key, count in self._cells.items():
            if self._matches(key, query):
                out[(key[0], key[1], key[2])] = (
                    out.get((key[0], key[1], key[2]), 0) + count
                )
        return out

    def categories(self) -> set[str]:
        return {key[3] for key in self._cells}
