"""Density maps: the Figure 1 renderer.

Aggregates positions onto a lat/lon grid (numpy 2-D histogram) and renders
the counts as an ASCII map with a logarithmic character ramp — the same
visual story as the paper's Figure 1 ("Worldwide AIS positions acquired by
satellites"): dense coastal Europe/Asia corridors, sparse open ocean.
"""

import math

import numpy as np

from repro.geo import BoundingBox

#: Character ramp, sparse → dense.
_RAMP = " .:-=+*#%@"


class DensityMap:
    """A 2-D position histogram over a bounding box."""

    def __init__(
        self,
        box: BoundingBox,
        n_lat_bins: int = 40,
        n_lon_bins: int = 120,
    ) -> None:
        if box.crosses_antimeridian:
            raise ValueError("density maps require a non-wrapping box")
        if n_lat_bins < 1 or n_lon_bins < 1:
            raise ValueError("bin counts must be positive")
        self.box = box
        self.n_lat_bins = n_lat_bins
        self.n_lon_bins = n_lon_bins
        self.counts = np.zeros((n_lat_bins, n_lon_bins), dtype=np.int64)

    def add_positions(self, lats: list[float], lons: list[float]) -> int:
        """Accumulate positions; returns how many fell inside the box."""
        if len(lats) != len(lons):
            raise ValueError("lats and lons must have equal length")
        if not lats:
            return 0
        lat_arr = np.asarray(lats, dtype=float)
        lon_arr = np.asarray(lons, dtype=float)
        inside = (
            (lat_arr >= self.box.lat_min)
            & (lat_arr <= self.box.lat_max)
            & (lon_arr >= self.box.lon_min)
            & (lon_arr <= self.box.lon_max)
        )
        lat_in = lat_arr[inside]
        lon_in = lon_arr[inside]
        hist, __, __ = np.histogram2d(
            lat_in,
            lon_in,
            bins=[self.n_lat_bins, self.n_lon_bins],
            range=[
                [self.box.lat_min, self.box.lat_max],
                [self.box.lon_min, self.box.lon_max],
            ],
        )
        self.counts += hist.astype(np.int64)
        return int(inside.sum())

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    @property
    def occupied_cells(self) -> int:
        return int((self.counts > 0).sum())

    def occupancy_fraction(self) -> float:
        return self.occupied_cells / self.counts.size

    def top_cells(self, k: int = 10) -> list[tuple[float, float, int]]:
        """The k densest cells as (lat_centre, lon_centre, count)."""
        flat = self.counts.flatten()
        order = np.argsort(flat)[::-1][:k]
        out = []
        lat_step = (self.box.lat_max - self.box.lat_min) / self.n_lat_bins
        lon_step = (self.box.lon_max - self.box.lon_min) / self.n_lon_bins
        for index in order:
            if flat[index] == 0:
                break
            i, j = divmod(int(index), self.n_lon_bins)
            out.append(
                (
                    self.box.lat_min + (i + 0.5) * lat_step,
                    self.box.lon_min + (j + 0.5) * lon_step,
                    int(flat[index]),
                )
            )
        return out


def render_ascii_map(
    density: DensityMap, markers: dict[tuple[float, float], str] | None = None
) -> str:
    """Render a density map as text (north at the top).

    ``markers`` places single characters at positions (port symbols etc.),
    overriding the density ramp in their cells.
    """
    counts = density.counts
    peak = counts.max()
    lines: list[str] = []
    log_peak = math.log1p(float(peak)) if peak > 0 else 1.0
    marker_cells: dict[tuple[int, int], str] = {}
    if markers:
        lat_step = (density.box.lat_max - density.box.lat_min) / density.n_lat_bins
        lon_step = (density.box.lon_max - density.box.lon_min) / density.n_lon_bins
        for (lat, lon), symbol in markers.items():
            if not density.box.contains(lat, lon):
                continue
            i = min(
                density.n_lat_bins - 1,
                int((lat - density.box.lat_min) / lat_step),
            )
            j = min(
                density.n_lon_bins - 1,
                int((lon - density.box.lon_min) / lon_step),
            )
            marker_cells[(i, j)] = symbol[0]
    for i in range(density.n_lat_bins - 1, -1, -1):
        row_chars = []
        for j in range(density.n_lon_bins):
            if (i, j) in marker_cells:
                row_chars.append(marker_cells[(i, j)])
                continue
            count = counts[i, j]
            if count == 0:
                row_chars.append(_RAMP[0])
            else:
                level = math.log1p(float(count)) / log_peak
                index = min(
                    len(_RAMP) - 1, 1 + int(level * (len(_RAMP) - 2))
                )
                row_chars.append(_RAMP[index])
        lines.append("".join(row_chars))
    return "\n".join(lines)
