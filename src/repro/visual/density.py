"""Density maps: the Figure 1 renderer.

Aggregates positions onto the shared latitude-aware cell partition
(:class:`~repro.spatial.cells.CellGrid`) and renders the counts as an
ASCII map with a logarithmic character ramp — the same visual story as
the paper's Figure 1 ("Worldwide AIS positions acquired by satellites"):
dense coastal Europe/Asia corridors, sparse open ocean.

Unlike the seed's fixed-degree histogram, cells keep a constant *metric*
footprint from the equator to the polar caps (so "dense" means the same
thing at 75°N as in the Channel), boxes may cross the antimeridian, and
the aggregate can be exported as geohash-named counts for exchange with
external systems.
"""

import math

import numpy as np

from repro.geo import BoundingBox
from repro.geo.constants import METERS_PER_DEG_LAT
from repro.spatial import CellGrid, geohash_counts

#: Character ramp, sparse → dense.
_RAMP = " .:-=+*#%@"

#: Cells never shrink below this, however fine the requested raster.
_MIN_CELL_M = 100.0


class DensityMap:
    """A position histogram over latitude-aware cells in a bounding box.

    ``n_lat_bins`` x ``n_lon_bins`` fixes the *display* raster;
    accumulation happens on metric cells sized to the finer raster step
    (override with ``cell_size_m``).  The box may cross the antimeridian
    (``lon_min > lon_max``).
    """

    def __init__(
        self,
        box: BoundingBox,
        n_lat_bins: int = 40,
        n_lon_bins: int = 120,
        cell_size_m: float | None = None,
    ) -> None:
        if n_lat_bins < 1 or n_lon_bins < 1:
            raise ValueError("bin counts must be positive")
        self.box = box
        self.n_lat_bins = n_lat_bins
        self.n_lon_bins = n_lon_bins
        if box.crosses_antimeridian:
            self.lon_span = (180.0 - box.lon_min) + (box.lon_max + 180.0)
        else:
            self.lon_span = box.lon_max - box.lon_min
        self.lat_span = box.lat_max - box.lat_min
        if cell_size_m is None:
            lat_step_deg = self.lat_span / n_lat_bins
            lon_step_deg = self.lon_span / n_lon_bins
            # The narrowest metres-per-degree inside the box decides how
            # fine the raster's longitude step really is on the water.
            cos_min = min(
                math.cos(math.radians(box.lat_min)),
                math.cos(math.radians(box.lat_max)),
            )
            steps_m = [lat_step_deg * METERS_PER_DEG_LAT]
            if cos_min > 1e-12:
                steps_m.append(lon_step_deg * METERS_PER_DEG_LAT * cos_min)
            cell_size_m = max(_MIN_CELL_M, min(steps_m))
        self.cells = CellGrid(cell_size_m)
        self.cell_size_m = self.cells.cell_size_m
        self._counts: dict[tuple[int, int], int] = {}
        self.total = 0

    # -- accumulation -----------------------------------------------------

    def add_positions(self, lats: list[float], lons: list[float]) -> int:
        """Accumulate positions; returns how many fell inside the box."""
        if len(lats) != len(lons):
            raise ValueError("lats and lons must have equal length")
        if not lats:
            return 0
        lat_arr = np.asarray(lats, dtype=float)
        lon_arr = np.asarray(lons, dtype=float)
        # Wrap-aware longitude membership: offset east of the west edge.
        offsets = np.mod(lon_arr - self.box.lon_min, 360.0)
        inside = (
            (lat_arr >= self.box.lat_min)
            & (lat_arr <= self.box.lat_max)
            & (offsets <= self.lon_span)
        )
        n_inside = int(inside.sum())
        if n_inside == 0:
            return 0
        keys = self.cells.keys_array(lat_arr[inside], lon_arr[inside])
        uniq, counts = np.unique(keys, axis=0, return_counts=True)
        for (band, ix), count in zip(uniq, counts):
            key = (int(band), int(ix))
            self._counts[key] = self._counts.get(key, 0) + int(count)
        self.total += n_inside
        return n_inside

    # -- statistics -------------------------------------------------------

    @property
    def occupied_cells(self) -> int:
        return len(self._counts)

    def cell_counts(self) -> dict[tuple[int, int], int]:
        """Per-cell position counts, keyed by ``CellGrid`` cell."""
        return dict(self._counts)

    def occupancy_fraction(self) -> float:
        """Occupied share of the (approximate) cell population in the box."""
        in_box = self.cells.cells_in_box(
            self.box.lat_min, self.box.lat_max, self.lon_span
        )
        return self.occupied_cells / max(1, in_box)

    def top_cells(self, k: int = 10) -> list[tuple[float, float, int]]:
        """The k densest cells as (lat_centre, lon_centre, count)."""
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        out = []
        for key, count in ranked[:k]:
            lat, lon = self.cells.center(key)
            out.append((lat, lon, count))
        return out

    def to_geohash_counts(self, precision: int | None = None) -> dict[str, int]:
        """Export the aggregate as geohash-named counts (interop format)."""
        return geohash_counts(self.cells, self._counts.items(), precision)

    # -- display raster ---------------------------------------------------

    def _pixel_of(self, lat: float, lon: float) -> tuple[int, int]:
        """Display pixel containing a position (clamped to the raster)."""
        i = int(
            (lat - self.box.lat_min) / max(1e-9, self.lat_span) * self.n_lat_bins
        )
        off = (lon - self.box.lon_min) % 360.0
        if off > self.lon_span:
            # Centre spills outside the box; fold onto the nearer border.
            off = self.lon_span if off - self.lon_span <= 360.0 - off else 0.0
        j = int(off / max(1e-9, self.lon_span) * self.n_lon_bins)
        return (
            min(self.n_lat_bins - 1, max(0, i)),
            min(self.n_lon_bins - 1, max(0, j)),
        )

    def raster(self) -> np.ndarray:
        """Cell counts folded onto the display raster (row 0 = south).

        Each occupied cell contributes its whole count to the pixel
        holding its centre, so the raster sums to ``total`` (cells whose
        centres spill past the box edge clamp onto the border pixels).
        """
        counts = np.zeros((self.n_lat_bins, self.n_lon_bins), dtype=np.int64)
        for key, count in self._counts.items():
            lat, lon = self.cells.center(key)
            i, j = self._pixel_of(lat, lon)
            counts[i, j] += count
        return counts


def render_ascii_map(
    density: DensityMap, markers: dict[tuple[float, float], str] | None = None
) -> str:
    """Render a density map as text (north at the top).

    ``markers`` places single characters at positions (port symbols etc.),
    overriding the density ramp in their cells.
    """
    counts = density.raster()
    peak = counts.max()
    lines: list[str] = []
    log_peak = math.log1p(float(peak)) if peak > 0 else 1.0
    marker_cells: dict[tuple[int, int], str] = {}
    if markers:
        for (lat, lon), symbol in markers.items():
            if not density.box.contains(lat, lon):
                continue
            marker_cells[density._pixel_of(lat, lon)] = symbol[0]
    for i in range(density.n_lat_bins - 1, -1, -1):
        row_chars = []
        for j in range(density.n_lon_bins):
            if (i, j) in marker_cells:
                row_chars.append(marker_cells[(i, j)])
                continue
            count = counts[i, j]
            if count == 0:
                row_chars.append(_RAMP[0])
            else:
                level = math.log1p(float(count)) / log_peak
                index = min(
                    len(_RAMP) - 1, 1 + int(level * (len(_RAMP) - 2))
                )
                row_chars.append(_RAMP[index])
        lines.append("".join(row_chars))
    return "\n".join(lines)
