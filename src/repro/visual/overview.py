"""Situation overview and monitoring (§3.2's last two challenges).

The overview computes "an overall operational picture of mobility at
desired scales"; the monitor compares live observations against the
pattern-of-life model and raises alarms *with explanations* when
observations "significantly deviate from models".
"""

from dataclasses import dataclass, field

from repro.events.base import Event
from repro.events.pol import PatternOfLife
from repro.geo import BoundingBox
from repro.trajectory.points import TrackPoint


@dataclass
class SituationOverview:
    """A snapshot summary of a region at one instant."""

    t: float
    box: BoundingBox
    n_vessels: int
    n_underway: int
    n_stationary: int
    mean_speed_knots: float
    events_last_hour: list[Event] = field(default_factory=list)

    def headline(self) -> str:
        return (
            f"t={self.t:.0f}: {self.n_vessels} vessels "
            f"({self.n_underway} underway, {self.n_stationary} stationary), "
            f"mean SOG {self.mean_speed_knots:.1f} kn, "
            f"{len(self.events_last_hour)} events in the last hour"
        )

    @classmethod
    def build(
        cls,
        t: float,
        box: BoundingBox,
        current_states: dict[int, TrackPoint],
        recent_events: list[Event],
    ) -> "SituationOverview":
        inside = [
            p for p in current_states.values() if box.contains(p.lat, p.lon)
        ]
        speeds = [p.sog_knots for p in inside if p.sog_knots is not None]
        underway = sum(1 for s in speeds if s > 1.0)
        return cls(
            t=t,
            box=box,
            n_vessels=len(inside),
            n_underway=underway,
            n_stationary=len(inside) - underway,
            mean_speed_knots=sum(speeds) / len(speeds) if speeds else 0.0,
            events_last_hour=[
                e for e in recent_events
                if e.t_end >= t - 3600.0 and box.contains(e.lat, e.lon)
            ],
        )


@dataclass(frozen=True)
class MonitoringAlarm:
    """An explained deviation from the normalcy model."""

    t: float
    mmsi: int
    lat: float
    lon: float
    score: float
    explanation: str


class SituationMonitor:
    """Scores live fixes against a trained PatternOfLife and explains
    alarms in operator language.

    ``max_alarms`` bounds retention for unbounded live runs (oldest
    dropped first); ``None`` keeps everything, as replay analysis wants.
    """

    def __init__(
        self,
        pol: PatternOfLife,
        alarm_threshold: float = 0.85,
        max_alarms: int | None = None,
    ) -> None:
        if max_alarms is not None and max_alarms <= 0:
            raise ValueError("max_alarms must be positive when given")
        self.pol = pol
        self.alarm_threshold = alarm_threshold
        self.max_alarms = max_alarms
        self.alarms: list[MonitoringAlarm] = []
        self.n_alarms_total = 0

    def offer(self, mmsi: int, point: TrackPoint) -> MonitoringAlarm | None:
        """Score one live fix; returns (and records) an alarm if deviant."""
        if point.sog_knots is None or point.cog_deg is None:
            return None
        score = self.pol.anomaly_score(
            point.lat, point.lon, point.sog_knots, point.cog_deg
        )
        if score < self.alarm_threshold:
            return None
        alarm = MonitoringAlarm(
            t=point.t,
            mmsi=mmsi,
            lat=point.lat,
            lon=point.lon,
            score=score,
            explanation=self._explain(point, score),
        )
        self.alarms.append(alarm)
        self.n_alarms_total += 1
        if self.max_alarms is not None and len(self.alarms) > self.max_alarms:
            del self.alarms[: len(self.alarms) - self.max_alarms]
        return alarm

    def _explain(self, point: TrackPoint, score: float) -> str:
        """Human-readable account of *why* the model is surprised —
        the paper insists alarms come with explanations (§3.2, §4)."""
        return (
            f"speed {point.sog_knots:.1f} kn on course "
            f"{point.cog_deg:.0f}° is unusual at "
            f"({point.lat:.3f}, {point.lon:.3f}) relative to historical "
            f"traffic in this cell (anomaly score {score:.2f}; model "
            f"trained on {self.pol.n_training_points} fixes in "
            f"{self.pol.n_cells} cells)"
        )
