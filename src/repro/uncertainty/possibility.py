"""Possibility theory: vague, linguistic uncertainty.

The third framework §4 names.  A possibility distribution assigns each
hypothesis a degree in [0, 1] with max = 1 (normalisation); possibility
and necessity of a set follow; combination is min-based (conjunctive)
with renormalisation.

Soft reports map naturally here: "probably a trawler" becomes
π(fishing)=1, π(cargo)=0.4, π(other)=0.2 — no additivity implied.
"""

from collections.abc import Iterable
from typing import Any


class PossibilityDistribution:
    """π: frame → [0, 1], normalised so max π = 1."""

    def __init__(self, degrees: dict[Any, float]) -> None:
        if not degrees:
            raise ValueError("empty possibility distribution")
        for value in degrees.values():
            if not 0.0 <= value <= 1.0:
                raise ValueError("degrees must be in [0, 1]")
        peak = max(degrees.values())
        if peak <= 0.0:
            raise ValueError("at least one hypothesis must be possible")
        # Normalise: a distribution with max < 1 encodes sub-normal
        # information; we renormalise and keep the deficit as inconsistency.
        self.inconsistency = 1.0 - peak
        self.degrees = {k: v / peak for k, v in degrees.items()}
        self.frame = frozenset(degrees)

    def possibility(self, hypotheses: Iterable[Any]) -> float:
        """Π(A) = max over A."""
        return max(
            (self.degrees.get(h, 0.0) for h in hypotheses), default=0.0
        )

    def necessity(self, hypotheses: Iterable[Any]) -> float:
        """N(A) = 1 - Π(complement of A)."""
        hypotheses = set(hypotheses)
        complement = self.frame - hypotheses
        return 1.0 - self.possibility(complement)

    def combine_min(
        self, other: "PossibilityDistribution"
    ) -> "PossibilityDistribution":
        """Conjunctive (min) combination over the union frame.

        Hypotheses absent from a distribution count as impossible there.
        Raises ``ValueError`` when the sources are fully inconsistent
        (min yields all-zero).
        """
        frame = self.frame | other.frame
        combined = {
            h: min(self.degrees.get(h, 0.0), other.degrees.get(h, 0.0))
            for h in frame
        }
        if max(combined.values()) <= 0.0:
            raise ValueError("fully inconsistent possibility distributions")
        return PossibilityDistribution(combined)

    def most_plausible(self) -> Any:
        """A hypothesis with π = 1 (ties broken by repr order)."""
        return max(
            sorted(self.degrees, key=repr), key=lambda h: self.degrees[h]
        )

    def __repr__(self) -> str:
        body = ", ".join(
            f"{k!r}:{v:.2f}" for k, v in sorted(
                self.degrees.items(), key=lambda kv: -kv[1]
            )
        )
        return f"PossibilityDistribution({body})"
