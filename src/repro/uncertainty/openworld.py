"""Open-world probabilistic querying (§4, after Ceylan et al. [9]).

"The AIS database clearly violates the closed-world assumption ...
querying rendez-vous events from an AIS database will return only those
events reflected by the AIS data.  Considering that anything which is not
in the AIS database remains possible is thus crucial."

An :class:`OpenWorldRelation` is a probabilistic relation plus a
*completion budget* λ: facts not present are not false but merely
unobserved, and may hold with probability up to λ.  Queries therefore
return :class:`PossibilityInterval` bounds ``[lower, upper]`` instead of a
single closed-world probability:

- ``lower`` — probability from recorded tuples only (the closed-world
  answer);
- ``upper`` — lower combined with the λ-bounded possibility that an
  unobserved fact completes the query.

The interval collapses to a point when coverage is total (λ = 0) and
widens exactly where the data went dark — which is what benchmark E4
demonstrates against the Windward 27% dark-ship rate.
"""

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.uncertainty.probabilistic import ProbabilisticRelation


@dataclass(frozen=True)
class PossibilityInterval:
    """Probability bounds under the open-world assumption."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.lower <= self.upper <= 1.0:
            raise ValueError(
                f"invalid interval [{self.lower}, {self.upper}]"
            )

    @property
    def width(self) -> float:
        """Residual ignorance: 0 = fully determined."""
        return self.upper - self.lower

    @property
    def possible(self) -> bool:
        return self.upper > 0.0

    @property
    def certain(self) -> bool:
        return self.lower == 1.0


class OpenWorldRelation:
    """A probabilistic relation with open-world completion.

    ``completion_lambda`` bounds the probability of any *single*
    unobserved fact; ``n_unobserved`` estimates how many candidate facts
    escaped observation (e.g. vessel-pairs both dark during the window).
    Both can be set globally or per query.
    """

    def __init__(
        self,
        relation: ProbabilisticRelation,
        completion_lambda: float = 0.1,
    ) -> None:
        if not 0.0 <= completion_lambda <= 1.0:
            raise ValueError("completion_lambda must be in [0, 1]")
        self.relation = relation
        self.completion_lambda = completion_lambda

    def probability_exists(
        self,
        predicate: Callable[[Any], bool],
        n_unobserved: int = 0,
        completion_lambda: float | None = None,
    ) -> PossibilityInterval:
        """Open-world bounds on "some tuple satisfying predicate exists".

        The lower bound is the closed-world noisy-or over recorded tuples;
        the upper bound additionally lets each of the ``n_unobserved``
        candidate facts hold with probability ``completion_lambda``.
        """
        lam = (
            self.completion_lambda
            if completion_lambda is None
            else completion_lambda
        )
        lower = self.relation.probability_exists(predicate)
        p_no_hidden = (1.0 - lam) ** max(0, n_unobserved)
        upper = 1.0 - (1.0 - lower) * p_no_hidden
        return PossibilityInterval(lower=lower, upper=min(1.0, upper))

    def expected_count(
        self,
        predicate: Callable[[Any], bool],
        n_unobserved: int = 0,
        completion_lambda: float | None = None,
    ) -> tuple[float, float]:
        """Open-world bounds on the expected number of satisfying facts."""
        lam = (
            self.completion_lambda
            if completion_lambda is None
            else completion_lambda
        )
        lower = self.relation.expected_count(predicate)
        return lower, lower + lam * max(0, n_unobserved)


def unobserved_pair_candidates(
    n_dark_vessels: int, n_total_vessels: int
) -> int:
    """How many vessel *pairs* could have met unobserved.

    A rendezvous needs both parties invisible to stay unrecorded, so the
    candidate count is C(dark, 2) plus dark-with-visible pairs where the
    visible side's track still leaves room (we count only the fully dark
    pairs, the conservative floor).
    """
    if n_dark_vessels < 2:
        return 0
    del n_total_vessels  # kept in the signature for future refinements
    return n_dark_vessels * (n_dark_vessels - 1) // 2
