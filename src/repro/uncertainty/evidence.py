"""Dempster-Shafer evidence theory.

§4 calls for "the extension to other uncertainty representations such as
evidence or possibility theories ... to cope with the different nature of
uncertainty".  Mass functions here assign belief mass to *sets* of
hypotheses (e.g. {fishing, loitering}) over a finite frame of discernment;
combination fuses independent sources; discounting weakens a source by
its reliability (:mod:`repro.fusion.reliability`).
"""

from collections.abc import Iterable
from typing import Any

Hypothesis = frozenset


class MassFunction:
    """A Dempster-Shafer basic belief assignment over a frame.

    Construct from a mapping of hypothesis sets to masses; masses must be
    non-negative and sum to 1 (within tolerance).  The empty set must not
    carry mass in a normalised assignment.
    """

    def __init__(
        self,
        masses: dict[frozenset, float],
        frame: frozenset | None = None,
        tolerance: float = 1e-9,
    ) -> None:
        cleaned: dict[frozenset, float] = {}
        for hypothesis, mass in masses.items():
            hypothesis = frozenset(hypothesis)
            if mass < -tolerance:
                raise ValueError("negative mass")
            if mass <= 0:
                continue
            cleaned[hypothesis] = cleaned.get(hypothesis, 0.0) + mass
        total = sum(cleaned.values())
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"masses must sum to 1, got {total}")
        if frozenset() in cleaned:
            raise ValueError("normalised assignment cannot mass the empty set")
        self.masses = cleaned
        if frame is None:
            frame = frozenset().union(*cleaned) if cleaned else frozenset()
        self.frame = frozenset(frame)

    @classmethod
    def vacuous(cls, frame: Iterable[Any]) -> "MassFunction":
        """Total ignorance: all mass on the whole frame."""
        frame = frozenset(frame)
        return cls({frame: 1.0}, frame)

    @classmethod
    def categorical(cls, hypothesis: Iterable[Any], frame: Iterable[Any]) -> "MassFunction":
        return cls({frozenset(hypothesis): 1.0}, frozenset(frame))

    @classmethod
    def simple(
        cls, hypothesis: Iterable[Any], mass: float, frame: Iterable[Any]
    ) -> "MassFunction":
        """A simple support function: ``mass`` on the hypothesis, the rest
        on the frame."""
        frame = frozenset(frame)
        hypothesis = frozenset(hypothesis)
        if not 0.0 <= mass <= 1.0:
            raise ValueError("mass must be in [0, 1]")
        if mass == 1.0:
            return cls({hypothesis: 1.0}, frame)
        return cls({hypothesis: mass, frame: 1.0 - mass}, frame)

    # -- measures ------------------------------------------------------------

    def belief(self, hypothesis: Iterable[Any]) -> float:
        """Bel(A) = sum of masses of subsets of A."""
        hypothesis = frozenset(hypothesis)
        return sum(
            mass for subset, mass in self.masses.items()
            if subset and subset.issubset(hypothesis)
        )

    def plausibility(self, hypothesis: Iterable[Any]) -> float:
        """Pl(A) = sum of masses of sets intersecting A = 1 - Bel(not A)."""
        hypothesis = frozenset(hypothesis)
        return sum(
            mass for subset, mass in self.masses.items()
            if subset & hypothesis
        )

    def pignistic(self) -> dict[Any, float]:
        """BetP: spread each mass uniformly over its elements — the
        probability a decision-maker should act on (Smets)."""
        out: dict[Any, float] = {element: 0.0 for element in self.frame}
        for subset, mass in self.masses.items():
            share = mass / len(subset)
            for element in subset:
                out[element] = out.get(element, 0.0) + share
        return out

    def conflict_with(self, other: "MassFunction") -> float:
        """Dempster's conflict K: total mass on empty intersections."""
        conflict = 0.0
        for a, mass_a in self.masses.items():
            for b, mass_b in other.masses.items():
                if not a & b:
                    conflict += mass_a * mass_b
        return conflict

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{set(h) or '{}'}:{m:.3f}" for h, m in sorted(
                self.masses.items(), key=lambda kv: -kv[1]
            )
        )
        return f"MassFunction({parts})"


def combine_dempster(a: MassFunction, b: MassFunction) -> MassFunction:
    """Dempster's rule: conjunctive combination with conflict renormalised.

    Raises ``ValueError`` on total conflict (K = 1), where the rule is
    undefined — callers should fall back to Yager or flag the sources.
    """
    frame = a.frame | b.frame
    raw: dict[frozenset, float] = {}
    conflict = 0.0
    for ha, ma in a.masses.items():
        for hb, mb in b.masses.items():
            intersection = ha & hb
            product = ma * mb
            if intersection:
                raw[intersection] = raw.get(intersection, 0.0) + product
            else:
                conflict += product
    if conflict >= 1.0 - 1e-12:
        raise ValueError("total conflict: Dempster's rule undefined")
    scale = 1.0 / (1.0 - conflict)
    return MassFunction({h: m * scale for h, m in raw.items()}, frame)


def combine_yager(a: MassFunction, b: MassFunction) -> MassFunction:
    """Yager's rule: conflict mass goes to the frame (ignorance) instead
    of renormalising — more cautious under high conflict, which suits
    deceptive sources (§2.4 "deliberate deception")."""
    frame = a.frame | b.frame
    raw: dict[frozenset, float] = {}
    conflict = 0.0
    for ha, ma in a.masses.items():
        for hb, mb in b.masses.items():
            intersection = ha & hb
            product = ma * mb
            if intersection:
                raw[intersection] = raw.get(intersection, 0.0) + product
            else:
                conflict += product
    if conflict > 0:
        raw[frame] = raw.get(frame, 0.0) + conflict
    return MassFunction(raw, frame)


def discount(mass_function: MassFunction, reliability: float) -> MassFunction:
    """Shafer discounting: scale masses by reliability, move the rest to
    the frame.  reliability 1 is identity; 0 is vacuous."""
    if not 0.0 <= reliability <= 1.0:
        raise ValueError("reliability must be in [0, 1]")
    frame = mass_function.frame
    out: dict[frozenset, float] = {}
    for hypothesis, mass in mass_function.masses.items():
        out[hypothesis] = out.get(hypothesis, 0.0) + mass * reliability
    out[frame] = out.get(frame, 0.0) + (1.0 - reliability)
    return MassFunction(out, frame)
