"""Second-order uncertainty: uncertain probabilities as Beta laws.

§4: "Considering second-order uncertainty seems also unavoidable if one
wants to properly account for the imperfection of data in the estimation
of patterns-of-life ... but also if one wants to communicate to the user
faithful information."

A :class:`BetaProbability` carries evidence counts (α successes, β
failures); its mean is the point probability, its credible interval the
second-order spread.  Pattern-of-life cell estimates and source
reliabilities both use it: "anomalous with p=0.9 from 5 observations" and
"from 5000 observations" are different claims, and the operator display
(:mod:`repro.core.decision`) renders them differently.
"""

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BetaProbability:
    """A Beta(alpha, beta) distributed probability."""

    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("alpha and beta must be positive")

    @classmethod
    def from_counts(
        cls, successes: float, failures: float, prior: float = 1.0
    ) -> "BetaProbability":
        """Laplace-style: counts plus a symmetric prior."""
        if successes < 0 or failures < 0:
            raise ValueError("counts must be non-negative")
        return cls(successes + prior, failures + prior)

    @property
    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    @property
    def evidence(self) -> float:
        """Total pseudo-count: how much data backs the estimate."""
        return self.alpha + self.beta

    @property
    def variance(self) -> float:
        total = self.alpha + self.beta
        return self.alpha * self.beta / (total * total * (total + 1.0))

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def credible_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation credible interval, clipped to [0, 1].

        The normal approximation is adequate for evidence >= ~10; for tiny
        counts it is conservative (wide), which is the safe direction for
        an operator display.
        """
        lo = self.mean - z * self.std
        hi = self.mean + z * self.std
        return max(0.0, lo), min(1.0, hi)

    def update(self, successes: float = 0.0, failures: float = 0.0) -> "BetaProbability":
        """Bayesian update with more evidence."""
        if successes < 0 or failures < 0:
            raise ValueError("counts must be non-negative")
        return BetaProbability(self.alpha + successes, self.beta + failures)

    def combine(self, other: "BetaProbability") -> "BetaProbability":
        """Pool two independent evidence bodies about the same probability
        (add pseudo-counts, subtracting one shared uniform prior)."""
        return BetaProbability(
            self.alpha + other.alpha - 1.0,
            self.beta + other.beta - 1.0,
        )

    def is_reliable(self, min_evidence: float = 10.0) -> bool:
        return self.evidence >= min_evidence

    def __str__(self) -> str:
        lo, hi = self.credible_interval()
        return f"{self.mean:.2f} [{lo:.2f}, {hi:.2f}] (n≈{self.evidence:.0f})"
