"""Uncertainty substrate (§4).

The paper argues maritime decision support must handle "the different
nature of uncertainty (probabilistic, subjective, vague, ambiguous)".
This package implements the frameworks it names:

- probabilistic tuples and relations (probabilistic databases [3][23]);
- **open-world** query evaluation (Ceylan et al. [9]): facts absent from
  the database are *possible*, not false — the rendezvous-querying
  example of §4;
- Dempster-Shafer evidence theory with Dempster's and Yager's combination
  rules, discounting by source reliability, belief/plausibility and the
  pignistic transform;
- possibility theory (possibility/necessity, min-based combination);
- second-order uncertainty as Beta-distributed probabilities.
"""

from repro.uncertainty.probabilistic import (
    ProbabilisticTuple,
    ProbabilisticRelation,
)
from repro.uncertainty.openworld import (
    OpenWorldRelation,
    PossibilityInterval,
)
from repro.uncertainty.evidence import (
    MassFunction,
    combine_dempster,
    combine_yager,
    discount,
)
from repro.uncertainty.possibility import PossibilityDistribution
from repro.uncertainty.secondorder import BetaProbability

__all__ = [
    "ProbabilisticTuple",
    "ProbabilisticRelation",
    "OpenWorldRelation",
    "PossibilityInterval",
    "MassFunction",
    "combine_dempster",
    "combine_yager",
    "discount",
    "PossibilityDistribution",
    "BetaProbability",
]
