"""Tuple-independent probabilistic relations.

The standard probabilistic-database model: each tuple exists independently
with probability ``p``.  Selections keep probabilities; independent joins
multiply them; duplicate elimination combines by noisy-or.  Enough to
express "how certain are we this vessel was in the zone" queries over
fused, partially trusted data (§4 [3][23]).
"""

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class ProbabilisticTuple:
    value: Any
    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"probability out of range: {self.p}")


class ProbabilisticRelation:
    """A bag of probabilistic tuples under tuple independence."""

    def __init__(self, tuples: list[ProbabilisticTuple] | None = None) -> None:
        self.tuples = list(tuples) if tuples else []

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def add(self, value: Any, p: float) -> None:
        self.tuples.append(ProbabilisticTuple(value, p))

    def select(self, predicate: Callable[[Any], bool]) -> "ProbabilisticRelation":
        return ProbabilisticRelation(
            [t for t in self.tuples if predicate(t.value)]
        )

    def project(self, fn: Callable[[Any], Any]) -> "ProbabilisticRelation":
        """Projection with duplicate elimination: equal projected values
        combine by noisy-or (independence assumption)."""
        by_value: dict[Any, float] = {}
        for t in self.tuples:
            key = fn(t.value)
            prior = by_value.get(key, 0.0)
            by_value[key] = 1.0 - (1.0 - prior) * (1.0 - t.p)
        return ProbabilisticRelation(
            [ProbabilisticTuple(v, p) for v, p in by_value.items()]
        )

    def join(
        self,
        other: "ProbabilisticRelation",
        on: Callable[[Any, Any], bool],
        combine: Callable[[Any, Any], Any] = lambda a, b: (a, b),
    ) -> "ProbabilisticRelation":
        """Independent join: pair probability is the product."""
        out = ProbabilisticRelation()
        for left in self.tuples:
            for right in other.tuples:
                if on(left.value, right.value):
                    out.add(combine(left.value, right.value), left.p * right.p)
        return out

    def probability_exists(self, predicate: Callable[[Any], bool]) -> float:
        """P(at least one tuple satisfying the predicate exists)."""
        p_none = 1.0
        for t in self.tuples:
            if predicate(t.value):
                p_none *= 1.0 - t.p
        return 1.0 - p_none

    def expected_count(self, predicate: Callable[[Any], bool] = lambda v: True) -> float:
        return sum(t.p for t in self.tuples if predicate(t.value))

    def top_k(self, k: int) -> list[ProbabilisticTuple]:
        """The k most probable tuples."""
        return sorted(self.tuples, key=lambda t: t.p, reverse=True)[:k]
