"""repro — Maritime data integration and analysis.

An open reproduction of *"Maritime Data Integration and Analysis: Recent
Progress and Research Challenges"* (Claramunt et al., EDBT 2017): the
integrated maritime information infrastructure the paper envisions,
implemented end to end in Python — AIS link layer, world simulator,
stream engine, trajectory analytics, moving-object storage, multi-source
fusion, complex event recognition, forecasting, uncertainty handling,
semantics and visual analytics.

Quickstart (batch replay)::

    from repro.simulation import regional_scenario
    from repro.core import MaritimePipeline

    run = regional_scenario(n_vessels=40, duration_s=4 * 3600).run()
    result = MaritimePipeline().process(run)
    print(result.summary())

As a monitoring service (source → session → subscriptions)::

    from repro import MaritimeMonitor
    from repro.sources import NmeaFileSource

    monitor = MaritimeMonitor().attach(NmeaFileSource("feed.nmea"))
    report = monitor.subscribe(on_event=print).run(tick_s=60.0)
"""

__version__ = "1.1.0"

from repro.core import MaritimePipeline, PipelineConfig, DecisionSupport
from repro.monitor import MaritimeMonitor, MonitorReport

__all__ = [
    "MaritimePipeline",
    "MaritimeMonitor",
    "MonitorReport",
    "PipelineConfig",
    "DecisionSupport",
    "__version__",
]
