"""repro — Maritime data integration and analysis.

An open reproduction of *"Maritime Data Integration and Analysis: Recent
Progress and Research Challenges"* (Claramunt et al., EDBT 2017): the
integrated maritime information infrastructure the paper envisions,
implemented end to end in Python — AIS link layer, world simulator,
stream engine, trajectory analytics, moving-object storage, multi-source
fusion, complex event recognition, forecasting, uncertainty handling,
semantics and visual analytics.

Quickstart::

    from repro.simulation import regional_scenario
    from repro.core import MaritimePipeline

    run = regional_scenario(n_vessels=40, duration_s=4 * 3600).run()
    result = MaritimePipeline().process(run)
    print(result.summary())
"""

__version__ = "1.0.0"

from repro.core import MaritimePipeline, PipelineConfig, DecisionSupport

__all__ = ["MaritimePipeline", "PipelineConfig", "DecisionSupport", "__version__"]
