"""Link discovery between heterogeneous vessel records.

§2.2: link discovery approaches from the RDF world are "restricted to
properties of specific (mostly numerical) types" and unproven on streams.
This module implements the classic record-linkage pipeline — blocking,
per-attribute similarity, weighted scoring, thresholding — tuned for
vessel registries (the MarineTraffic-vs-Lloyd's example of §4): names
with typos, slightly different lengths, stale flags, shared IMO/callsign.
"""

from dataclasses import dataclass, field
from typing import Any


def jaro_winkler(s1: str, s2: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler string similarity in [0, 1]."""
    if s1 == s2:
        return 1.0
    if not s1 or not s2:
        return 0.0
    len1, len2 = len(s1), len(s2)
    window = max(len1, len2) // 2 - 1
    window = max(0, window)
    matched1 = [False] * len1
    matched2 = [False] * len2
    matches = 0
    for i, char in enumerate(s1):
        lo = max(0, i - window)
        hi = min(len2, i + window + 1)
        for j in range(lo, hi):
            if not matched2[j] and s2[j] == char:
                matched1[i] = True
                matched2[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    k = 0
    for i in range(len1):
        if matched1[i]:
            while not matched2[k]:
                k += 1
            if s1[i] != s2[k]:
                transpositions += 1
            k += 1
    transpositions //= 2
    jaro = (
        matches / len1 + matches / len2 + (matches - transpositions) / matches
    ) / 3.0
    prefix = 0
    for a, b in zip(s1[:4], s2[:4]):
        if a == b:
            prefix += 1
        else:
            break
    return jaro + prefix * prefix_scale * (1.0 - jaro)


def numeric_similarity(a: float | None, b: float | None, tolerance: float) -> float:
    """1 at equality, linearly to 0 at ``tolerance`` apart; missing → 0.5
    (uninformative, not contradictory)."""
    if a is None or b is None:
        return 0.5
    gap = abs(float(a) - float(b))
    if tolerance <= 0:
        return 1.0 if gap == 0 else 0.0
    return max(0.0, 1.0 - gap / tolerance)


@dataclass(frozen=True)
class LinkageConfig:
    """Attribute weights and thresholds for vessel-record matching."""

    name_weight: float = 0.35
    callsign_weight: float = 0.20
    imo_weight: float = 0.25
    length_weight: float = 0.10
    flag_weight: float = 0.10
    length_tolerance_m: float = 10.0
    #: Score at or above which a candidate pair is declared a link.
    accept_threshold: float = 0.75
    #: Blocking: candidates must share a name 3-gram or an exact IMO.
    require_block: bool = True


@dataclass(frozen=True)
class LinkCandidate:
    """A scored candidate pair of records (record ids from both sides)."""

    left_id: Any
    right_id: Any
    score: float
    attribute_scores: dict = field(default_factory=dict, hash=False, compare=False)


def _name_trigrams(name: str) -> set[str]:
    cleaned = "".join(c for c in name.upper() if c.isalnum() or c == " ")
    padded = f"  {cleaned}  "
    return {padded[i : i + 3] for i in range(len(padded) - 2)}


def _score_pair(
    left: dict, right: dict, config: LinkageConfig
) -> LinkCandidate:
    scores = {
        "name": jaro_winkler(
            str(left.get("name", "")).upper(), str(right.get("name", "")).upper()
        ),
        "callsign": jaro_winkler(
            str(left.get("callsign", "")).upper(),
            str(right.get("callsign", "")).upper(),
        ),
        "imo": (
            1.0
            if left.get("imo") and left.get("imo") == right.get("imo")
            else (0.0 if left.get("imo") and right.get("imo") else 0.5)
        ),
        "length": numeric_similarity(
            left.get("length_m"), right.get("length_m"), config.length_tolerance_m
        ),
        "flag": (
            1.0
            if left.get("flag") and left.get("flag") == right.get("flag")
            else (0.0 if left.get("flag") and right.get("flag") else 0.5)
        ),
    }
    total = (
        scores["name"] * config.name_weight
        + scores["callsign"] * config.callsign_weight
        + scores["imo"] * config.imo_weight
        + scores["length"] * config.length_weight
        + scores["flag"] * config.flag_weight
    )
    return LinkCandidate(
        left_id=left["id"], right_id=right["id"],
        score=total, attribute_scores=scores,
    )


def discover_links(
    left_records: list[dict],
    right_records: list[dict],
    config: LinkageConfig | None = None,
) -> list[LinkCandidate]:
    """Match records across two registries.

    Records are dicts with keys ``id``, ``name``, ``callsign``, ``imo``,
    ``length_m``, ``flag`` (missing attributes tolerated).  Returns
    accepted links, best-first, one per left record at most (greedy
    one-to-one assignment).
    """
    config = config or LinkageConfig()
    # Blocking: group right records by name trigrams and by IMO.
    by_trigram: dict[str, list[int]] = {}
    by_imo: dict[Any, list[int]] = {}
    for index, record in enumerate(right_records):
        for gram in _name_trigrams(str(record.get("name", ""))):
            by_trigram.setdefault(gram, []).append(index)
        if record.get("imo"):
            by_imo.setdefault(record["imo"], []).append(index)

    candidates: list[LinkCandidate] = []
    for left in left_records:
        seen: set[int] = set()
        if config.require_block:
            pool: set[int] = set()
            for gram in _name_trigrams(str(left.get("name", ""))):
                pool.update(by_trigram.get(gram, []))
            if left.get("imo"):
                pool.update(by_imo.get(left["imo"], []))
        else:
            pool = set(range(len(right_records)))
        for index in pool:
            if index in seen:
                continue
            seen.add(index)
            candidate = _score_pair(left, right_records[index], config)
            if candidate.score >= config.accept_threshold:
                candidates.append(candidate)

    # Greedy one-to-one: best scores first, skip already-linked ids.
    candidates.sort(key=lambda c: c.score, reverse=True)
    used_left: set[Any] = set()
    used_right: set[Any] = set()
    accepted: list[LinkCandidate] = []
    for candidate in candidates:
        if candidate.left_id in used_left or candidate.right_id in used_right:
            continue
        used_left.add(candidate.left_id)
        used_right.add(candidate.right_id)
        accepted.append(candidate)
    return accepted
