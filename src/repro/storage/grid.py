"""Spatio-temporal grid index over track points.

Cells are (lat band, lon band, time bucket); each cell holds the points
that fall in it.  Range queries touch only overlapping cells; k-NN expands
rings of cells outward from the query point.  Simple, predictable, and —
as benchmark E8 shows — one to two orders of magnitude faster than scans
or triple-pattern evaluation for trajectory workloads, which is §2.3's
point.
"""

import math
from dataclasses import dataclass

from repro.geo import BoundingBox, haversine_m


@dataclass(frozen=True)
class IndexedPoint:
    """What the index stores: a fix plus its owning vessel."""

    mmsi: int
    t: float
    lat: float
    lon: float


class GridIndex:
    """Uniform lat/lon/time grid.

    ``cell_deg`` trades memory for selectivity; 0.1° (≈11 km) suits
    regional scenarios, 1° suits global ones.  ``time_bucket_s`` plays the
    same role in time.
    """

    def __init__(self, cell_deg: float = 0.1, time_bucket_s: float = 3600.0) -> None:
        if cell_deg <= 0 or time_bucket_s <= 0:
            raise ValueError("cell_deg and time_bucket_s must be positive")
        self.cell_deg = cell_deg
        self.time_bucket_s = time_bucket_s
        self._cells: dict[tuple[int, int, int], list[IndexedPoint]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def _key(self, lat: float, lon: float, t: float) -> tuple[int, int, int]:
        return (
            int(math.floor(lat / self.cell_deg)),
            int(math.floor(lon / self.cell_deg)),
            int(math.floor(t / self.time_bucket_s)),
        )

    def insert(self, point: IndexedPoint) -> None:
        self._cells.setdefault(
            self._key(point.lat, point.lon, point.t), []
        ).append(point)
        self._count += 1

    def insert_many(self, points: list[IndexedPoint]) -> None:
        for point in points:
            self.insert(point)

    def range_query(
        self, box: BoundingBox, t0: float, t1: float
    ) -> list[IndexedPoint]:
        """All points inside the box and ``[t0, t1]`` (inclusive)."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        lat_lo = int(math.floor(box.lat_min / self.cell_deg))
        lat_hi = int(math.floor(box.lat_max / self.cell_deg))
        time_lo = int(math.floor(t0 / self.time_bucket_s))
        time_hi = int(math.floor(t1 / self.time_bucket_s))
        lon_ranges = []
        if box.crosses_antimeridian:
            lon_ranges.append(
                (int(math.floor(box.lon_min / self.cell_deg)),
                 int(math.floor(180.0 / self.cell_deg)))
            )
            lon_ranges.append(
                (int(math.floor(-180.0 / self.cell_deg)),
                 int(math.floor(box.lon_max / self.cell_deg)))
            )
        else:
            lon_ranges.append(
                (int(math.floor(box.lon_min / self.cell_deg)),
                 int(math.floor(box.lon_max / self.cell_deg)))
            )
        out: list[IndexedPoint] = []
        for lat_i in range(lat_lo, lat_hi + 1):
            for lon_lo, lon_hi in lon_ranges:
                for lon_i in range(lon_lo, lon_hi + 1):
                    for time_i in range(time_lo, time_hi + 1):
                        cell = self._cells.get((lat_i, lon_i, time_i))
                        if not cell:
                            continue
                        for point in cell:
                            if (
                                t0 <= point.t <= t1
                                and box.contains(point.lat, point.lon)
                            ):
                                out.append(point)
        return out

    def knn(
        self,
        lat: float,
        lon: float,
        t0: float,
        t1: float,
        k: int,
        max_rings: int = 50,
    ) -> list[tuple[float, IndexedPoint]]:
        """The ``k`` points nearest to (lat, lon) within the time window.

        Expands square rings of cells until enough candidates exist and the
        next ring cannot contain anything closer.  Returns
        ``(distance_m, point)`` sorted ascending.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        centre_lat = int(math.floor(lat / self.cell_deg))
        centre_lon = int(math.floor(lon / self.cell_deg))
        time_lo = int(math.floor(t0 / self.time_bucket_s))
        time_hi = int(math.floor(t1 / self.time_bucket_s))
        found: list[tuple[float, IndexedPoint]] = []
        cell_m = self.cell_deg * 111_195.0

        for ring in range(max_rings + 1):
            for lat_i in range(centre_lat - ring, centre_lat + ring + 1):
                for lon_i in range(centre_lon - ring, centre_lon + ring + 1):
                    if max(abs(lat_i - centre_lat), abs(lon_i - centre_lon)) != ring:
                        continue
                    for time_i in range(time_lo, time_hi + 1):
                        for point in self._cells.get((lat_i, lon_i, time_i), []):
                            if t0 <= point.t <= t1:
                                dist = haversine_m(lat, lon, point.lat, point.lon)
                                found.append((dist, point))
            if len(found) >= k:
                found.sort(key=lambda pair: pair[0])
                # Safe to stop when the k-th hit is closer than the nearest
                # possible point of the next unexplored ring.
                if found[k - 1][0] < ring * cell_m:
                    return found[:k]
        found.sort(key=lambda pair: pair[0])
        return found[:k]

    def cell_histogram(self) -> dict[tuple[int, int], int]:
        """Point counts per (lat, lon) cell, summed over time — feeds the
        density renderer for Figure 1."""
        out: dict[tuple[int, int], int] = {}
        for (lat_i, lon_i, __), points in self._cells.items():
            key = (lat_i, lon_i)
            out[key] = out.get(key, 0) + len(points)
        return out
