"""Trajectory store: segments by vessel + grid index over fixes.

The "dedicated moving-object store" side of benchmark E8.  Stores whole
trajectory segments (so trajectory-level operations stay cheap) and
indexes every fix in a :class:`~repro.storage.grid.GridIndex` for
spatio-temporal selection.
"""

from dataclasses import dataclass

from repro.geo import BoundingBox
from repro.storage.grid import GridIndex, IndexedPoint
from repro.trajectory.points import Trajectory


@dataclass(frozen=True)
class RangeQuery:
    """A spatio-temporal selection predicate."""

    box: BoundingBox
    t0: float
    t1: float

    def matches(self, lat: float, lon: float, t: float) -> bool:
        return self.t0 <= t <= self.t1 and self.box.contains(lat, lon)


class TrajectoryStore:
    """In-memory moving-object database."""

    def __init__(
        self, cell_deg: float = 0.1, time_bucket_s: float = 3600.0
    ) -> None:
        self._segments: dict[int, list[Trajectory]] = {}
        self._index = GridIndex(cell_deg, time_bucket_s)
        self._n_points = 0

    def __len__(self) -> int:
        """Number of stored fixes."""
        return self._n_points

    @property
    def n_vessels(self) -> int:
        return len(self._segments)

    def add(self, trajectory: Trajectory) -> None:
        self._segments.setdefault(trajectory.mmsi, []).append(trajectory)
        for point in trajectory:
            self._index.insert(
                IndexedPoint(trajectory.mmsi, point.t, point.lat, point.lon)
            )
        self._n_points += len(trajectory)

    def add_all(self, trajectories: list[Trajectory]) -> None:
        for trajectory in trajectories:
            self.add(trajectory)

    def segments(self, mmsi: int) -> list[Trajectory]:
        return list(self._segments.get(mmsi, []))

    def all_segments(self) -> list[Trajectory]:
        out = []
        for segments in self._segments.values():
            out.extend(segments)
        return out

    # -- queries -----------------------------------------------------------

    def range_points(self, query: RangeQuery) -> list[IndexedPoint]:
        """Fixes matching the predicate, via the grid index."""
        return self._index.range_query(query.box, query.t0, query.t1)

    def range_points_scan(self, query: RangeQuery) -> list[IndexedPoint]:
        """Same result by full scan — the baseline E8 compares against."""
        out = []
        for segments in self._segments.values():
            for segment in segments:
                for point in segment:
                    if query.matches(point.lat, point.lon, point.t):
                        out.append(
                            IndexedPoint(segment.mmsi, point.t, point.lat, point.lon)
                        )
        return out

    def vessels_in(self, query: RangeQuery) -> set[int]:
        """MMSIs with at least one fix matching the predicate."""
        return {point.mmsi for point in self.range_points(query)}

    def knn(
        self, lat: float, lon: float, t0: float, t1: float, k: int
    ) -> list[tuple[float, IndexedPoint]]:
        return self._index.knn(lat, lon, t0, t1, k)

    def window_trajectories(self, query: RangeQuery) -> list[Trajectory]:
        """Sub-trajectories clipped to the query's time window, for vessels
        that intersect the box during it."""
        out: list[Trajectory] = []
        for mmsi in self.vessels_in(query):
            for segment in self._segments.get(mmsi, []):
                clipped = segment.slice_time(query.t0, query.t1)
                if clipped is None:
                    continue
                lat_min, lat_max, lon_min, lon_max = clipped.bounding_box()
                seg_box = BoundingBox(lat_min, lat_max, lon_min, lon_max)
                if seg_box.intersects(query.box):
                    out.append(clipped)
        return out

    def density_histogram(self) -> dict[tuple[int, int], int]:
        return self._index.cell_histogram()
