"""RDF-lite triple store with hash indexes and pattern queries.

The semantic layer (§2.5) writes annotations here, and benchmark E8 uses
it as the "generic store" strawman for trajectory queries: each fix
becomes several triples, and a spatio-temporal range query becomes a
multi-pattern join with filters — exactly the access path the paper says
RDF engines are stuck with for movement data.

Supports: triple insertion, single-pattern matching against SPO/POS/OSP
indexes, conjunctive (join) queries with variables, and Python-predicate
filters.
"""

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Triple:
    subject: Any
    predicate: Any
    obj: Any

    def __iter__(self):
        return iter((self.subject, self.predicate, self.obj))


@dataclass(frozen=True)
class Variable:
    """A named query variable, e.g. ``Variable("vessel")``."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


Pattern = tuple[Any, Any, Any]
Binding = dict[str, Any]


class TripleStore:
    """In-memory triple store with the three classic permutation indexes."""

    def __init__(self) -> None:
        self._spo: dict[Any, dict[Any, set[Any]]] = {}
        self._pos: dict[Any, dict[Any, set[Any]]] = {}
        self._osp: dict[Any, dict[Any, set[Any]]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # Pickle as a canonically ordered triple list, not the hash indexes:
    # set/dict iteration order depends on insertion history, so a store
    # rebuilt from a checkpoint would re-pickle to different bytes than
    # the original.  Sorting by repr makes snapshots of equal stores
    # byte-identical (and therefore diffable) regardless of feed order.
    def __getstate__(self) -> dict:
        triples = [
            (s, p, o)
            for s, s_level in self._spo.items()
            for p, objects in s_level.items()
            for o in objects
        ]
        triples.sort(key=lambda t: (repr(t[0]), repr(t[1]), repr(t[2])))
        return {"triples": triples}

    def __setstate__(self, state: dict) -> None:
        self.__init__()
        for subject, predicate, obj in state["triples"]:
            self.add(subject, predicate, obj)

    def add(self, subject: Any, predicate: Any, obj: Any) -> None:
        s_level = self._spo.setdefault(subject, {})
        objects = s_level.setdefault(predicate, set())
        if obj in objects:
            return  # set semantics, like RDF
        objects.add(obj)
        self._pos.setdefault(predicate, {}).setdefault(obj, set()).add(subject)
        self._osp.setdefault(obj, {}).setdefault(subject, set()).add(predicate)
        self._count += 1

    def add_triple(self, triple: Triple) -> None:
        self.add(triple.subject, triple.predicate, triple.obj)

    # -- single pattern ----------------------------------------------------

    def match(self, pattern: Pattern) -> list[Triple]:
        """All triples matching a pattern; ``Variable``/``None`` are wild."""

        def is_bound(term: Any) -> bool:
            return term is not None and not isinstance(term, Variable)

        s, p, o = pattern
        sb, pb, ob = is_bound(s), is_bound(p), is_bound(o)
        out: list[Triple] = []
        if sb:
            predicates = self._spo.get(s, {})
            for predicate, objects in (
                [(p, predicates.get(p, set()))] if pb else predicates.items()
            ):
                for obj in objects:
                    if not ob or obj == o:
                        out.append(Triple(s, predicate, obj))
        elif pb:
            objects = self._pos.get(p, {})
            for obj, subjects in (
                [(o, objects.get(o, set()))] if ob else objects.items()
            ):
                for subject in subjects:
                    out.append(Triple(subject, p, obj))
        elif ob:
            subjects = self._osp.get(o, {})
            for subject, predicates in subjects.items():
                for predicate in predicates:
                    out.append(Triple(subject, predicate, o))
        else:
            for subject, predicates in self._spo.items():
                for predicate, objects in predicates.items():
                    for obj in objects:
                        out.append(Triple(subject, predicate, obj))
        return out

    # -- conjunctive query ---------------------------------------------------

    def query(
        self,
        patterns: list[Pattern],
        filters: list[Callable[[Binding], bool]] | None = None,
    ) -> list[Binding]:
        """Conjunctive pattern join with optional filters.

        Nested-loop join in pattern order with eager binding substitution —
        no optimiser, which is deliberate: E8 measures the cost of this
        access path against the dedicated index, optimiser or not.
        Filters run as soon as their variables are bound.
        """
        filters = filters or []

        def substitute(pattern: Pattern, binding: Binding) -> Pattern:
            out = []
            for term in pattern:
                if isinstance(term, Variable) and term.name in binding:
                    out.append(binding[term.name])
                else:
                    out.append(term)
            return tuple(out)

        def extend(pattern: Pattern, triple: Triple, binding: Binding) -> Binding | None:
            new_binding = dict(binding)
            for term, value in zip(pattern, triple):
                if isinstance(term, Variable):
                    if term.name in new_binding and new_binding[term.name] != value:
                        return None
                    new_binding[term.name] = value
                elif term is not None and term != value:
                    return None
            return new_binding

        def applicable(binding: Binding) -> bool:
            for predicate in filters:
                try:
                    if not predicate(binding):
                        return False
                except KeyError:
                    continue  # variables not bound yet: defer
            return True

        bindings: list[Binding] = [{}]
        for pattern in patterns:
            next_bindings: list[Binding] = []
            for binding in bindings:
                concrete = substitute(pattern, binding)
                for triple in self.match(concrete):
                    extended = extend(concrete, triple, binding)
                    if extended is not None and applicable(extended):
                        next_bindings.append(extended)
            bindings = next_bindings
            if not bindings:
                return []
        # Final filter pass with everything bound.
        return [b for b in bindings if all(f(b) for f in _total(filters))]


def _total(filters: list[Callable[[Binding], bool]]):
    """Wrap filters so a KeyError at final evaluation means rejection."""

    def wrap(fn: Callable[[Binding], bool]) -> Callable[[Binding], bool]:
        def inner(binding: Binding) -> bool:
            try:
                return fn(binding)
            except KeyError:
                return False

        return inner

    return [wrap(f) for f in filters]
