"""Moving-object storage substrate.

§2.3's diagnosis is that generic stores (RDF engines included) are "not
tailored to offer efficient trajectory-oriented data management".  This
package provides both sides of that comparison, built from scratch:

- :class:`GridIndex` / :class:`TrajectoryStore` — a dedicated
  spatio-temporal store (time-bucketed spatial grid over fixes plus
  per-vessel segment storage) with range / k-NN / window queries;
- :class:`TripleStore` — an RDF-lite triple store with SPO/POS/OSP hash
  indexes, pattern matching and filter predicates, used for semantic
  annotations and as the "generic store" baseline benchmark E8 measures;
- :mod:`repro.storage.linkage` — link discovery between registries
  (blocking + string/numeric similarity), the §2.2 integration primitive.
"""

from repro.storage.grid import GridIndex, IndexedPoint
from repro.storage.store import TrajectoryStore, RangeQuery
from repro.storage.triples import Triple, TripleStore, Variable
from repro.storage.linkage import (
    LinkageConfig,
    LinkCandidate,
    discover_links,
    jaro_winkler,
)

__all__ = [
    "GridIndex",
    "IndexedPoint",
    "TrajectoryStore",
    "RangeQuery",
    "Triple",
    "TripleStore",
    "Variable",
    "LinkageConfig",
    "LinkCandidate",
    "discover_links",
    "jaro_winkler",
]
