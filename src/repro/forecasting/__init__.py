"""Trajectory forecasting (§3.1, §4).

"Algorithms for the prediction of anticipated vessel trajectories at
different time scales ... fundamental to achieve early warning maritime
monitoring."  Three predictors of increasing context-awareness:

- dead reckoning (constant velocity / constant turn);
- Kalman prediction with honest covariance growth;
- route-graph prediction: a directed graph of discretised cells mined
  from historical traffic, followed at the vessel's current speed.

Plus ETA estimation against a port catalogue and a horizon-sweep
evaluation harness (benchmark E6 uses it to locate the CV-vs-route
crossover).
"""

from repro.forecasting.deadreckoning import (
    predict_constant_velocity,
    predict_constant_turn,
)
from repro.forecasting.kalmanpredict import KalmanPredictor, PredictionWithUncertainty
from repro.forecasting.routes import RouteGraph, RouteGraphConfig, RoutePredictor
from repro.forecasting.eta import estimate_eta, EtaEstimate
from repro.forecasting.evaluate import (
    evaluate_predictor,
    HorizonError,
    Predictor,
)

__all__ = [
    "predict_constant_velocity",
    "predict_constant_turn",
    "KalmanPredictor",
    "PredictionWithUncertainty",
    "RouteGraph",
    "RouteGraphConfig",
    "RoutePredictor",
    "estimate_eta",
    "EtaEstimate",
    "evaluate_predictor",
    "HorizonError",
    "Predictor",
]
