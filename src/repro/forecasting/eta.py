"""Estimated time of arrival against the port catalogue."""

from dataclasses import dataclass

from repro.geo import angular_difference_deg, haversine_m, initial_bearing_deg
from repro.simulation.world import Port
from repro.trajectory.points import Trajectory


@dataclass(frozen=True)
class EtaEstimate:
    port: Port
    eta_s: float
    distance_m: float
    #: How well the current course points at the port, in [0, 1].
    course_agreement: float


def estimate_eta(
    trajectory: Trajectory,
    ports: list[Port],
    max_course_off_deg: float = 45.0,
) -> EtaEstimate | None:
    """Best-guess destination and ETA from current course and speed.

    Candidate ports are those roughly ahead (bearing within
    ``max_course_off_deg`` of the course); the most closely aligned wins.
    Returns ``None`` when the vessel is effectively stationary or nothing
    lies ahead — a legitimate "don't know" rather than a junk estimate.
    """
    last = trajectory.points[-1]
    if last.sog_knots is None or last.cog_deg is None or last.sog_knots < 1.0:
        return None
    speed_mps = last.sog_knots * 1852.0 / 3600.0
    best: EtaEstimate | None = None
    for port in ports:
        bearing = initial_bearing_deg(last.lat, last.lon, port.lat, port.lon)
        off = angular_difference_deg(bearing, last.cog_deg)
        if off > max_course_off_deg:
            continue
        distance = haversine_m(last.lat, last.lon, port.lat, port.lon)
        agreement = 1.0 - off / max_course_off_deg
        candidate = EtaEstimate(
            port=port,
            eta_s=distance / speed_mps,
            distance_m=distance,
            course_agreement=agreement,
        )
        if best is None or candidate.course_agreement > best.course_agreement:
            best = candidate
    return best
