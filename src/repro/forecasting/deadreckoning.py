"""Dead-reckoning predictors: constant velocity and constant turn."""

from repro.geo import destination_point, KNOTS_TO_MPS, normalize_course
from repro.trajectory.points import TrackPoint


def predict_constant_velocity(
    state: TrackPoint, horizon_s: float
) -> tuple[float, float]:
    """Project the last fix along its course at its speed.

    The baseline every maritime forecaster is compared against; excellent
    over minutes, poor past the next waypoint.
    """
    if state.sog_knots is None or state.cog_deg is None:
        return state.lat, state.lon
    distance = state.sog_knots * KNOTS_TO_MPS * horizon_s
    return destination_point(state.lat, state.lon, state.cog_deg, distance)


def predict_constant_turn(
    state: TrackPoint,
    turn_rate_deg_per_min: float,
    horizon_s: float,
    step_s: float = 30.0,
) -> tuple[float, float]:
    """Constant-turn-rate projection, integrated in short arcs.

    Useful when a recent turn rate is observable (ROT field or course
    differencing); degenerates to constant velocity at zero rate.
    """
    if state.sog_knots is None or state.cog_deg is None:
        return state.lat, state.lon
    lat, lon = state.lat, state.lon
    course = state.cog_deg
    speed_mps = state.sog_knots * KNOTS_TO_MPS
    remaining = horizon_s
    while remaining > 0:
        dt = min(step_s, remaining)
        lat, lon = destination_point(lat, lon, course, speed_mps * dt)
        course = normalize_course(
            course + turn_rate_deg_per_min * dt / 60.0
        )
        remaining -= dt
    return lat, lon
