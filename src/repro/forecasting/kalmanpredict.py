"""Kalman-filter prediction with explicit uncertainty growth.

Wraps :class:`repro.trajectory.kalman.CvKalmanFilter` for the forecasting
use case: fit on the recent past of a track, predict ahead, and report the
position *with* its 1-sigma circle.  §4 insists systems "inform the
operator of some possible output uncertainty" — this predictor is the
pipeline's way of doing that for anticipated positions.
"""

from dataclasses import dataclass

from repro.geo import LocalTangentPlane
from repro.trajectory.kalman import CvKalmanFilter
from repro.trajectory.points import Trajectory


@dataclass(frozen=True)
class PredictionWithUncertainty:
    lat: float
    lon: float
    sigma_m: float
    horizon_s: float


class KalmanPredictor:
    """Fit a CV Kalman filter to a track's tail; predict with covariance."""

    def __init__(
        self,
        measurement_sigma_m: float = 15.0,
        process_noise_accel: float = 0.05,
        fit_window_s: float = 1800.0,
    ) -> None:
        self.measurement_sigma_m = measurement_sigma_m
        self.process_noise_accel = process_noise_accel
        self.fit_window_s = fit_window_s

    def predict(
        self, trajectory: Trajectory, horizon_s: float
    ) -> PredictionWithUncertainty:
        """Fit on the fixes inside the tail window, predict ``horizon_s``
        past the last fix."""
        return self.predict_many(trajectory, (horizon_s,))[0]

    def predict_many(
        self, trajectory: Trajectory, horizons_s
    ) -> list[PredictionWithUncertainty]:
        """One prediction per horizon from a single filter fit.

        ``CvKalmanFilter.predict`` projects the fitted state without
        mutating it, so fitting once and predicting per horizon returns
        exactly what per-horizon :meth:`predict` calls would — minus the
        repeated fit, which dominates the cost (one covariance update
        and inversion per tail fix).  The forecast stage evaluates every
        configured horizon per segment through this path.
        """
        plane, kf = self._fit(trajectory)
        predictions = []
        for horizon_s in horizons_s:
            if horizon_s < 0:
                raise ValueError("horizon_s must be non-negative")
            state = kf.predict(trajectory.t_end + horizon_s)
            lat, lon = plane.to_latlon(*state.position_m)
            predictions.append(PredictionWithUncertainty(
                lat=lat,
                lon=lon,
                sigma_m=state.position_sigma_m(),
                horizon_s=horizon_s,
            ))
        return predictions

    def _fit(self, trajectory: Trajectory):
        """Fit a filter to the track's tail window."""
        tail_start = trajectory.t_end - self.fit_window_s
        tail = [p for p in trajectory if p.t >= tail_start]
        if not tail:
            tail = list(trajectory.points[-2:])
        anchor = tail[len(tail) // 2]
        plane = LocalTangentPlane(anchor.lat, anchor.lon)
        kf = CvKalmanFilter(
            plane, self.measurement_sigma_m, self.process_noise_accel
        )
        for point in tail:
            kf.update(point)
        return plane, kf

    def predict_point(
        self, trajectory: Trajectory, horizon_s: float
    ) -> tuple[float, float]:
        """Position-only convenience used by the evaluation harness."""
        prediction = self.predict(trajectory, horizon_s)
        return prediction.lat, prediction.lon
