"""Forecast evaluation: error-versus-horizon sweeps.

Benchmark E6's engine: cut each test trajectory at a point, let a
predictor forecast ahead from the visible prefix, and measure the
great-circle error against where the vessel actually went.
"""

from collections.abc import Callable
from dataclasses import dataclass

from repro.geo import haversine_m
from repro.trajectory.points import Trajectory

#: A predictor maps (visible prefix, horizon) to a predicted position.
Predictor = Callable[[Trajectory, float], tuple[float, float]]


@dataclass(frozen=True)
class HorizonError:
    horizon_s: float
    n_samples: int
    mean_error_m: float
    median_error_m: float
    p90_error_m: float


def _percentile(sorted_values: list[float], fraction: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def evaluate_predictor(
    predictor: Predictor,
    trajectories: list[Trajectory],
    horizons_s: list[float],
    cut_fractions: list[float] | None = None,
    min_prefix_points: int = 10,
) -> list[HorizonError]:
    """Sweep horizons over all trajectories and cut points.

    For each trajectory and each ``cut_fraction`` of its duration, the
    prefix up to the cut is shown to the predictor; the error is measured
    at ``cut + horizon`` (skipped when the trajectory ends earlier).
    """
    cut_fractions = cut_fractions or [0.3, 0.5, 0.7]
    out: list[HorizonError] = []
    for horizon in horizons_s:
        errors: list[float] = []
        for trajectory in trajectories:
            for fraction in cut_fractions:
                cut_t = trajectory.t_start + fraction * trajectory.duration_s
                target_t = cut_t + horizon
                if target_t > trajectory.t_end:
                    continue
                prefix = trajectory.slice_time(trajectory.t_start, cut_t)
                if prefix is None or len(prefix) < min_prefix_points:
                    continue
                predicted = predictor(prefix, horizon)
                actual = trajectory.position_at(target_t)
                errors.append(
                    haversine_m(predicted[0], predicted[1], actual[0], actual[1])
                )
        errors.sort()
        if errors:
            out.append(
                HorizonError(
                    horizon_s=horizon,
                    n_samples=len(errors),
                    mean_error_m=sum(errors) / len(errors),
                    median_error_m=_percentile(errors, 0.5),
                    p90_error_m=_percentile(errors, 0.9),
                )
            )
        else:
            out.append(HorizonError(horizon, 0, float("nan"), float("nan"), float("nan")))
    return out
