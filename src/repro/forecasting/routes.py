"""Route-graph extraction and route-following prediction.

Vessels are "only in a limited way constrained by rigid network
infrastructures" (§1) — yet commercial traffic concentrates on lanes.
The route graph makes that latent network explicit: historical tracks are
discretised into grid cells; transitions between cells become weighted
directed edges.  Prediction walks the graph from the vessel's current
cell, choosing the highest-probability next cell consistent with the
current heading, and advances along the walk at the vessel's speed.

Beyond the fit region the predictor falls back to dead reckoning, so it
never refuses to answer (an early-warning system must always have a best
guess, §3.1).
"""

import math
from dataclasses import dataclass

from repro.geo import (
    angular_difference_deg,
    destination_point,
    haversine_m,
    initial_bearing_deg,
    KNOTS_TO_MPS,
)
from repro.trajectory.points import Trajectory


@dataclass(frozen=True)
class RouteGraphConfig:
    cell_deg: float = 0.05
    #: Minimum observed transitions for an edge to be trusted.
    min_edge_count: int = 2
    #: Candidate next cells must be within this of the current heading.
    heading_gate_deg: float = 90.0


class RouteGraph:
    """Directed cell-transition graph mined from historical trajectories."""

    def __init__(self, config: RouteGraphConfig | None = None) -> None:
        self.config = config or RouteGraphConfig()
        #: edge -> count; nodes are (lat_i, lon_i) cells.
        self.edges: dict[tuple[tuple[int, int], tuple[int, int]], int] = {}
        self.n_trajectories = 0

    def _cell(self, lat: float, lon: float) -> tuple[int, int]:
        return (
            int(math.floor(lat / self.config.cell_deg)),
            int(math.floor(lon / self.config.cell_deg)),
        )

    def cell_center(self, cell: tuple[int, int]) -> tuple[float, float]:
        return (
            (cell[0] + 0.5) * self.config.cell_deg,
            (cell[1] + 0.5) * self.config.cell_deg,
        )

    def add_trajectory(self, trajectory: Trajectory) -> None:
        previous: tuple[int, int] | None = None
        for point in trajectory:
            cell = self._cell(point.lat, point.lon)
            if previous is not None and cell != previous:
                edge = (previous, cell)
                self.edges[edge] = self.edges.get(edge, 0) + 1
            previous = cell
        self.n_trajectories += 1

    def train(self, trajectories: list[Trajectory]) -> None:
        for trajectory in trajectories:
            self.add_trajectory(trajectory)

    def successors(
        self, cell: tuple[int, int]
    ) -> list[tuple[tuple[int, int], int]]:
        """Outgoing edges of a cell with counts, most-travelled first."""
        out = [
            (dst, count)
            for (src, dst), count in self.edges.items()
            if src == cell and count >= self.config.min_edge_count
        ]
        out.sort(key=lambda pair: pair[1], reverse=True)
        return out

    @property
    def n_edges(self) -> int:
        return len(self.edges)


class RoutePredictor:
    """Walk the route graph from the vessel's current state."""

    def __init__(self, graph: RouteGraph) -> None:
        self.graph = graph
        # Successor lookup is hot; build an adjacency map once.
        self._adjacency: dict[tuple[int, int], list[tuple[tuple[int, int], int]]] = {}
        for (src, dst), count in graph.edges.items():
            if count >= graph.config.min_edge_count:
                self._adjacency.setdefault(src, []).append((dst, count))
        for successors in self._adjacency.values():
            successors.sort(key=lambda pair: pair[1], reverse=True)

    def predict(
        self, trajectory: Trajectory, horizon_s: float
    ) -> tuple[float, float]:
        """Predicted position ``horizon_s`` after the track's last fix."""
        last = trajectory.points[-1]
        if last.sog_knots is None or last.cog_deg is None or last.sog_knots < 0.5:
            return last.lat, last.lon
        speed_mps = last.sog_knots * KNOTS_TO_MPS
        budget_m = speed_mps * horizon_s
        lat, lon = last.lat, last.lon
        heading = last.cog_deg
        cell = self.graph._cell(lat, lon)
        visited = {cell}
        while budget_m > 0:
            next_cell = self._pick_successor(cell, heading, visited)
            if next_cell is None:
                # Off the learned network: dead-reckon the remainder.
                return destination_point(lat, lon, heading, budget_m)
            target_lat, target_lon = self.graph.cell_center(next_cell)
            hop = haversine_m(lat, lon, target_lat, target_lon)
            if hop >= budget_m:
                bearing = initial_bearing_deg(lat, lon, target_lat, target_lon)
                return destination_point(lat, lon, bearing, budget_m)
            heading = initial_bearing_deg(lat, lon, target_lat, target_lon)
            lat, lon = target_lat, target_lon
            budget_m -= hop
            cell = next_cell
            visited.add(cell)
        return lat, lon

    def _pick_successor(
        self,
        cell: tuple[int, int],
        heading: float,
        visited: set[tuple[int, int]],
    ) -> tuple[int, int] | None:
        """Most-travelled successor within the heading gate, not revisited."""
        best: tuple[int, int] | None = None
        best_count = 0
        lat, lon = self.graph.cell_center(cell)
        for successor, count in self._adjacency.get(cell, []):
            if successor in visited:
                continue
            s_lat, s_lon = self.graph.cell_center(successor)
            bearing = initial_bearing_deg(lat, lon, s_lat, s_lon)
            if angular_difference_deg(bearing, heading) > self.graph.config.heading_gate_deg:
                continue
            if count > best_count:
                best = successor
                best_count = count
        return best

    def predict_point(
        self, trajectory: Trajectory, horizon_s: float
    ) -> tuple[float, float]:
        return self.predict(trajectory, horizon_s)
