"""Sort-tile-recursive bulk-loaded R-tree over unit-sphere coordinates.

The tree embeds positions as 3-D Cartesian points on the spherical Earth
(ECEF, metres) and packs them bottom-up with the classic STR recipe: sort
by x, slice into slabs, sort each slab by y, slice again, sort by z, pack
runs of ``leaf_capacity`` points into leaves.  Upper levels group
consecutive runs of ``branching`` child boxes.  Working in 3-D buys two
things the lat/lon plane cannot offer:

- **No seams.**  The antimeridian and the poles are ordinary places on
  the sphere; boxes never wrap and no query needs splitting.
- **A true metric bound.**  Chord length is monotone in great-circle
  distance (``chord = 2R sin(d / 2R)``), so Euclidean point-to-box
  distances prune subtrees *exactly* for metric queries.

Unlike the uniform :class:`~repro.spatial.grid.GridIndex`, leaf extents
adapt to the data, so heavily skewed fleets (dense coastal clusters amid
empty ocean) do not overload any one bucket; and leaf evaluation is
vectorised with numpy, so the per-candidate cost is a fraction of the
grid's per-point Python loop.  The structure is static — build it with
:meth:`STRTree.from_points`; for incremental workloads use the grid.

Membership is decided by the chord bound except within a ±1e-9 relative
band of the query radius, where the exact scalar
:func:`~repro.geo.haversine_m` arbitrates — so result *sets* match the
grid and brute-force great-circle enumeration on any realistic input.
"""

import heapq
import math
from collections.abc import Hashable, Iterable, Iterator

import numpy as np

from repro.geo import EARTH_RADIUS_M, haversine_m, normalize_lon

#: Half the Earth's circumference — no great-circle distance exceeds it.
_MAX_DISTANCE_M = math.pi * EARTH_RADIUS_M


def _chord_m(distance_m: float) -> float:
    """Chord length subtending a great-circle distance."""
    d = min(max(distance_m, 0.0), _MAX_DISTANCE_M)
    return 2.0 * EARTH_RADIUS_M * math.sin(d / (2.0 * EARTH_RADIUS_M))


def _str_leaf_slices(xyz: np.ndarray, capacity: int) -> list[np.ndarray]:
    """Partition point indices into STR leaves (contiguous tiles)."""
    leaves: list[np.ndarray] = []

    def tile(ix: np.ndarray, depth: int) -> None:
        if len(ix) <= capacity:
            leaves.append(ix)
            return
        ordered = ix[np.argsort(xyz[ix, depth], kind="stable")]
        if depth >= 2:
            for i in range(0, len(ordered), capacity):
                leaves.append(ordered[i : i + capacity])
            return
        n_groups = math.ceil(len(ix) / capacity)
        n_slabs = max(1, math.ceil(n_groups ** (1.0 / (3 - depth))))
        slab = math.ceil(len(ix) / n_slabs)
        for i in range(0, len(ordered), slab):
            tile(ordered[i : i + slab], depth + 1)

    tile(np.arange(len(xyz)), 0)
    return leaves


class STRTree:
    """Static spatial index over (lat, lon) points; metric-exact queries.

    Implements the :class:`~repro.spatial.base.SpatialIndex` protocol.
    Duplicate ids in the input follow upsert semantics: the last position
    wins, matching :meth:`GridIndex.from_points`.
    """

    def __init__(
        self,
        points: Iterable[tuple[Hashable, float, float]],
        leaf_capacity: int = 64,
        branching: int = 8,
    ) -> None:
        if leaf_capacity < 2 or branching < 2:
            raise ValueError("leaf_capacity and branching must be >= 2")
        latest: dict[Hashable, tuple[float, float]] = {}
        for item_id, lat, lon in points:
            latest[item_id] = (
                min(90.0, max(-90.0, lat)),
                normalize_lon(lon),
            )
        self._n = len(latest)
        self._order_ids = list(latest)
        lat_arr = np.array([p[0] for p in latest.values()], dtype=float)
        lon_arr = np.array([p[1] for p in latest.values()], dtype=float)
        phi = np.radians(lat_arr)
        lam = np.radians(lon_arr)
        xyz = np.empty((self._n, 3), dtype=float)
        xyz[:, 0] = EARTH_RADIUS_M * np.cos(phi) * np.cos(lam)
        xyz[:, 1] = EARTH_RADIUS_M * np.cos(phi) * np.sin(lam)
        xyz[:, 2] = EARTH_RADIUS_M * np.sin(phi)

        #: Levels bottom-up; level 0 = leaves whose start/end index the
        #: point arrays, level L>0 nodes index level L-1.  Built until a
        #: single root remains.
        self._levels: list[dict[str, np.ndarray]] = []
        if self._n == 0:
            self._ids: list[Hashable] = []
            self._seq = np.empty(0, dtype=np.int64)
            self._lat = lat_arr
            self._lon = lon_arr
            self._xyz = xyz
            self._pos: dict[Hashable, int] = {}
            return

        slices = _str_leaf_slices(xyz, leaf_capacity)
        order = np.concatenate(slices)
        self._xyz = xyz[order]
        self._lat = lat_arr[order]
        self._lon = lon_arr[order]
        self._seq = order.astype(np.int64)  # original insertion position
        self._ids = [self._order_ids[i] for i in order]
        self._pos = {item_id: p for p, item_id in enumerate(self._ids)}

        lengths = np.array([len(s) for s in slices], dtype=np.int64)
        ends = np.cumsum(lengths)
        starts = ends - lengths
        level = {
            "start": starts,
            "end": ends,
            "lo": np.minimum.reduceat(self._xyz, starts, axis=0),
            "hi": np.maximum.reduceat(self._xyz, starts, axis=0),
        }
        self._levels.append(level)
        while len(level["start"]) > 1:
            k = len(level["start"])
            starts = np.arange(0, k, branching, dtype=np.int64)
            ends = np.minimum(starts + branching, k)
            level = {
                "start": starts,
                "end": ends,
                "lo": np.minimum.reduceat(level["lo"], starts, axis=0),
                "hi": np.maximum.reduceat(level["hi"], starts, axis=0),
            }
            self._levels.append(level)

    @classmethod
    def from_points(
        cls,
        points: Iterable[tuple[Hashable, float, float]],
        leaf_capacity: int = 64,
        branching: int = 8,
    ) -> "STRTree":
        return cls(points, leaf_capacity=leaf_capacity, branching=branching)

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __contains__(self, item_id: Hashable) -> bool:
        return item_id in self._pos

    def ids(self) -> Iterator[Hashable]:
        return iter(self._order_ids)

    def position(self, item_id: Hashable) -> tuple[float, float]:
        p = self._pos[item_id]
        return float(self._lat[p]), float(self._lon[p])

    # -- geometry helpers -------------------------------------------------

    @staticmethod
    def _unit(lat: float, lon: float) -> np.ndarray:
        lat = min(90.0, max(-90.0, lat))
        phi = math.radians(lat)
        lam = math.radians(normalize_lon(lon))
        return np.array(
            [
                EARTH_RADIUS_M * math.cos(phi) * math.cos(lam),
                EARTH_RADIUS_M * math.cos(phi) * math.sin(lam),
                EARTH_RADIUS_M * math.sin(phi),
            ]
        )

    @staticmethod
    def _limits(distance_m: float) -> tuple[float, float]:
        """Squared-chord decision band ``(lo, hi)`` around the radius.

        Candidates below ``lo`` are definitely inside, above ``hi``
        definitely outside; the sliver between is arbitrated by the exact
        scalar haversine so sets match great-circle enumeration.
        """
        c2 = _chord_m(distance_m) ** 2
        band = 1e-9 * c2 + 1e-12
        return c2 - band, c2 + band

    def _node_mindist2(self, q: np.ndarray, level: int, s: int, e: int) -> np.ndarray:
        """Squared Euclidean distance from ``q`` to child boxes ``s:e``."""
        child = self._levels[level]
        clipped = np.clip(q, child["lo"][s:e], child["hi"][s:e])
        return ((clipped - q) ** 2).sum(axis=1)

    def _candidate_slices(
        self, q: np.ndarray, limit2: float
    ) -> Iterator[tuple[int, int]]:
        """Point ranges of leaves whose boxes pass the chord bound."""
        top = len(self._levels) - 1
        stack = [(top, 0)]
        while stack:
            level, i = stack.pop()
            node = self._levels[level]
            s, e = int(node["start"][i]), int(node["end"][i])
            if level == 0:
                yield s, e
                continue
            d2 = self._node_mindist2(q, level - 1, s, e)
            for j in np.nonzero(d2 <= limit2)[0]:
                stack.append((level - 1, s + int(j)))

    # -- queries ----------------------------------------------------------

    def radius_query(
        self, lat: float, lon: float, radius_m: float
    ) -> Iterator[tuple[Hashable, float]]:
        """Yield ``(id, distance_m)`` for every item within ``radius_m``."""
        if radius_m < 0 or self._n == 0:
            return
        q = self._unit(lat, lon)
        lo_lim, hi_lim = self._limits(radius_m)
        for s, e in self._candidate_slices(q, hi_lim):
            d2 = ((self._xyz[s:e] - q) ** 2).sum(axis=1)
            for j in np.nonzero(d2 <= hi_lim)[0]:
                p = s + int(j)
                dist = haversine_m(lat, lon, self._lat[p], self._lon[p])
                if d2[j] > lo_lim and dist > radius_m:
                    continue
                yield self._ids[p], dist

    def knn(self, lat: float, lon: float, k: int) -> list[tuple[Hashable, float]]:
        """The ``k`` nearest items as ``(id, distance_m)``, nearest first.

        Best-first search over box lower bounds; ties break by insertion
        order, matching the grid backend.
        """
        if k <= 0 or self._n == 0:
            return []
        q = self._unit(lat, lon)
        top = len(self._levels) - 1
        counter = 0
        # Entries: (d2, is_point, tiebreak, payload); nodes sort before
        # points at equal bound so no closer point can hide unexpanded.
        heap: list[tuple[float, int, int, tuple[int, int] | int]] = [
            (0.0, 0, counter, (top, 0))
        ]
        found: list[int] = []
        while heap and len(found) < k:
            d2, is_point, __, payload = heapq.heappop(heap)
            if is_point:
                found.append(payload)  # type: ignore[arg-type]
                continue
            level, i = payload  # type: ignore[misc]
            node = self._levels[level]
            s, e = int(node["start"][i]), int(node["end"][i])
            if level == 0:
                pd2 = ((self._xyz[s:e] - q) ** 2).sum(axis=1)
                for j in range(e - s):
                    heapq.heappush(
                        heap, (float(pd2[j]), 1, int(self._seq[s + j]), s + j)
                    )
            else:
                cd2 = self._node_mindist2(q, level - 1, s, e)
                for j in range(e - s):
                    counter += 1
                    heapq.heappush(
                        heap, (float(cd2[j]), 0, counter, (level - 1, s + j))
                    )
        hits = [
            (haversine_m(lat, lon, self._lat[p], self._lon[p]), int(self._seq[p]), p)
            for p in found
        ]
        hits.sort(key=lambda h: (h[0], h[1]))
        return [(self._ids[p], dist) for dist, __, p in hits]

    def all_pairs_within(
        self, distance_m: float
    ) -> Iterator[tuple[Hashable, Hashable, float]]:
        """Each unordered pair within ``distance_m``, once, oriented as
        ``(earlier_inserted, later_inserted, distance_m)``.

        A dual-tree join: node pairs are pruned by box-to-box chord
        distance, and surviving leaf pairs are evaluated as vectorised
        distance blocks.
        """
        if distance_m < 0 or self._n < 2:
            return
        lo_lim, hi_lim = self._limits(distance_m)
        top = len(self._levels) - 1
        stack = [(top, 0, top, 0)]
        while stack:
            la, ia, lb, ib = stack.pop()
            same = la == lb and ia == ib
            if not same:
                gap = np.maximum(
                    0.0,
                    np.maximum(
                        self._levels[la]["lo"][ia] - self._levels[lb]["hi"][ib],
                        self._levels[lb]["lo"][ib] - self._levels[la]["hi"][ia],
                    ),
                )
                if float((gap**2).sum()) > hi_lim:
                    continue
            if la == 0 and lb == 0:
                yield from self._leaf_pairs(ia, ib, distance_m, lo_lim, hi_lim)
            elif la >= lb:
                node = self._levels[la]
                s, e = int(node["start"][ia]), int(node["end"][ia])
                if same:
                    for i in range(s, e):
                        for j in range(i, e):
                            stack.append((la - 1, i, la - 1, j))
                else:
                    for i in range(s, e):
                        stack.append((la - 1, i, lb, ib))
            else:
                node = self._levels[lb]
                s, e = int(node["start"][ib]), int(node["end"][ib])
                for j in range(s, e):
                    stack.append((la, ia, lb - 1, j))

    def _leaf_pairs(
        self, ia: int, ib: int, distance_m: float, lo_lim: float, hi_lim: float
    ) -> Iterator[tuple[Hashable, Hashable, float]]:
        leaves = self._levels[0]
        sa, ea = int(leaves["start"][ia]), int(leaves["end"][ia])
        if ia == ib:
            block = self._xyz[sa:ea]
            d2 = ((block[:, None, :] - block[None, :, :]) ** 2).sum(axis=-1)
            ii, jj = np.nonzero(np.triu(d2 <= hi_lim, k=1))
            pp = sa + ii
            qq = sa + jj
        else:
            sb, eb = int(leaves["start"][ib]), int(leaves["end"][ib])
            d2 = (
                (self._xyz[sa:ea, None, :] - self._xyz[None, sb:eb, :]) ** 2
            ).sum(axis=-1)
            ii, jj = np.nonzero(d2 <= hi_lim)
            pp = sa + ii
            qq = sb + jj
        if len(pp) == 0:
            return
        d2v = d2[ii, jj]
        # Great-circle distance from the chord; identical to the haversine
        # up to floating-point rounding, hence the border re-check below.
        dv = (
            2.0
            * EARTH_RADIUS_M
            * np.arcsin(np.clip(np.sqrt(d2v) / (2.0 * EARTH_RADIUS_M), 0.0, 1.0))
        )
        # Native lists keep the emit loop out of numpy scalar indexing —
        # the sweep is pair-output-bound on dense fleets.
        sure = (d2v <= lo_lim).tolist()
        swap = (self._seq[pp] > self._seq[qq]).tolist()
        p_list = pp.tolist()
        q_list = qq.tolist()
        d_list = dv.tolist()
        ids = self._ids
        for m, p in enumerate(p_list):
            q = q_list[m]
            if sure[m]:
                dist = d_list[m]
            else:
                dist = haversine_m(
                    self._lat[p], self._lon[p], self._lat[q], self._lon[q]
                )
                if dist > distance_m:
                    continue
            if swap[m]:
                yield ids[q], ids[p], dist
            else:
                yield ids[p], ids[q], dist
