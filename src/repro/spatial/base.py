"""The pluggable spatial-index contract.

Every proximity consumer in the library — collision screening, rendezvous
detection, contact gating, stream spatial joins — programs against
:class:`SpatialIndex`, never against a concrete backend.  Two backends
implement it:

- :class:`~repro.spatial.grid.GridIndex` — mutable latitude-aware geo
  grid; the right choice for incremental workloads (live feeds, per-step
  sweeps) and for roughly uniform fleets.
- :class:`~repro.spatial.rtree.STRTree` — bulk-loaded sort-tile-recursive
  R-tree over unit-sphere coordinates; static, but far better behaved on
  heavily skewed fleets (the coastal-clustered Figure 1 distribution)
  where uniform cells overload.

All radii and distances are great-circle metres; results are exact (the
spatial structure only pre-filters candidates), so the backends are
interchangeable query for query.  :func:`~repro.spatial.factory.
build_index` picks between them automatically.
"""

from collections.abc import Hashable, Iterator
from typing import Protocol, runtime_checkable


@runtime_checkable
class SpatialIndex(Protocol):
    """Read-side contract: exact metric proximity queries over points."""

    def __len__(self) -> int: ...

    def __contains__(self, item_id: Hashable) -> bool: ...

    def ids(self) -> Iterator[Hashable]:
        """All indexed ids, in insertion order."""
        ...

    def position(self, item_id: Hashable) -> tuple[float, float]:
        """Stored ``(lat, lon)`` of an item."""
        ...

    def radius_query(
        self, lat: float, lon: float, radius_m: float
    ) -> Iterator[tuple[Hashable, float]]:
        """Yield ``(id, distance_m)`` for every item within ``radius_m``
        (inclusive); self-matches at distance 0 are the caller's problem."""
        ...

    def knn(self, lat: float, lon: float, k: int) -> list[tuple[Hashable, float]]:
        """The ``k`` nearest items, nearest first, ties by insertion."""
        ...

    def all_pairs_within(
        self, distance_m: float
    ) -> Iterator[tuple[Hashable, Hashable, float]]:
        """Each unordered pair of items within ``distance_m``, exactly once."""
        ...


@runtime_checkable
class MutableSpatialIndex(SpatialIndex, Protocol):
    """Write-side extension for incremental consumers (streams, sweeps)."""

    def insert(self, item_id: Hashable, lat: float, lon: float) -> None:
        """Add an item, or move it if already present (upsert)."""
        ...

    def remove(self, item_id: Hashable) -> None:
        """Drop an item; raises ``KeyError`` if absent."""
        ...

    def clear(self) -> None: ...
