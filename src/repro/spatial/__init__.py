"""Spatial indexing substrate for proximity-shaped workloads.

Every surveillance primitive in the library — collision screening,
rendezvous detection, stream-stream spatial joins, contact-to-track
gating — reduces to the same question: *which tracked objects are within
d metres of here?*  The seed answered it four different ways (an O(n²)
haversine loop and three hand-rolled lat/lon grids), each with its own
antimeridian and high-latitude blind spots.  This package answers it
once:

- :class:`~repro.spatial.grid.GridIndex` — a uniform geo-grid over
  latitude bands whose longitude cells are sized by ``cos(lat)``, so a
  metric radius is correct from the equator to the pole caps, and whose
  cell neighbourhoods wrap modulo the band width, so queries spanning
  the antimeridian need no special handling.  Exposes ``radius_query``,
  ``knn`` and an ``all_pairs_within(d)`` generator that replaces
  quadratic pair screens with a near-linear sweep.
- :class:`~repro.spatial.streaming.StreamingGridIndex` — the incremental
  variant for live feeds: latest position per key, tolerant of slightly
  out-of-order fixes, with age-based eviction of silent vessels.

Grid cells only *pre-filter* candidates; membership is always decided by
an exact :func:`~repro.geo.haversine_m` test, so query results are
identical to brute-force great-circle enumeration.

Open follow-ups tracked in ROADMAP.md: an R-tree backend for skewed
fleets and interop with :mod:`repro.geo.geohash` cell naming.
"""

from repro.spatial.grid import GridIndex
from repro.spatial.streaming import StreamingGridIndex

__all__ = ["GridIndex", "StreamingGridIndex"]
