"""Spatial indexing substrate for proximity-shaped workloads.

Every surveillance primitive in the library — collision screening,
rendezvous detection, stream-stream spatial joins, contact-to-track
gating — reduces to the same question: *which tracked objects are within
d metres of here?*  This package answers it once, behind the pluggable
:class:`~repro.spatial.base.SpatialIndex` protocol:

- :class:`~repro.spatial.grid.GridIndex` — a mutable uniform geo-grid
  over latitude bands whose longitude cells are sized by ``cos(lat)``, so
  a metric radius is correct from the equator to the pole caps, and whose
  cell neighbourhoods wrap modulo the band width, so queries spanning the
  antimeridian need no special handling.
- :class:`~repro.spatial.rtree.STRTree` — a sort-tile-recursive bulk
  loaded R-tree over unit-sphere coordinates, for heavily skewed fleets
  where uniform cells degenerate; leaf evaluation is vectorised.
- :class:`~repro.spatial.streaming.StreamingGridIndex` — the incremental
  variant for live feeds: latest position per key, tolerant of slightly
  out-of-order fixes, with age-based eviction of silent vessels.
- :func:`~repro.spatial.factory.build_index` — picks grid vs R-tree from
  a cheap cell-occupancy skew statistic.
- :mod:`~repro.spatial.cells` — the shared latitude-aware cell geometry
  (:class:`~repro.spatial.cells.CellGrid`) plus geohash interop so cells
  can be named, exported and exchanged as geohash strings.

Spatial structures only *pre-filter* candidates; membership is always
decided by an exact great-circle test, so query results are identical to
brute-force haversine enumeration whichever backend serves them.  See
README.md in this directory for backend selection guidance.
"""

from repro.spatial.base import MutableSpatialIndex, SpatialIndex
from repro.spatial.cells import (
    CellGrid,
    cell_to_geohash,
    geohash_counts,
    geohash_precision_for,
    geohash_to_cell,
)
from repro.spatial.factory import build_index, cell_occupancy_skew
from repro.spatial.grid import GridIndex
from repro.spatial.rtree import STRTree
from repro.spatial.streaming import StreamingGridIndex

__all__ = [
    "CellGrid",
    "GridIndex",
    "MutableSpatialIndex",
    "STRTree",
    "SpatialIndex",
    "StreamingGridIndex",
    "build_index",
    "cell_occupancy_skew",
    "cell_to_geohash",
    "geohash_counts",
    "geohash_precision_for",
    "geohash_to_cell",
]
