"""Backend selection: build the right spatial index for a point set.

The grid wins on roughly uniform fleets (O(1) keying, mutability, no
tree overhead); the STR R-tree wins on heavily skewed fleets, where a
uniform cell sized to the query radius swallows whole coastal clusters
and every probe degenerates into a scan of thousands of co-bucketed
points.  :func:`build_index` chooses with a cheap occupancy statistic:
the mean number of *same-cell* co-occupants per point,

    ``skew = sum(c_i^2) / n``  over occupied cells ``i``,

which is exactly the expected number of candidates a grid probe scans
before any distance test.  Uniform fleets sit near ``1 + lambda`` (cell
Poisson mean); clustered fleets reach the cluster size.
"""

from collections.abc import Hashable, Iterable

from repro.spatial.base import SpatialIndex
from repro.spatial.cells import CellGrid
from repro.spatial.grid import GridIndex
from repro.spatial.rtree import STRTree

#: Below this population the Python constant factors dominate and the
#: grid always wins; the skew statistic is not even computed.
AUTO_MIN_RTREE_N = 512
#: Mean same-cell co-occupancy beyond which the grid is considered
#: degenerate and the R-tree is selected.
AUTO_SKEW_THRESHOLD = 24.0


def cell_occupancy_skew(
    points: Iterable[tuple[Hashable, float, float]], cell_size_m: float
) -> float:
    """Mean same-cell co-occupants per point (including itself).

    This is the expected candidate-scan length of a grid probe; large
    values mean uniform cells are overloaded for this distribution.
    Returns 0.0 for an empty point set.
    """
    cells = CellGrid(cell_size_m)
    counts: dict[tuple[int, int], int] = {}
    n = 0
    for __, lat, lon in points:
        key = cells.key(lat, lon)
        counts[key] = counts.get(key, 0) + 1
        n += 1
    if n == 0:
        return 0.0
    return sum(c * c for c in counts.values()) / n


def build_index(
    points: Iterable[tuple[Hashable, float, float]],
    cell_size_m: float,
    hint: str = "auto",
) -> SpatialIndex:
    """Build a spatial index over ``(id, lat, lon)`` triples.

    ``cell_size_m`` sizes grid cells and should match the dominant query
    radius.  ``hint`` is ``"auto"`` (pick by the skew statistic),
    ``"grid"`` or ``"rtree"``.
    """
    if hint not in ("auto", "grid", "rtree"):
        raise ValueError(f"unknown index hint: {hint!r}")
    pts = points if isinstance(points, list) else list(points)
    if hint == "rtree":
        return STRTree(pts)
    grid = GridIndex.from_points(pts, cell_size_m)
    if (
        hint == "auto"
        and len(grid) >= AUTO_MIN_RTREE_N
        # Read the skew off the grid's own buckets — the points were
        # keyed once already; no second pass.
        and grid.occupancy_skew() > AUTO_SKEW_THRESHOLD
    ):
        return STRTree(pts)
    return grid
