"""Latitude-aware cell geometry shared by every spatial consumer.

:class:`CellGrid` is the naming scheme behind :class:`~repro.spatial.grid.
GridIndex`, the pattern-of-life normalcy grid and the density aggregator:
the sphere is cut into latitude bands of constant angular height, and each
band is split into an integer number of longitude cells sized so that no
cell is ever *narrower* than ``cell_size_m`` metres.  Keys therefore

- never split at the antimeridian (longitude cells wrap modulo the band's
  cell count), and
- never shrink physically toward the poles (bands near the poles simply
  hold fewer cells, down to a single polar cap).

The module also bridges cells to :mod:`repro.geo.geohash` so that a cell
can be *named*, exported and exchanged as a plain geohash string —
the lingua franca for handing spatial summaries to external systems.
"""

import math
from collections.abc import Iterable

from repro.geo import normalize_lon
from repro.geo.constants import METERS_PER_DEG_LAT
from repro.geo.geohash import geohash_decode, geohash_encode

#: A cell identity: (latitude band, longitude cell within the band).
CellKey = tuple[int, int]


class CellGrid:
    """Geometry of a latitude-aware cell partition of the sphere.

    Stateless apart from per-band caches; cheap to share between an index,
    a histogram and a naming layer so they all agree on what "a cell" is.
    """

    def __init__(self, cell_size_m: float) -> None:
        if cell_size_m <= 0:
            raise ValueError("cell_size_m must be positive")
        self.cell_size_m = float(cell_size_m)
        cell_lat_deg = self.cell_size_m / METERS_PER_DEG_LAT
        self.n_bands = max(1, math.ceil(180.0 / cell_lat_deg))
        self.cell_lat_deg = 180.0 / self.n_bands
        #: band -> (n_lon, cos at the band edge nearest a pole).
        self._band_geometry: dict[int, tuple[int, float]] = {}

    # -- keying -----------------------------------------------------------

    def band_of(self, lat: float) -> int:
        band = int((lat + 90.0) / self.cell_lat_deg)
        return min(self.n_bands - 1, max(0, band))

    def band_geometry(self, band: int) -> tuple[int, float]:
        """Longitude cell count and worst-case cosine for a band."""
        cached = self._band_geometry.get(band)
        if cached is not None:
            return cached
        lat0 = -90.0 + band * self.cell_lat_deg
        lat1 = min(90.0, lat0 + self.cell_lat_deg)
        # The poleward edge has the smallest cosine, hence the narrowest
        # metres-per-degree; sizing by it keeps every cell >= cell_size_m.
        cos_min = min(math.cos(math.radians(lat0)), math.cos(math.radians(lat1)))
        cos_min = max(0.0, cos_min)
        if cos_min < 1e-12:
            n_lon = 1
        else:
            cell_lon_deg = self.cell_size_m / (METERS_PER_DEG_LAT * cos_min)
            n_lon = max(1, int(360.0 / cell_lon_deg))
        self._band_geometry[band] = (n_lon, cos_min)
        return n_lon, cos_min

    @staticmethod
    def lon_cell(lon: float, n_lon: int) -> int:
        return int((normalize_lon(lon) + 180.0) / 360.0 * n_lon) % n_lon

    def key(self, lat: float, lon: float) -> CellKey:
        """The cell containing a position (lat clamped, lon wrapped)."""
        lat = min(90.0, max(-90.0, lat))
        band = self.band_of(lat)
        n_lon, __ = self.band_geometry(band)
        return band, self.lon_cell(lon, n_lon)

    def keys_array(self, lats, lons):
        """Vectorised :meth:`key` over numpy arrays -> ``(n, 2)`` ints.

        Uses the scalar band geometry (cached per band) so vector and
        scalar keying agree bit for bit.
        """
        import numpy as np

        lats = np.clip(np.asarray(lats, dtype=float), -90.0, 90.0)
        lons = np.asarray(lons, dtype=float)
        bands = np.clip(
            ((lats + 90.0) / self.cell_lat_deg).astype(np.int64),
            0,
            self.n_bands - 1,
        )
        uniq, inverse = np.unique(bands, return_inverse=True)
        n_lon = np.array(
            [self.band_geometry(int(b))[0] for b in uniq], dtype=np.int64
        )[inverse]
        wrapped = np.mod(lons + 180.0, 360.0)
        ix = ((wrapped / 360.0) * n_lon).astype(np.int64) % n_lon
        return np.stack([bands, ix], axis=1)

    # -- geometry of a cell ----------------------------------------------

    def center(self, key: CellKey) -> tuple[float, float]:
        """``(lat, lon)`` centre of a cell."""
        band, ix = key
        n_lon, __ = self.band_geometry(band)
        lat = -90.0 + (band + 0.5) * self.cell_lat_deg
        lon = normalize_lon(-180.0 + (ix + 0.5) * 360.0 / n_lon)
        return min(90.0, lat), lon

    def bounds(self, key: CellKey) -> tuple[float, float, float, float]:
        """``(lat_min, lat_max, lon_west, lon_east)``; edges wrap at ±180."""
        band, ix = key
        n_lon, __ = self.band_geometry(band)
        lat0 = -90.0 + band * self.cell_lat_deg
        lat1 = min(90.0, lat0 + self.cell_lat_deg)
        lon_w = normalize_lon(-180.0 + ix * 360.0 / n_lon)
        lon_e = normalize_lon(-180.0 + (ix + 1) * 360.0 / n_lon)
        return lat0, lat1, lon_w, lon_e

    def cells_in_box(
        self, lat_min: float, lat_max: float, lon_span_deg: float
    ) -> int:
        """Approximate number of cells inside a lat range x lon span.

        Used for occupancy statistics; each band contributes its share of
        longitude cells proportional to the span (at least one).
        """
        lon_span_deg = min(360.0, max(0.0, lon_span_deg))
        total = 0
        for band in range(self.band_of(lat_min), self.band_of(lat_max) + 1):
            n_lon, __ = self.band_geometry(band)
            total += max(1, round(n_lon * lon_span_deg / 360.0))
        return total


# -- geohash interop -------------------------------------------------------

#: Geohash characters carry 5 bits, alternating lon/lat starting with lon.
_MAX_PRECISION = 12


def geohash_precision_for(cell_size_m: float) -> int:
    """Finest-necessary geohash precision to name cells of a given size.

    Picks the smallest precision whose geohash cells are at most *half* a
    grid cell tall and (at the equator) wide, so the geohash containing a
    grid cell's centre lies well inside that cell and the
    :func:`geohash_to_cell` round trip is stable.
    """
    if cell_size_m <= 0:
        raise ValueError("cell_size_m must be positive")
    for precision in range(1, _MAX_PRECISION + 1):
        lat_bits = (5 * precision) // 2
        lon_bits = 5 * precision - lat_bits
        height_m = 180.0 / (1 << lat_bits) * METERS_PER_DEG_LAT
        width_m = 360.0 / (1 << lon_bits) * METERS_PER_DEG_LAT
        if max(height_m, width_m) <= cell_size_m / 2.0:
            return precision
    return _MAX_PRECISION


def cell_to_geohash(
    grid: CellGrid, key: CellKey, precision: int | None = None
) -> str:
    """Name a cell by the geohash of its centre.

    With the default precision (from :func:`geohash_precision_for`) the
    name decodes back to the same cell, so geohashes can stand in for cell
    keys when exporting summaries to systems that speak geohash.
    """
    if precision is None:
        precision = geohash_precision_for(grid.cell_size_m)
    lat, lon = grid.center(key)
    return geohash_encode(lat, lon, precision)


def geohash_to_cell(grid: CellGrid, geohash: str) -> CellKey:
    """The cell containing a geohash's centre point."""
    lat, lon, __, __ = geohash_decode(geohash)
    return grid.key(lat, lon)


def geohash_counts(
    grid: CellGrid,
    cell_counts: Iterable[tuple[CellKey, int]],
    precision: int | None = None,
) -> dict[str, int]:
    """Aggregate per-cell counts into named geohash buckets for export.

    Distinct cells that share a geohash name (possible near the poles or
    at coarse precision) merge additively.
    """
    if precision is None:
        precision = geohash_precision_for(grid.cell_size_m)
    out: dict[str, int] = {}
    for key, count in cell_counts:
        name = cell_to_geohash(grid, key, precision)
        out[name] = out.get(name, 0) + count
    return out
