"""Incremental spatial index over a live position feed.

A surveillance stream carries many fixes per vessel; proximity queries
only ever care about the *latest* one, and vessels that fall silent must
eventually stop matching.  :class:`StreamingGridIndex` maintains exactly
that view on top of :class:`~repro.spatial.grid.GridIndex`: one position
per key, updated in place as observations arrive, with stale keys evicted
once they age past ``max_age_s`` behind the observed clock.
"""

import heapq
import math
from collections.abc import Hashable, Iterator

from repro.spatial.grid import GridIndex


class StreamingGridIndex:
    """Latest-position-per-key index with age-based eviction.

    ``observe`` is the single ingestion point; out-of-order fixes older
    than the key's current state are ignored, so the index is safe to
    feed from a merely *approximately* ordered stream.
    """

    def __init__(self, cell_size_m: float, max_age_s: float | None = None) -> None:
        if max_age_s is not None and max_age_s <= 0:
            raise ValueError("max_age_s must be positive when given")
        self.max_age_s = max_age_s
        self._grid = GridIndex(cell_size_m)
        self._t: dict[Hashable, float] = {}
        #: Lazy-deleted expiry heap of (t, key); stale entries are skipped
        #: when their timestamp no longer matches ``_t``.
        self._expiry: list[tuple[float, Hashable]] = []
        self.now = -math.inf

    def __len__(self) -> int:
        return len(self._t)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._t

    def observe(self, key: Hashable, t: float, lat: float, lon: float) -> bool:
        """Ingest one fix; returns False if it was older than the state."""
        current = self._t.get(key)
        if current is not None and t < current:
            self.advance(t)
            return False
        self._t[key] = t
        self._grid.insert(key, lat, lon)
        if self.max_age_s is not None:
            heapq.heappush(self._expiry, (t, key))
        self.advance(t)
        return True

    def advance(self, t: float) -> None:
        """Move the clock forward (never backward) and evict stale keys."""
        if t > self.now:
            self.now = t
        if self.max_age_s is None:
            return
        horizon = self.now - self.max_age_s
        while self._expiry and self._expiry[0][0] < horizon:
            expired_t, key = heapq.heappop(self._expiry)
            # Only evict if this heap entry still describes the live state.
            if self._t.get(key) == expired_t:
                del self._t[key]
                self._grid.remove(key)

    def remove(self, key: Hashable) -> None:
        del self._t[key]
        self._grid.remove(key)

    def timestamp(self, key: Hashable) -> float:
        return self._t[key]

    def position(self, key: Hashable) -> tuple[float, float]:
        return self._grid.position(key)

    def radius_query(
        self, lat: float, lon: float, radius_m: float
    ) -> Iterator[tuple[Hashable, float]]:
        return self._grid.radius_query(lat, lon, radius_m)

    def knn(self, lat: float, lon: float, k: int) -> list[tuple[Hashable, float]]:
        return self._grid.knn(lat, lon, k)

    def all_pairs_within(
        self, distance_m: float
    ) -> Iterator[tuple[Hashable, Hashable, float]]:
        return self._grid.all_pairs_within(distance_m)
