"""Uniform geo-grid spatial index with latitude-aware cell sizing.

The grid partitions the sphere into latitude bands of constant angular
height; each band is split into an integer number of longitude cells so
that a cell is never *narrower* than ``cell_size_m`` metres anywhere
inside the band.  Two consequences follow:

- **High latitudes are correct.**  Bands near the poles hold fewer
  longitude cells (down to a single cell at the pole caps), so a metric
  radius query never has to inspect an unbounded run of degenerate
  slivers, and a one-cell neighbourhood is always wide enough for
  queries up to the cell size.
- **The antimeridian is seamless.**  Longitude cells wrap modulo the
  band's cell count, so a neighbourhood at lon ±180° spans the seam with
  no special cases at the call sites.

Candidate gathering is conservative (cells are only ever *larger* than
requested); exactness comes from the final :func:`~repro.geo.haversine_m`
check, so results match brute-force great-circle enumeration bit for bit.

Cell geometry (band/longitude-cell keying, geohash naming) lives in
:mod:`repro.spatial.cells` and is shared with every other latitude-aware
consumer; this module owns only the point store and the query sweeps.
"""

import math
from collections.abc import Hashable, Iterable, Iterator

from repro.geo import EARTH_RADIUS_M, haversine_m, normalize_lon
from repro.geo.constants import METERS_PER_DEG_LAT
from repro.spatial.cells import CellGrid

#: Half the Earth's circumference — no great-circle distance exceeds it.
_MAX_DISTANCE_M = math.pi * EARTH_RADIUS_M


class GridIndex:
    """Point index over (lat, lon) supporting metric proximity queries.

    Items are identified by an arbitrary hashable id; re-inserting an id
    moves it (upsert semantics), so the index doubles as a live position
    table.  All query radii are great-circle metres and all results are
    exact (grid cells only pre-filter candidates).
    """

    def __init__(self, cell_size_m: float) -> None:
        #: Shared latitude-aware cell geometry (validates cell_size_m).
        self.cells = CellGrid(cell_size_m)
        self.cell_size_m = self.cells.cell_size_m
        #: (band, lon cell) -> {id: (seq, lat, lon)}; dicts keep insertion
        #: order, which makes pair enumeration deterministic.
        self._cells: dict[tuple[int, int], dict[Hashable, tuple[int, float, float]]] = {}
        #: id -> (band, lon cell, lat, lon, seq)
        self._items: dict[Hashable, tuple[int, int, float, float, int]] = {}
        #: band -> set of occupied lon cells (for full-band sweeps).
        self._occupied: dict[int, set[int]] = {}
        self._seq = 0

    def _covering_cells(
        self, lat: float, lon: float, radius_m: float
    ) -> Iterator[tuple[int, int]]:
        """Occupied cells that could hold a point within ``radius_m``.

        Conservative: every point within the radius lies in one of the
        yielded cells; the converse is checked by exact distance later.
        """
        r_lat_deg = radius_m / METERS_PER_DEG_LAT
        band_lo = self.cells.band_of(max(-90.0, lat - r_lat_deg))
        band_hi = self.cells.band_of(min(90.0, lat + r_lat_deg))
        cos_query = math.cos(math.radians(lat))
        for band in range(band_lo, band_hi + 1):
            occupied = self._occupied.get(band)
            if not occupied:
                continue
            n_lon, cos_band = self.cells.band_geometry(band)
            # |delta lon| bound: haversine gives
            # sin(d/2R) >= sqrt(cos(lat1) cos(lat2)) * sin(dlon/2), and the
            # geometric mean is >= the smaller cosine.
            cos_bound = min(cos_query, cos_band)
            span_all = True
            if cos_bound > 1e-12:
                x = radius_m / (2.0 * EARTH_RADIUS_M * cos_bound)
                if x < 1.0:
                    half_deg = math.degrees(2.0 * math.asin(x))
                    half_cells = int(half_deg / (360.0 / n_lon)) + 1
                    span_all = 2 * half_cells + 1 >= n_lon
            if span_all:
                for ix in occupied:
                    yield band, ix
            else:
                centre = self.cells.lon_cell(lon, n_lon)
                for dx in range(-half_cells, half_cells + 1):
                    ix = (centre + dx) % n_lon
                    if ix in occupied:
                        yield band, ix

    # -- mutation ---------------------------------------------------------

    def insert(self, item_id: Hashable, lat: float, lon: float) -> None:
        """Add an item, or move it if already present."""
        if item_id in self._items:
            self.remove(item_id)
        lat = min(90.0, max(-90.0, lat))
        lon = normalize_lon(lon)
        band, ix = self.cells.key(lat, lon)
        key = (band, ix)
        self._cells.setdefault(key, {})[item_id] = (self._seq, lat, lon)
        self._occupied.setdefault(band, set()).add(ix)
        self._items[item_id] = (band, ix, lat, lon, self._seq)
        self._seq += 1

    def remove(self, item_id: Hashable) -> None:
        """Drop an item; raises ``KeyError`` if absent."""
        band, ix, __, __, __ = self._items.pop(item_id)
        key = (band, ix)
        bucket = self._cells[key]
        del bucket[item_id]
        if not bucket:
            del self._cells[key]
            occupied = self._occupied[band]
            occupied.discard(ix)
            if not occupied:
                del self._occupied[band]

    def clear(self) -> None:
        self._cells.clear()
        self._items.clear()
        self._occupied.clear()
        self._seq = 0

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item_id: Hashable) -> bool:
        return item_id in self._items

    def position(self, item_id: Hashable) -> tuple[float, float]:
        """Stored ``(lat, lon)`` of an item."""
        __, __, lat, lon, __ = self._items[item_id]
        return lat, lon

    def occupancy_skew(self) -> float:
        """Mean same-cell co-occupants per item (including itself).

        The expected candidate-scan length of a probe on this index —
        the degeneracy signal :func:`~repro.spatial.factory.build_index`
        uses to fall back to the R-tree.  0.0 when empty.
        """
        if not self._items:
            return 0.0
        return sum(
            len(bucket) ** 2 for bucket in self._cells.values()
        ) / len(self._items)

    def ids(self) -> Iterator[Hashable]:
        return iter(self._items)

    @classmethod
    def from_points(
        cls,
        points: Iterable[tuple[Hashable, float, float]],
        cell_size_m: float,
    ) -> "GridIndex":
        """Build an index from ``(id, lat, lon)`` triples."""
        index = cls(cell_size_m)
        for item_id, lat, lon in points:
            index.insert(item_id, lat, lon)
        return index

    # -- queries ----------------------------------------------------------

    def radius_query(
        self, lat: float, lon: float, radius_m: float
    ) -> Iterator[tuple[Hashable, float]]:
        """Yield ``(id, distance_m)`` for every item within ``radius_m``.

        The bound is inclusive and a co-located indexed item (distance 0)
        is reported like any other — callers filter self-matches.
        """
        if radius_m < 0:
            return
        for key in self._covering_cells(lat, lon, radius_m):
            bucket = self._cells.get(key)
            if not bucket:
                continue
            for item_id, (__, item_lat, item_lon) in bucket.items():
                dist = haversine_m(lat, lon, item_lat, item_lon)
                if dist <= radius_m:
                    yield item_id, dist

    def knn(
        self, lat: float, lon: float, k: int
    ) -> list[tuple[Hashable, float]]:
        """The ``k`` nearest items as ``(id, distance_m)``, nearest first.

        Expands the search radius geometrically from one cell size until
        ``k`` hits are confirmed inside the searched radius (so no closer
        item can hide in an unvisited cell), or the whole sphere is
        covered.  Ties break by insertion order.
        """
        if k <= 0 or not self._items:
            return []
        radius = self.cell_size_m
        while True:
            hits = sorted(
                self.radius_query(lat, lon, radius),
                key=lambda hit: (hit[1], self._items[hit[0]][4]),
            )
            if len(hits) >= k or radius >= _MAX_DISTANCE_M:
                return hits[:k]
            radius = min(_MAX_DISTANCE_M, radius * 4.0)

    def all_pairs_within(
        self, distance_m: float
    ) -> Iterator[tuple[Hashable, Hashable, float]]:
        """Yield each unordered pair of items within ``distance_m`` once.

        Pairs come out as ``(earlier_inserted, later_inserted, distance_m)``
        ordered by the first item's insertion; with one insert per vessel
        that matches the classic ``for i, for j > i`` enumeration while
        touching only neighbouring cells.
        """
        if distance_m < 0 or len(self._items) < 2:
            return
        for item_id, (__, __, lat, lon, seq) in self._items.items():
            for key in self._covering_cells(lat, lon, distance_m):
                bucket = self._cells.get(key)
                if not bucket:
                    continue
                for other_id, (other_seq, other_lat, other_lon) in bucket.items():
                    if other_seq <= seq:
                        continue
                    dist = haversine_m(lat, lon, other_lat, other_lon)
                    if dist <= distance_m:
                        yield item_id, other_id, dist
