"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``simulate`` — generate a scenario and dump its NMEA feed (with
  ``--tagged``, TAG-blocked lines carrying reception timestamps that
  round-trip through ``pipeline --live --nmea-file``);
- ``pipeline`` — run the Figure 2 pipeline over a scenario and print the
  stage report and triaged alerts; with ``--live``, stream instead —
  from the simulated feed, an NMEA file (``--nmea-file``), or a TCP
  receiver (``--nmea-tcp host:port``), optionally as JSON lines
  (``--json``);
- ``map`` — render the global density map (Figure 1) as ASCII;
- ``decode`` — decode NMEA sentences from a file or stdin;
- ``analyze`` — run the concurrency/causality invariant checkers over
  the source tree (``--strict`` gates CI).
"""

import argparse
import sys
from pathlib import Path

from repro.ais.decoder import AisDecoder
from repro.core import (
    DecisionSupport,
    MaritimePipeline,
    OperatorProfile,
    PipelineConfig,
)
from repro.monitor import MaritimeMonitor
from repro.simulation import global_scenario, regional_scenario
from repro.sinks import JsonlSink
from repro.sources import NmeaFileSource, NmeaTcpSource, write_nmea_file


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Maritime data integration and analysis "
        "(EDBT 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="generate a scenario NMEA feed")
    simulate.add_argument("--vessels", type=int, default=30)
    simulate.add_argument("--hours", type=float, default=2.0)
    simulate.add_argument("--seed", type=int, default=42)
    simulate.add_argument(
        "--world", action="store_true",
        help="global satellite scenario instead of the regional theatre",
    )
    simulate.add_argument(
        "--output", default="-", help="output file ('-' for stdout)"
    )
    simulate.add_argument(
        "--tagged", action="store_true",
        help="prefix each sentence with an NMEA TAG block carrying the "
        "reception epoch and source (lossless input for --nmea-file)",
    )

    pipeline = sub.add_parser("pipeline", help="run the integrated pipeline")
    pipeline.add_argument("--vessels", type=int, default=30)
    pipeline.add_argument("--hours", type=float, default=3.0)
    pipeline.add_argument("--seed", type=int, default=42)
    pipeline.add_argument("--alerts", type=int, default=10,
                          help="max alerts to print")
    pipeline.add_argument(
        "--live", action="store_true",
        help="stream the feed through run_live, printing one line per "
        "micro-batch instead of the end-of-run report",
    )
    pipeline.add_argument(
        "--tick", type=float, default=300.0,
        help="micro-batch size in seconds of reception time (with --live)",
    )
    pipeline.add_argument(
        "--workers", type=int, default=1,
        help="worker shards for the per-vessel phase (vessel-partitioned; "
        "products are identical for every count)",
    )
    pipeline.add_argument(
        "--nmea-file", metavar="PATH", action="append", default=[],
        help="with --live: stream observations from an NMEA file "
        "(TAG-blocked or bare) instead of simulating a scenario; "
        "repeatable — several feeds (and --nmea-tcp) are merged on "
        "reception time",
    )
    pipeline.add_argument(
        "--nmea-tcp", metavar="HOST:PORT", action="append", default=[],
        help="with --live: stream observations from a line-framed NMEA "
        "TCP feed instead of simulating a scenario; repeatable — "
        "several feeds (and --nmea-file) are merged on reception time",
    )
    pipeline.add_argument(
        "--json", action="store_true",
        help="with --live: emit one JSON line per increment on stdout "
        "instead of the human-readable tick log",
    )

    world_map = sub.add_parser("map", help="render the Figure 1 density map")
    world_map.add_argument("--vessels", type=int, default=150)
    world_map.add_argument("--hours", type=float, default=6.0)
    world_map.add_argument("--seed", type=int, default=7)

    decode = sub.add_parser("decode", help="decode NMEA sentences")
    decode.add_argument(
        "input", nargs="?", default="-",
        help="file of !AIVDM sentences ('-' for stdin)",
    )

    analyze = sub.add_parser(
        "analyze",
        help="run the concurrency/causality invariant checkers",
        description="Static analysis over the source tree: stage phase "
        "and ownership manifests, single-writer discipline, lock "
        "discipline in threaded modules, causality and config-mutation "
        "rules.  See src/repro/analysis/README.md.",
    )
    analyze.add_argument(
        "paths", nargs="*",
        help="files or directories to analyse "
        "(default: the installed repro package)",
    )
    analyze.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on any unsuppressed finding",
    )
    analyze.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE",
        help="restrict to one rule (repeatable); default: all rules",
    )
    analyze.add_argument(
        "--no-suppressed", action="store_true",
        help="hide suppressed findings from the listing",
    )
    return parser


def _cmd_simulate(args) -> int:
    factory = global_scenario if args.world else regional_scenario
    run = factory(
        n_vessels=args.vessels, duration_s=args.hours * 3600.0,
        seed=args.seed,
    ).run()
    out = sys.stdout if args.output == "-" else open(args.output, "w")
    try:
        if args.tagged:
            write_nmea_file(run.observations, out)
        else:
            for sentence in run.sentences:
                out.write(sentence + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
    print(
        f"# {len(run.sentences)} sentences from {len(run.specs)} vessels",
        file=sys.stderr,
    )
    return 0


def _cmd_pipeline(args) -> int:
    if args.nmea_file or args.nmea_tcp:
        if not args.live:
            print("--nmea-file/--nmea-tcp require --live", file=sys.stderr)
            return 2
        return _run_pipeline_source(args)
    run = regional_scenario(
        n_vessels=args.vessels, duration_s=args.hours * 3600.0,
        seed=args.seed,
    ).run()
    pipeline = MaritimePipeline(PipelineConfig(workers=args.workers))
    if args.live:
        return _run_pipeline_live(pipeline, run, args)
    result = pipeline.process(run)
    print(result.summary())
    print(f"synopsis compression: {pipeline.mean_compression_ratio(result):.1%}")
    officer = DecisionSupport(OperatorProfile(name="cli"))
    alerts = officer.triage(result.events + result.complex_events)
    print(f"\n{len(alerts)} alerts:")
    for alert in alerts[: args.alerts]:
        print("  " + alert.render())
    if result.overview is not None:
        print("\n" + result.overview.headline())
    return 0


def _run_pipeline_source(args) -> int:
    """Stream real feeds (files and/or sockets) through the façade;
    several feeds are merged on reception time."""
    sources = [NmeaFileSource(path) for path in args.nmea_file]
    for endpoint in args.nmea_tcp:
        host, _, port = endpoint.rpartition(":")
        if not host or not port.isdigit():
            print("--nmea-tcp expects HOST:PORT", file=sys.stderr)
            return 2
        sources.append(NmeaTcpSource(host, int(port)))
    monitor = MaritimeMonitor(
        PipelineConfig(workers=args.workers)
    ).attach(*sources)
    if args.json:
        JsonlSink(sys.stdout).attach(monitor.hub)
    else:
        monitor.subscribe(
            on_increment=lambda inc: print(inc.describe())
        ).subscribe(
            on_event=lambda event: print("  " + event.describe())
        )
    report = monitor.run(tick_s=args.tick)
    print(report.describe(), file=sys.stderr)
    stats = report.source
    if stats is not None and (stats.n_dropped or stats.n_rejected or stats.errors):
        print(
            f"source: {stats.n_dropped} dropped (overflow), "
            f"{stats.n_rejected} rejected (parse), errors {stats.errors}",
            file=sys.stderr,
        )
    if len(report.sources) > 1:
        for feed in report.sources:
            print(
                f"  {feed.name}: {feed.n_lines} lines, "
                f"{feed.n_dropped} dropped, {feed.n_rejected} rejected, "
                f"{feed.n_reconnects} reconnects",
                file=sys.stderr,
            )
    return 0


def _run_pipeline_live(pipeline, run, args) -> int:
    """Stream the feed through the incremental runtime tick by tick."""
    sink = JsonlSink(sys.stdout) if args.json else None
    n_ticks = 0
    n_records = 0
    n_events = 0
    n_complex = 0
    last_overview = None
    for increment in pipeline.replay_live(run, tick_s=args.tick):
        n_ticks += 1
        n_records += increment.n_records
        n_events += len(increment.new_events)
        n_complex += len(increment.new_complex_events)
        if increment.overview is not None:
            last_overview = increment.overview
        if sink is not None:
            sink.write_increment(increment)
            continue
        print(increment.describe())
        for event in increment.new_events[: args.alerts]:
            print("  " + event.describe())
    out = sys.stderr if sink is not None else sys.stdout
    print(
        f"\n{n_ticks} ticks, {n_records} records, {n_events} events "
        f"({n_complex} complex)",
        file=out,
    )
    if last_overview is not None:
        print(last_overview.headline(), file=out)
    return 0


def _cmd_map(args) -> int:
    from repro.ais.types import ClassBPositionReport, PositionReport
    from repro.geo import BoundingBox
    from repro.simulation.world import WORLD_PORTS
    from repro.visual import DensityMap, render_ascii_map

    run = global_scenario(
        n_vessels=args.vessels, duration_s=args.hours * 3600.0,
        seed=args.seed,
    ).run()
    decoder = AisDecoder()
    density = DensityMap(
        BoundingBox(-65.0, 75.0, -180.0, 180.0), n_lat_bins=36, n_lon_bins=110
    )
    lats, lons = [], []
    for obs in run.observations:
        message = decoder.feed(obs.sentence)
        if (
            isinstance(message, (PositionReport, ClassBPositionReport))
            and message.has_position
        ):
            lats.append(message.lat)
            lons.append(message.lon)
    density.add_positions(lats, lons)
    print(render_ascii_map(
        density, markers={(p.lat, p.lon): "o" for p in WORLD_PORTS}
    ))
    print(f"# {density.total} positions from {len(run.specs)} vessels")
    return 0


def _cmd_decode(args) -> int:
    stream = sys.stdin if args.input == "-" else open(args.input)
    decoder = AisDecoder()
    try:
        for line in stream:
            message = decoder.feed(line)
            if message is not None:
                print(message)
    finally:
        if stream is not sys.stdin:
            stream.close()
    print(f"# stats: {dict(decoder.stats)}", file=sys.stderr)
    return 0


def _cmd_analyze(args) -> int:
    # Imported here: the analysis package is pure stdlib but pulls in
    # the AST machinery no other command needs.
    import repro
    from repro.analysis import AnalysisError, analyze_paths

    paths = args.paths or [Path(repro.__file__).parent]
    try:
        report = analyze_paths(paths, rules=args.rules)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render(show_suppressed=not args.no_suppressed))
    if report.broken:
        return 2
    if args.strict and not report.ok:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "pipeline": _cmd_pipeline,
        "map": _cmd_map,
        "decode": _cmd_decode,
        "analyze": _cmd_analyze,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
