"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``simulate`` — generate a scenario and dump its NMEA feed (with
  ``--tagged``, TAG-blocked lines carrying reception timestamps that
  round-trip through ``pipeline --live --nmea-file``);
- ``pipeline`` — run the Figure 2 pipeline over a scenario and print the
  stage report and triaged alerts; with ``--live``, stream instead —
  from the simulated feed, an NMEA file (``--nmea-file``), or a TCP
  receiver (``--nmea-tcp host:port``), optionally as JSON lines
  (``--json``);
- ``map`` — render the global density map (Figure 1) as ASCII;
- ``decode`` — decode NMEA sentences from a file or stdin;
- ``store`` — query a SQLite track store written by ``pipeline --store``
  (positions, tracks in a region, events, alarms, summary), or apply
  the retention policy (``prune --keep-days N``);
- ``serve`` — run a live feed behind the HTTP/WebSocket gateway
  (positions, tracks, events, alerts, overview, geohash heatmap, and a
  per-increment WebSocket stream at ``/stream``);
- ``analyze`` — run the concurrency/causality invariant checkers over
  the source tree (``--strict`` gates CI).

Durability flags on ``pipeline --live`` with real feeds: ``--store DB``
archives every increment into a queryable SQLite store off the hot
path; ``--checkpoint-dir DIR`` writes a watermark-consistent checkpoint
per tick (``--checkpoint-every N`` thins that); ``--restore PATH``
continues a crashed run from a checkpoint file (or the newest one in a
directory), replaying the source from the recorded offset.
"""

import argparse
import sys
from pathlib import Path

from repro.ais.decoder import AisDecoder
from repro.core import (
    DecisionSupport,
    MaritimePipeline,
    OperatorProfile,
    PipelineConfig,
)
from repro.monitor import MaritimeMonitor
from repro.simulation import global_scenario, regional_scenario
from repro.sinks import JsonlSink
from repro.sources import NmeaFileSource, NmeaTcpSource, write_nmea_file


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Maritime data integration and analysis "
        "(EDBT 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="generate a scenario NMEA feed")
    simulate.add_argument("--vessels", type=int, default=30)
    simulate.add_argument("--hours", type=float, default=2.0)
    simulate.add_argument("--seed", type=int, default=42)
    simulate.add_argument(
        "--world", action="store_true",
        help="global satellite scenario instead of the regional theatre",
    )
    simulate.add_argument(
        "--output", default="-", help="output file ('-' for stdout)"
    )
    simulate.add_argument(
        "--tagged", action="store_true",
        help="prefix each sentence with an NMEA TAG block carrying the "
        "reception epoch and source (lossless input for --nmea-file)",
    )

    pipeline = sub.add_parser("pipeline", help="run the integrated pipeline")
    pipeline.add_argument("--vessels", type=int, default=30)
    pipeline.add_argument("--hours", type=float, default=3.0)
    pipeline.add_argument("--seed", type=int, default=42)
    pipeline.add_argument("--alerts", type=int, default=10,
                          help="max alerts to print")
    pipeline.add_argument(
        "--live", action="store_true",
        help="stream the feed through run_live, printing one line per "
        "micro-batch instead of the end-of-run report",
    )
    pipeline.add_argument(
        "--tick", type=float, default=300.0,
        help="micro-batch size in seconds of reception time (with --live)",
    )
    pipeline.add_argument(
        "--workers", type=int, default=1,
        help="worker shards for the per-vessel phase (vessel-partitioned; "
        "products are identical for every count)",
    )
    pipeline.add_argument(
        "--nmea-file", metavar="PATH", action="append", default=[],
        help="with --live: stream observations from an NMEA file "
        "(TAG-blocked or bare) instead of simulating a scenario; "
        "repeatable — several feeds (and --nmea-tcp) are merged on "
        "reception time",
    )
    pipeline.add_argument(
        "--nmea-tcp", metavar="HOST:PORT", action="append", default=[],
        help="with --live: stream observations from a line-framed NMEA "
        "TCP feed instead of simulating a scenario; repeatable — "
        "several feeds (and --nmea-file) are merged on reception time",
    )
    pipeline.add_argument(
        "--json", action="store_true",
        help="with --live: emit one JSON line per increment on stdout "
        "instead of the human-readable tick log",
    )
    pipeline.add_argument(
        "--store", metavar="DB",
        help="archive increments (positions, segments, events, alarms) "
        "into a queryable SQLite track store at DB; inserts run off the "
        "pipeline thread (query it with 'repro store')",
    )
    pipeline.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="with --live and a real feed: write a watermark-consistent "
        "checkpoint (ckpt-<n>.ckpt) at each increment barrier",
    )
    pipeline.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="checkpoint every N-th increment (default 1)",
    )
    pipeline.add_argument(
        "--restore", metavar="PATH",
        help="with --live and a real feed: continue from a checkpoint "
        "file, or from the newest checkpoint in a directory; the feed "
        "is replayed from the recorded position",
    )

    store = sub.add_parser(
        "store",
        help="query a SQLite track store written by pipeline --store",
    )
    store.add_argument("db", help="path to the track store database")
    store.add_argument(
        "what",
        choices=[
            "summary", "positions", "tracks", "events", "alarms", "prune",
        ],
        help="summary: row counts; positions: one vessel's fixes "
        "(--mmsi); tracks: segments intersecting --region; events: "
        "archived events (--kind/--mmsi); alarms: monitoring alarms; "
        "prune: apply the retention policy (--keep-days/--before)",
    )
    store.add_argument("--mmsi", type=int, help="vessel filter")
    store.add_argument(
        "--kind", help="event kind filter (e.g. rendezvous, gap)"
    )
    store.add_argument(
        "--t0", type=float, default=float("-inf"),
        help="window start, epoch seconds",
    )
    store.add_argument(
        "--t1", type=float, default=float("inf"),
        help="window end, epoch seconds",
    )
    store.add_argument(
        "--region", metavar="LATMIN,LATMAX,LONMIN,LONMAX",
        help="bounding box for 'tracks'",
    )
    store.add_argument(
        "--limit", type=int, default=50, help="max rows to print"
    )
    store.add_argument(
        "--keep-days", type=float, metavar="N",
        help="with 'prune': delete products older than N days before "
        "the store's watermark, then compact",
    )
    store.add_argument(
        "--before", type=float, metavar="EPOCH",
        help="with 'prune': delete products with event time < EPOCH "
        "(alternative to --keep-days)",
    )

    serve = sub.add_parser(
        "serve",
        help="run a live feed behind the HTTP/WebSocket gateway",
        description="Stream a feed through the monitor with the serving "
        "gateway attached: HTTP endpoints for positions/tracks/events/"
        "alerts/overview/heatmap plus a per-increment WebSocket stream "
        "at /stream.  Without --nmea-file/--nmea-tcp a regional "
        "scenario is simulated and replayed.",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8765,
        help="TCP port to bind (0 picks a free port)",
    )
    serve.add_argument(
        "--nmea-file", metavar="PATH", action="append", default=[],
        help="stream observations from an NMEA file (repeatable; merged "
        "with --nmea-tcp on reception time)",
    )
    serve.add_argument(
        "--nmea-tcp", metavar="HOST:PORT", action="append", default=[],
        help="stream observations from a line-framed NMEA TCP feed "
        "(repeatable)",
    )
    serve.add_argument("--vessels", type=int, default=30)
    serve.add_argument("--hours", type=float, default=2.0)
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--tick", type=float, default=300.0)
    serve.add_argument("--workers", type=int, default=1)
    serve.add_argument(
        "--hold", type=float, default=0.0, metavar="SECONDS",
        help="keep serving this long after the feed ends "
        "(-1: until POST /shutdown or interrupt)",
    )
    serve.add_argument(
        "--allow-shutdown", action="store_true",
        help="enable POST /shutdown (for test harnesses)",
    )

    world_map = sub.add_parser("map", help="render the Figure 1 density map")
    world_map.add_argument("--vessels", type=int, default=150)
    world_map.add_argument("--hours", type=float, default=6.0)
    world_map.add_argument("--seed", type=int, default=7)

    decode = sub.add_parser("decode", help="decode NMEA sentences")
    decode.add_argument(
        "input", nargs="?", default="-",
        help="file of !AIVDM sentences ('-' for stdin)",
    )

    analyze = sub.add_parser(
        "analyze",
        help="run the concurrency/causality invariant checkers",
        description="Static analysis over the source tree: stage phase "
        "and ownership manifests, single-writer discipline, lock "
        "discipline in threaded modules, causality and config-mutation "
        "rules.  See src/repro/analysis/README.md.",
    )
    analyze.add_argument(
        "paths", nargs="*",
        help="files or directories to analyse "
        "(default: the installed repro package)",
    )
    analyze.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on any unsuppressed finding",
    )
    analyze.add_argument(
        "--rule", action="append", dest="rules", metavar="RULE",
        help="restrict to one rule (repeatable); default: all rules",
    )
    analyze.add_argument(
        "--no-suppressed", action="store_true",
        help="hide suppressed findings from the listing",
    )
    return parser


def _cmd_simulate(args) -> int:
    factory = global_scenario if args.world else regional_scenario
    run = factory(
        n_vessels=args.vessels, duration_s=args.hours * 3600.0,
        seed=args.seed,
    ).run()
    out = sys.stdout if args.output == "-" else open(args.output, "w")
    try:
        if args.tagged:
            write_nmea_file(run.observations, out)
        else:
            for sentence in run.sentences:
                out.write(sentence + "\n")
    finally:
        if out is not sys.stdout:
            out.close()
    print(
        f"# {len(run.sentences)} sentences from {len(run.specs)} vessels",
        file=sys.stderr,
    )
    return 0


def _cmd_pipeline(args) -> int:
    if (args.checkpoint_dir or args.restore) and not (
        args.nmea_file or args.nmea_tcp
    ):
        print(
            "--checkpoint-dir/--restore need a resumable feed: use "
            "--live with --nmea-file (or --nmea-tcp)",
            file=sys.stderr,
        )
        return 2
    if args.nmea_file or args.nmea_tcp:
        if not args.live:
            print("--nmea-file/--nmea-tcp require --live", file=sys.stderr)
            return 2
        return _run_pipeline_source(args)
    run = regional_scenario(
        n_vessels=args.vessels, duration_s=args.hours * 3600.0,
        seed=args.seed,
    ).run()
    pipeline = MaritimePipeline(PipelineConfig(workers=args.workers))
    if args.live:
        return _run_pipeline_live(pipeline, run, args)
    result = pipeline.process(run)
    print(result.summary())
    print(f"synopsis compression: {pipeline.mean_compression_ratio(result):.1%}")
    officer = DecisionSupport(OperatorProfile(name="cli"))
    alerts = officer.triage(result.events + result.complex_events)
    print(f"\n{len(alerts)} alerts:")
    for alert in alerts[: args.alerts]:
        print("  " + alert.render())
    if result.overview is not None:
        print("\n" + result.overview.headline())
    return 0


def _run_pipeline_source(args) -> int:
    """Stream real feeds (files and/or sockets) through the façade;
    several feeds are merged on reception time."""
    import os

    from repro.persist import (
        CheckpointError,
        SqliteTrackStore,
        latest_checkpoint,
    )

    sources = [NmeaFileSource(path) for path in args.nmea_file]
    for endpoint in args.nmea_tcp:
        host, _, port = endpoint.rpartition(":")
        if not host or not port.isdigit():
            print("--nmea-tcp expects HOST:PORT", file=sys.stderr)
            return 2
        sources.append(NmeaTcpSource(host, int(port)))
    monitor = MaritimeMonitor(PipelineConfig(workers=args.workers))
    if args.restore:
        path = args.restore
        if os.path.isdir(path):
            found = latest_checkpoint(path)
            if found is None:
                print(f"no *.ckpt files in {path}", file=sys.stderr)
                return 2
            path = found
        try:
            monitor.restore(path)
        except CheckpointError as exc:
            print(f"restore failed: {exc}", file=sys.stderr)
            return 2
        print(f"# restored from {path}", file=sys.stderr)
    monitor.attach(*sources)
    store = None
    if args.store:
        store = SqliteTrackStore(args.store)
        store.attach(monitor.hub)
    if args.json:
        JsonlSink(sys.stdout).attach(monitor.hub)
    else:
        monitor.subscribe(
            on_increment=lambda inc: print(inc.describe())
        ).subscribe(
            on_event=lambda event: print("  " + event.describe())
        )
    try:
        report = monitor.run(
            tick_s=args.tick,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
        )
    finally:
        if store is not None:
            # run() drains the hub's async dispatchers before returning,
            # so every increment has reached the store by now.
            summary = store.summary()
            store.close()
            print(
                f"# store {args.store}: "
                f"{summary['vessel_positions']} positions, "
                f"{summary['track_segments']} segments, "
                f"{summary['events']} events, "
                f"{summary['alarms']} alarms",
                file=sys.stderr,
            )
    print(report.describe(), file=sys.stderr)
    stats = report.source
    if stats is not None and (stats.n_dropped or stats.n_rejected or stats.errors):
        print(
            f"source: {stats.n_dropped} dropped (overflow), "
            f"{stats.n_rejected} rejected (parse), errors {stats.errors}",
            file=sys.stderr,
        )
    if len(report.sources) > 1:
        for feed in report.sources:
            print(
                f"  {feed.name}: {feed.n_lines} lines, "
                f"{feed.n_dropped} dropped, {feed.n_rejected} rejected, "
                f"{feed.n_reconnects} reconnects",
                file=sys.stderr,
            )
    return 0


def _run_pipeline_live(pipeline, run, args) -> int:
    """Stream the feed through the incremental runtime tick by tick."""
    sink = JsonlSink(sys.stdout) if args.json else None
    store = None
    if args.store:
        from repro.persist import SqliteTrackStore

        store = SqliteTrackStore(args.store)
    n_ticks = 0
    n_records = 0
    n_events = 0
    n_complex = 0
    last_overview = None
    for increment in pipeline.replay_live(run, tick_s=args.tick):
        n_ticks += 1
        n_records += increment.n_records
        n_events += len(increment.new_events)
        n_complex += len(increment.new_complex_events)
        if increment.overview is not None:
            last_overview = increment.overview
        if store is not None:
            store.write_increment(increment)
        if sink is not None:
            sink.write_increment(increment)
            continue
        print(increment.describe())
        for event in increment.new_events[: args.alerts]:
            print("  " + event.describe())
    if store is not None:
        store.close()
    out = sys.stderr if sink is not None else sys.stdout
    print(
        f"\n{n_ticks} ticks, {n_records} records, {n_events} events "
        f"({n_complex} complex)",
        file=out,
    )
    if last_overview is not None:
        print(last_overview.headline(), file=out)
    return 0


def _cmd_serve(args) -> int:
    """Run a feed behind the HTTP/WebSocket gateway."""
    from repro.serve import MonitorGateway

    sources = [NmeaFileSource(path) for path in args.nmea_file]
    for endpoint in args.nmea_tcp:
        host, _, port = endpoint.rpartition(":")
        if not host or not port.isdigit():
            print("--nmea-tcp expects HOST:PORT", file=sys.stderr)
            return 2
        sources.append(NmeaTcpSource(host, int(port)))
    if not sources:
        run = regional_scenario(
            n_vessels=args.vessels, duration_s=args.hours * 3600.0,
            seed=args.seed,
        ).run()
        sources = [run.observations]
        print(
            f"# simulated feed: {len(run.observations)} observations "
            f"from {len(run.specs)} vessels",
            file=sys.stderr,
        )
    monitor = MaritimeMonitor(PipelineConfig(workers=args.workers))
    monitor.attach(*sources)
    gateway = MonitorGateway(
        host=args.host, port=args.port,
        allow_shutdown=args.allow_shutdown,
    )
    gateway.attach(monitor.hub)
    gateway.start()
    print(f"# serving on {gateway.url}", file=sys.stderr)
    print(
        "# endpoints: /healthz /positions /tracks/<mmsi> /events "
        "/alerts /overview /heatmap  ws:/stream",
        file=sys.stderr,
    )
    try:
        report = monitor.run(tick_s=args.tick)
        print(report.describe(), file=sys.stderr)
        if args.hold:
            print(
                "# feed ended; holding (POST /shutdown or Ctrl-C to stop)"
                if args.hold < 0
                else f"# feed ended; holding {args.hold:.0f}s",
                file=sys.stderr,
            )
            gateway.shutdown_requested.wait(
                timeout=None if args.hold < 0 else args.hold
            )
    except KeyboardInterrupt:
        print("# interrupted", file=sys.stderr)
    finally:
        gateway.close()
    return 0


def _cmd_map(args) -> int:
    from repro.ais.types import ClassBPositionReport, PositionReport
    from repro.geo import BoundingBox
    from repro.simulation.world import WORLD_PORTS
    from repro.visual import DensityMap, render_ascii_map

    run = global_scenario(
        n_vessels=args.vessels, duration_s=args.hours * 3600.0,
        seed=args.seed,
    ).run()
    decoder = AisDecoder()
    density = DensityMap(
        BoundingBox(-65.0, 75.0, -180.0, 180.0), n_lat_bins=36, n_lon_bins=110
    )
    lats, lons = [], []
    for obs in run.observations:
        message = decoder.feed(obs.sentence)
        if (
            isinstance(message, (PositionReport, ClassBPositionReport))
            and message.has_position
        ):
            lats.append(message.lat)
            lons.append(message.lon)
    density.add_positions(lats, lons)
    print(render_ascii_map(
        density, markers={(p.lat, p.lon): "o" for p in WORLD_PORTS}
    ))
    print(f"# {density.total} positions from {len(run.specs)} vessels")
    return 0


def _cmd_decode(args) -> int:
    stream = sys.stdin if args.input == "-" else open(args.input)
    decoder = AisDecoder()
    try:
        for line in stream:
            message = decoder.feed(line)
            if message is not None:
                print(message)
    finally:
        if stream is not sys.stdin:
            stream.close()
    print(f"# stats: {dict(decoder.stats)}", file=sys.stderr)
    return 0


def _cmd_store(args) -> int:
    """Query a track store database written by ``pipeline --store``."""
    import os

    from repro.persist import SqliteTrackStore

    if not os.path.exists(args.db):
        print(f"no such store: {args.db}", file=sys.stderr)
        return 2
    store = SqliteTrackStore(args.db)
    try:
        if args.what == "prune":
            if args.keep_days is None and args.before is None:
                print("prune needs --keep-days or --before", file=sys.stderr)
                return 2
            result = store.prune(
                keep_days=args.keep_days, before_t=args.before
            )
            for key, value in result.items():
                print(f"{key}: {value}")
            return 0
        if args.what == "summary":
            for key, value in store.summary().items():
                print(f"{key}: {value}")
            return 0
        if args.what == "positions":
            if args.mmsi is None:
                print("positions needs --mmsi", file=sys.stderr)
                return 2
            rows = store.positions(args.mmsi, args.t0, args.t1)
            for p in rows[: args.limit]:
                sog = "" if p.sog_knots is None else f" {p.sog_knots:.1f}kn"
                print(
                    f"t={p.t:.0f} lat={p.lat:.5f} lon={p.lon:.5f}"
                    f"{sog} [{p.source}]"
                )
        elif args.what == "tracks":
            box = (-90.0, 90.0, -180.0, 180.0)
            if args.region:
                parts = args.region.split(",")
                if len(parts) != 4:
                    print(
                        "--region expects LATMIN,LATMAX,LONMIN,LONMAX",
                        file=sys.stderr,
                    )
                    return 2
                box = tuple(float(v) for v in parts)
            rows = store.tracks_in_region(*box, t0=args.t0, t1=args.t1)
            if args.mmsi is not None:
                rows = [r for r in rows if r["mmsi"] == args.mmsi]
            for r in rows[: args.limit]:
                print(
                    f"segment {r['segment_id']}: mmsi={r['mmsi']} "
                    f"t=[{r['t_start']:.0f}, {r['t_end']:.0f}] "
                    f"{r['n_points']} points "
                    f"lat=[{r['lat_min']:.3f}, {r['lat_max']:.3f}] "
                    f"lon=[{r['lon_min']:.3f}, {r['lon_max']:.3f}]"
                )
        elif args.what == "events":
            rows = store.events(
                kind=args.kind, mmsi=args.mmsi, t0=args.t0, t1=args.t1
            )
            for event in rows[: args.limit]:
                print(event.describe())
        else:  # alarms
            rows = store.alarms(args.t0, args.t1)
            for a in rows[: args.limit]:
                print(
                    f"t={a.t:.0f} mmsi={a.mmsi} score={a.score:.2f} "
                    f"{a.explanation}"
                )
        if len(rows) > args.limit:
            print(
                f"... {len(rows) - args.limit} more "
                f"(raise --limit)", file=sys.stderr,
            )
        return 0
    except ValueError as exc:
        # e.g. an unknown --kind: surface the store's message verbatim.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        store.close()


def _cmd_analyze(args) -> int:
    # Imported here: the analysis package is pure stdlib but pulls in
    # the AST machinery no other command needs.
    import repro
    from repro.analysis import AnalysisError, analyze_paths

    paths = args.paths or [Path(repro.__file__).parent]
    try:
        report = analyze_paths(paths, rules=args.rules)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render(show_suppressed=not args.no_suppressed))
    if report.broken:
        return 2
    if args.strict and not report.ok:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "simulate": _cmd_simulate,
        "pipeline": _cmd_pipeline,
        "serve": _cmd_serve,
        "map": _cmd_map,
        "decode": _cmd_decode,
        "store": _cmd_store,
        "analyze": _cmd_analyze,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
