"""Synthetic gridded weather: wind, waves and surface current.

The point of this module is not meteorology — it is the *multi-resolution
integration problem* of §2.5: weather products arrive on km-scale grids
with hourly steps while AIS is 10 m / seconds-scale, and the enrichment
layer must align them.  Fields are smooth, deterministic functions of
(lat, lon, t) built from a few random Fourier modes, so any two queries of
the same provider agree and tests can assert exact values.
"""

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class WeatherSample:
    """Weather interpolated at a point and instant."""

    wind_speed_mps: float
    wind_dir_deg: float
    wave_height_m: float
    current_east_mps: float
    current_north_mps: float


class WeatherField:
    """A smooth scalar field: sum of a handful of planetary Fourier modes."""

    def __init__(
        self,
        rng: random.Random,
        base: float,
        amplitude: float,
        n_modes: int = 6,
        time_period_s: float = 43_200.0,
    ) -> None:
        self.base = base
        self.amplitude = amplitude
        self.time_period_s = time_period_s
        self._modes = [
            (
                rng.uniform(0.5, 3.0),   # latitude wavenumber
                rng.uniform(0.5, 3.0),   # longitude wavenumber
                rng.uniform(0, 2 * math.pi),  # phase
                rng.uniform(0.3, 1.0),   # relative weight
            )
            for _ in range(n_modes)
        ]
        total_weight = sum(m[3] for m in self._modes)
        self._norm = 1.0 / total_weight if total_weight else 1.0

    def value(self, lat: float, lon: float, t: float) -> float:
        acc = 0.0
        t_phase = 2 * math.pi * (t / self.time_period_s)
        for k_lat, k_lon, phase, weight in self._modes:
            acc += weight * math.sin(
                math.radians(lat) * k_lat * 4.0
                + math.radians(lon) * k_lon * 2.0
                + phase
                + t_phase
            )
        return self.base + self.amplitude * acc * self._norm


class WeatherProvider:
    """Weather product with explicit grid/temporal resolution.

    ``sample_exact`` evaluates the continuous truth; ``sample_gridded``
    snaps the query to the product's grid cell centre and time step first —
    that quantisation *is* the resolution mismatch benchmark E7 measures.
    """

    def __init__(
        self,
        seed: int = 0,
        grid_resolution_deg: float = 0.25,
        time_step_s: float = 3600.0,
    ) -> None:
        rng = random.Random(seed)
        self.grid_resolution_deg = grid_resolution_deg
        self.time_step_s = time_step_s
        self._wind_speed = WeatherField(rng, base=8.0, amplitude=7.0)
        self._wind_dir = WeatherField(rng, base=180.0, amplitude=180.0)
        self._wave = WeatherField(rng, base=1.5, amplitude=1.4)
        self._cur_e = WeatherField(rng, base=0.0, amplitude=0.5)
        self._cur_n = WeatherField(rng, base=0.0, amplitude=0.5)

    def sample_exact(self, lat: float, lon: float, t: float) -> WeatherSample:
        return WeatherSample(
            wind_speed_mps=max(0.0, self._wind_speed.value(lat, lon, t)),
            wind_dir_deg=self._wind_dir.value(lat, lon, t) % 360.0,
            wave_height_m=max(0.0, self._wave.value(lat, lon, t)),
            current_east_mps=self._cur_e.value(lat, lon, t),
            current_north_mps=self._cur_n.value(lat, lon, t),
        )

    def snap(self, lat: float, lon: float, t: float) -> tuple[float, float, float]:
        """Grid-cell centre and time-step start for a query point."""
        res = self.grid_resolution_deg
        lat_c = (math.floor(lat / res) + 0.5) * res
        lon_c = (math.floor(lon / res) + 0.5) * res
        t_c = math.floor(t / self.time_step_s) * self.time_step_s
        return lat_c, lon_c, t_c

    def sample_gridded(self, lat: float, lon: float, t: float) -> WeatherSample:
        lat_c, lon_c, t_c = self.snap(lat, lon, t)
        return self.sample_exact(lat_c, lon_c, t_c)

    def quantisation_error(
        self, lat: float, lon: float, t: float
    ) -> float:
        """Wind-speed error (m/s) introduced by the product resolution."""
        exact = self.sample_exact(lat, lon, t)
        grid = self.sample_gridded(lat, lon, t)
        return abs(exact.wind_speed_mps - grid.wind_speed_mps)
