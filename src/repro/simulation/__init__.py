"""Synthetic maritime world.

This package replaces the paper's live data sources (terrestrial/satellite
AIS, VTS radar, LRIT, weather products) with a deterministic simulator.
Vessels follow behaviour-generated waypoint plans; an AIS transceiver model
emits messages on the ITU reporting schedule; a receiver model applies
coverage, loss and latency; everything is serialised through the real codec
in :mod:`repro.ais`, so downstream components consume genuine NMEA.

Ground truth (exact trajectories, injected events, fleet registry) is kept
alongside the observable feed, which is what makes every experiment in
EXPERIMENTS.md measurable.
"""

from repro.simulation.vessel import VesselSpec, Behaviour, FleetBuilder
from repro.simulation.movement import Leg, WaypointPlan
from repro.simulation.world import Port, WORLD_PORTS, REGIONAL_PORTS, port_by_name
from repro.simulation.behaviours import (
    plan_transit,
    plan_ferry,
    plan_fishing,
    plan_loiter,
    plan_rendezvous_pair,
)
from repro.simulation.reporting import reporting_interval_s, AisTransceiver
from repro.simulation.receivers import (
    TerrestrialStation,
    SatelliteConstellation,
    ReceiverNetwork,
)
from repro.simulation.weather import WeatherField, WeatherProvider
from repro.simulation.sensors import RadarSite, RadarContact, LritReporter, LritReport
from repro.simulation.scenario import (
    Scenario,
    ScenarioRun,
    TruthEvent,
    regional_scenario,
    global_scenario,
)

__all__ = [
    "VesselSpec",
    "Behaviour",
    "FleetBuilder",
    "Leg",
    "WaypointPlan",
    "Port",
    "WORLD_PORTS",
    "REGIONAL_PORTS",
    "port_by_name",
    "plan_transit",
    "plan_ferry",
    "plan_fishing",
    "plan_loiter",
    "plan_rendezvous_pair",
    "reporting_interval_s",
    "AisTransceiver",
    "TerrestrialStation",
    "SatelliteConstellation",
    "ReceiverNetwork",
    "WeatherField",
    "WeatherProvider",
    "RadarSite",
    "RadarContact",
    "LritReporter",
    "LritReport",
    "Scenario",
    "ScenarioRun",
    "TruthEvent",
    "regional_scenario",
    "global_scenario",
]
