"""Analytic vessel movement: timed waypoint plans.

A vessel's whole day is a :class:`WaypointPlan` — a sorted list of legs,
each a constant-speed great-circle segment (or a stationary dwell).  The
position at any instant is computed analytically (binary search + spherical
interpolation), so querying a 24 h global scenario is O(log legs) per
sample and no numerical integration error accumulates.
"""

import bisect
import math
from dataclasses import dataclass
from functools import cached_property

from repro.geo import (
    KNOTS_TO_MPS,
    haversine_m,
    initial_bearing_deg,
    interpolate_fraction,
)


@dataclass(frozen=True)
class Leg:
    """One constant-speed segment of a plan.  ``lat1 == lat2`` and
    ``lon1 == lon2`` encodes a dwell (anchored / moored / drifting).

    Geometry (length, speed, course) is cached on first access: plans are
    immutable and these are evaluated millions of times per scenario.
    """

    t_start: float
    t_end: float
    lat1: float
    lon1: float
    lat2: float
    lon2: float

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise ValueError("leg must have positive duration")

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start

    @cached_property
    def length_m(self) -> float:
        return haversine_m(self.lat1, self.lon1, self.lat2, self.lon2)

    @cached_property
    def speed_knots(self) -> float:
        return self.length_m / self.duration_s / KNOTS_TO_MPS

    @cached_property
    def course_deg(self) -> float:
        if self.length_m < 1.0:
            return 0.0
        return initial_bearing_deg(self.lat1, self.lon1, self.lat2, self.lon2)

    def position_at(self, t: float) -> tuple[float, float]:
        """Position at time ``t`` (clamped to the leg's time span)."""
        fraction = (t - self.t_start) / self.duration_s
        fraction = min(1.0, max(0.0, fraction))
        return interpolate_fraction(
            self.lat1, self.lon1, self.lat2, self.lon2, fraction
        )


@dataclass(frozen=True)
class Kinematics:
    """Instantaneous state sampled from a plan."""

    t: float
    lat: float
    lon: float
    sog_knots: float
    cog_deg: float
    underway: bool


class WaypointPlan:
    """A vessel's timed route: contiguous legs covering ``[t0, t1]``.

    Build with :meth:`from_waypoints` (waypoints + speed) or directly from
    legs.  Legs must be contiguous in time; gaps raise ``ValueError`` so
    that behaviour-model bugs surface immediately rather than as teleports.
    """

    def __init__(self, legs: list[Leg]) -> None:
        if not legs:
            raise ValueError("a plan needs at least one leg")
        ordered = sorted(legs, key=lambda leg: leg.t_start)
        for prev, nxt in zip(ordered, ordered[1:]):
            if abs(prev.t_end - nxt.t_start) > 1e-6:
                raise ValueError(
                    f"legs not contiguous: {prev.t_end} -> {nxt.t_start}"
                )
            jump = haversine_m(prev.lat2, prev.lon2, nxt.lat1, nxt.lon1)
            if jump > 50.0:
                raise ValueError(f"legs not spatially contiguous ({jump:.0f} m jump)")
        self.legs = ordered
        self._starts = [leg.t_start for leg in ordered]

    @property
    def t_start(self) -> float:
        return self.legs[0].t_start

    @property
    def t_end(self) -> float:
        return self.legs[-1].t_end

    def leg_at(self, t: float) -> Leg:
        """The leg active at time ``t`` (clamped to the plan's span)."""
        index = bisect.bisect_right(self._starts, t) - 1
        index = min(len(self.legs) - 1, max(0, index))
        return self.legs[index]

    def position_at(self, t: float) -> tuple[float, float]:
        return self.leg_at(t).position_at(t)

    def kinematics_at(self, t: float) -> Kinematics:
        """Full kinematic state at ``t``; dwells report SOG 0 / last course."""
        leg = self.leg_at(t)
        lat, lon = leg.position_at(t)
        speed = leg.speed_knots
        underway = speed > 0.5
        return Kinematics(
            t=t,
            lat=lat,
            lon=lon,
            sog_knots=speed if underway else 0.0,
            cog_deg=leg.course_deg,
            underway=underway,
        )

    def sample(self, step_s: float) -> list[Kinematics]:
        """Regularly sampled states over the whole plan (endpoints included)."""
        if step_s <= 0:
            raise ValueError("step_s must be positive")
        samples = []
        t = self.t_start
        while t < self.t_end:
            samples.append(self.kinematics_at(t))
            t += step_s
        samples.append(self.kinematics_at(self.t_end))
        return samples

    @classmethod
    def from_waypoints(
        cls,
        t_start: float,
        waypoints: list[tuple[float, float]],
        speed_knots: float,
        max_leg_length_m: float = 500_000.0,
    ) -> "WaypointPlan":
        """Plan that sails the waypoint chain at constant speed.

        Long ocean crossings are subdivided so each leg stays under
        ``max_leg_length_m`` and the path follows the great circle rather
        than a single rhumb-like chord.
        """
        if len(waypoints) < 2:
            raise ValueError("need at least two waypoints")
        if speed_knots <= 0:
            raise ValueError("speed must be positive")
        speed_mps = speed_knots * KNOTS_TO_MPS
        legs: list[Leg] = []
        t = t_start
        for (lat1, lon1), (lat2, lon2) in zip(waypoints, waypoints[1:]):
            total = haversine_m(lat1, lon1, lat2, lon2)
            if total < 1.0:
                continue
            pieces = max(1, math.ceil(total / max_leg_length_m))
            prev = (lat1, lon1)
            for i in range(1, pieces + 1):
                nxt = interpolate_fraction(lat1, lon1, lat2, lon2, i / pieces)
                seg_len = haversine_m(prev[0], prev[1], nxt[0], nxt[1])
                duration = seg_len / speed_mps
                legs.append(
                    Leg(t, t + duration, prev[0], prev[1], nxt[0], nxt[1])
                )
                t += duration
                prev = nxt
        if not legs:
            raise ValueError("waypoints produced no movement")
        return cls(legs)

    def append_dwell(self, duration_s: float) -> "WaypointPlan":
        """New plan with a stationary dwell appended at the final position."""
        last = self.legs[-1]
        dwell = Leg(
            last.t_end,
            last.t_end + duration_s,
            last.lat2,
            last.lon2,
            last.lat2,
            last.lon2,
        )
        return WaypointPlan(self.legs + [dwell])
