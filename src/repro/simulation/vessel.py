"""Vessel identities and fleet construction.

The fleet builder assigns realistic identities (MMSI with a country MID,
IMO number with a valid check digit, callsign, name) so that the AIS
validation layer and the registry-linkage experiments operate on data with
the same shape as the real thing.
"""

import enum
import random
from dataclasses import dataclass, field

from repro.ais.types import ShipType

_NAME_PREFIXES = [
    "ATLANTIC", "PACIFIC", "NORDIC", "STELLA", "OCEAN", "GOLDEN", "SILVER",
    "BLUE", "CELTIC", "IBERIAN", "BALTIC", "AEGEAN", "CORAL", "EMERALD",
    "POLAR", "AURORA", "MISTRAL", "LEVANT", "ARMOR", "GASCOGNE",
]
_NAME_SUFFIXES = [
    "TRADER", "EXPRESS", "PIONEER", "SPIRIT", "STAR", "WAVE", "HORIZON",
    "CARRIER", "GLORY", "DAWN", "QUEEN", "VOYAGER", "NAVIGATOR", "FORTUNE",
    "BREEZE", "TIDE", "CREST", "HARMONY", "GUARDIAN", "SWIFT",
]

#: MID prefixes per flag used by the generator (subset of the ITU table).
_FLAG_MIDS = {
    "FR": 227, "GB": 232, "ES": 224, "IE": 250, "NL": 244, "DE": 211,
    "IT": 247, "GR": 237, "PA": 351, "LR": 636, "MT": 215, "CN": 412,
    "SG": 563, "US": 366, "NO": 257, "DK": 219,
}


class Behaviour(enum.Enum):
    """Behaviour archetypes the scenario builder can assign."""

    TRANSIT = "transit"
    FERRY = "ferry"
    FISHING = "fishing"
    TANKER = "tanker"
    RENDEZVOUS = "rendezvous"
    DARK = "dark"
    SPOOFER = "spoofer"


@dataclass
class VesselSpec:
    """Ground-truth identity and characteristics of one simulated vessel."""

    mmsi: int
    imo: int
    name: str
    callsign: str
    flag: str
    ship_type: ShipType
    length_m: int
    beam_m: int
    draught_m: float
    behaviour: Behaviour = Behaviour.TRANSIT
    #: True for vessels that deliberately stop transmitting for part of the
    #: run ("going dark", §4 / Windward [43]).
    goes_dark: bool = False
    #: Class B transponder (fishing and pleasure craft) vs Class A.
    class_b: bool = False
    destination: str = ""
    extras: dict = field(default_factory=dict)


def make_imo_number(rng: random.Random) -> int:
    """A syntactically valid IMO number (correct check digit)."""
    base = rng.randint(100_000, 999_999)
    digits = [int(d) for d in f"{base:06d}"]
    check = sum(d * w for d, w in zip(digits, range(7, 1, -1))) % 10
    return base * 10 + check


def make_callsign(flag: str, rng: random.Random) -> str:
    """Country-flavoured callsign (first letters loosely follow ITU blocks)."""
    first = {"FR": "F", "GB": "G", "ES": "E", "US": "W", "DE": "D"}.get(
        flag, chr(rng.randint(ord("A"), ord("Z")))
    )
    rest = "".join(
        rng.choice("ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789") for _ in range(4)
    )
    return first + rest


class FleetBuilder:
    """Deterministically generates unique vessel identities."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._used_mmsi: set[int] = set()
        self._used_names: set[str] = set()

    def _unique_mmsi(self, flag: str) -> int:
        mid = _FLAG_MIDS.get(flag, 227)
        while True:
            mmsi = mid * 1_000_000 + self._rng.randint(0, 999_999)
            if mmsi not in self._used_mmsi:
                self._used_mmsi.add(mmsi)
                return mmsi

    def _unique_name(self) -> str:
        for _ in range(1000):
            name = (
                f"{self._rng.choice(_NAME_PREFIXES)} "
                f"{self._rng.choice(_NAME_SUFFIXES)}"
            )
            if name not in self._used_names:
                self._used_names.add(name)
                return name
        # Exhausted the nice combinations: fall back to a numbered name.
        name = f"VESSEL {len(self._used_names) + 1}"
        self._used_names.add(name)
        return name

    def build(
        self,
        ship_type: ShipType,
        behaviour: Behaviour = Behaviour.TRANSIT,
        flag: str | None = None,
        class_b: bool | None = None,
        goes_dark: bool = False,
        destination: str = "",
    ) -> VesselSpec:
        """One vessel with type-appropriate dimensions."""
        rng = self._rng
        flag = flag or rng.choice(list(_FLAG_MIDS))
        dims = {
            ShipType.CARGO: (120, 320, 18, 45, 8.0, 15.0),
            ShipType.TANKER: (150, 330, 25, 60, 10.0, 20.0),
            ShipType.PASSENGER: (90, 220, 20, 32, 5.5, 8.5),
            ShipType.FISHING: (15, 45, 5, 10, 3.0, 6.0),
            ShipType.TUG: (20, 40, 8, 12, 3.5, 5.5),
            ShipType.PLEASURE_CRAFT: (8, 25, 3, 6, 1.5, 3.0),
        }.get(ship_type, (30, 120, 8, 20, 4.0, 8.0))
        lo_len, hi_len, lo_beam, hi_beam, lo_draught, hi_draught = dims
        if class_b is None:
            class_b = ship_type in (ShipType.FISHING, ShipType.PLEASURE_CRAFT)
        return VesselSpec(
            mmsi=self._unique_mmsi(flag),
            imo=0 if class_b else make_imo_number(rng),
            name=self._unique_name(),
            callsign=make_callsign(flag, rng),
            flag=flag,
            ship_type=ship_type,
            length_m=rng.randint(lo_len, hi_len),
            beam_m=rng.randint(lo_beam, hi_beam),
            draught_m=round(rng.uniform(lo_draught, hi_draught), 1),
            behaviour=behaviour,
            goes_dark=goes_dark,
            class_b=class_b,
            destination=destination,
        )
