"""Non-cooperative and low-rate sensors: coastal radar and LRIT.

These give the fusion layer (§2.4) genuinely heterogeneous inputs:

- **Radar** sees everything in range — including dark ships — but with
  coarse position accuracy and *no identity* (contacts must be associated
  to tracks).
- **LRIT** is identified and global but reports only every 6 hours, the
  low-temporal-resolution extreme of §2.5.
"""

import random
from dataclasses import dataclass

from repro.geo import NM_TO_M, destination_point, haversine_m
from repro.simulation.movement import WaypointPlan
from repro.simulation.vessel import VesselSpec


@dataclass(frozen=True)
class RadarContact:
    """Anonymous radar detection.  ``truth_mmsi`` is ground truth for
    scoring only — real contacts do not carry it, and the fusion layer is
    forbidden from reading it (enforced by convention and by the E5 harness
    which shuffles contact order)."""

    t: float
    lat: float
    lon: float
    site: str
    truth_mmsi: int


@dataclass(frozen=True)
class LritReport:
    """Identified long-range position report (6-hourly)."""

    t: float
    mmsi: int
    lat: float
    lon: float


@dataclass
class RadarSite:
    """Scanning coastal radar."""

    name: str
    lat: float
    lon: float
    range_m: float = 24.0 * NM_TO_M
    scan_period_s: float = 10.0
    position_sigma_m: float = 120.0
    detection_probability: float = 0.9

    def contacts(
        self,
        plans: dict[int, WaypointPlan],
        t_start: float,
        t_end: float,
        rng: random.Random,
    ) -> list[RadarContact]:
        """All contacts over the window, one sweep per ``scan_period_s``."""
        out: list[RadarContact] = []
        t = t_start
        while t <= t_end:
            for mmsi, plan in plans.items():
                if not (plan.t_start <= t <= plan.t_end):
                    continue
                lat, lon = plan.position_at(t)
                if haversine_m(self.lat, self.lon, lat, lon) > self.range_m:
                    continue
                if rng.random() > self.detection_probability:
                    continue
                noisy_lat, noisy_lon = destination_point(
                    lat, lon,
                    rng.uniform(0.0, 360.0),
                    abs(rng.gauss(0.0, self.position_sigma_m)),
                )
                out.append(
                    RadarContact(
                        t=t, lat=noisy_lat, lon=noisy_lon,
                        site=self.name, truth_mmsi=mmsi,
                    )
                )
            t += self.scan_period_s
        return out


@dataclass
class LritReporter:
    """LRIT-style 6-hourly identified reporting for SOLAS-class vessels."""

    period_s: float = 21_600.0
    position_sigma_m: float = 500.0

    def reports(
        self,
        specs: dict[int, VesselSpec],
        plans: dict[int, WaypointPlan],
        rng: random.Random,
        until: float | None = None,
    ) -> list[LritReport]:
        """Reports over each plan, truncated at ``until`` when given
        (plans may describe voyages longer than the simulated window)."""
        out: list[LritReport] = []
        for mmsi, plan in plans.items():
            spec = specs.get(mmsi)
            if spec is not None and spec.class_b:
                continue  # small craft are not LRIT-fitted
            horizon = plan.t_end if until is None else min(until, plan.t_end)
            t = plan.t_start + rng.uniform(0.0, self.period_s)
            while t <= horizon:
                lat, lon = plan.position_at(t)
                noisy_lat, noisy_lon = destination_point(
                    lat, lon,
                    rng.uniform(0.0, 360.0),
                    abs(rng.gauss(0.0, self.position_sigma_m)),
                )
                out.append(LritReport(t=t, mmsi=mmsi, lat=noisy_lat, lon=noisy_lon))
                t += self.period_s
        out.sort(key=lambda r: r.t)
        return out
