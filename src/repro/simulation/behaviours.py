"""Behaviour models: turn a vessel archetype into a timed waypoint plan.

Each function returns a :class:`~repro.simulation.movement.WaypointPlan`
covering ``[t_start, t_start + duration_s]`` (padded with dwells when the
pattern finishes early).  Plans are deterministic given the ``rng``.
"""

import random

from repro.geo import destination_point, haversine_m
from repro.simulation.movement import Leg, WaypointPlan


def _pad_to(plan: WaypointPlan, t_end: float) -> WaypointPlan:
    """Extend a plan with a final dwell so it covers at least ``t_end``."""
    if plan.t_end >= t_end:
        return plan
    return plan.append_dwell(t_end - plan.t_end)


def _jittered_route(
    origin: tuple[float, float],
    dest: tuple[float, float],
    rng: random.Random,
    n_via: int = 2,
    jitter_deg: float = 0.15,
) -> list[tuple[float, float]]:
    """Waypoints from origin to destination with slight lateral scatter, so
    that different vessels on the same lane do not overlay exactly."""
    from repro.geo import interpolate_fraction

    waypoints = [origin]
    for i in range(1, n_via + 1):
        frac = i / (n_via + 1)
        lat, lon = interpolate_fraction(
            origin[0], origin[1], dest[0], dest[1], frac
        )
        waypoints.append(
            (
                lat + rng.uniform(-jitter_deg, jitter_deg),
                lon + rng.uniform(-jitter_deg, jitter_deg),
            )
        )
    waypoints.append(dest)
    return waypoints


def plan_transit(
    t_start: float,
    duration_s: float,
    origin: tuple[float, float],
    dest: tuple[float, float],
    speed_knots: float,
    rng: random.Random,
) -> WaypointPlan:
    """Port-to-port transit; arrives and stays moored if time remains.

    If the voyage is longer than ``duration_s`` the plan is simply the first
    part of it, which is fine — the scenario window is a slice of the world.
    """
    waypoints = _jittered_route(origin, dest, rng)
    plan = WaypointPlan.from_waypoints(t_start, waypoints, speed_knots)
    return _pad_to(plan, t_start + duration_s)


def plan_ferry(
    t_start: float,
    duration_s: float,
    port_a: tuple[float, float],
    port_b: tuple[float, float],
    speed_knots: float,
    rng: random.Random,
    turnaround_s: float = 1800.0,
) -> WaypointPlan:
    """Shuttle between two ports with dwell at each call."""
    legs: list[Leg] = []
    t = t_start
    here, there = port_a, port_b
    while t < t_start + duration_s:
        crossing = WaypointPlan.from_waypoints(
            t, _jittered_route(here, there, rng, n_via=1, jitter_deg=0.05),
            speed_knots,
        )
        legs.extend(crossing.legs)
        t = crossing.t_end
        arrival = crossing.legs[-1]
        legs.append(
            Leg(t, t + turnaround_s, arrival.lat2, arrival.lon2,
                arrival.lat2, arrival.lon2)
        )
        t += turnaround_s
        here, there = there, here
    return _pad_to(WaypointPlan(legs), t_start + duration_s)


def plan_fishing(
    t_start: float,
    duration_s: float,
    home_port: tuple[float, float],
    ground_center: tuple[float, float],
    rng: random.Random,
    transit_speed_knots: float = 9.0,
    trawl_speed_knots: float = 3.5,
    ground_radius_m: float = 15_000.0,
) -> WaypointPlan:
    """Steam to the fishing ground, trawl a random zig-zag, steam home.

    The slow erratic trawling phase is what the pattern-of-life model must
    learn as *normal* for fishing vessels (and what looks anomalous for a
    cargo ship) — see §3.1.
    """
    legs: list[Leg] = []
    outbound = WaypointPlan.from_waypoints(
        t_start, [home_port, ground_center], transit_speed_knots
    )
    legs.extend(outbound.legs)
    t = outbound.t_end
    # Reserve time to steam home.
    home_time = (
        haversine_m(*ground_center, *home_port)
        / (transit_speed_knots * 1852.0 / 3600.0)
    )
    trawl_until = t_start + duration_s - home_time - 600.0
    here = ground_center
    while t < trawl_until:
        bearing = rng.uniform(0.0, 360.0)
        distance = rng.uniform(0.25, 1.0) * ground_radius_m
        there = destination_point(here[0], here[1], bearing, distance)
        # Keep the walk inside the ground.
        if haversine_m(*there, *ground_center) > ground_radius_m:
            there = destination_point(
                ground_center[0], ground_center[1],
                rng.uniform(0.0, 360.0),
                rng.uniform(0.0, 0.8) * ground_radius_m,
            )
        tow = WaypointPlan.from_waypoints(t, [here, there], trawl_speed_knots)
        legs.extend(tow.legs)
        t = tow.t_end
        here = there
    inbound = WaypointPlan.from_waypoints(t, [here, home_port], transit_speed_knots)
    legs.extend(inbound.legs)
    return _pad_to(WaypointPlan(legs), t_start + duration_s)


def plan_loiter(
    t_start: float,
    duration_s: float,
    center: tuple[float, float],
    rng: random.Random,
    radius_m: float = 1_000.0,
    drift_speed_knots: float = 1.0,
) -> WaypointPlan:
    """Slow drift around a point — the kinematic signature of loitering."""
    legs: list[Leg] = []
    t = t_start
    here = center
    while t < t_start + duration_s:
        there = destination_point(
            center[0], center[1],
            rng.uniform(0.0, 360.0),
            rng.uniform(0.1, 1.0) * radius_m,
        )
        hop_len = haversine_m(*here, *there)
        if hop_len < 10.0:
            legs.append(Leg(t, t + 300.0, here[0], here[1], here[0], here[1]))
            t += 300.0
            continue
        hop = WaypointPlan.from_waypoints(t, [here, there], drift_speed_knots)
        legs.extend(hop.legs)
        t = hop.t_end
        here = there
    plan = WaypointPlan(legs)
    return _pad_to(plan, t_start + duration_s)


def plan_rendezvous_pair(
    t_start: float,
    duration_s: float,
    origin_a: tuple[float, float],
    origin_b: tuple[float, float],
    meeting_point: tuple[float, float],
    meeting_time: float,
    meeting_duration_s: float,
    rng: random.Random,
    speed_knots: float = 11.0,
) -> tuple[WaypointPlan, WaypointPlan, dict]:
    """Two vessels converge on a mid-sea point, loiter together, separate.

    Returns both plans plus a ground-truth record (used to score rendezvous
    detection in E3/E4).  Approach legs are timed so both vessels arrive at
    ``meeting_time``; speeds are derived per vessel.
    """

    def _approach(origin: tuple[float, float]) -> list[Leg]:
        distance = haversine_m(*origin, *meeting_point)
        travel_time = meeting_time - t_start
        if travel_time <= 0:
            raise ValueError("meeting_time must be after t_start")
        speed_mps = distance / travel_time
        if speed_mps > 15.0:
            raise ValueError(
                "meeting point unreachable in time "
                f"({speed_mps * 3600 / 1852:.1f} kn needed)"
            )
        plan = WaypointPlan.from_waypoints(
            t_start, [origin, meeting_point], speed_mps * 3600.0 / 1852.0
        )
        return list(plan.legs)

    plans = []
    for origin in (origin_a, origin_b):
        legs = _approach(origin)
        arrive = legs[-1].t_end
        # Hold position together (offset a few hundred metres apart).
        offset = destination_point(
            meeting_point[0], meeting_point[1], rng.uniform(0, 360), 150.0
        )
        legs.append(
            Leg(arrive, meeting_time + meeting_duration_s,
                legs[-1].lat2, legs[-1].lon2, legs[-1].lat2, legs[-1].lon2)
        )
        # Depart on a random bearing.
        depart_from = (legs[-1].lat2, legs[-1].lon2)
        away = destination_point(
            depart_from[0], depart_from[1], rng.uniform(0, 360), 60_000.0
        )
        depart = WaypointPlan.from_waypoints(
            legs[-1].t_end, [depart_from, away], speed_knots
        )
        legs.extend(depart.legs)
        plans.append(_pad_to(WaypointPlan(legs), t_start + duration_s))
        del offset  # approach offset kept implicit; contact distance ~0
    truth = {
        "type": "rendezvous",
        "t_start": meeting_time,
        "t_end": meeting_time + meeting_duration_s,
        "lat": meeting_point[0],
        "lon": meeting_point[1],
    }
    return plans[0], plans[1], truth
