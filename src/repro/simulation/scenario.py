"""Scenario orchestration: world + fleet + sensors → observable feed + truth.

A :class:`Scenario` is a deterministic recipe (seeded); :meth:`Scenario.run`
produces a :class:`ScenarioRun` bundling the observable data (NMEA
sentences, radar contacts, LRIT reports, weather provider) with the ground
truth (exact plans, vessel specs, injected events) that experiments score
against.

Two canned scenarios reproduce the paper's two settings:

- :func:`regional_scenario` — a Celtic Sea / Biscay surveillance theatre
  with coastal receivers, radar, fishing activity, rendezvous, dark ships
  and a spoofer (the §3 event-detection workload);
- :func:`global_scenario` — worldwide port-to-port traffic seen by a
  satellite constellation (the Figure 1 workload).
"""

import random
from dataclasses import dataclass, field

from repro.ais.types import ShipType
from repro.geo import destination_point, interpolate_fraction
from repro.simulation.behaviours import (
    plan_fishing,
    plan_rendezvous_pair,
    plan_transit,
    plan_ferry,
)
from repro.simulation.movement import WaypointPlan
from repro.simulation.receivers import (
    Observation,
    ReceiverNetwork,
    SatelliteConstellation,
    TerrestrialStation,
)
from repro.simulation.reporting import AisTransceiver, Transmission
from repro.simulation.sensors import LritReport, LritReporter, RadarContact, RadarSite
from repro.simulation.vessel import Behaviour, FleetBuilder, VesselSpec
from repro.simulation.weather import WeatherProvider
from repro.simulation.world import Port, REGIONAL_PORTS, WORLD_PORTS


@dataclass(frozen=True)
class TruthEvent:
    """Ground-truth record of an injected event, for scoring detectors."""

    kind: str
    mmsis: tuple[int, ...]
    t_start: float
    t_end: float
    lat: float
    lon: float


@dataclass
class ScenarioRun:
    """Everything a scenario produces, observable and truth."""

    #: Observable AIS feed (reception-time ordered).
    observations: list[Observation]
    #: Raw transmissions (pre-receiver), for coverage accounting.
    transmissions: list[Transmission]
    #: Radar contacts from coastal sites (empty for global runs).
    radar_contacts: list[RadarContact]
    #: LRIT reports.
    lrit_reports: list[LritReport]
    #: Ground-truth plans by MMSI.
    plans: dict[int, WaypointPlan]
    #: Vessel identities by MMSI.
    specs: dict[int, VesselSpec]
    #: Injected truth events.
    truth_events: list[TruthEvent]
    #: Weather provider for enrichment.
    weather: WeatherProvider
    t_start: float = 0.0
    t_end: float = 0.0

    @property
    def sentences(self) -> list[str]:
        """The raw NMEA feed in reception order."""
        return [obs.sentence for obs in self.observations]

    def dark_fraction(self, mmsi: int) -> float:
        """Fraction of the run during which a vessel was silent by design."""
        spec = self.specs[mmsi]
        if not spec.goes_dark:
            return 0.0
        total = self.t_end - self.t_start
        dark = sum(
            e.t_end - e.t_start
            for e in self.truth_events
            if e.kind == "dark" and mmsi in e.mmsis
        )
        return dark / total if total else 0.0


@dataclass
class Scenario:
    """A configurable scenario recipe.  Use the factory functions for the
    canned paper workloads."""

    name: str
    duration_s: float
    fleet: list[tuple[VesselSpec, WaypointPlan]]
    receivers: ReceiverNetwork
    radar_sites: list[RadarSite] = field(default_factory=list)
    truth_events: list[TruthEvent] = field(default_factory=list)
    weather_seed: int = 7
    seed: int = 0
    gps_sigma_m: float = 10.0
    static_error_rate: float = 0.05

    def run(self) -> ScenarioRun:
        """Simulate: schedule transmissions, apply receivers and sensors."""
        rng = random.Random(self.seed)
        transmissions: list[Transmission] = []
        plans: dict[int, WaypointPlan] = {}
        specs: dict[int, VesselSpec] = {}
        truth_events = list(self.truth_events)
        for spec, plan in self.fleet:
            plans[spec.mmsi] = plan
            specs[spec.mmsi] = spec
            transceiver = AisTransceiver(
                spec, plan, random.Random(rng.randint(0, 2**31)),
                gps_sigma_m=self.gps_sigma_m,
                static_error_rate=self.static_error_rate,
                horizon_s=self.duration_s,
            )
            transmissions.extend(transceiver.transmissions())
            for window in transceiver.dark_windows:
                lat, lon = plan.position_at(window.t_start)
                truth_events.append(
                    TruthEvent(
                        "dark", (spec.mmsi,), window.t_start, window.t_end,
                        lat, lon,
                    )
                )
            for episode in transceiver.spoof_episodes:
                lat, lon = plan.position_at(episode.t_start)
                truth_events.append(
                    TruthEvent(
                        "spoof", (spec.mmsi,), episode.t_start, episode.t_end,
                        lat, lon,
                    )
                )
        transmissions.sort(key=lambda tx: tx.t)
        observations = self.receivers.observe(transmissions)
        radar_contacts: list[RadarContact] = []
        for site in self.radar_sites:
            radar_contacts.extend(
                site.contacts(plans, 0.0, self.duration_s,
                              random.Random(rng.randint(0, 2**31)))
            )
        radar_contacts.sort(key=lambda c: c.t)
        lrit = LritReporter().reports(
            specs, plans, random.Random(rng.randint(0, 2**31)),
            until=self.duration_s,
        )
        return ScenarioRun(
            observations=observations,
            transmissions=transmissions,
            radar_contacts=radar_contacts,
            lrit_reports=lrit,
            plans=plans,
            specs=specs,
            truth_events=truth_events,
            weather=WeatherProvider(seed=self.weather_seed),
            t_start=0.0,
            t_end=self.duration_s,
        )


def _offshore_point(
    port_a: Port, port_b: Port, fraction: float, rng: random.Random
) -> tuple[float, float]:
    lat, lon = interpolate_fraction(
        port_a.lat, port_a.lon, port_b.lat, port_b.lon, fraction
    )
    return lat + rng.uniform(-0.2, 0.2), lon + rng.uniform(-0.2, 0.2)


def regional_scenario(
    n_vessels: int = 60,
    duration_s: float = 6 * 3600.0,
    seed: int = 42,
    dark_ship_fraction: float = 0.27,
    include_spoofer: bool = True,
    n_rendezvous_pairs: int = 2,
) -> Scenario:
    """The surveillance-theatre scenario (Celtic Sea / Bay of Biscay).

    Defaults follow the paper's numbers: 27% of ships go dark part of the
    time [43]; ~5% static-message error rate is the transceiver default.
    """
    rng = random.Random(seed)
    builder = FleetBuilder(seed)
    ports = REGIONAL_PORTS
    fleet: list[tuple[VesselSpec, WaypointPlan]] = []
    truth_events: list[TruthEvent] = []

    def pick_two_ports() -> tuple[Port, Port]:
        a, b = rng.sample(ports, 2)
        return a, b

    n_special = 2 * n_rendezvous_pairs + (1 if include_spoofer else 0)
    n_regular = max(0, n_vessels - n_special)
    # Behaviour mix for regular traffic.
    for i in range(n_regular):
        roll = rng.random()
        goes_dark = rng.random() < dark_ship_fraction
        if roll < 0.45:
            a, b = pick_two_ports()
            spec = builder.build(
                rng.choice([ShipType.CARGO, ShipType.CARGO, ShipType.TANKER]),
                Behaviour.TRANSIT, goes_dark=goes_dark, destination=b.name,
            )
            plan = plan_transit(
                0.0, duration_s, a.position, b.position,
                rng.uniform(10.0, 18.0), rng,
            )
        elif roll < 0.65:
            a, b = pick_two_ports()
            spec = builder.build(
                ShipType.PASSENGER, Behaviour.FERRY,
                goes_dark=False, destination=b.name,
            )
            plan = plan_ferry(
                0.0, duration_s, a.position, b.position,
                rng.uniform(15.0, 22.0), rng,
            )
        else:
            home = rng.choice(ports)
            ground = destination_point(
                home.lat, home.lon, rng.uniform(200.0, 340.0),
                rng.uniform(30_000.0, 80_000.0),
            )
            spec = builder.build(
                ShipType.FISHING, Behaviour.FISHING, goes_dark=goes_dark,
                destination=home.name,
            )
            plan = plan_fishing(0.0, duration_s, home.position, ground, rng)
        fleet.append((spec, plan))

    # Rendezvous pairs meet offshore mid-window.
    for pair_index in range(n_rendezvous_pairs):
        a, b = pick_two_ports()
        meeting_time = duration_s * rng.uniform(0.35, 0.55)
        meeting_point = _offshore_point(a, b, 0.5, rng)
        spec1 = builder.build(ShipType.CARGO, Behaviour.RENDEZVOUS, goes_dark=False)
        spec2 = builder.build(ShipType.FISHING, Behaviour.RENDEZVOUS, goes_dark=False)
        # Origins close enough to reach the point in time at sane speed.
        origin1 = destination_point(
            meeting_point[0], meeting_point[1], rng.uniform(0, 360),
            meeting_time * 5.0,  # ≈10 kn in m
        )
        origin2 = destination_point(
            meeting_point[0], meeting_point[1], rng.uniform(0, 360),
            meeting_time * 4.0,
        )
        plan1, plan2, truth = plan_rendezvous_pair(
            0.0, duration_s, origin1, origin2, meeting_point,
            meeting_time, meeting_duration_s=rng.uniform(1200.0, 2400.0),
            rng=rng,
        )
        fleet.append((spec1, plan1))
        fleet.append((spec2, plan2))
        truth_events.append(
            TruthEvent(
                "rendezvous", (spec1.mmsi, spec2.mmsi),
                truth["t_start"], truth["t_end"], truth["lat"], truth["lon"],
            )
        )

    if include_spoofer:
        a, b = pick_two_ports()
        spec = builder.build(ShipType.CARGO, Behaviour.SPOOFER, destination=b.name)
        plan = plan_transit(
            0.0, duration_s, a.position, b.position, rng.uniform(11.0, 15.0), rng
        )
        fleet.append((spec, plan))

    stations = [
        TerrestrialStation(f"STA-{port.name}", port.lat, port.lon)
        for port in ports
    ]
    receivers = ReceiverNetwork(
        stations, SatelliteConstellation(), seed=seed + 1
    )
    radar_sites = [
        RadarSite("RADAR-BREST", 48.38, -4.49),
        RadarSite("RADAR-CHERBOURG", 49.65, -1.62),
    ]
    return Scenario(
        name="regional",
        duration_s=duration_s,
        fleet=fleet,
        receivers=receivers,
        radar_sites=radar_sites,
        truth_events=truth_events,
        seed=seed,
    )


def global_scenario(
    n_vessels: int = 400,
    duration_s: float = 24 * 3600.0,
    seed: int = 42,
) -> Scenario:
    """Worldwide traffic observed by satellite — the Figure 1 workload.

    Voyages are sampled between world ports with probability proportional
    to port weights, so the dense Asia-Europe corridor emerges naturally.
    """
    rng = random.Random(seed)
    builder = FleetBuilder(seed)
    weights = [p.weight for p in WORLD_PORTS]
    fleet: list[tuple[VesselSpec, WaypointPlan]] = []
    for _ in range(n_vessels):
        a, b = rng.choices(WORLD_PORTS, weights=weights, k=2)
        while b.name == a.name:
            b = rng.choices(WORLD_PORTS, weights=weights, k=1)[0]
        ship_type = rng.choices(
            [ShipType.CARGO, ShipType.TANKER, ShipType.PASSENGER],
            weights=[0.62, 0.28, 0.10],
        )[0]
        spec = builder.build(ship_type, Behaviour.TRANSIT, destination=b.name)
        # Start mid-voyage so the day's snapshot covers open ocean.
        start_fraction = rng.uniform(0.0, 0.8)
        origin = interpolate_fraction(a.lat, a.lon, b.lat, b.lon, start_fraction)
        plan = plan_transit(
            0.0, duration_s, origin, b.position, rng.uniform(11.0, 20.0), rng
        )
        fleet.append((spec, plan))
    receivers = ReceiverNetwork(
        stations=[], satellite=SatelliteConstellation(), seed=seed + 1
    )
    return Scenario(
        name="global",
        duration_s=duration_s,
        fleet=fleet,
        receivers=receivers,
        seed=seed,
    )
