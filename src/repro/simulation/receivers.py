"""Receiver model: which transmissions are actually observed, and when.

Reproduces the coverage characteristics the paper describes in §1:
terrestrial stations hear reliably but only ~40 nm offshore; satellites
cover the open ocean but with revisit gaps, message collisions in dense
cells, and minutes-scale delivery latency (the "data sparseness, latency"
of §1).  The output of the network is the observable feed: time-stamped
NMEA sentences tagged with the receiving source.
"""

import random
from dataclasses import dataclass

from repro.ais.encoder import encode_sentences
from repro.geo import NM_TO_M, haversine_m
from repro.simulation.reporting import Transmission

#: Default terrestrial VHF horizon.
TERRESTRIAL_RANGE_M = 40.0 * NM_TO_M


@dataclass(frozen=True)
class Observation:
    """A received sentence: reception epoch, raw NMEA, and provenance."""

    t_received: float
    sentence: str
    source: str
    mmsi: int
    t_transmitted: float


@dataclass(frozen=True)
class TerrestrialStation:
    """Coastal AIS base station with a fixed reception radius."""

    name: str
    lat: float
    lon: float
    range_m: float = TERRESTRIAL_RANGE_M
    #: Per-message loss (interference, antenna shadowing).
    loss_probability: float = 0.02
    latency_s: float = 1.0

    def hears(self, lat: float, lon: float) -> bool:
        return haversine_m(self.lat, self.lon, lat, lon) <= self.range_m


@dataclass
class SatelliteConstellation:
    """Polar LEO constellation abstracted as periodic coverage windows.

    Any point on Earth is visible for ``pass_duration_s`` out of every
    ``revisit_period_s``, with the window phase varying by longitude (the
    orbit sweeps westwards).  Within a pass, messages are decoded with a
    probability that decays with local traffic density — the well-known
    satellite-AIS collision problem.
    """

    revisit_period_s: float = 5400.0
    pass_duration_s: float = 600.0
    base_detection_probability: float = 0.85
    #: Detection probability multiplier halves per this many vessels in cell.
    collision_halving_density: float = 60.0
    latency_s: float = 300.0

    def in_pass(self, t: float, lon: float) -> bool:
        phase = ((lon + 180.0) / 360.0) * self.revisit_period_s
        return (t + phase) % self.revisit_period_s < self.pass_duration_s

    def detection_probability(self, local_density: int) -> float:
        factor = 0.5 ** (local_density / self.collision_halving_density)
        return self.base_detection_probability * factor


class ReceiverNetwork:
    """Terrestrial stations + optional satellite constellation."""

    def __init__(
        self,
        stations: list[TerrestrialStation],
        satellite: SatelliteConstellation | None = None,
        seed: int = 0,
    ) -> None:
        self.stations = stations
        self.satellite = satellite
        self._rng = random.Random(seed)

    def _density_near(
        self, lat: float, lon: float, density_grid: dict[tuple[int, int], int]
    ) -> int:
        return density_grid.get((int(lat // 2), int(lon // 2)), 0)

    def observe(
        self, transmissions: list[Transmission]
    ) -> list[Observation]:
        """Run every transmission through the coverage model.

        Returns observations sorted by reception time.  A transmission heard
        by several terrestrial stations yields one observation (the network
        deduplicates, as coastal networks do); satellite reception is
        evaluated only when no terrestrial station heard the message.
        """
        density_grid: dict[tuple[int, int], int] = {}
        for tx in transmissions:
            key = (int(tx.lat // 2), int(tx.lon // 2))
            density_grid[key] = density_grid.get(key, 0) + 1
        # Convert message counts to a rough "vessels in cell" proxy by
        # normalising with the mean messages-per-vessel rate.
        if transmissions:
            mmsis_per_cell: dict[tuple[int, int], set[int]] = {}
            for tx in transmissions:
                key = (int(tx.lat // 2), int(tx.lon // 2))
                mmsis_per_cell.setdefault(key, set()).add(tx.message.mmsi)
            density_grid = {k: len(v) for k, v in mmsis_per_cell.items()}

        observations: list[Observation] = []
        for tx in transmissions:
            heard_by: TerrestrialStation | None = None
            for station in self.stations:
                if station.hears(tx.lat, tx.lon):
                    heard_by = station
                    break
            if heard_by is not None:
                if self._rng.random() < heard_by.loss_probability:
                    continue
                self._emit(observations, tx, heard_by.name, heard_by.latency_s)
                continue
            if self.satellite is not None and self.satellite.in_pass(tx.t, tx.lon):
                density = self._density_near(tx.lat, tx.lon, density_grid)
                if self._rng.random() < self.satellite.detection_probability(density):
                    jitter = self._rng.uniform(0.0, self.satellite.latency_s)
                    self._emit(observations, tx, "satellite",
                               self.satellite.latency_s + jitter)
        observations.sort(key=lambda obs: obs.t_received)
        return observations

    def _emit(
        self,
        observations: list[Observation],
        tx: Transmission,
        source: str,
        latency_s: float,
    ) -> None:
        for sentence in encode_sentences(
            tx.message, sequence_id=self._rng.randint(0, 9)
        ):
            observations.append(
                Observation(
                    t_received=tx.t + latency_s,
                    sentence=sentence,
                    source=source,
                    mmsi=tx.message.mmsi,
                    t_transmitted=tx.t,
                )
            )

    def coverage_fraction(
        self, transmissions: list[Transmission], observations: list[Observation]
    ) -> float:
        """Fraction of transmissions that produced at least one observation."""
        if not transmissions:
            return 0.0
        seen = {(o.mmsi, round(o.t_transmitted, 3)) for o in observations}
        heard = sum(
            1 for tx in transmissions
            if (tx.message.mmsi, round(tx.t, 3)) in seen
        )
        return heard / len(transmissions)
