"""Static world geography: ports and shipping lanes.

Port positions approximate real major ports so that the Figure 1
reproduction shows the familiar global traffic picture (dense Europe-Asia
corridor, trans-Pacific and trans-Atlantic lanes), but no external chart
data is used — this table *is* the world model.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Port:
    name: str
    lat: float
    lon: float
    #: Relative traffic weight used when sampling voyages for the global
    #: scenario; roughly proportional to real container throughput.
    weight: float = 1.0
    country: str = ""

    @property
    def position(self) -> tuple[float, float]:
        return self.lat, self.lon


#: Major world ports for the global (Figure 1) scenario.
WORLD_PORTS: list[Port] = [
    Port("SHANGHAI", 31.23, 121.49, 10.0, "CN"),
    Port("SINGAPORE", 1.26, 103.84, 9.0, "SG"),
    Port("NINGBO", 29.87, 121.55, 7.0, "CN"),
    Port("SHENZHEN", 22.54, 114.06, 6.5, "CN"),
    Port("BUSAN", 35.10, 129.04, 5.5, "KR"),
    Port("HONG KONG", 22.30, 114.17, 5.0, "HK"),
    Port("QINGDAO", 36.07, 120.38, 4.5, "CN"),
    Port("TOKYO", 35.61, 139.79, 3.5, "JP"),
    Port("KAOHSIUNG", 22.61, 120.28, 3.0, "TW"),
    Port("PORT KLANG", 3.00, 101.39, 3.0, "MY"),
    Port("COLOMBO", 6.95, 79.85, 2.5, "LK"),
    Port("MUMBAI", 18.95, 72.84, 2.5, "IN"),
    Port("DUBAI", 25.27, 55.30, 4.0, "AE"),
    Port("SUEZ", 29.97, 32.55, 3.5, "EG"),
    Port("PIRAEUS", 37.94, 23.64, 2.5, "GR"),
    Port("VALENCIA", 39.44, -0.32, 2.0, "ES"),
    Port("ALGECIRAS", 36.13, -5.45, 2.5, "ES"),
    Port("TANGER MED", 35.88, -5.50, 2.0, "MA"),
    Port("MARSEILLE", 43.31, 5.35, 1.5, "FR"),
    Port("GENOA", 44.40, 8.93, 1.5, "IT"),
    Port("ROTTERDAM", 51.95, 4.14, 6.0, "NL"),
    Port("ANTWERP", 51.28, 4.30, 5.0, "BE"),
    Port("HAMBURG", 53.54, 9.97, 4.0, "DE"),
    Port("FELIXSTOWE", 51.95, 1.31, 2.5, "GB"),
    Port("LE HAVRE", 49.48, 0.11, 2.0, "FR"),
    Port("BREST", 48.38, -4.49, 1.0, "FR"),
    Port("BILBAO", 43.35, -3.03, 1.0, "ES"),
    Port("LISBON", 38.70, -9.16, 1.2, "PT"),
    Port("NEW YORK", 40.67, -74.04, 4.0, "US"),
    Port("SAVANNAH", 32.08, -81.09, 2.5, "US"),
    Port("HOUSTON", 29.73, -95.01, 2.5, "US"),
    Port("LOS ANGELES", 33.73, -118.26, 5.0, "US"),
    Port("OAKLAND", 37.80, -122.32, 2.0, "US"),
    Port("VANCOUVER", 49.29, -123.11, 2.0, "CA"),
    Port("PANAMA", 8.95, -79.56, 3.0, "PA"),
    Port("SANTOS", -23.98, -46.30, 2.5, "BR"),
    Port("BUENOS AIRES", -34.60, -58.37, 1.5, "AR"),
    Port("CAPE TOWN", -33.91, 18.43, 1.5, "ZA"),
    Port("DURBAN", -29.87, 31.03, 1.8, "ZA"),
    Port("LAGOS", 6.44, 3.40, 1.5, "NG"),
    Port("MOMBASA", -4.07, 39.67, 1.2, "KE"),
    Port("SYDNEY", -33.86, 151.20, 1.8, "AU"),
    Port("MELBOURNE", -37.83, 144.92, 1.5, "AU"),
    Port("AUCKLAND", -36.84, 174.77, 1.0, "NZ"),
    Port("HONOLULU", 21.31, -157.87, 1.0, "US"),
    Port("ANCHORAGE", 61.24, -149.89, 0.8, "US"),
    Port("REYKJAVIK", 64.15, -21.94, 0.6, "IS"),
    Port("MURMANSK", 68.97, 33.05, 0.8, "RU"),
    Port("VLADIVOSTOK", 43.11, 131.89, 1.2, "RU"),
    Port("SAINT PETERSBURG", 59.93, 30.25, 1.5, "RU"),
]

#: The regional (Celtic Sea / Biscay) scenario ports — the home waters of
#: the paper's first-author institute, a realistic surveillance theatre.
REGIONAL_PORTS: list[Port] = [
    Port("BREST", 48.38, -4.49, 2.0, "FR"),
    Port("ROSCOFF", 48.72, -3.97, 1.0, "FR"),
    Port("CHERBOURG", 49.65, -1.62, 1.5, "FR"),
    Port("LE HAVRE", 49.48, 0.11, 2.5, "FR"),
    Port("SAINT-NAZAIRE", 47.27, -2.20, 1.5, "FR"),
    Port("LA ROCHELLE", 46.15, -1.22, 1.0, "FR"),
    Port("BILBAO", 43.35, -3.03, 1.5, "ES"),
    Port("CORK", 51.85, -8.29, 1.0, "IE"),
    Port("PLYMOUTH", 50.36, -4.14, 1.0, "GB"),
    Port("SOUTHAMPTON", 50.90, -1.40, 2.0, "GB"),
]

_PORT_INDEX = {p.name: p for p in WORLD_PORTS + REGIONAL_PORTS}


def port_by_name(name: str) -> Port:
    """Look up a port in either catalogue; raises ``KeyError`` if absent."""
    return _PORT_INDEX[name.upper()]
