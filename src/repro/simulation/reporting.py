"""AIS transceiver model: when and what a vessel transmits.

Reporting cadence follows ITU-R M.1371 (class A: 2-10 s underway by speed,
3 min at anchor; class B: 30 s underway; static data every 6 min).  The
transceiver also injects the *veracity* problems the paper centres on:

- GPS noise (~10 m, the accuracy the paper quotes in §2.5);
- deliberate dark periods (``goes_dark`` vessels, Windward's 27%/10% [43]);
- position spoofing episodes (offset GPS, DeAIS-style [36]);
- static-data corruption at a configurable rate ([44]'s ~5%).
"""

import random
from dataclasses import dataclass

from repro.ais.types import (
    AisMessage,
    ClassBPositionReport,
    NavigationStatus,
    PositionReport,
    StaticDataReport,
    StaticVoyageData,
)
from repro.geo import destination_point
from repro.simulation.movement import WaypointPlan
from repro.simulation.vessel import Behaviour, VesselSpec

#: Static/voyage broadcast period (type 5 / type 24), seconds.
STATIC_PERIOD_S = 360.0


def reporting_interval_s(sog_knots: float, underway: bool, class_b: bool) -> float:
    """Position-report interval per ITU-R M.1371."""
    if class_b:
        return 30.0 if sog_knots > 2.0 else 180.0
    if not underway:
        return 180.0
    if sog_knots > 23.0:
        return 2.0
    if sog_knots > 14.0:
        return 6.0
    return 10.0


@dataclass(frozen=True)
class Transmission:
    """One message leaving a ship's antenna at ``t`` from ``(lat, lon)``.

    ``lat``/``lon`` are the *true* position (used by the receiver model for
    propagation); the message payload may differ when spoofing.
    """

    t: float
    lat: float
    lon: float
    message: AisMessage


@dataclass
class SpoofEpisode:
    """During [t_start, t_end] the reported position is offset."""

    t_start: float
    t_end: float
    offset_bearing_deg: float
    offset_m: float


@dataclass
class DarkWindow:
    t_start: float
    t_end: float


class AisTransceiver:
    """Generates the full transmission schedule for one vessel."""

    def __init__(
        self,
        spec: VesselSpec,
        plan: WaypointPlan,
        rng: random.Random,
        gps_sigma_m: float = 10.0,
        static_error_rate: float = 0.05,
        horizon_s: float | None = None,
    ) -> None:
        self.spec = spec
        self.plan = plan
        self._rng = rng
        self.gps_sigma_m = gps_sigma_m
        self.static_error_rate = static_error_rate
        #: End of the simulated window; deception scheduling and the
        #: default transmission schedule stay inside it even when the plan
        #: describes a longer voyage.
        self.horizon_s = (
            plan.t_end if horizon_s is None else min(horizon_s, plan.t_end)
        )
        self.dark_windows: list[DarkWindow] = []
        self.spoof_episodes: list[SpoofEpisode] = []
        if spec.goes_dark:
            self._schedule_dark_windows()
        if spec.behaviour is Behaviour.SPOOFER:
            self._schedule_spoofing()

    # -- deception scheduling ---------------------------------------------

    #: Deliberate silences shorter than this are not scheduled: real
    #: "going dark" episodes (Windward [43]) last tens of minutes to hours.
    MIN_DARK_WINDOW_S = 1500.0

    def _schedule_dark_windows(self) -> None:
        """One or two silent windows totalling 10-30% of the run."""
        duration = self.horizon_s - self.plan.t_start
        dark_total = duration * self._rng.uniform(0.10, 0.30)
        n_windows = self._rng.randint(1, 2)
        if n_windows * self.MIN_DARK_WINDOW_S > 0.35 * duration:
            n_windows = 1
        w = max(dark_total / n_windows, self.MIN_DARK_WINDOW_S)
        w = min(w, 0.35 * duration)
        for _ in range(n_windows):
            start = self.plan.t_start + self._rng.uniform(
                0.1 * duration, max(0.1 * duration, 0.9 * duration - w)
            )
            self.dark_windows.append(DarkWindow(start, start + w))

    def _schedule_spoofing(self) -> None:
        duration = self.horizon_s - self.plan.t_start
        start = self.plan.t_start + self._rng.uniform(0.2, 0.6) * duration
        self.spoof_episodes.append(
            SpoofEpisode(
                t_start=start,
                t_end=start + self._rng.uniform(0.1, 0.25) * duration,
                offset_bearing_deg=self._rng.uniform(0.0, 360.0),
                offset_m=self._rng.uniform(20_000.0, 60_000.0),
            )
        )

    # -- helpers ------------------------------------------------------------

    def _is_dark(self, t: float) -> bool:
        return any(w.t_start <= t <= w.t_end for w in self.dark_windows)

    def _reported_position(self, t: float, lat: float, lon: float) -> tuple[float, float]:
        for episode in self.spoof_episodes:
            if episode.t_start <= t <= episode.t_end:
                lat, lon = destination_point(
                    lat, lon, episode.offset_bearing_deg, episode.offset_m
                )
                break
        if self.gps_sigma_m > 0:
            noise_bearing = self._rng.uniform(0.0, 360.0)
            noise_dist = abs(self._rng.gauss(0.0, self.gps_sigma_m))
            lat, lon = destination_point(lat, lon, noise_bearing, noise_dist)
        return lat, lon

    def _nav_status(self, underway: bool) -> NavigationStatus:
        if not underway:
            return NavigationStatus.AT_ANCHOR
        if self.spec.behaviour is Behaviour.FISHING:
            return NavigationStatus.ENGAGED_IN_FISHING
        return NavigationStatus.UNDER_WAY_ENGINE

    def _position_message(self, t: float) -> AisMessage:
        state = self.plan.kinematics_at(t)
        lat, lon = self._reported_position(t, state.lat, state.lon)
        heading = state.cog_deg + self._rng.gauss(0.0, 2.0)
        if self.spec.class_b:
            return ClassBPositionReport(
                mmsi=self.spec.mmsi,
                lat=lat,
                lon=lon,
                sog_knots=max(0.0, state.sog_knots + self._rng.gauss(0.0, 0.1)),
                cog_deg=state.cog_deg % 360.0,
                heading_deg=heading % 360.0,
                timestamp_s=int(t) % 60,
            )
        return PositionReport(
            mmsi=self.spec.mmsi,
            lat=lat,
            lon=lon,
            sog_knots=max(0.0, state.sog_knots + self._rng.gauss(0.0, 0.1)),
            cog_deg=state.cog_deg % 360.0,
            heading_deg=heading % 360.0,
            nav_status=self._nav_status(state.underway),
            rot_deg_per_min=0.0,
            timestamp_s=int(t) % 60,
        )

    def _corrupt_static(self, msg: StaticVoyageData) -> StaticVoyageData:
        """Apply one of the error modes observed in real static data [44]."""
        mode = self._rng.choice(
            ["blank_name", "bad_imo", "zero_dims", "blank_callsign", "bad_type"]
        )
        fields = dict(msg.__dict__)
        if mode == "blank_name":
            fields["shipname"] = ""
        elif mode == "bad_imo":
            fields["imo"] = self._rng.randint(1_000_000, 9_999_999)
        elif mode == "zero_dims":
            fields["to_bow_m"] = 0
            fields["to_stern_m"] = 0
        elif mode == "blank_callsign":
            fields["callsign"] = ""
        elif mode == "bad_type":
            fields["ship_type_code"] = 0
        return StaticVoyageData(**fields)

    def _static_message(self, part_toggle: int) -> AisMessage:
        spec = self.spec
        if spec.class_b:
            if part_toggle % 2 == 0:
                return StaticDataReport(mmsi=spec.mmsi, part=0, shipname=spec.name)
            return StaticDataReport(
                mmsi=spec.mmsi,
                part=1,
                ship_type_code=int(spec.ship_type),
                vendor_id="REPRO",
                callsign=spec.callsign,
                to_bow_m=spec.length_m // 2,
                to_stern_m=spec.length_m - spec.length_m // 2,
                to_port_m=spec.beam_m // 2,
                to_starboard_m=spec.beam_m - spec.beam_m // 2,
            )
        msg = StaticVoyageData(
            mmsi=spec.mmsi,
            imo=spec.imo,
            callsign=spec.callsign,
            shipname=spec.name,
            ship_type_code=int(spec.ship_type),
            to_bow_m=spec.length_m // 2,
            to_stern_m=spec.length_m - spec.length_m // 2,
            to_port_m=spec.beam_m // 2,
            to_starboard_m=spec.beam_m - spec.beam_m // 2,
            eta_month=6,
            eta_day=15,
            eta_hour=12,
            eta_minute=0,
            draught_m=spec.draught_m,
            destination=spec.destination or "AT SEA",
        )
        if self._rng.random() < self.static_error_rate:
            msg = self._corrupt_static(msg)
        return msg

    # -- schedule -----------------------------------------------------------

    def transmissions(self, until: float | None = None) -> list[Transmission]:
        """The vessel's transmission schedule, time-ordered.

        ``until`` truncates the schedule at a scenario horizon: plans may
        describe multi-day voyages, but only the simulated window emits.
        """
        out: list[Transmission] = []
        horizon = self.horizon_s if until is None else min(until, self.plan.t_end)
        t = self.plan.t_start + self._rng.uniform(0.0, 10.0)
        static_due = self.plan.t_start + self._rng.uniform(0.0, STATIC_PERIOD_S)
        part_toggle = 0
        while t <= horizon:
            state = self.plan.kinematics_at(t)
            if not self._is_dark(t):
                out.append(
                    Transmission(t, state.lat, state.lon, self._position_message(t))
                )
                if t >= static_due:
                    out.append(
                        Transmission(
                            t, state.lat, state.lon,
                            self._static_message(part_toggle),
                        )
                    )
                    part_toggle += 1
                    static_due = t + STATIC_PERIOD_S
            t += reporting_interval_s(
                state.sog_knots, state.underway, self.spec.class_b
            )
        return out
