"""Pattern-of-life normalcy model and anomaly scoring.

§4: "an explicit consideration of context provides an understanding of
normalcy as a reference for anomaly detection (i.e., pattern-of-life)".
The model is a spatial grid; each cell accumulates histograms of observed
speed and course (optionally per ship type) from historical traffic.
Scoring a fix returns a surprisal-like anomaly score: how unlikely are
this speed and course *here*, given what normally happens here.

Deliberately simple and fully inspectable — the paper asks for models
whose residuals an operator can reason about (§3.2 "user-guided model
building and validation"), not a black box.
"""

import math
from dataclasses import dataclass, field

from repro.events.base import Event, EventKind
from repro.geo.constants import METERS_PER_DEG_LAT
from repro.spatial import CellGrid, geohash_counts
from repro.trajectory.points import Trajectory


@dataclass(frozen=True)
class PolConfig:
    #: Cell height in degrees of latitude; cells keep this *metric* size
    #: everywhere (latitude-aware longitude splitting), so a cell covers
    #: the same patch of sea at 75°N as at the equator.
    cell_deg: float = 0.2
    speed_bin_knots: float = 2.0
    course_bin_deg: float = 30.0
    #: Laplace smoothing mass per bin when scoring.
    smoothing: float = 1.0
    #: Cells with fewer observations than this score neutrally (0.5):
    #: absence of history is not evidence of anomaly.
    min_cell_observations: int = 20


@dataclass
class _CellStats:
    n: int = 0
    speed_hist: dict[int, int] = field(default_factory=dict)
    course_hist: dict[int, int] = field(default_factory=dict)


class PatternOfLife:
    """Grid-based normalcy model: train on history, score live fixes."""

    def __init__(self, config: PolConfig | None = None) -> None:
        self.config = config or PolConfig()
        #: Latitude-aware, antimeridian-wrapped cell keying: a vessel
        #: loitering at lon ±180° trains ONE history, and cells keep
        #: their metric size at high latitude instead of shrinking.
        self._grid = CellGrid(
            cell_size_m=self.config.cell_deg * METERS_PER_DEG_LAT
        )
        self._cells: dict[tuple[int, int], _CellStats] = {}
        self.n_training_points = 0

    # -- training ----------------------------------------------------------

    def _key(self, lat: float, lon: float) -> tuple[int, int]:
        return self._grid.key(lat, lon)

    def _bins(self, sog_knots: float, cog_deg: float) -> tuple[int, int]:
        # Negative or non-finite SOG (sensor garbage, AIS "not available"
        # sentinels mapped carelessly) clamps to bin 0 instead of minting
        # negative bins that silently pollute the histogram.
        sog = sog_knots if math.isfinite(sog_knots) else 0.0
        cog = cog_deg if math.isfinite(cog_deg) else 0.0
        return (
            int(max(0.0, sog) // self.config.speed_bin_knots),
            int((cog % 360.0) // self.config.course_bin_deg),
        )

    def observe(self, lat: float, lon: float, sog_knots: float, cog_deg: float) -> None:
        cell = self._cells.setdefault(self._key(lat, lon), _CellStats())
        speed_bin, course_bin = self._bins(sog_knots, cog_deg)
        cell.n += 1
        cell.speed_hist[speed_bin] = cell.speed_hist.get(speed_bin, 0) + 1
        cell.course_hist[course_bin] = cell.course_hist.get(course_bin, 0) + 1
        self.n_training_points += 1

    def train(self, trajectories: list[Trajectory]) -> None:
        for trajectory in trajectories:
            for point in trajectory:
                if point.sog_knots is None or point.cog_deg is None:
                    continue
                self.observe(point.lat, point.lon, point.sog_knots, point.cog_deg)

    # -- scoring ------------------------------------------------------------

    def anomaly_score(
        self, lat: float, lon: float, sog_knots: float, cog_deg: float
    ) -> float:
        """Score in [0, 1): 0 = perfectly ordinary, →1 = never seen here.

        Computed as ``1 - sqrt(p_speed * p_course)`` with Laplace-smoothed
        bin probabilities; unseen cells return the neutral 0.5.
        """
        cell = self._cells.get(self._key(lat, lon))
        config = self.config
        if cell is None or cell.n < config.min_cell_observations:
            return 0.5
        speed_bin, course_bin = self._bins(sog_knots, cog_deg)
        n_speed_bins = max(len(cell.speed_hist), 1)
        n_course_bins = max(len(cell.course_hist), 1)
        p_speed = (cell.speed_hist.get(speed_bin, 0) + config.smoothing) / (
            cell.n + config.smoothing * (n_speed_bins + 1)
        )
        p_course = (cell.course_hist.get(course_bin, 0) + config.smoothing) / (
            cell.n + config.smoothing * (n_course_bins + 1)
        )
        # Normalise by the modal probability so "as common as the most
        # common behaviour" scores 0.
        p_speed_mode = (max(cell.speed_hist.values()) + config.smoothing) / (
            cell.n + config.smoothing * (n_speed_bins + 1)
        )
        p_course_mode = (max(cell.course_hist.values()) + config.smoothing) / (
            cell.n + config.smoothing * (n_course_bins + 1)
        )
        ratio = math.sqrt(
            (p_speed / p_speed_mode) * (p_course / p_course_mode)
        )
        return max(0.0, 1.0 - min(1.0, ratio))

    def detect_anomalies(
        self,
        trajectory: Trajectory,
        threshold: float = 0.85,
        min_run: int = 3,
    ) -> list[Event]:
        """Sustained high-anomaly episodes on a track."""
        events: list[Event] = []
        run: list = []

        def flush() -> None:
            if len(run) < min_run:
                run.clear()
                return
            mid = run[len(run) // 2]
            mean_score = sum(s for __, s in run) / len(run)
            events.append(
                Event(
                    kind=EventKind.POL_ANOMALY,
                    t_start=run[0][0].t,
                    t_end=run[-1][0].t,
                    mmsis=(trajectory.mmsi,),
                    lat=mid[0].lat,
                    lon=mid[0].lon,
                    confidence=mean_score,
                    details={"mean_score": mean_score, "n_points": len(run)},
                )
            )
            run.clear()

        for point in trajectory:
            if point.sog_knots is None or point.cog_deg is None:
                continue
            score = self.anomaly_score(
                point.lat, point.lon, point.sog_knots, point.cog_deg
            )
            if score >= threshold:
                run.append((point, score))
            else:
                flush()
        flush()
        return events

    @property
    def n_cells(self) -> int:
        return len(self._cells)

    def cell_counts_by_geohash(self, precision: int | None = None) -> dict[str, int]:
        """Training-observation counts per cell, named as geohash strings.

        The export format for exchanging normalcy coverage with external
        systems; see :mod:`repro.spatial.cells`.
        """
        return geohash_counts(
            self._grid,
            ((key, stats.n) for key, stats in self._cells.items()),
            precision,
        )
