"""Spoofing indicators: kinematic impossibilities and identity clashes.

§1: "AIS messages are vulnerable to manipulation ... deliberate
falsifications and spoofing, such as identity fraud, obscured
destinations, or GPS manipulations" (DeAIS [36], Windward [43]).  Two
detectors act on *raw accepted message sequences per MMSI* — before the
reconstructor's cleaning hides the evidence:

- :func:`detect_teleports` — persistent impossible jumps (GPS offset
  spoofing turning on/off, or two transmitters sharing an MMSI);
- :func:`detect_identity_clashes` — the same MMSI reporting from two
  places at effectively the same time.
"""

from repro.events.base import Event, EventKind
from repro.geo import KNOTS_TO_MPS, haversine_m
from repro.trajectory.points import TrackPoint


def detect_teleports(
    fixes_by_mmsi: dict[int, list[TrackPoint]],
    max_speed_knots: float = 60.0,
    min_jump_m: float = 5_000.0,
) -> list[Event]:
    """Jumps requiring speeds beyond ``max_speed_knots``.

    ``min_jump_m`` suppresses GPS-noise artefacts on near-simultaneous
    fixes; a genuine spoof episode offsets by tens of kilometres.
    """
    events: list[Event] = []
    for mmsi, fixes in fixes_by_mmsi.items():
        ordered = sorted(fixes, key=lambda p: p.t)
        for a, b in zip(ordered, ordered[1:]):
            dt = b.t - a.t
            if dt <= 0:
                continue
            jump = haversine_m(a.lat, a.lon, b.lat, b.lon)
            if jump < min_jump_m:
                continue
            implied = jump / dt / KNOTS_TO_MPS
            if implied > max_speed_knots:
                events.append(
                    Event(
                        kind=EventKind.TELEPORT,
                        t_start=a.t,
                        t_end=b.t,
                        mmsis=(mmsi,),
                        lat=b.lat,
                        lon=b.lon,
                        confidence=min(1.0, implied / (4 * max_speed_knots)),
                        details={
                            "jump_m": jump,
                            "implied_speed_knots": implied,
                            "from": (a.lat, a.lon),
                            "to": (b.lat, b.lon),
                        },
                    )
                )
    return events


def detect_identity_clashes(
    fixes_by_mmsi: dict[int, list[TrackPoint]],
    window_s: float = 60.0,
    min_separation_m: float = 10_000.0,
) -> list[Event]:
    """Same MMSI seen at widely separated positions within ``window_s``.

    This is the classic two-transmitters-one-identity fraud.  Implemented
    as a scan over time-sorted fixes per MMSI looking for near-simultaneous
    pairs far apart.
    """
    events: list[Event] = []
    for mmsi, fixes in fixes_by_mmsi.items():
        ordered = sorted(fixes, key=lambda p: p.t)
        clash_reported_until = float("-inf")
        for i, a in enumerate(ordered):
            if a.t < clash_reported_until:
                continue
            for b in ordered[i + 1 :]:
                if b.t - a.t > window_s:
                    break
                separation = haversine_m(a.lat, a.lon, b.lat, b.lon)
                if separation >= min_separation_m:
                    events.append(
                        Event(
                            kind=EventKind.IDENTITY_CLASH,
                            t_start=a.t,
                            t_end=b.t,
                            mmsis=(mmsi,),
                            lat=a.lat,
                            lon=a.lon,
                            confidence=min(
                                1.0, separation / (5 * min_separation_m)
                            ),
                            details={
                                "separation_m": separation,
                                "positions": [
                                    (a.lat, a.lon), (b.lat, b.lon)
                                ],
                            },
                        )
                    )
                    # Report each clash episode once, then move on.
                    clash_reported_until = a.t + 600.0
                    break
    return events
