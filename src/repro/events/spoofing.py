"""Spoofing indicators: kinematic impossibilities and identity clashes.

§1: "AIS messages are vulnerable to manipulation ... deliberate
falsifications and spoofing, such as identity fraud, obscured
destinations, or GPS manipulations" (DeAIS [36], Windward [43]).  Two
detectors act on *raw accepted message sequences per MMSI* — before the
reconstructor's cleaning hides the evidence:

- :func:`detect_teleports` — persistent impossible jumps (GPS offset
  spoofing turning on/off, or two transmitters sharing an MMSI);
- :func:`detect_identity_clashes` — the same MMSI reporting from two
  places at effectively the same time.
"""

from collections import deque

from repro.events.base import Event, EventKind
from repro.geo import KNOTS_TO_MPS, distance_bound_m, haversine_m
from repro.trajectory.points import TrackPoint


def detect_teleports(
    fixes_by_mmsi: dict[int, list[TrackPoint]],
    max_speed_knots: float = 60.0,
    min_jump_m: float = 5_000.0,
) -> list[Event]:
    """Jumps requiring speeds beyond ``max_speed_knots``.

    ``min_jump_m`` suppresses GPS-noise artefacts on near-simultaneous
    fixes; a genuine spoof episode offsets by tens of kilometres.
    """
    events: list[Event] = []
    for mmsi, fixes in fixes_by_mmsi.items():
        ordered = sorted(fixes, key=lambda p: p.t)
        for a, b in zip(ordered, ordered[1:]):
            dt = b.t - a.t
            if dt <= 0:
                continue
            jump = haversine_m(a.lat, a.lon, b.lat, b.lon)
            if jump < min_jump_m:
                continue
            implied = jump / dt / KNOTS_TO_MPS
            if implied > max_speed_knots:
                events.append(
                    Event(
                        kind=EventKind.TELEPORT,
                        t_start=a.t,
                        t_end=b.t,
                        mmsis=(mmsi,),
                        lat=b.lat,
                        lon=b.lon,
                        confidence=min(1.0, implied / (4 * max_speed_knots)),
                        details={
                            "jump_m": jump,
                            "implied_speed_knots": implied,
                            "from": (a.lat, a.lon),
                            "to": (b.lat, b.lon),
                        },
                    )
                )
    return events


def detect_identity_clashes(
    fixes_by_mmsi: dict[int, list[TrackPoint]],
    window_s: float = 60.0,
    min_separation_m: float = 10_000.0,
) -> list[Event]:
    """Same MMSI seen at widely separated positions within ``window_s``.

    This is the classic two-transmitters-one-identity fraud.  Implemented
    as a scan over time-sorted fixes per MMSI looking for near-simultaneous
    pairs far apart.
    """
    events: list[Event] = []
    for mmsi, fixes in fixes_by_mmsi.items():
        ordered = sorted(fixes, key=lambda p: p.t)
        clash_reported_until = float("-inf")
        for i, a in enumerate(ordered):
            if a.t < clash_reported_until:
                continue
            for b in ordered[i + 1 :]:
                if b.t - a.t > window_s:
                    break
                separation = haversine_m(a.lat, a.lon, b.lat, b.lon)
                if separation >= min_separation_m:
                    events.append(
                        Event(
                            kind=EventKind.IDENTITY_CLASH,
                            t_start=a.t,
                            t_end=b.t,
                            mmsis=(mmsi,),
                            lat=a.lat,
                            lon=a.lon,
                            confidence=min(
                                1.0, separation / (5 * min_separation_m)
                            ),
                            details={
                                "separation_m": separation,
                                "positions": [
                                    (a.lat, a.lon), (b.lat, b.lon)
                                ],
                            },
                        )
                    )
                    # Report each clash episode once, then move on.
                    clash_reported_until = a.t + 600.0
                    break
    return events


class TeleportDetector:
    """Incremental port of :func:`detect_teleports`: feed raw fixes per
    MMSI in time order, collect events as the jumps are observed.

    Only the previous fix per MMSI is retained; ``max_pair_dt_s`` (when
    set) skips pairs separated by more than that — after such a silence
    the *gap* detector owns the episode — which is also the state-eviction
    horizon for vessels that fall silent.
    """

    def __init__(
        self,
        max_speed_knots: float = 60.0,
        min_jump_m: float = 5_000.0,
        max_pair_dt_s: float | None = None,
    ) -> None:
        self.max_speed_knots = max_speed_knots
        self.min_jump_m = min_jump_m
        self.max_pair_dt_s = max_pair_dt_s
        self._last: dict[int, TrackPoint] = {}

    def __len__(self) -> int:
        return len(self._last)

    def evict_before(self, t: float) -> None:
        """Drop state for vessels silent since before ``t`` (safe when
        ``t`` trails the clock by at least ``max_pair_dt_s``)."""
        stale = [m for m, p in self._last.items() if p.t < t]
        for mmsi in stale:
            del self._last[mmsi]

    def export_state(self) -> dict[int, TrackPoint]:
        """The last-fix-per-MMSI table, copied (checkpointing)."""
        return dict(self._last)

    def load_state(self, snapshot: dict[int, TrackPoint]) -> None:
        self._last = dict(snapshot)

    def feed(self, mmsi: int, fix: TrackPoint) -> Event | None:
        previous = self._last.get(mmsi)
        self._last[mmsi] = fix
        if previous is None:
            return None
        dt = fix.t - previous.t
        if dt <= 0:
            return None
        if self.max_pair_dt_s is not None and dt > self.max_pair_dt_s:
            return None
        # Consecutive fixes are almost always metres apart, so a cheap
        # upper bound on the jump usually proves "no event" without the
        # haversine; when it cannot, the exact test below decides —
        # decisions are bit-identical either way.
        if distance_bound_m(
            previous.lat, previous.lon, fix.lat, fix.lon
        ) < self.min_jump_m:
            return None
        jump = haversine_m(previous.lat, previous.lon, fix.lat, fix.lon)
        if jump < self.min_jump_m:
            return None
        implied = jump / dt / KNOTS_TO_MPS
        if implied <= self.max_speed_knots:
            return None
        return Event(
            kind=EventKind.TELEPORT,
            t_start=previous.t,
            t_end=fix.t,
            mmsis=(mmsi,),
            lat=fix.lat,
            lon=fix.lon,
            confidence=min(1.0, implied / (4 * self.max_speed_knots)),
            details={
                "jump_m": jump,
                "implied_speed_knots": implied,
                "from": (previous.lat, previous.lon),
                "to": (fix.lat, fix.lon),
            },
        )


class IdentityClashDetector:
    """Incremental port of :func:`detect_identity_clashes`.

    Keeps, per MMSI, only the fixes inside the clash window plus the last
    episode-suppression deadline, so memory is bounded by the reporting
    rate times ``window_s``.  Fed the same time-ordered fixes, it emits
    exactly the pairs the batch scan reports: the arriving fix plays the
    "b" role against every buffered unsuppressed anchor "a", earliest
    anchors first, and a clash consumes anchors for 600 s just as the
    batch episode rule does.
    """

    def __init__(
        self,
        window_s: float = 60.0,
        min_separation_m: float = 10_000.0,
        suppress_s: float = 600.0,
    ) -> None:
        self.window_s = window_s
        self.min_separation_m = min_separation_m
        self.suppress_s = suppress_s
        self._recent: dict[int, deque[TrackPoint]] = {}
        self._suppressed_until: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._recent)

    def evict_before(self, t: float) -> None:
        stale = [
            m for m, buf in self._recent.items()
            if not buf or buf[-1].t < t
        ]
        for mmsi in stale:
            del self._recent[mmsi]
            self._suppressed_until.pop(mmsi, None)

    def export_state(self) -> dict:
        """Window buffers and suppression deadlines, as plain copies."""
        return {
            "recent": {
                mmsi: list(buffer) for mmsi, buffer in self._recent.items()
            },
            "suppressed_until": dict(self._suppressed_until),
        }

    def load_state(self, snapshot: dict) -> None:
        self._recent = {
            mmsi: deque(points)
            for mmsi, points in snapshot["recent"].items()
        }
        self._suppressed_until = dict(snapshot["suppressed_until"])

    def feed(self, mmsi: int, fix: TrackPoint) -> list[Event]:
        buffer = self._recent.setdefault(mmsi, deque())
        while buffer and fix.t - buffer[0].t > self.window_s:
            buffer.popleft()
        events: list[Event] = []
        suppressed_until = self._suppressed_until.get(mmsi, float("-inf"))
        for anchor in buffer:
            if anchor.t < suppressed_until:
                continue
            # Near-simultaneous fixes of one genuine transmitter sit
            # within metres; the cheap bound proves "no clash" for those
            # without a haversine per anchor.  A bound at or above the
            # threshold falls through to the exact separation, so the
            # emitted events (and suppression state) never change.
            if distance_bound_m(
                anchor.lat, anchor.lon, fix.lat, fix.lon
            ) < self.min_separation_m:
                continue
            separation = haversine_m(anchor.lat, anchor.lon, fix.lat, fix.lon)
            if separation >= self.min_separation_m:
                events.append(
                    Event(
                        kind=EventKind.IDENTITY_CLASH,
                        t_start=anchor.t,
                        t_end=fix.t,
                        mmsis=(mmsi,),
                        lat=anchor.lat,
                        lon=anchor.lon,
                        confidence=min(
                            1.0, separation / (5 * self.min_separation_m)
                        ),
                        details={
                            "separation_m": separation,
                            "positions": [
                                (anchor.lat, anchor.lon), (fix.lat, fix.lon)
                            ],
                        },
                    )
                )
                suppressed_until = anchor.t + self.suppress_s
        if events:
            self._suppressed_until[mmsi] = suppressed_until
        buffer.append(fix)
        return events
