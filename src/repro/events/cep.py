"""Complex event processing: sequence patterns over event streams.

§3.1 asks for "algorithms for complex event (and outlier) recognition ...
in real-time".  The engine matches declarative sequence patterns — event
kinds ordered by *start time* within a time window, with optional spatial
co-location and shared-vessel constraints — over a stream of primitive
events, emitting COMPLEX events whose details carry the full match for
explanation (§4's requirement that outputs be interpretable).

The engine is **arrival-order insensitive**: incremental detectors emit
events as they are *discovered*, which is not the order in which they
*started* (a reporting gap is only known once the silence ends; a
rendezvous only once the contact run closes).  Matching is therefore
defined purely over event timestamps: a pattern matches any tuple of
distinct buffered events whose canonical (start-time) order follows the
declared sequence, regardless of the order they were fed.  Each match is
emitted exactly once — when its last-arriving member arrives.  Exact
duplicate events (same kind, times, vessels, position, confidence) are
dropped on arrival, so replays and overlapping detector windows cannot
double-fire a pattern.

Memory is bounded by :meth:`CepEngine.expire`: callers advance a low
watermark and the engine evicts buffered events too old to participate in
any future match.  Events arriving with a start time older than the
expired horizon may miss matches — pick the horizon from the maximum
detection latency of the upstream detectors.

Example: "GAP, then RENDEZVOUS involving the same vessel within 2 h and
50 km" is the dark-transshipment pattern used in example 3.
"""

import bisect
import heapq
from dataclasses import dataclass

from repro.events.base import Event, EventKind
from repro.geo import haversine_m

#: Canonical total order on events: start time first, then stable
#: tie-breakers so ties are resolved identically however events arrive.
EventKey = tuple[float, str, tuple[int, ...], float, float, float, float]


def event_key(event: Event) -> EventKey:
    """Canonical sort/dedup key (every field that defines event identity;
    ``details`` is explanation payload and excluded, as in ``Event.__eq__``)."""
    return (
        event.t_start,
        event.kind.value,
        event.mmsis,
        event.lat,
        event.lon,
        event.t_end,
        event.confidence,
    )


@dataclass(frozen=True)
class SequencePattern:
    """An ordered sequence of event kinds with window constraints."""

    name: str
    sequence: tuple[EventKind, ...]
    #: Whole match must fit in this window (first start → last start).
    window_s: float
    #: Every step must involve at least one vessel from the first step.
    same_vessel: bool = True
    #: Steps must all lie within this radius of the first step (0 = off).
    max_radius_m: float = 0.0
    #: Confidence assigned to emitted complex events.
    confidence: float = 0.9
    #: How long past the pattern window buffered events are retained to
    #: absorb detection latency, overriding the engine-wide default
    #: passed to :meth:`CepEngine.expire` (``None`` = use that default).
    #: A pattern over low-latency detectors (zone entries are known the
    #: moment the fix arrives) can expire aggressively while a pattern
    #: over high-latency ones (a gap is only discovered when the silence
    #: ends) keeps its buffers long.
    lateness_s: float | None = None

    def __post_init__(self) -> None:
        if len(self.sequence) < 2:
            raise ValueError("a sequence pattern needs at least 2 steps")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.lateness_s is not None and self.lateness_s < 0:
            raise ValueError("lateness_s must be None or >= 0")


class AdaptiveLateness:
    """Self-tuning CEP lateness from observed detector emission latency.

    The expiry horizon of :meth:`CepEngine.expire` must cover the
    *detection latency* of the upstream detectors: a gap that started at
    ``t`` is only discovered when the silence ends, so its event reaches
    the engine ``watermark - t`` seconds "late" relative to its buffer
    key.  Instead of a static worst-case knob, this tracks an EWMA of
    the latency actually observed (``watermark - event.t_start`` at feed
    time) and answers ``clamp(margin * ewma, floor_s, cap_s)`` — the
    same shape as the adaptive :class:`~repro.sources.MergedSource`
    holdback.  Until the first observation it answers ``cap_s`` (the
    conservative static default), so an idle stream never expires more
    aggressively than the static engine would.
    """

    def __init__(
        self,
        floor_s: float,
        cap_s: float,
        alpha: float = 0.2,
        margin: float = 1.5,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if floor_s < 0 or cap_s < floor_s:
            raise ValueError("need 0 <= floor_s <= cap_s")
        self.floor_s = floor_s
        self.cap_s = cap_s
        self.alpha = alpha
        self.margin = margin
        self.ewma_s: float | None = None
        self.n_observed = 0

    def observe(self, latency_s: float) -> None:
        """Fold one observed emission latency into the EWMA."""
        latency_s = max(0.0, latency_s)
        if self.ewma_s is None:
            self.ewma_s = latency_s
        else:
            self.ewma_s += self.alpha * (latency_s - self.ewma_s)
        self.n_observed += 1

    def value(self) -> float:
        """The lateness allowance to expire with, clamped to [floor, cap]."""
        if self.ewma_s is None:
            return self.cap_s
        return min(self.cap_s, max(self.floor_s, self.margin * self.ewma_s))


class CepEngine:
    """Multi-pattern matcher over canonically ordered event tuples.

    Feed primitive events in any order (:meth:`feed`), collect complex
    events as their matches complete.  Call :meth:`expire` with a low
    watermark to bound state for unbounded streams.
    """

    def __init__(self, patterns: list[SequencePattern]) -> None:
        self.patterns = list(patterns)
        #: pattern name -> kind -> (sorted keys, events) parallel lists.
        self._buffers: dict[str, dict[EventKind, tuple[list, list]]] = {}
        for pattern in self.patterns:
            per_kind: dict[EventKind, tuple[list, list]] = {}
            for kind in pattern.sequence:
                per_kind.setdefault(kind, ([], []))
            self._buffers[pattern.name] = per_kind
        self._seen: set[EventKey] = set()
        self._seen_expiry: list[EventKey] = []
        self.n_fed = 0

    # -- ingestion ---------------------------------------------------------

    def feed(self, event: Event) -> list[Event]:
        """Offer one primitive event; returns any completed complex events.

        A match completes the moment its last member arrives, whatever
        the arrival order; exact duplicates are ignored.
        """
        self.n_fed += 1
        key = event_key(event)
        if key in self._seen:
            return []
        self._seen.add(key)
        heapq.heappush(self._seen_expiry, key)
        completed: list[Event] = []
        for pattern in self.patterns:
            buffers = self._buffers[pattern.name]
            if event.kind not in buffers:
                continue
            for position, kind in enumerate(pattern.sequence):
                if kind is event.kind:
                    for match in self._assemble(pattern, position, event, key):
                        completed.append(self._emit(pattern, match))
            keys, events = buffers[event.kind]
            index = bisect.bisect_left(keys, key)
            keys.insert(index, key)
            events.insert(index, event)
        return completed

    def feed_all(self, events: list[Event]) -> list[Event]:
        """Feed a batch and collect matches (sorted for stable output
        order; the match *set* does not depend on it)."""
        out: list[Event] = []
        for event in sorted(events, key=event_key):
            out.extend(self.feed(event))
        return out

    # -- state bounding ----------------------------------------------------

    def expire(
        self, low_watermark: float, default_lateness_s: float = 0.0
    ) -> None:
        """Evict events that can no longer participate in any match.

        ``low_watermark`` is the event-time frontier (the stream
        watermark).  Each pattern retains buffered events for its own
        ``lateness_s`` (detection-latency allowance; falling back to
        ``default_lateness_s``) plus its window past that frontier:
        an event older than ``low_watermark - lateness - window_s`` can
        never again be a match's first step, even for a maximally late
        discovery.  Events *discovered* later than their pattern's
        lateness allowance may miss matches — pick the lateness from the
        upstream detectors' latency.
        """
        def lateness(pattern: SequencePattern) -> float:
            if pattern.lateness_s is not None:
                return pattern.lateness_s
            return default_lateness_s

        max_horizon_s = max(
            (p.window_s + lateness(p) for p in self.patterns), default=0.0
        )
        for pattern in self.patterns:
            horizon = low_watermark - lateness(pattern) - pattern.window_s
            for keys, events in self._buffers[pattern.name].values():
                cut = bisect.bisect_left(keys, (horizon,))
                if cut:
                    del keys[:cut]
                    del events[:cut]
        seen_horizon = low_watermark - max_horizon_s
        while self._seen_expiry and self._seen_expiry[0][0] < seen_horizon:
            self._seen.discard(heapq.heappop(self._seen_expiry))

    # -- durable state -----------------------------------------------------

    def export_state(self) -> dict:
        """Everything mutable, in canonical (set-free, sorted) form.

        The exported value contains only plain containers and
        :class:`~repro.events.base.Event` objects, ordered independently
        of insertion history, so serialising it is deterministic for a
        given logical state.  Patterns are *not* exported — they are
        session configuration; :meth:`load_state` checks the names match.
        """
        return {
            "patterns": [p.name for p in self.patterns],
            "buffers": {
                name: sorted(
                    (
                        (kind.value, list(keys), list(events))
                        for kind, (keys, events) in per_kind.items()
                    ),
                )
                for name, per_kind in self._buffers.items()
            },
            "seen": sorted(self._seen),
            "n_fed": self.n_fed,
        }

    def load_state(self, snapshot: dict) -> None:
        """Restore :meth:`export_state` output into this engine.

        The engine must have been constructed with the same pattern list
        (by name) the snapshot was taken under; a mismatch raises
        ``ValueError`` — patterns are configuration, and matching against
        buffers captured for different patterns would be silently wrong.
        """
        expected = [p.name for p in self.patterns]
        if list(snapshot["patterns"]) != expected:
            raise ValueError(
                f"CEP pattern mismatch: snapshot was taken with patterns "
                f"{list(snapshot['patterns'])!r}, engine has {expected!r}"
            )
        for pattern in self.patterns:
            per_kind = self._buffers[pattern.name]
            for keys, events in per_kind.values():
                keys.clear()
                events.clear()
            for kind_value, keys, events in snapshot["buffers"][pattern.name]:
                target_keys, target_events = per_kind[EventKind(kind_value)]
                target_keys[:] = keys
                target_events[:] = events
        self._seen = set(snapshot["seen"])
        # A sorted list is a valid min-heap already.
        self._seen_expiry = list(snapshot["seen"])
        self.n_fed = snapshot["n_fed"]

    def buffered(self) -> int:
        """Total buffered (pattern, event) entries — a state-size probe."""
        return sum(
            len(keys)
            for per_kind in self._buffers.values()
            for keys, __ in per_kind.values()
        )

    # -- matching ----------------------------------------------------------

    def _step_ok(
        self, pattern: SequencePattern, anchor: Event, candidate: Event
    ) -> bool:
        if candidate.t_start - anchor.t_start > pattern.window_s:
            return False
        if pattern.same_vessel and not (
            set(anchor.mmsis) & set(candidate.mmsis)
        ):
            return False
        if pattern.max_radius_m > 0 and (
            haversine_m(anchor.lat, anchor.lon, candidate.lat, candidate.lon)
            > pattern.max_radius_m
        ):
            return False
        return True

    def _assemble(
        self,
        pattern: SequencePattern,
        fixed_position: int,
        event: Event,
        key: EventKey,
    ) -> list[tuple[Event, ...]]:
        """All full matches placing ``event`` (not yet buffered) at
        ``fixed_position``, every other step drawn from the buffers in
        canonical order."""
        sequence = pattern.sequence
        buffers = self._buffers[pattern.name]
        matches: list[tuple[Event, ...]] = []
        chosen: list[Event] = []
        chosen_keys: list[EventKey] = []

        def extend(position: int) -> None:
            if position == len(sequence):
                matches.append(tuple(chosen))
                return
            previous_key = chosen_keys[-1] if chosen_keys else None
            anchor = chosen[0] if chosen else None
            if position == fixed_position:
                candidates = ((key, event),)
            else:
                keys, events = buffers[sequence[position]]
                start = (
                    0 if previous_key is None
                    else bisect.bisect_left(keys, previous_key)
                )
                candidates = zip(keys[start:], events[start:])
            for cand_key, candidate in candidates:
                if previous_key is not None and cand_key < previous_key:
                    continue
                if anchor is not None:
                    if candidate.t_start - anchor.t_start > pattern.window_s:
                        break  # keys sorted by t_start: no later fit either
                    if not self._step_ok(pattern, anchor, candidate):
                        continue
                if any(c is candidate for c in chosen):
                    continue
                chosen.append(candidate)
                chosen_keys.append(cand_key)
                extend(position + 1)
                chosen.pop()
                chosen_keys.pop()

        extend(0)
        return matches

    def _emit(self, pattern: SequencePattern, match: tuple[Event, ...]) -> Event:
        vessels: set[int] = set()
        for event in match:
            vessels.update(event.mmsis)
        last = match[-1]
        return Event(
            kind=EventKind.COMPLEX,
            t_start=match[0].t_start,
            t_end=last.t_end,
            mmsis=tuple(sorted(vessels)),
            lat=last.lat,
            lon=last.lon,
            confidence=pattern.confidence
            * min(e.confidence for e in match),
            details={
                "pattern": pattern.name,
                "steps": [e.describe() for e in match],
            },
        )
