"""Complex event processing: sequence patterns over event streams.

§3.1 asks for "algorithms for complex event (and outlier) recognition ...
in real-time".  The engine here matches declarative sequence patterns —
ordered event kinds within a time window, with optional spatial
co-location and shared-vessel constraints — over a time-ordered stream of
primitive events, emitting COMPLEX events whose details carry the full
match for explanation (§4's requirement that outputs be interpretable).

Example: "GAP, then RENDEZVOUS involving the same vessel within 2 h and
50 km" is the dark-transshipment pattern used in example 3.
"""

from dataclasses import dataclass, field

from repro.events.base import Event, EventKind
from repro.geo import haversine_m


@dataclass(frozen=True)
class SequencePattern:
    """An ordered sequence of event kinds with window constraints."""

    name: str
    sequence: tuple[EventKind, ...]
    #: Whole match must fit in this window (first start → last start).
    window_s: float
    #: Every step must involve at least one vessel from the first step.
    same_vessel: bool = True
    #: Steps must all lie within this radius of the first step (0 = off).
    max_radius_m: float = 0.0
    #: Confidence assigned to emitted complex events.
    confidence: float = 0.9

    def __post_init__(self) -> None:
        if len(self.sequence) < 2:
            raise ValueError("a sequence pattern needs at least 2 steps")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")


@dataclass
class _PartialMatch:
    matched: list[Event] = field(default_factory=list)

    @property
    def t_first(self) -> float:
        return self.matched[0].t_start

    @property
    def next_index(self) -> int:
        return len(self.matched)


class CepEngine:
    """Multi-pattern NFA-style matcher.

    Feed primitive events in time order (:meth:`feed`), collect complex
    events as they complete.  Partial matches expire once their window
    passes, bounding state.
    """

    def __init__(self, patterns: list[SequencePattern]) -> None:
        self.patterns = list(patterns)
        self._partials: dict[str, list[_PartialMatch]] = {
            p.name: [] for p in self.patterns
        }
        self.n_fed = 0

    def _compatible(
        self, pattern: SequencePattern, partial: _PartialMatch, event: Event
    ) -> bool:
        if event.kind is not pattern.sequence[partial.next_index]:
            return False
        if event.t_start - partial.t_first > pattern.window_s:
            return False
        if event.t_start < partial.matched[-1].t_start:
            return False
        if pattern.same_vessel:
            first_vessels = set(partial.matched[0].mmsis)
            if not first_vessels.intersection(event.mmsis):
                return False
        if pattern.max_radius_m > 0:
            anchor = partial.matched[0]
            if (
                haversine_m(anchor.lat, anchor.lon, event.lat, event.lon)
                > pattern.max_radius_m
            ):
                return False
        return True

    def feed(self, event: Event) -> list[Event]:
        """Offer one primitive event; returns any completed complex events."""
        self.n_fed += 1
        completed: list[Event] = []
        for pattern in self.patterns:
            partials = self._partials[pattern.name]
            # Expire stale partials.
            partials[:] = [
                p for p in partials
                if event.t_start - p.t_first <= pattern.window_s
            ]
            new_partials: list[_PartialMatch] = []
            for partial in partials:
                if self._compatible(pattern, partial, event):
                    extended = _PartialMatch(partial.matched + [event])
                    if extended.next_index == len(pattern.sequence):
                        completed.append(self._emit(pattern, extended))
                    else:
                        new_partials.append(extended)
            partials.extend(new_partials)
            if event.kind is pattern.sequence[0]:
                partials.append(_PartialMatch([event]))
        return completed

    def feed_all(self, events: list[Event]) -> list[Event]:
        """Feed a batch (sorted by start time first) and collect matches."""
        out: list[Event] = []
        for event in sorted(events, key=lambda e: e.t_start):
            out.extend(self.feed(event))
        return out

    def _emit(self, pattern: SequencePattern, match: _PartialMatch) -> Event:
        vessels: set[int] = set()
        for event in match.matched:
            vessels.update(event.mmsis)
        last = match.matched[-1]
        return Event(
            kind=EventKind.COMPLEX,
            t_start=match.matched[0].t_start,
            t_end=last.t_end,
            mmsis=tuple(sorted(vessels)),
            lat=last.lat,
            lon=last.lon,
            confidence=pattern.confidence
            * min(e.confidence for e in match.matched),
            details={
                "pattern": pattern.name,
                "steps": [e.describe() for e in match.matched],
            },
        )
