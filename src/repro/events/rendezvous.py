"""Rendezvous detection: two vessels slow and close at open sea.

The signature event of maritime anomaly detection (§4 uses "querying
rendezvous events" as its open-world example): transshipment, smuggling
and bunkering all look like two tracks converging, dwelling within a few
hundred metres of each other away from any port, then separating.

The detector resamples tracks to a common cadence and sweeps time with a
per-timestep :class:`~repro.spatial.SpatialIndex`, so it scales as
O(points) rather than O(pairs x time).  Whichever backend serves the
sweep, longitude handling is metric-exact, so the contact gate holds at
high latitudes (where fixed-degree cells shrink below the search
neighbourhood) and across the antimeridian.
"""

import heapq
import math
from dataclasses import dataclass

from repro.events.base import Event, EventKind
from repro.geo import (
    haversine_m,
    interpolate_track_at_time,
    normalize_lon,
    pair_midpoint,
)
from repro.simulation.world import Port
from repro.spatial import GridIndex, build_index
from repro.spatial.factory import AUTO_MIN_RTREE_N
from repro.trajectory.points import TrackPoint, Trajectory
from repro.trajectory.resample import resample


@dataclass(frozen=True)
class RendezvousConfig:
    #: Maximum separation during the contact, metres.
    max_distance_m: float = 500.0
    #: Both vessels must be at or below this speed.
    max_speed_knots: float = 3.0
    #: Minimum duration of sustained contact.
    min_duration_s: float = 900.0
    #: Contacts within this range of a port are ignored (normal ops).
    port_exclusion_m: float = 10_000.0
    #: Common resampling cadence.
    step_s: float = 60.0
    #: Spatial backend per sweep step: "auto", "grid" or "rtree".
    index_backend: str = "auto"


def detect_rendezvous(
    trajectories: list[Trajectory],
    ports: list[Port],
    config: RendezvousConfig | None = None,
) -> list[Event]:
    """Find all pairwise rendezvous among the given tracks."""
    config = config or RendezvousConfig()
    # Resample once; build a per-timestep spatial index.
    sampled = {}
    for trajectory in trajectories:
        if len(trajectory) < 2:
            continue
        sampled[trajectory.mmsi] = resample(trajectory, config.step_s)

    # contact_runs[(a, b)] = list of contact timestamps (sorted as built)
    contact_runs: dict[tuple[int, int], list[tuple[float, float, float]]] = {}

    # Iterate over global timeline at the common cadence.
    if not sampled:
        return []
    t0 = min(tr.t_start for tr in sampled.values())
    t1 = max(tr.t_end for tr in sampled.values())
    # Resolve an "auto" backend once, from the first timestep populous
    # enough to exercise the heuristic (small steps choose the grid
    # without computing any statistic), so later sweeps skip the skew
    # pass without pinning "grid" off an unrepresentative sparse step.
    hint = config.index_backend
    t = t0
    while t <= t1:
        positions: dict[int, tuple[float, float]] = {}
        for mmsi, trajectory in sampled.items():
            if not (trajectory.t_start <= t <= trajectory.t_end):
                continue
            lat, lon = trajectory.position_at(t)
            speed = _speed_at(trajectory, t)
            if speed is None or speed > config.max_speed_knots:
                continue
            positions[mmsi] = (lat, lon)
        index = build_index(
            [(mmsi, lat, lon) for mmsi, (lat, lon) in positions.items()],
            cell_size_m=config.max_distance_m,
            hint=hint,
        )
        if hint == "auto" and len(positions) >= AUTO_MIN_RTREE_N:
            hint = "grid" if isinstance(index, GridIndex) else "rtree"
        for mmsi_a, mmsi_b, __ in index.all_pairs_within(config.max_distance_m):
            if mmsi_b < mmsi_a:
                mmsi_a, mmsi_b = mmsi_b, mmsi_a
            lat_a, lon_a = positions[mmsi_a]
            lat_b, lon_b = positions[mmsi_b]
            mid_lat, mid_lon = pair_midpoint(lat_a, lon_a, lat_b, lon_b)
            contact_runs.setdefault((mmsi_a, mmsi_b), []).append(
                (t, mid_lat, mid_lon)
            )
        t += config.step_s

    events: list[Event] = []
    for (mmsi_a, mmsi_b), contacts in contact_runs.items():
        events.extend(
            _runs_to_events(
                mmsi_a, mmsi_b, contacts, ports, config
            )
        )
    events.sort(key=lambda e: e.t_start)
    return events


def _speed_at(trajectory: Trajectory, t: float) -> float | None:
    """Reported SOG of the fix nearest ``t`` (resampled tracks carry it)."""
    import bisect

    times = [p.t for p in trajectory.points]
    index = bisect.bisect_left(times, t)
    index = min(len(times) - 1, index)
    point = trajectory[index]
    return point.sog_knots


def _runs_to_events(
    mmsi_a: int,
    mmsi_b: int,
    contacts: list[tuple[float, float, float]],
    ports: list[Port],
    config: RendezvousConfig,
) -> list[Event]:
    """Split a pair's contact instants into sustained runs and emit events."""
    events = []
    run: list[tuple[float, float, float]] = []

    def flush() -> None:
        event = _run_to_event(mmsi_a, mmsi_b, run, ports, config)
        if event is not None:
            events.append(event)
        run.clear()

    for contact in contacts:
        if run and contact[0] - run[-1][0] > 2.5 * config.step_s:
            flush()
        run.append(contact)
    flush()
    return events


def _run_to_event(
    mmsi_a: int,
    mmsi_b: int,
    run: list[tuple[float, float, float]],
    ports: list[Port],
    config: RendezvousConfig,
) -> Event | None:
    """One sustained contact run → one rendezvous event (or None)."""
    if not run:
        return None
    duration = run[-1][0] - run[0][0]
    if duration < config.min_duration_s:
        return None
    lat_c = sum(c[1] for c in run) / len(run)
    # Average longitudes as wrapped offsets from the first contact so
    # a run hugging the antimeridian doesn't centre on lon 0.
    lon_ref = run[0][2]
    lon_c = normalize_lon(
        lon_ref
        + sum(normalize_lon(c[2] - lon_ref) for c in run) / len(run)
    )
    near_port = any(
        haversine_m(lat_c, lon_c, port.lat, port.lon)
        < config.port_exclusion_m
        for port in ports
    )
    if near_port:
        return None
    return Event(
        kind=EventKind.RENDEZVOUS,
        t_start=run[0][0],
        t_end=run[-1][0],
        mmsis=(mmsi_a, mmsi_b),
        lat=lat_c,
        lon=lon_c,
        confidence=min(1.0, duration / (2 * config.min_duration_s)),
        details={"duration_s": duration},
    )


class IncrementalRendezvousDetector:
    """Streaming rendezvous detection over accepted fixes.

    The batch detector resamples finished tracks and sweeps the whole
    timeline; this port keeps the same physics with single-pass, bounded
    state:

    - each accepted fix interpolates its vessel's track onto an *absolute*
      sample grid (``k * step_s``), so the sweep instants depend on the
      data and the config only — never on micro-batch boundaries;
    - a grid instant is swept (indexed pair search over its slow-vessel
      samples) once the watermark passes it by ``close_lag_s``: beyond
      that lag no same-segment pair of fixes can still straddle the
      instant, because the reconstructor would have split the track;
    - per-pair contact runs flush into events exactly like the batch
      ``_runs_to_events`` once the swept frontier leaves them behind.

    State is bounded by ``close_lag_s / step_s`` instants times the number
    of slow vessels, plus open contact runs.
    """

    def __init__(
        self,
        ports: list[Port],
        config: RendezvousConfig | None = None,
        close_lag_s: float = 1800.0,
    ) -> None:
        self.ports = ports
        self.config = config or RendezvousConfig()
        if close_lag_s <= 0:
            raise ValueError("close_lag_s must be positive")
        self.close_lag_s = close_lag_s
        self._previous: dict[int, TrackPoint] = {}
        #: instant t -> [(mmsi, lat, lon)] samples awaiting the sweep.
        self._samples: dict[float, list[tuple[int, float, float]]] = {}
        self._instant_heap: list[float] = []
        #: (a, b) -> open contact run [(t, mid_lat, mid_lon)].
        self._runs: dict[tuple[int, int], list[tuple[float, float, float]]] = {}
        self._hint = self.config.index_backend
        self._swept_to = float("-inf")
        #: Events from runs split *during* a sweep (a contact gap wider
        #: than the run tolerance inside one watermark jump).
        self._late_events: list[Event] = []

    def __len__(self) -> int:
        return len(self._previous)

    def n_pending_instants(self) -> int:
        return len(self._samples)

    def n_open_runs(self) -> int:
        return len(self._runs)

    def evict_before(self, t: float) -> None:
        stale = [m for m, p in self._previous.items() if p.t < t]
        for mmsi in stale:
            del self._previous[mmsi]

    # -- sampling ----------------------------------------------------------

    def feed(self, mmsi: int, point: TrackPoint, new_segment: bool) -> None:
        """Offer one accepted fix (``new_segment`` when the reconstructor
        opened a fresh segment with it — no interpolation across splits)."""
        previous = self._previous.get(mmsi)
        self._previous[mmsi] = point
        if new_segment or previous is None or point.t <= previous.t:
            return
        step = self.config.step_s
        k = math.floor(previous.t / step) + 1
        t = k * step
        while t <= point.t:
            sog = previous.sog_knots if t < point.t else point.sog_knots
            if sog is not None and sog <= self.config.max_speed_knots:
                lat, lon = interpolate_track_at_time(
                    previous.t, previous.lat, previous.lon,
                    point.t, point.lat, point.lon, t,
                )
                bucket = self._samples.get(t)
                if bucket is None:
                    bucket = self._samples[t] = []
                    heapq.heappush(self._instant_heap, t)
                bucket.append((mmsi, lat, lon))
            k += 1
            t = k * step

    # -- sweeping ----------------------------------------------------------

    def next_due(self) -> float:
        """Earliest watermark at which :meth:`advance` could do anything.

        The sweep loop only fires once the watermark passes the oldest
        pending instant by ``close_lag_s``; between sweeps
        ``_late_events`` is empty and the stale-run cut is unchanged, so
        advancing earlier is a guaranteed no-op.  With nothing pending
        the answer is ``+inf``.  Depends only on detector state, never
        on batching.
        """
        if not self._instant_heap:
            return float("inf")
        return self._instant_heap[0] + self.close_lag_s

    def advance(self, watermark: float) -> list[Event]:
        """Sweep every instant closed by the watermark; return new events."""
        events: list[Event] = []
        horizon = watermark - self.close_lag_s
        while self._instant_heap and self._instant_heap[0] <= horizon:
            t = heapq.heappop(self._instant_heap)
            self._sweep_instant(t, self._samples.pop(t))
            self._swept_to = t
        events.extend(self._late_events)
        self._late_events = []
        # Runs the frontier has left behind can no longer grow.
        if math.isfinite(self._swept_to):
            stale_cut = self._swept_to - 2.5 * self.config.step_s
            for pair in [
                p for p, run in self._runs.items() if run[-1][0] < stale_cut
            ]:
                event = _run_to_event(
                    pair[0], pair[1], self._runs.pop(pair),
                    self.ports, self.config,
                )
                if event is not None:
                    events.append(event)
        return events

    def flush(self) -> list[Event]:
        """End of stream: sweep everything pending and close all runs."""
        events: list[Event] = []
        while self._instant_heap:
            t = heapq.heappop(self._instant_heap)
            self._sweep_instant(t, self._samples.pop(t))
        events.extend(self._late_events)
        self._late_events = []
        for (mmsi_a, mmsi_b), run in sorted(self._runs.items()):
            event = _run_to_event(mmsi_a, mmsi_b, run, self.ports, self.config)
            if event is not None:
                events.append(event)
        self._runs.clear()
        return events

    def _sweep_instant(
        self, t: float, samples: list[tuple[int, float, float]]
    ) -> None:
        if len(samples) < 2:
            return
        positions = {mmsi: (lat, lon) for mmsi, lat, lon in samples}
        index = build_index(
            samples,
            cell_size_m=self.config.max_distance_m,
            hint=self._hint,
        )
        if self._hint == "auto" and len(positions) >= AUTO_MIN_RTREE_N:
            self._hint = "grid" if isinstance(index, GridIndex) else "rtree"
        for mmsi_a, mmsi_b, __ in index.all_pairs_within(
            self.config.max_distance_m
        ):
            if mmsi_b < mmsi_a:
                mmsi_a, mmsi_b = mmsi_b, mmsi_a
            lat_a, lon_a = positions[mmsi_a]
            lat_b, lon_b = positions[mmsi_b]
            mid_lat, mid_lon = pair_midpoint(lat_a, lon_a, lat_b, lon_b)
            run = self._runs.setdefault((mmsi_a, mmsi_b), [])
            if run and t - run[-1][0] > 2.5 * self.config.step_s:
                # The gap already split the run; it would have been
                # flushed by ``advance`` — guard for direct driving.
                event = _run_to_event(
                    mmsi_a, mmsi_b, run, self.ports, self.config
                )
                if event is not None:
                    self._late_events.append(event)
                run = self._runs[(mmsi_a, mmsi_b)] = []
            run.append((t, mid_lat, mid_lon))
