"""Rendezvous detection: two vessels slow and close at open sea.

The signature event of maritime anomaly detection (§4 uses "querying
rendezvous events" as its open-world example): transshipment, smuggling
and bunkering all look like two tracks converging, dwelling within a few
hundred metres of each other away from any port, then separating.

The detector resamples tracks to a common cadence and sweeps time with a
spatial hash, so it scales as O(points) rather than O(pairs x time).
"""

from dataclasses import dataclass

from repro.events.base import Event, EventKind
from repro.geo import haversine_m
from repro.simulation.world import Port
from repro.trajectory.points import Trajectory
from repro.trajectory.resample import resample


@dataclass(frozen=True)
class RendezvousConfig:
    #: Maximum separation during the contact, metres.
    max_distance_m: float = 500.0
    #: Both vessels must be at or below this speed.
    max_speed_knots: float = 3.0
    #: Minimum duration of sustained contact.
    min_duration_s: float = 900.0
    #: Contacts within this range of a port are ignored (normal ops).
    port_exclusion_m: float = 10_000.0
    #: Common resampling cadence.
    step_s: float = 60.0


def detect_rendezvous(
    trajectories: list[Trajectory],
    ports: list[Port],
    config: RendezvousConfig | None = None,
) -> list[Event]:
    """Find all pairwise rendezvous among the given tracks."""
    config = config or RendezvousConfig()
    # Resample once; build per-timestep spatial hash.
    sampled = {}
    for trajectory in trajectories:
        if len(trajectory) < 2:
            continue
        sampled[trajectory.mmsi] = resample(trajectory, config.step_s)

    cell_deg = max(0.01, config.max_distance_m / 111_000.0 * 2.0)
    # contact_runs[(a, b)] = list of contact timestamps (sorted as built)
    contact_runs: dict[tuple[int, int], list[tuple[float, float, float]]] = {}

    # Iterate over global timeline at the common cadence.
    if not sampled:
        return []
    t0 = min(tr.t_start for tr in sampled.values())
    t1 = max(tr.t_end for tr in sampled.values())
    t = t0
    while t <= t1:
        cells: dict[tuple[int, int], list[tuple[int, float, float, float]]] = {}
        for mmsi, trajectory in sampled.items():
            if not (trajectory.t_start <= t <= trajectory.t_end):
                continue
            lat, lon = trajectory.position_at(t)
            speed = _speed_at(trajectory, t)
            if speed is None or speed > config.max_speed_knots:
                continue
            key = (int(lat / cell_deg), int(lon / cell_deg))
            cells.setdefault(key, []).append((mmsi, lat, lon, speed))
        for key, members in cells.items():
            # Include the 8 neighbour cells to avoid boundary misses.
            pool = list(members)
            ky, kx = key
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    if dy == 0 and dx == 0:
                        continue
                    pool.extend(cells.get((ky + dy, kx + dx), []))
            for i, (mmsi_a, lat_a, lon_a, __) in enumerate(members):
                for mmsi_b, lat_b, lon_b, __ in pool:
                    if mmsi_b <= mmsi_a:
                        continue
                    if (
                        haversine_m(lat_a, lon_a, lat_b, lon_b)
                        <= config.max_distance_m
                    ):
                        pair = (mmsi_a, mmsi_b)
                        contact_runs.setdefault(pair, []).append(
                            (t, (lat_a + lat_b) / 2.0, (lon_a + lon_b) / 2.0)
                        )
        t += config.step_s

    events: list[Event] = []
    for (mmsi_a, mmsi_b), contacts in contact_runs.items():
        events.extend(
            _runs_to_events(
                mmsi_a, mmsi_b, contacts, ports, config
            )
        )
    events.sort(key=lambda e: e.t_start)
    return events


def _speed_at(trajectory: Trajectory, t: float) -> float | None:
    """Reported SOG of the fix nearest ``t`` (resampled tracks carry it)."""
    import bisect

    times = [p.t for p in trajectory.points]
    index = bisect.bisect_left(times, t)
    index = min(len(times) - 1, index)
    point = trajectory[index]
    return point.sog_knots


def _runs_to_events(
    mmsi_a: int,
    mmsi_b: int,
    contacts: list[tuple[float, float, float]],
    ports: list[Port],
    config: RendezvousConfig,
) -> list[Event]:
    """Split a pair's contact instants into sustained runs and emit events."""
    events = []
    run: list[tuple[float, float, float]] = []

    def flush() -> None:
        if not run:
            return
        duration = run[-1][0] - run[0][0]
        if duration < config.min_duration_s:
            run.clear()
            return
        lat_c = sum(c[1] for c in run) / len(run)
        lon_c = sum(c[2] for c in run) / len(run)
        near_port = any(
            haversine_m(lat_c, lon_c, port.lat, port.lon)
            < config.port_exclusion_m
            for port in ports
        )
        if not near_port:
            events.append(
                Event(
                    kind=EventKind.RENDEZVOUS,
                    t_start=run[0][0],
                    t_end=run[-1][0],
                    mmsis=(mmsi_a, mmsi_b),
                    lat=lat_c,
                    lon=lon_c,
                    confidence=min(1.0, duration / (2 * config.min_duration_s)),
                    details={"duration_s": duration},
                )
            )
        run.clear()

    for contact in contacts:
        if run and contact[0] - run[-1][0] > 2.5 * config.step_s:
            flush()
        run.append(contact)
    flush()
    return events
