"""Rendezvous detection: two vessels slow and close at open sea.

The signature event of maritime anomaly detection (§4 uses "querying
rendezvous events" as its open-world example): transshipment, smuggling
and bunkering all look like two tracks converging, dwelling within a few
hundred metres of each other away from any port, then separating.

The detector resamples tracks to a common cadence and sweeps time with a
per-timestep :class:`~repro.spatial.SpatialIndex`, so it scales as
O(points) rather than O(pairs x time).  Whichever backend serves the
sweep, longitude handling is metric-exact, so the contact gate holds at
high latitudes (where fixed-degree cells shrink below the search
neighbourhood) and across the antimeridian.
"""

from dataclasses import dataclass

from repro.events.base import Event, EventKind
from repro.geo import haversine_m, normalize_lon, pair_midpoint
from repro.simulation.world import Port
from repro.spatial import GridIndex, build_index
from repro.spatial.factory import AUTO_MIN_RTREE_N
from repro.trajectory.points import Trajectory
from repro.trajectory.resample import resample


@dataclass(frozen=True)
class RendezvousConfig:
    #: Maximum separation during the contact, metres.
    max_distance_m: float = 500.0
    #: Both vessels must be at or below this speed.
    max_speed_knots: float = 3.0
    #: Minimum duration of sustained contact.
    min_duration_s: float = 900.0
    #: Contacts within this range of a port are ignored (normal ops).
    port_exclusion_m: float = 10_000.0
    #: Common resampling cadence.
    step_s: float = 60.0
    #: Spatial backend per sweep step: "auto", "grid" or "rtree".
    index_backend: str = "auto"


def detect_rendezvous(
    trajectories: list[Trajectory],
    ports: list[Port],
    config: RendezvousConfig | None = None,
) -> list[Event]:
    """Find all pairwise rendezvous among the given tracks."""
    config = config or RendezvousConfig()
    # Resample once; build a per-timestep spatial index.
    sampled = {}
    for trajectory in trajectories:
        if len(trajectory) < 2:
            continue
        sampled[trajectory.mmsi] = resample(trajectory, config.step_s)

    # contact_runs[(a, b)] = list of contact timestamps (sorted as built)
    contact_runs: dict[tuple[int, int], list[tuple[float, float, float]]] = {}

    # Iterate over global timeline at the common cadence.
    if not sampled:
        return []
    t0 = min(tr.t_start for tr in sampled.values())
    t1 = max(tr.t_end for tr in sampled.values())
    # Resolve an "auto" backend once, from the first timestep populous
    # enough to exercise the heuristic (small steps choose the grid
    # without computing any statistic), so later sweeps skip the skew
    # pass without pinning "grid" off an unrepresentative sparse step.
    hint = config.index_backend
    t = t0
    while t <= t1:
        positions: dict[int, tuple[float, float]] = {}
        for mmsi, trajectory in sampled.items():
            if not (trajectory.t_start <= t <= trajectory.t_end):
                continue
            lat, lon = trajectory.position_at(t)
            speed = _speed_at(trajectory, t)
            if speed is None or speed > config.max_speed_knots:
                continue
            positions[mmsi] = (lat, lon)
        index = build_index(
            [(mmsi, lat, lon) for mmsi, (lat, lon) in positions.items()],
            cell_size_m=config.max_distance_m,
            hint=hint,
        )
        if hint == "auto" and len(positions) >= AUTO_MIN_RTREE_N:
            hint = "grid" if isinstance(index, GridIndex) else "rtree"
        for mmsi_a, mmsi_b, __ in index.all_pairs_within(config.max_distance_m):
            if mmsi_b < mmsi_a:
                mmsi_a, mmsi_b = mmsi_b, mmsi_a
            lat_a, lon_a = positions[mmsi_a]
            lat_b, lon_b = positions[mmsi_b]
            mid_lat, mid_lon = pair_midpoint(lat_a, lon_a, lat_b, lon_b)
            contact_runs.setdefault((mmsi_a, mmsi_b), []).append(
                (t, mid_lat, mid_lon)
            )
        t += config.step_s

    events: list[Event] = []
    for (mmsi_a, mmsi_b), contacts in contact_runs.items():
        events.extend(
            _runs_to_events(
                mmsi_a, mmsi_b, contacts, ports, config
            )
        )
    events.sort(key=lambda e: e.t_start)
    return events


def _speed_at(trajectory: Trajectory, t: float) -> float | None:
    """Reported SOG of the fix nearest ``t`` (resampled tracks carry it)."""
    import bisect

    times = [p.t for p in trajectory.points]
    index = bisect.bisect_left(times, t)
    index = min(len(times) - 1, index)
    point = trajectory[index]
    return point.sog_knots


def _runs_to_events(
    mmsi_a: int,
    mmsi_b: int,
    contacts: list[tuple[float, float, float]],
    ports: list[Port],
    config: RendezvousConfig,
) -> list[Event]:
    """Split a pair's contact instants into sustained runs and emit events."""
    events = []
    run: list[tuple[float, float, float]] = []

    def flush() -> None:
        if not run:
            return
        duration = run[-1][0] - run[0][0]
        if duration < config.min_duration_s:
            run.clear()
            return
        lat_c = sum(c[1] for c in run) / len(run)
        # Average longitudes as wrapped offsets from the first contact so
        # a run hugging the antimeridian doesn't centre on lon 0.
        lon_ref = run[0][2]
        lon_c = normalize_lon(
            lon_ref
            + sum(normalize_lon(c[2] - lon_ref) for c in run) / len(run)
        )
        near_port = any(
            haversine_m(lat_c, lon_c, port.lat, port.lon)
            < config.port_exclusion_m
            for port in ports
        )
        if not near_port:
            events.append(
                Event(
                    kind=EventKind.RENDEZVOUS,
                    t_start=run[0][0],
                    t_end=run[-1][0],
                    mmsis=(mmsi_a, mmsi_b),
                    lat=lat_c,
                    lon=lon_c,
                    confidence=min(1.0, duration / (2 * config.min_duration_s)),
                    details={"duration_s": duration},
                )
            )
        run.clear()

    for contact in contacts:
        if run and contact[0] - run[-1][0] > 2.5 * config.step_s:
            flush()
        run.append(contact)
    flush()
    return events
