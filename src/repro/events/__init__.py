"""Event pattern detection and anomaly analysis (§3.1).

Detectors consume reconstructed tracks (batch) or track-point streams
(online) and emit :class:`~repro.events.base.Event` records: zone
entries/exits, reporting gaps, loitering, rendezvous, collision risk,
spoofing indicators, and pattern-of-life anomalies.  The CEP layer
composes them into complex events ("gap then rendezvous nearby"), and the
scoring module matches detections against scenario ground truth.
"""

from repro.events.base import Event, EventKind
from repro.events.detectors import (
    ZoneWatch,
    detect_gaps,
    detect_loitering,
    detect_speed_anomalies,
    detect_zone_events,
)
from repro.events.rendezvous import RendezvousConfig, detect_rendezvous
from repro.events.collision import detect_collision_risk, CollisionRiskConfig
from repro.events.spoofing import detect_teleports, detect_identity_clashes
from repro.events.pol import PatternOfLife, PolConfig
from repro.events.cep import SequencePattern, CepEngine
from repro.events.scoring import match_events, DetectionScore

__all__ = [
    "Event",
    "EventKind",
    "ZoneWatch",
    "detect_gaps",
    "detect_loitering",
    "detect_speed_anomalies",
    "detect_zone_events",
    "RendezvousConfig",
    "detect_rendezvous",
    "detect_collision_risk",
    "CollisionRiskConfig",
    "detect_teleports",
    "detect_identity_clashes",
    "PatternOfLife",
    "PolConfig",
    "SequencePattern",
    "CepEngine",
    "match_events",
    "DetectionScore",
]
