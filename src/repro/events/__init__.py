"""Event pattern detection and anomaly analysis (§3.1).

Detectors consume reconstructed tracks (batch) or track-point streams
(online) and emit :class:`~repro.events.base.Event` records: zone
entries/exits, reporting gaps, loitering, rendezvous, collision risk,
spoofing indicators, and pattern-of-life anomalies.  The CEP layer
composes them into complex events ("gap then rendezvous nearby"), and the
scoring module matches detections against scenario ground truth.
"""

from repro.events.base import Event, EventKind
from repro.events.detectors import (
    ZoneWatch,
    detect_gaps,
    detect_loitering,
    detect_speed_anomalies,
    detect_zone_events,
)
from repro.events.rendezvous import (
    IncrementalRendezvousDetector,
    RendezvousConfig,
    detect_rendezvous,
)
from repro.events.collision import (
    CollisionRiskConfig,
    CollisionScreen,
    detect_collision_risk,
)
from repro.events.spoofing import (
    IdentityClashDetector,
    TeleportDetector,
    detect_identity_clashes,
    detect_teleports,
)
from repro.events.pol import PatternOfLife, PolConfig
from repro.events.cep import CepEngine, SequencePattern, event_key
from repro.events.scoring import match_events, DetectionScore

__all__ = [
    "Event",
    "EventKind",
    "ZoneWatch",
    "detect_gaps",
    "detect_loitering",
    "detect_speed_anomalies",
    "detect_zone_events",
    "RendezvousConfig",
    "detect_rendezvous",
    "IncrementalRendezvousDetector",
    "detect_collision_risk",
    "CollisionRiskConfig",
    "CollisionScreen",
    "detect_teleports",
    "detect_identity_clashes",
    "TeleportDetector",
    "IdentityClashDetector",
    "PatternOfLife",
    "PolConfig",
    "SequencePattern",
    "CepEngine",
    "event_key",
    "match_events",
    "DetectionScore",
]
