"""Event model shared by all detectors."""

import enum
from dataclasses import dataclass, field


class EventKind(enum.Enum):
    ZONE_ENTRY = "zone_entry"
    ZONE_EXIT = "zone_exit"
    GAP = "gap"
    LOITERING = "loitering"
    RENDEZVOUS = "rendezvous"
    COLLISION_RISK = "collision_risk"
    SPEED_ANOMALY = "speed_anomaly"
    TELEPORT = "teleport"
    IDENTITY_CLASH = "identity_clash"
    POL_ANOMALY = "pol_anomaly"
    #: A sustained radar track with no AIS identity — the dark-vessel
    #: signature the fusion layer surfaces (§2.4).
    UNCORRELATED_TRACK = "uncorrelated_track"
    COMPLEX = "complex"


@dataclass(frozen=True)
class Event:
    """A detected occurrence, with enough context to score and explain it.

    ``confidence`` is the detector's own belief in [0, 1]; the uncertainty
    layer may re-weight it by source quality before the operator sees it.
    """

    kind: EventKind
    t_start: float
    t_end: float
    mmsis: tuple[int, ...]
    lat: float
    lon: float
    confidence: float = 1.0
    details: dict = field(default_factory=dict, hash=False, compare=False)

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start

    def overlaps_time(self, t0: float, t1: float, slack_s: float = 0.0) -> bool:
        return self.t_start <= t1 + slack_s and t0 - slack_s <= self.t_end

    def describe(self) -> str:
        """One-line operator-facing description."""
        who = "/".join(str(m) for m in self.mmsis) or "unknown"
        return (
            f"{self.kind.value} [{who}] at ({self.lat:.3f}, {self.lon:.3f}) "
            f"t={self.t_start:.0f}..{self.t_end:.0f} "
            f"(confidence {self.confidence:.2f})"
        )
