"""Detection scoring: match detected events against scenario ground truth."""

from dataclasses import dataclass

from repro.events.base import Event
from repro.geo import haversine_m
from repro.simulation.scenario import TruthEvent


@dataclass(frozen=True)
class DetectionScore:
    """Precision/recall summary of one detector against one truth kind.

    ``true_positives`` counts detections that matched some truth event;
    ``truth_found`` counts truth events matched by some detection.  The two
    differ when several detections cover one long event (precision should
    credit all of them; recall should count the event once).
    """

    kind: str
    n_truth: int
    n_detected: int
    true_positives: int
    truth_found: int

    @property
    def precision(self) -> float:
        return self.true_positives / self.n_detected if self.n_detected else 0.0

    @property
    def recall(self) -> float:
        return self.truth_found / self.n_truth if self.n_truth else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def _matches(
    detected: Event,
    truth: TruthEvent,
    time_slack_s: float,
    distance_slack_m: float,
    require_vessel_overlap: bool,
) -> bool:
    if not detected.overlaps_time(truth.t_start, truth.t_end, time_slack_s):
        return False
    if (
        distance_slack_m > 0
        and haversine_m(detected.lat, detected.lon, truth.lat, truth.lon)
        > distance_slack_m
    ):
        return False
    if require_vessel_overlap and truth.mmsis:
        if not set(detected.mmsis).intersection(truth.mmsis):
            return False
    return True


def match_events(
    detected: list[Event],
    truth: list[TruthEvent],
    kind: str,
    time_slack_s: float = 600.0,
    distance_slack_m: float = 10_000.0,
    require_vessel_overlap: bool = True,
) -> DetectionScore:
    """Match detections to truth events of one kind.

    A truth event counts as found if at least one detection matches it; a
    detection is a true positive if it matches at least one truth event.
    """
    relevant_truth = [t for t in truth if t.kind == kind]
    found_truth: set[int] = set()
    true_positive_detections = 0
    for event in detected:
        matched_any = False
        for index, truth_event in enumerate(relevant_truth):
            if _matches(
                event, truth_event, time_slack_s, distance_slack_m,
                require_vessel_overlap,
            ):
                found_truth.add(index)
                matched_any = True
        if matched_any:
            true_positive_detections += 1
    return DetectionScore(
        kind=kind,
        n_truth=len(relevant_truth),
        n_detected=len(detected),
        true_positives=true_positive_detections,
        truth_found=len(found_truth),
    )
