"""Collision-risk detection via CPA/TCPA on live track pairs."""

import math
from dataclasses import dataclass

from repro.events.base import Event, EventKind
from repro.geo import cpa_tcpa, pair_midpoint
from repro.spatial import build_index
from repro.trajectory.points import TrackPoint


@dataclass(frozen=True)
class CollisionRiskConfig:
    #: Alarm when predicted CPA is under this.
    dcpa_alarm_m: float = 500.0
    #: ... and TCPA is within this horizon.
    tcpa_horizon_s: float = 1200.0
    #: Only consider pairs currently within this range (screening gate).
    screening_range_m: float = 20_000.0
    #: Ignore near-stationary vessels (moored rafts trigger otherwise).
    min_speed_knots: float = 2.0
    #: Spatial backend for the pair screen: "auto", "grid" or "rtree".
    index_backend: str = "auto"


def detect_collision_risk(
    current_states: dict[int, TrackPoint],
    config: CollisionRiskConfig | None = None,
) -> list[Event]:
    """Screen every live pair for dangerous CPA.

    ``current_states`` maps MMSI to the latest fix (with SOG/COG).  Pairs
    are screened by current range before the CPA solve — via a
    :class:`~repro.spatial.SpatialIndex` sweep rather than the quadratic
    all-pairs loop, so screening cost tracks the number of *nearby* pairs;
    the backend (latitude-aware grid vs STR R-tree for skewed fleets)
    follows ``config.index_backend``.  Output events carry DCPA/TCPA in
    details for the operator display.
    """
    config = config or CollisionRiskConfig()
    vessels = {
        mmsi: point
        for mmsi, point in current_states.items()
        if point.sog_knots is not None
        and point.cog_deg is not None
        and point.sog_knots >= config.min_speed_knots
    }
    index = build_index(
        [(mmsi, point.lat, point.lon) for mmsi, point in vessels.items()],
        cell_size_m=config.screening_range_m,
        hint=config.index_backend,
    )
    events: list[Event] = []
    for mmsi_a, mmsi_b, __ in index.all_pairs_within(config.screening_range_m):
        # Canonical pair orientation: the index emits pairs in insertion
        # order, which depends on how ``current_states`` was built — and
        # a state restored from a checkpoint rebuilds its maps in sorted
        # export order, not arrival order.  The pair is symmetric, so
        # orient it by MMSI to keep products byte-identical across
        # crash/restore and worker-count changes.
        mmsi_a, mmsi_b = sorted((mmsi_a, mmsi_b))
        a = vessels[mmsi_a]
        b = vessels[mmsi_b]
        result = cpa_tcpa(
            a.lat, a.lon, a.sog_knots, a.cog_deg,
            b.lat, b.lon, b.sog_knots, b.cog_deg,
        )
        if (
            0.0 <= result.tcpa_s <= config.tcpa_horizon_s
            and result.dcpa_m <= config.dcpa_alarm_m
        ):
            risk = 1.0 - result.dcpa_m / config.dcpa_alarm_m
            urgency = 1.0 - result.tcpa_s / config.tcpa_horizon_s
            mid_lat, mid_lon = pair_midpoint(a.lat, a.lon, b.lat, b.lon)
            events.append(
                Event(
                    kind=EventKind.COLLISION_RISK,
                    t_start=max(a.t, b.t),
                    t_end=max(a.t, b.t) + result.tcpa_s,
                    mmsis=(mmsi_a, mmsi_b),
                    lat=mid_lat,
                    lon=mid_lon,
                    confidence=min(1.0, 0.5 * (risk + urgency)),
                    details={
                        "dcpa_m": result.dcpa_m,
                        "tcpa_s": result.tcpa_s,
                        "range_m": result.range_m,
                    },
                )
            )
    return events


class CollisionScreen:
    """Periodic collision screening for the incremental pipeline.

    The batch pipeline screened the fleet's *final* states once; a live
    pipeline screens at every instant of an absolute time grid
    (``k * period_s``) as the watermark crosses it, so results depend on
    the feed and the grid — never on micro-batch boundaries.  A pair that
    stays dangerous re-alarms only after ``suppress_s``, keeping a
    standing close-quarters situation from spamming one alarm per screen.
    """

    def __init__(
        self,
        period_s: float = 300.0,
        max_state_age_s: float = 900.0,
        suppress_s: float = 1800.0,
        config: CollisionRiskConfig | None = None,
    ) -> None:
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.period_s = period_s
        self.max_state_age_s = max_state_age_s
        self.suppress_s = suppress_s
        self.config = config or CollisionRiskConfig()
        self._next_screen_t: float | None = None
        self._last_alarm: dict[tuple[int, int], float] = {}

    def __len__(self) -> int:
        return len(self._last_alarm)

    def _first_instant_after(self, t: float) -> float:
        return math.floor(t / self.period_s + 1.0) * self.period_s

    def next_due(self) -> float:
        """Earliest watermark at which :meth:`advance` could screen.

        Lets the caller skip the call entirely between grid instants.
        Before the first advance the grid origin is unknown, so the
        answer is ``-inf`` (always call); afterwards it is the next grid
        instant.  Depends only on screen state, never on batching.
        """
        if self._next_screen_t is None:
            return float("-inf")
        return self._next_screen_t

    def advance(
        self, watermark: float, current_states: dict[int, TrackPoint]
    ) -> list[Event]:
        """Screen every grid instant now at or below the watermark."""
        if self._next_screen_t is None:
            if not math.isfinite(watermark):
                return []
            self._next_screen_t = self._first_instant_after(
                watermark - self.period_s
            )
        events: list[Event] = []
        while self._next_screen_t <= watermark:
            screen_t = self._next_screen_t
            self._next_screen_t += self.period_s
            fresh = {
                mmsi: point
                for mmsi, point in current_states.items()
                if point.t >= screen_t - self.max_state_age_s
            }
            if len(fresh) < 2:
                continue
            for event in detect_collision_risk(fresh, self.config):
                pair = event.mmsis  # already canonically oriented
                last = self._last_alarm.get(pair)
                if last is not None and screen_t - last < self.suppress_s:
                    continue
                self._last_alarm[pair] = screen_t
                events.append(event)
            # Old pair-suppression entries can never suppress again.
            horizon = screen_t - self.suppress_s
            if len(self._last_alarm) > 4 * max(1, len(fresh)):
                self._last_alarm = {
                    pair: t
                    for pair, t in self._last_alarm.items()
                    if t >= horizon
                }
        return events
