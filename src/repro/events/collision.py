"""Collision-risk detection via CPA/TCPA on live track pairs."""

from dataclasses import dataclass

from repro.events.base import Event, EventKind
from repro.geo import cpa_tcpa, pair_midpoint
from repro.spatial import build_index
from repro.trajectory.points import TrackPoint


@dataclass(frozen=True)
class CollisionRiskConfig:
    #: Alarm when predicted CPA is under this.
    dcpa_alarm_m: float = 500.0
    #: ... and TCPA is within this horizon.
    tcpa_horizon_s: float = 1200.0
    #: Only consider pairs currently within this range (screening gate).
    screening_range_m: float = 20_000.0
    #: Ignore near-stationary vessels (moored rafts trigger otherwise).
    min_speed_knots: float = 2.0
    #: Spatial backend for the pair screen: "auto", "grid" or "rtree".
    index_backend: str = "auto"


def detect_collision_risk(
    current_states: dict[int, TrackPoint],
    config: CollisionRiskConfig | None = None,
) -> list[Event]:
    """Screen every live pair for dangerous CPA.

    ``current_states`` maps MMSI to the latest fix (with SOG/COG).  Pairs
    are screened by current range before the CPA solve — via a
    :class:`~repro.spatial.SpatialIndex` sweep rather than the quadratic
    all-pairs loop, so screening cost tracks the number of *nearby* pairs;
    the backend (latitude-aware grid vs STR R-tree for skewed fleets)
    follows ``config.index_backend``.  Output events carry DCPA/TCPA in
    details for the operator display.
    """
    config = config or CollisionRiskConfig()
    vessels = {
        mmsi: point
        for mmsi, point in current_states.items()
        if point.sog_knots is not None
        and point.cog_deg is not None
        and point.sog_knots >= config.min_speed_knots
    }
    index = build_index(
        [(mmsi, point.lat, point.lon) for mmsi, point in vessels.items()],
        cell_size_m=config.screening_range_m,
        hint=config.index_backend,
    )
    events: list[Event] = []
    for mmsi_a, mmsi_b, __ in index.all_pairs_within(config.screening_range_m):
        a = vessels[mmsi_a]
        b = vessels[mmsi_b]
        result = cpa_tcpa(
            a.lat, a.lon, a.sog_knots, a.cog_deg,
            b.lat, b.lon, b.sog_knots, b.cog_deg,
        )
        if (
            0.0 <= result.tcpa_s <= config.tcpa_horizon_s
            and result.dcpa_m <= config.dcpa_alarm_m
        ):
            risk = 1.0 - result.dcpa_m / config.dcpa_alarm_m
            urgency = 1.0 - result.tcpa_s / config.tcpa_horizon_s
            mid_lat, mid_lon = pair_midpoint(a.lat, a.lon, b.lat, b.lon)
            events.append(
                Event(
                    kind=EventKind.COLLISION_RISK,
                    t_start=max(a.t, b.t),
                    t_end=max(a.t, b.t) + result.tcpa_s,
                    mmsis=(mmsi_a, mmsi_b),
                    lat=mid_lat,
                    lon=mid_lon,
                    confidence=min(1.0, 0.5 * (risk + urgency)),
                    details={
                        "dcpa_m": result.dcpa_m,
                        "tcpa_s": result.tcpa_s,
                        "range_m": result.range_m,
                    },
                )
            )
    return events
