"""Single-track detectors: zones, gaps, loitering, speed anomalies."""

from dataclasses import dataclass

from repro.ais.types import ShipType
from repro.events.base import Event, EventKind
from repro.geo import CircleRegion, PolygonRegion, haversine_m
from repro.trajectory.points import Trajectory
from repro.trajectory.stops import detect_stops
from repro.simulation.world import Port


Region = PolygonRegion | CircleRegion


@dataclass
class ZoneWatch:
    """A named zone of interest to monitor for entries/exits."""

    name: str
    region: Region
    #: Zones can be restricted (protected area) or merely logged.
    restricted: bool = False


def detect_zone_events(
    trajectory: Trajectory, zones: list[ZoneWatch]
) -> list[Event]:
    """Entry/exit events: transitions of the inside/outside predicate.

    A vessel already inside at track start yields an entry at the first
    fix, so downstream logic always sees balanced context.
    """
    events: list[Event] = []
    for zone in zones:
        inside = False
        entered_at: float | None = None
        for point in trajectory:
            now_inside = zone.region.contains(point.lat, point.lon)
            if now_inside and not inside:
                entered_at = point.t
                events.append(
                    Event(
                        kind=EventKind.ZONE_ENTRY,
                        t_start=point.t,
                        t_end=point.t,
                        mmsis=(trajectory.mmsi,),
                        lat=point.lat,
                        lon=point.lon,
                        details={"zone": zone.name, "restricted": zone.restricted},
                    )
                )
            elif not now_inside and inside:
                events.append(
                    Event(
                        kind=EventKind.ZONE_EXIT,
                        t_start=point.t,
                        t_end=point.t,
                        mmsis=(trajectory.mmsi,),
                        lat=point.lat,
                        lon=point.lon,
                        details={
                            "zone": zone.name,
                            "dwell_s": point.t - (entered_at or point.t),
                        },
                    )
                )
            inside = now_inside
    events.sort(key=lambda e: e.t_start)
    return events


def detect_gaps(
    trajectory: Trajectory,
    min_gap_s: float = 1800.0,
    expected_interval_s: float = 180.0,
) -> list[Event]:
    """Reporting gaps: silences much longer than the expected cadence.

    Confidence grows with how many expected reports were missed — a 10x
    silence is a strong dark-ship indicator (§4), a 1.5x one is probably
    coverage.
    """
    events: list[Event] = []
    for a, b in zip(trajectory.points, trajectory.points[1:]):
        gap = b.t - a.t
        if gap < min_gap_s:
            continue
        missed = gap / expected_interval_s
        confidence = min(1.0, (missed - 1.0) / 10.0)
        events.append(
            Event(
                kind=EventKind.GAP,
                t_start=a.t,
                t_end=b.t,
                mmsis=(trajectory.mmsi,),
                lat=(a.lat + b.lat) / 2.0,
                lon=(a.lon + b.lon) / 2.0,
                confidence=confidence,
                details={
                    "gap_s": gap,
                    "silence_start": (a.lat, a.lon),
                    "silence_end": (b.lat, b.lon),
                },
            )
        )
    return events


def detect_loitering(
    trajectory: Trajectory,
    ports: list[Port],
    min_duration_s: float = 1800.0,
    max_radius_m: float = 1500.0,
    port_exclusion_m: float = 10_000.0,
    speed_threshold_knots: float = 2.0,
) -> list[Event]:
    """Loitering: a long slow dwell *away from any port or anchorage*.

    Port-adjacent stops are normal operations; the same kinematics at open
    sea is the §3.1 suspicious pattern.
    """
    events: list[Event] = []
    stops = detect_stops(
        trajectory,
        speed_threshold_knots=speed_threshold_knots,
        min_duration_s=min_duration_s,
        max_radius_m=max_radius_m,
    )
    for stop in stops:
        near_port = any(
            haversine_m(stop.lat, stop.lon, port.lat, port.lon) < port_exclusion_m
            for port in ports
        )
        if near_port:
            continue
        events.append(
            Event(
                kind=EventKind.LOITERING,
                t_start=stop.t_start,
                t_end=stop.t_end,
                mmsis=(trajectory.mmsi,),
                lat=stop.lat,
                lon=stop.lon,
                confidence=min(1.0, stop.duration_s / (4.0 * min_duration_s)),
                details={"duration_s": stop.duration_s},
            )
        )
    return events


#: Plausible service-speed bands (knots) by coarse ship type.
_SPEED_BANDS: dict[ShipType, tuple[float, float]] = {
    ShipType.CARGO: (0.0, 25.0),
    ShipType.TANKER: (0.0, 18.0),
    ShipType.PASSENGER: (0.0, 30.0),
    ShipType.FISHING: (0.0, 14.0),
    ShipType.HIGH_SPEED_CRAFT: (0.0, 45.0),
    ShipType.PLEASURE_CRAFT: (0.0, 25.0),
}


def detect_speed_anomalies(
    trajectory: Trajectory,
    ship_type: ShipType,
    min_run: int = 3,
) -> list[Event]:
    """Sustained speeds outside the type's plausible band.

    Requires ``min_run`` consecutive violating fixes, so single noisy SOG
    values do not alarm.
    """
    lo, hi = _SPEED_BANDS.get(ship_type, (0.0, 35.0))
    events: list[Event] = []
    run: list = []
    for point in trajectory:
        speed = point.sog_knots
        if speed is not None and (speed < lo or speed > hi):
            run.append(point)
            continue
        if len(run) >= min_run:
            events.append(_speed_event(trajectory.mmsi, run, ship_type, hi))
        run = []
    if len(run) >= min_run:
        events.append(_speed_event(trajectory.mmsi, run, ship_type, hi))
    return events


def _speed_event(mmsi: int, run: list, ship_type: ShipType, hi: float) -> Event:
    peak = max(p.sog_knots for p in run)
    mid = run[len(run) // 2]
    return Event(
        kind=EventKind.SPEED_ANOMALY,
        t_start=run[0].t,
        t_end=run[-1].t,
        mmsis=(mmsi,),
        lat=mid.lat,
        lon=mid.lon,
        confidence=min(1.0, (peak - hi) / hi) if hi else 1.0,
        details={"peak_sog_knots": peak, "ship_type": ship_type.name},
    )
