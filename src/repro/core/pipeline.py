"""The integrated maritime information infrastructure (Figure 2).

``MaritimePipeline.process`` consumes a scenario's observable feed and
produces everything the figure promises:

1. **Ingest & decode** — NMEA sentences through the AIS codec, with
   watermark reordering of late (satellite) data;
2. **Reconstruct** — clean per-vessel trajectory segments;
3. **Synopses** — dead-reckoning compression of each segment (§2.1);
4. **Integrate** — weather/registry enrichment and semantic annotation
   into the triple store (§2.2, §2.5);
5. **Detect** — gaps, loitering, rendezvous, spoofing indicators,
   collision risk, pattern-of-life anomalies, CEP composites (§3.1);
6. **Forecast** — per-vessel predicted positions with uncertainty (§4);
7. **Overview** — density map, aggregation cube, situation monitor
   (§3.2).

Every stage reports wall-clock and record counts in ``StageStats`` so the
FIG2 benchmark can print the per-stage throughput table.
"""

import time
from dataclasses import dataclass, field

from repro.ais.decoder import AisDecoder
from repro.ais.types import ClassBPositionReport, PositionReport
from repro.core.config import PipelineConfig
from repro.events.base import Event, EventKind
from repro.events.cep import CepEngine, SequencePattern
from repro.events.detectors import (
    ZoneWatch,
    detect_gaps,
    detect_loitering,
    detect_zone_events,
)
from repro.events.collision import detect_collision_risk
from repro.events.pol import PatternOfLife
from repro.events.rendezvous import detect_rendezvous
from repro.events.spoofing import detect_identity_clashes, detect_teleports
from repro.forecasting.kalmanpredict import KalmanPredictor, PredictionWithUncertainty
from repro.fusion.association import MultiSourceTracker
from repro.geo import BoundingBox
from repro.semantics.annotate import SemanticAnnotator
from repro.simulation.scenario import ScenarioRun
from repro.simulation.world import Port, REGIONAL_PORTS
from repro.storage.store import TrajectoryStore
from repro.storage.triples import TripleStore
from repro.streaming.stream import Record, Stream
from repro.streaming.watermarks import reorder_with_watermark
from repro.trajectory.compression import compression_ratio, dead_reckoning_compress
from repro.trajectory.points import TrackPoint, Trajectory
from repro.trajectory.reconstruction import TrackReconstructor
from repro.visual.cube import SpatioTemporalCube
from repro.visual.overview import SituationMonitor, SituationOverview


@dataclass
class StageStats:
    name: str
    n_in: int = 0
    n_out: int = 0
    seconds: float = 0.0

    @property
    def throughput_per_s(self) -> float:
        # 0.0, not inf, for zero-duration stages: the value must survive
        # ``json.dumps`` in benchmark result files.
        return self.n_in / self.seconds if self.seconds > 0 else 0.0


@dataclass
class PipelineResult:
    """Everything the pipeline produced for one scenario window."""

    stages: list[StageStats]
    trajectories: list[Trajectory]
    synopses: list[Trajectory]
    events: list[Event]
    complex_events: list[Event]
    forecasts: dict[int, list[PredictionWithUncertainty]]
    store: TrajectoryStore
    triples: TripleStore
    cube: SpatioTemporalCube
    overview: SituationOverview | None
    pol: PatternOfLife
    monitor: SituationMonitor
    decoder_stats: dict = field(default_factory=dict)
    #: Multi-source fused picture; ``None`` when the scenario carried no
    #: secondary sensors.
    fused: MultiSourceTracker | None = None

    def stage(self, name: str) -> StageStats:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    def events_of(self, kind: EventKind) -> list[Event]:
        return [e for e in self.events if e.kind is kind]

    def summary(self) -> str:
        lines = ["stage            in        out     records/s"]
        for stage in self.stages:
            rate = (
                f"{stage.throughput_per_s:>13.0f}"
                if stage.seconds > 0
                else f"{'n/a':>13}"
            )
            lines.append(
                f"{stage.name:<14}{stage.n_in:>8}{stage.n_out:>10}{rate}"
            )
        lines.append(
            f"events: {len(self.events)} primitive, "
            f"{len(self.complex_events)} complex; "
            f"forecasts for {len(self.forecasts)} vessels"
        )
        return "\n".join(lines)


#: The default complex pattern: silence then a rendezvous nearby — the
#: classic covert-transfer signature (example of §3.1/§4).
DARK_RENDEZVOUS = SequencePattern(
    name="dark_rendezvous",
    sequence=(EventKind.GAP, EventKind.RENDEZVOUS),
    window_s=4 * 3600.0,
    same_vessel=True,
    max_radius_m=80_000.0,
)


class MaritimePipeline:
    """The Figure 2 infrastructure, end to end."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        ports: list[Port] | None = None,
        cep_patterns: list[SequencePattern] | None = None,
        zones: list[ZoneWatch] | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.ports = ports if ports is not None else REGIONAL_PORTS
        self.cep_patterns = (
            cep_patterns if cep_patterns is not None else [DARK_RENDEZVOUS]
        )
        #: Zones of interest watched by the detect stage (§3.1 zone events).
        self.zones = zones or []

    # -- stages ---------------------------------------------------------------

    def _timed(self, stages: list[StageStats], name: str) -> StageStats:
        stage = StageStats(name)
        stages.append(stage)
        return stage

    def process(self, run: ScenarioRun) -> PipelineResult:
        """Run the full pipeline over a scenario's observable feed."""
        config = self.config
        stages: list[StageStats] = []

        # 1. Ingest & decode ---------------------------------------------------
        stage = self._timed(stages, "decode")
        t0 = time.perf_counter()
        decoder = AisDecoder()
        decoded: list[tuple[float, object]] = []
        for obs in run.observations:
            message = decoder.feed(obs.sentence, received_at=obs.t_received)
            if message is not None:
                decoded.append((obs.t_transmitted, message))
        stage.n_in = len(run.observations)
        stage.n_out = len(decoded)
        stage.seconds = time.perf_counter() - t0

        # Reorder by event time with bounded lateness (satellite delay).
        stage = self._timed(stages, "reorder")
        t0 = time.perf_counter()
        ordered_stream = reorder_with_watermark(
            Stream(
                Record(t=t, key=msg.mmsi, value=msg) for t, msg in decoded
            ),
            max_lateness_s=config.max_lateness_s,
        )
        ordered = ordered_stream.collect()
        stage.n_in = len(decoded)
        stage.n_out = len(ordered)
        stage.seconds = time.perf_counter() - t0

        # 2. Reconstruct -------------------------------------------------------
        stage = self._timed(stages, "reconstruct")
        t0 = time.perf_counter()
        reconstructor = TrackReconstructor(config.reconstruction)
        raw_fixes: dict[int, list[TrackPoint]] = {}
        for record in ordered:
            message = record.value
            if isinstance(message, (PositionReport, ClassBPositionReport)):
                point = reconstructor.add(message, record.t)
                raw_point = TrackPoint(
                    record.t, message.lat, message.lon,
                    message.sog_knots, message.cog_deg,
                )
                raw_fixes.setdefault(message.mmsi, []).append(raw_point)
                del point
        trajectories = [
            tr for tr in reconstructor.finish()
            if len(tr) >= config.min_segment_points
        ]
        stage.n_in = len(ordered)
        stage.n_out = sum(len(tr) for tr in trajectories)
        stage.seconds = time.perf_counter() - t0

        # 3. Synopses ----------------------------------------------------------
        stage = self._timed(stages, "synopses")
        t0 = time.perf_counter()
        if config.synopsis_threshold_m > 0:
            synopses = [
                dead_reckoning_compress(tr, config.synopsis_threshold_m)
                for tr in trajectories
            ]
        else:
            synopses = list(trajectories)
        stage.n_in = sum(len(tr) for tr in trajectories)
        stage.n_out = sum(len(tr) for tr in synopses)
        stage.seconds = time.perf_counter() - t0

        # 4. Integrate: store, cube, semantic annotation ------------------------
        stage = self._timed(stages, "integrate")
        t0 = time.perf_counter()
        store = TrajectoryStore(
            cell_deg=config.cube_cell_deg,
            time_bucket_s=config.cube_time_bucket_s,
        )
        store.add_all(synopses)
        cube = SpatioTemporalCube(
            cell_deg=config.cube_cell_deg,
            time_bucket_s=config.cube_time_bucket_s,
        )
        triples = TripleStore()
        annotator = SemanticAnnotator(triples, self.ports, run.weather)
        for mmsi, spec in run.specs.items():
            annotator.annotate_vessel(spec)
        for trajectory in synopses:
            annotator.annotate_trajectory(trajectory)
            spec = run.specs.get(trajectory.mmsi)
            category = spec.ship_type.name.lower() if spec else "unknown"
            for point in trajectory:
                cube.add(point.lat, point.lon, point.t, category)
        stage.n_in = sum(len(tr) for tr in synopses)
        stage.n_out = len(triples)
        stage.seconds = time.perf_counter() - t0

        # 4b. Fuse: radar contacts + LRIT onto the AIS picture (§2.4) -----------
        stage = self._timed(stages, "fuse")
        t0 = time.perf_counter()
        fused: MultiSourceTracker | None = None
        fusion_events: list[Event] = []
        if run.radar_contacts or run.lrit_reports:
            fused = MultiSourceTracker()
            for trajectory in trajectories:
                for point in trajectory:
                    fused.add_ais_fix(trajectory.mmsi, point)
            for report in run.lrit_reports:
                fused.add_lrit(
                    report.mmsi,
                    TrackPoint(report.t, report.lat, report.lon, source="lrit"),
                )
            fused.add_radar_contacts(run.radar_contacts)
            # Sustained anonymous radar tracks are dark-vessel candidates.
            for track in fused.anonymous_tracks:
                if len(track.points) < 5:
                    continue
                ordered = sorted(track.points, key=lambda p: p.t)
                duration = ordered[-1].t - ordered[0].t
                if duration < 300.0:
                    continue
                mid = ordered[len(ordered) // 2]
                fusion_events.append(
                    Event(
                        kind=EventKind.UNCORRELATED_TRACK,
                        t_start=ordered[0].t,
                        t_end=ordered[-1].t,
                        mmsis=(),
                        lat=mid.lat,
                        lon=mid.lon,
                        confidence=min(1.0, len(ordered) / 50.0),
                        details={
                            "n_contacts": len(ordered),
                            "duration_s": duration,
                        },
                    )
                )
        stage.n_in = len(run.radar_contacts) + len(run.lrit_reports)
        stage.n_out = len(fusion_events)
        stage.seconds = time.perf_counter() - t0

        # 5. Detect -------------------------------------------------------------
        stage = self._timed(stages, "detect")
        t0 = time.perf_counter()
        events: list[Event] = list(fusion_events)
        # Gap detection runs on the merged per-vessel timeline: the
        # reconstructor *splits* segments exactly at long silences, so the
        # gaps live between segments, not inside them.
        by_vessel: dict[int, list[Trajectory]] = {}
        for trajectory in trajectories:
            by_vessel.setdefault(trajectory.mmsi, []).append(trajectory)
        for mmsi, segments in by_vessel.items():
            segments.sort(key=lambda tr: tr.t_start)
            merged_points = [p for segment in segments for p in segment]
            if len(merged_points) >= 2:
                events.extend(
                    detect_gaps(
                        Trajectory(mmsi, merged_points),
                        min_gap_s=config.gap_min_s,
                    )
                )
        for trajectory in trajectories:
            events.extend(
                detect_loitering(
                    trajectory, self.ports, min_duration_s=config.loiter_min_s
                )
            )
            if self.zones:
                events.extend(detect_zone_events(trajectory, self.zones))
        events.extend(
            detect_rendezvous(trajectories, self.ports, config.rendezvous)
        )
        events.extend(detect_teleports(raw_fixes))
        events.extend(detect_identity_clashes(raw_fixes))

        # Pattern-of-life: train on the first window fraction, score the rest.
        pol = PatternOfLife()
        split_t = run.t_start + config.pol_training_fraction * (
            run.t_end - run.t_start
        )
        training, monitoring = [], []
        for trajectory in trajectories:
            head = trajectory.slice_time(run.t_start, split_t)
            tail = trajectory.slice_time(split_t, run.t_end)
            if head is not None and len(head) >= 2:
                training.append(head)
            if tail is not None and len(tail) >= 2:
                monitoring.append(tail)
        pol.train(training)
        for trajectory in monitoring:
            events.extend(pol.detect_anomalies(trajectory))

        # Collision screening on the latest state per vessel.
        current: dict[int, TrackPoint] = {}
        for trajectory in trajectories:
            last = trajectory.points[-1]
            existing = current.get(trajectory.mmsi)
            if existing is None or last.t > existing.t:
                current[trajectory.mmsi] = last
        events.extend(detect_collision_risk(current))
        events.sort(key=lambda e: e.t_start)

        cep = CepEngine(self.cep_patterns)
        complex_events = cep.feed_all(events)
        stage.n_in = sum(len(tr) for tr in trajectories)
        stage.n_out = len(events) + len(complex_events)
        stage.seconds = time.perf_counter() - t0

        # 6. Forecast -------------------------------------------------------------
        stage = self._timed(stages, "forecast")
        t0 = time.perf_counter()
        predictor = KalmanPredictor()
        forecasts: dict[int, list[PredictionWithUncertainty]] = {}
        for trajectory in trajectories:
            if len(trajectory) < config.min_segment_points:
                continue
            per_vessel = forecasts.setdefault(trajectory.mmsi, [])
            if per_vessel:
                continue  # one (latest-segment) forecast set per vessel
            for horizon in config.forecast_horizons_s:
                per_vessel.append(predictor.predict(trajectory, horizon))
        stage.n_in = len(trajectories)
        stage.n_out = sum(len(v) for v in forecasts.values())
        stage.seconds = time.perf_counter() - t0

        # 7. Overview ---------------------------------------------------------------
        stage = self._timed(stages, "overview")
        t0 = time.perf_counter()
        monitor = SituationMonitor(pol)
        for mmsi, point in current.items():
            monitor.offer(mmsi, point)
        overview = None
        if current:
            lats = [p.lat for p in current.values()]
            lons = [p.lon for p in current.values()]
            box = BoundingBox(
                min(lats) - 0.5, max(lats) + 0.5,
                min(lons) - 0.5, max(lons) + 0.5,
            )
            overview = SituationOverview.build(
                t=run.t_end, box=box, current_states=current,
                recent_events=events,
            )
        stage.n_in = len(current)
        stage.n_out = len(monitor.alarms)
        stage.seconds = time.perf_counter() - t0

        return PipelineResult(
            stages=stages,
            trajectories=trajectories,
            synopses=synopses,
            events=events,
            complex_events=complex_events,
            forecasts=forecasts,
            store=store,
            triples=triples,
            cube=cube,
            overview=overview,
            pol=pol,
            monitor=monitor,
            decoder_stats=dict(decoder.stats),
            fused=fused,
        )

    def mean_compression_ratio(self, result: PipelineResult) -> float:
        """Aggregate synopsis compression achieved by stage 3."""
        pairs = [
            (original, synopsis)
            for original, synopsis in zip(result.trajectories, result.synopses)
            if len(original) > 0
        ]
        if not pairs:
            return 0.0
        return sum(
            compression_ratio(original, synopsis) for original, synopsis in pairs
        ) / len(pairs)
