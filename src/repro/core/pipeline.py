"""The integrated maritime information infrastructure (Figure 2).

The paper's architecture is a *streaming* system — "single pass, bounded
memory" in-situ processing (§2.1), "complex event recognition in
real-time" (§3.1).  The pipeline therefore runs on an incremental stage
runtime (:mod:`repro.core.stages`): decode, reorder, reconstruct,
synopses, integrate, fuse, detect, forecast and overview are stage
objects with ``feed``/``flush`` over micro-batches, sharing one
:class:`~repro.core.stages.PipelineState`.

Two drivers wrap the same stages:

- :meth:`MaritimePipeline.process` — replay a finished scenario in one
  batch and collect the classic :class:`PipelineResult`;
- :meth:`MaritimePipeline.run_live` — consume an observation stream in
  reception-time ticks, yielding a
  :class:`~repro.core.stages.PipelineIncrement` (new events, updated
  forecasts, monitor alarms) per micro-batch with bounded state.

Because every stage is record-driven, both drivers produce the same
event set, forecasts and cube totals for the same feed — the property
``tests/test_core_stages.py`` locks down.

Both drivers honour ``config.workers``: the per-vessel phase (decode
payloads, reconstruction, synopses, forecasts, spoofing detectors) fans
out over that many vessel-partitioned shards and merges at the watermark
barrier, with products identical for every worker count
(``tests/test_core_shards.py``).
"""

from dataclasses import dataclass, field

from repro.core.config import PipelineConfig
from repro.core.stages import (
    PipelineIncrement,
    PipelineSession,
    PipelineState,
    StageStats,
)
from repro.events.base import Event, EventKind
from repro.events.cep import SequencePattern
from repro.events.detectors import ZoneWatch
from repro.events.pol import PatternOfLife
from repro.forecasting.kalmanpredict import PredictionWithUncertainty
from repro.fusion.association import MultiSourceTracker
from repro.persist.checkpoint import (
    CheckpointError,
    CheckpointManifest,
    config_fingerprint,
    read_checkpoint,
)
from repro.simulation.scenario import ScenarioRun
from repro.simulation.world import Port, REGIONAL_PORTS
from repro.storage.store import TrajectoryStore
from repro.storage.triples import TripleStore
from repro.trajectory.compression import compression_ratio
from repro.trajectory.points import Trajectory
from repro.visual.cube import SpatioTemporalCube
from repro.visual.overview import SituationMonitor, SituationOverview

__all__ = [
    "DARK_RENDEZVOUS",
    "MaritimePipeline",
    "PipelineIncrement",
    "PipelineResult",
    "StageStats",
]


@dataclass
class PipelineResult:
    """Everything the pipeline produced for one scenario window."""

    stages: list[StageStats]
    trajectories: list[Trajectory]
    synopses: list[Trajectory]
    events: list[Event]
    complex_events: list[Event]
    forecasts: dict[int, list[PredictionWithUncertainty]]
    store: TrajectoryStore
    triples: TripleStore
    cube: SpatioTemporalCube
    overview: SituationOverview | None
    pol: PatternOfLife
    monitor: SituationMonitor
    decoder_stats: dict = field(default_factory=dict)
    #: Multi-source fused picture; ``None`` when the scenario carried no
    #: secondary sensors.
    fused: MultiSourceTracker | None = None

    def stage(self, name: str) -> StageStats:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    def events_of(self, kind: EventKind) -> list[Event]:
        return [e for e in self.events if e.kind is kind]

    def summary(self) -> str:
        lines = ["stage            in        out     records/s"]
        for stage in self.stages:
            rate = (
                f"{stage.throughput_per_s:>13.0f}"
                if stage.seconds > 0
                else f"{'n/a':>13}"
            )
            lines.append(
                f"{stage.name:<14}{stage.n_in:>8}{stage.n_out:>10}{rate}"
            )
        lines.append(
            f"events: {len(self.events)} primitive, "
            f"{len(self.complex_events)} complex; "
            f"forecasts for {len(self.forecasts)} vessels"
        )
        return "\n".join(lines)


#: The default complex pattern: silence then a rendezvous nearby — the
#: classic covert-transfer signature (example of §3.1/§4).
DARK_RENDEZVOUS = SequencePattern(
    name="dark_rendezvous",
    sequence=(EventKind.GAP, EventKind.RENDEZVOUS),
    window_s=4 * 3600.0,
    same_vessel=True,
    max_radius_m=80_000.0,
)


class MaritimePipeline:
    """The Figure 2 infrastructure, end to end — replay or live."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        ports: list[Port] | None = None,
        cep_patterns: list[SequencePattern] | None = None,
        zones: list[ZoneWatch] | None = None,
    ) -> None:
        self.config = (config or PipelineConfig()).validate()
        self.ports = ports if ports is not None else REGIONAL_PORTS
        self.cep_patterns = (
            cep_patterns if cep_patterns is not None else [DARK_RENDEZVOUS]
        )
        #: Zones of interest watched by the detect stage (§3.1 zone events).
        self.zones = zones or []

    # -- sessions -------------------------------------------------------------

    def new_session(
        self,
        specs: dict | None = None,
        weather=None,
        pol_split_t: float | None = None,
        keep_products: bool = True,
    ) -> PipelineSession:
        """A fresh incremental session over this pipeline's configuration."""
        state = PipelineState(
            config=self.config,
            ports=self.ports,
            zones=self.zones,
            cep_patterns=self.cep_patterns,
            specs=specs,
            weather=weather,
            pol_split_t=pol_split_t,
            keep_products=keep_products,
        )
        return PipelineSession(state)

    # -- crash recovery -------------------------------------------------------

    def fingerprint(self) -> str:
        """The logical-configuration fingerprint sessions of this
        pipeline write into their checkpoints."""
        return config_fingerprint(
            self.config, self.ports, self.zones, self.cep_patterns
        )

    def restore_session(
        self, path: str
    ) -> "tuple[PipelineSession, CheckpointManifest]":
        """Rebuild a session from a checkpoint file.

        Verifies the snapshot's configuration fingerprint against this
        pipeline's — config (minus the ``workers``/``batch_decode``
        performance knobs), ports, zones and CEP patterns must all
        match, or detector semantics would silently change mid-track —
        then loads every state section into a fresh session.  The
        session runs under *this* pipeline's ``config.workers``:
        per-vessel state is re-partitioned on load, so a snapshot from a
        4-worker run restores into a 1-worker session and vice versa.

        Returns ``(session, manifest)``; the manifest carries the
        watermark and recorded source positions the caller needs for
        catch-up replay (:meth:`repro.monitor.MaritimeMonitor.restore`
        wires that up end to end).
        """
        manifest, sections = read_checkpoint(path)
        expected = self.fingerprint()
        if manifest.config_fingerprint != expected:
            raise CheckpointError(
                f"checkpoint {path} was written under a different "
                f"logical configuration (fingerprint "
                f"{manifest.config_fingerprint[:12]}… != this pipeline's "
                f"{expected[:12]}…): the config (ignoring workers/"
                "batch_decode), ports, zones and CEP patterns must match "
                "the writing session's — restoring under different "
                "detector semantics would corrupt every open track"
            )
        session = self.new_session()
        session.state.load_snapshot(sections)
        return session, manifest

    # -- batch replay ---------------------------------------------------------

    def process(self, run: ScenarioRun) -> PipelineResult:
        """Run the full pipeline over a scenario's observable feed.

        A thin replay driver: one ``feed`` with the whole feed, then
        ``flush`` — the same stages ``run_live`` drives tick by tick.
        """
        session = self.new_session(
            specs=run.specs,
            weather=run.weather,
            pol_split_t=self._pol_split(run),
            keep_products=True,
        )
        session.feed(
            run.observations,
            radar_contacts=run.radar_contacts,
            lrit_reports=run.lrit_reports,
            build_overview=False,
        )
        session.flush(build_overview=False)
        return self.result(session)

    def _pol_split(self, run: ScenarioRun) -> float:
        return run.t_start + self.config.pol_training_fraction * (
            run.t_end - run.t_start
        )

    def result(self, session: PipelineSession) -> PipelineResult:
        """Collect the classic batch result from a flushed session."""
        state = session.state
        # Keep trajectory/synopsis pairs aligned while restoring the
        # deterministic (mmsi, t_start) order the batch API promised.
        pairs = sorted(
            zip(state.trajectories, state.synopses),
            key=lambda pair: (pair[0].mmsi, pair[0].t_start),
        )
        trajectories = [p[0] for p in pairs]
        synopses = [p[1] for p in pairs]
        overview = session.overview.snapshot(state)
        return PipelineResult(
            stages=session.stages,
            trajectories=trajectories,
            synopses=synopses,
            events=sorted(state.events, key=lambda e: e.t_start),
            complex_events=list(state.complex_events),
            forecasts=dict(state.forecasts),
            store=state.store,
            triples=state.triples,
            cube=state.cube,
            overview=overview,
            pol=state.pol,
            monitor=state.monitor,
            decoder_stats=dict(state.decoder.stats),
            fused=state.fused,
        )

    # -- live streaming -------------------------------------------------------

    def run_live(
        self,
        stream,
        tick_s: float = 60.0,
        specs: dict | None = None,
        weather=None,
        pol_split_t: float | None = None,
        radar_contacts=(),
        lrit_reports=(),
        keep_products: bool = False,
        session: PipelineSession | None = None,
    ):
        """Consume an observation stream incrementally.

        ``stream`` is any iterable of
        :class:`~repro.simulation.receivers.Observation` in reception
        order; it is sliced into micro-batches of ``tick_s`` of
        *reception* time, and one
        :class:`~repro.core.stages.PipelineIncrement` is yielded per
        batch, then one final increment for the end-of-stream flush.
        State stays bounded: per-vessel entries are evicted by age and
        products ship in the increments instead of accumulating
        (``keep_products=True`` restores warehousing for replays that
        still want a :class:`PipelineResult` afterwards).
        """
        if tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if session is None:
            session = self.new_session(
                specs=specs,
                weather=weather,
                pol_split_t=pol_split_t,
                keep_products=keep_products,
            )
        sensors_pending = True

        def _sensors():
            nonlocal sensors_pending
            if sensors_pending:
                sensors_pending = False
                return radar_contacts, lrit_reports
            return (), ()

        batch: list = []
        batch_end: float | None = None
        for obs in stream:
            if batch_end is None:
                batch_end = obs.t_received + tick_s
            if obs.t_received >= batch_end and batch:
                radar, lrit = _sensors()
                yield session.feed(
                    batch, radar_contacts=radar, lrit_reports=lrit
                )
                batch = []
                while obs.t_received >= batch_end:
                    batch_end += tick_s
            batch.append(obs)
        if batch or (
            sensors_pending and (len(radar_contacts) or len(lrit_reports))
        ):
            radar, lrit = _sensors()
            yield session.feed(
                batch, radar_contacts=radar, lrit_reports=lrit
            )
        yield session.flush()

    def replay_live(
        self,
        run: ScenarioRun,
        tick_s: float = 60.0,
        keep_products: bool = False,
    ):
        """Drive :meth:`run_live` from a simulated scenario's feed, with
        the scenario's sensors and the replay's pattern-of-life split —
        the incremental twin of :meth:`process` for the same run.
        """
        return self.run_live(
            run.observations,
            tick_s=tick_s,
            specs=run.specs,
            weather=run.weather,
            pol_split_t=self._pol_split(run),
            radar_contacts=run.radar_contacts,
            lrit_reports=run.lrit_reports,
            keep_products=keep_products,
        )

    # -- metrics --------------------------------------------------------------

    def mean_compression_ratio(self, result: PipelineResult) -> float:
        """Aggregate synopsis compression achieved by the synopses stage."""
        pairs = [
            (original, synopsis)
            for original, synopsis in zip(result.trajectories, result.synopses)
            if len(original) > 0
        ]
        if not pairs:
            return 0.0
        return sum(
            compression_ratio(original, synopsis) for original, synopsis in pairs
        ) / len(pairs)
