"""Pipeline configuration."""

from dataclasses import dataclass, field

from repro.events.rendezvous import RendezvousConfig
from repro.trajectory.reconstruction import ReconstructionConfig


@dataclass
class PipelineConfig:
    """Every knob of the integrated pipeline in one place.

    Defaults reproduce the paper's regional surveillance setting; the
    benchmarks override individual fields (e.g. ``synopsis_threshold_m``
    sweeps in E1).
    """

    #: Reorder buffer bound for out-of-order reception (satellite latency).
    max_lateness_s: float = 400.0
    #: Trajectory cleaning rules.
    reconstruction: ReconstructionConfig = field(
        default_factory=ReconstructionConfig
    )
    #: Dead-reckoning synopsis threshold; 0 disables compression.
    synopsis_threshold_m: float = 120.0
    #: Gap detector: minimum silence to report.  900 s is ~90 missed
    #: reports for a vessel underway — unambiguous, yet short enough to
    #: catch real dark episodes.
    gap_min_s: float = 900.0
    #: Rendezvous detection parameters.
    rendezvous: RendezvousConfig = field(default_factory=RendezvousConfig)
    #: Loitering: minimum dwell away from ports.
    loiter_min_s: float = 1800.0
    #: Train the pattern-of-life model on the first fraction of the window
    #: and monitor the rest.
    pol_training_fraction: float = 0.5
    #: Forecast horizons evaluated by the forecasting stage (seconds).
    forecast_horizons_s: tuple[float, ...] = (300.0, 900.0, 1800.0)
    #: Aggregation cube resolution.
    cube_cell_deg: float = 0.1
    cube_time_bucket_s: float = 3600.0
    #: Minimum fixes for a segment to participate in analytics.
    min_segment_points: int = 5

    # -- incremental stage runtime (batch replay and live share these) ----
    #: Collision screening cadence: pairs are screened at every instant of
    #: the absolute ``k * period`` grid the watermark crosses, so results
    #: depend on the feed and the config — never on micro-batch size.
    collision_screen_period_s: float = 300.0
    #: Fixes older than this never enter a collision screen.
    collision_max_state_age_s: float = 900.0
    #: A dangerous pair re-alarms only after this long.
    collision_suppress_s: float = 1800.0
    #: Tracked per-vessel runtime entries (current states, spoofing state,
    #: rendezvous samplers, fused track fixes) are evicted this long after
    #: a vessel falls silent.  Must exceed ``reconstruction.gap_timeout_s``
    #: (shorter would split segments the reconstructor still considers
    #: open) and ``collision_max_state_age_s``.
    vessel_ttl_s: float = 6 * 3600.0
    #: Silences longer than this are not reported as gap events — the
    #: vessel is treated as new — bounding how long per-vessel gap heads
    #: are retained.
    gap_head_ttl_s: float = 24 * 3600.0
    #: The CEP engine keeps primitive events this long past each pattern
    #: window to absorb detection latency (a gap is only discovered when
    #: the silence ends).  Events later than this may miss matches.
    cep_event_lateness_s: float = 4 * 3600.0
    #: Live streams have no known end: train pattern-of-life on this much
    #: leading data, then monitor (replays compute the split from the
    #: scenario window via ``pol_training_fraction`` instead).
    live_pol_training_s: float = 3600.0
    #: Cap on retained situation-monitor alarms (None = keep all).
    monitor_max_alarms: int | None = None
