"""Pipeline configuration.

:class:`PipelineConfig` is a plain dataclass, but its fields carry
cross-field invariants the docstrings always promised (eviction horizons
must outlive the detectors that read through them).  They are now
*enforced*: :meth:`PipelineConfig.validate` checks every documented
invariant and :class:`~repro.core.pipeline.MaritimePipeline` calls it on
construction, so a bad knob fails loudly at configuration time instead
of silently splitting segments hours into a live run.  Derive variants
with :meth:`replace` or build from a flat mapping (CLI flags, JSON
profiles) with :meth:`from_overrides` — both validate.
"""

import dataclasses
from dataclasses import dataclass, field

from repro.events.rendezvous import RendezvousConfig
from repro.trajectory.reconstruction import ReconstructionConfig


class ConfigError(ValueError):
    """A :class:`PipelineConfig` violates its documented invariants."""


def _apply_overrides(config, overrides: dict, prefix: str):
    """Rebuild a (possibly frozen) dataclass with dotted-key overrides."""
    valid = {f.name for f in dataclasses.fields(config)}
    direct: dict = {}
    nested: dict[str, dict] = {}
    for key, value in overrides.items():
        head, dot, rest = str(key).partition(".")
        if head not in valid:
            raise ConfigError(f"unknown config field '{prefix}{key}'")
        if dot:
            nested.setdefault(head, {})[rest] = value
        else:
            direct[head] = value
    for head, sub in nested.items():
        base = direct.get(head, getattr(config, head))
        if not dataclasses.is_dataclass(base):
            raise ConfigError(
                f"config field {prefix}{head!r} is not a nested config"
            )
        direct[head] = _apply_overrides(base, sub, prefix=f"{prefix}{head}.")
    return dataclasses.replace(config, **direct)


@dataclass
class PipelineConfig:
    """Every knob of the integrated pipeline in one place.

    Defaults reproduce the paper's regional surveillance setting; the
    benchmarks override individual fields (e.g. ``synopsis_threshold_m``
    sweeps in E1).
    """

    #: Reorder buffer bound for out-of-order reception (satellite latency).
    max_lateness_s: float = 400.0
    #: Trajectory cleaning rules.
    reconstruction: ReconstructionConfig = field(
        default_factory=ReconstructionConfig
    )
    #: Dead-reckoning synopsis threshold; 0 disables compression.
    synopsis_threshold_m: float = 120.0
    #: Gap detector: minimum silence to report.  900 s is ~90 missed
    #: reports for a vessel underway — unambiguous, yet short enough to
    #: catch real dark episodes.
    gap_min_s: float = 900.0
    #: Rendezvous detection parameters.
    rendezvous: RendezvousConfig = field(default_factory=RendezvousConfig)
    #: Loitering: minimum dwell away from ports.
    loiter_min_s: float = 1800.0
    #: Train the pattern-of-life model on the first fraction of the window
    #: and monitor the rest.
    pol_training_fraction: float = 0.5
    #: Forecast horizons evaluated by the forecasting stage (seconds).
    forecast_horizons_s: tuple[float, ...] = (300.0, 900.0, 1800.0)
    #: Aggregation cube resolution.
    cube_cell_deg: float = 0.1
    cube_time_bucket_s: float = 3600.0
    #: Minimum fixes for a segment to participate in analytics.
    min_segment_points: int = 5
    #: Decode AIS payloads with the vectorised micro-batch decoder
    #: (:mod:`repro.ais.batch`).  Products are bit-identical either way
    #: — the batch path only accepts what it can prove clean and routes
    #: everything else through the scalar decoder — so ``False`` exists
    #: for parity testing and for profiling the scalar path, not for
    #: correctness.  Ignored (scalar decode) when numpy is unavailable.
    batch_decode: bool = True

    # -- incremental stage runtime (batch replay and live share these) ----
    #: Collision screening cadence: pairs are screened at every instant of
    #: the absolute ``k * period`` grid the watermark crosses, so results
    #: depend on the feed and the config — never on micro-batch size.
    collision_screen_period_s: float = 300.0
    #: Fixes older than this never enter a collision screen.
    collision_max_state_age_s: float = 900.0
    #: A dangerous pair re-alarms only after this long.
    collision_suppress_s: float = 1800.0
    #: Tracked per-vessel runtime entries (current states, spoofing state,
    #: rendezvous samplers, fused track fixes) are evicted this long after
    #: a vessel falls silent.  Must exceed ``reconstruction.gap_timeout_s``
    #: (shorter would split segments the reconstructor still considers
    #: open) and ``collision_max_state_age_s``.
    vessel_ttl_s: float = 6 * 3600.0
    #: Silences longer than this are not reported as gap events — the
    #: vessel is treated as new — bounding how long per-vessel gap heads
    #: are retained.
    gap_head_ttl_s: float = 24 * 3600.0
    #: The CEP engine keeps primitive events this long past each pattern
    #: window to absorb detection latency (a gap is only discovered when
    #: the silence ends).  Events later than this may miss matches.
    #: ``"auto"`` (the default) derives the allowance from the emission
    #: latency actually observed — an EWMA of ``watermark - t_start`` at
    #: feed time, clamped to ``[cep_lateness_floor_s,
    #: cep_lateness_cap_s]`` and answering the cap until the first
    #: event, so an idle stream never expires more aggressively than the
    #: old static default.  An explicit number stays fully static.
    cep_event_lateness_s: "float | str" = "auto"
    #: Clamp bounds for the adaptive CEP lateness (``"auto"`` only).
    #: The cap doubles as the pre-observation default and equals the old
    #: static ``cep_event_lateness_s`` value.
    cep_lateness_floor_s: float = 900.0
    cep_lateness_cap_s: float = 4 * 3600.0
    #: Soft ceiling on the total entry count ``size_report()`` sums (the
    #: state a checkpoint must carry).  The session surfaces it as the
    #: named ``"state-size"`` health probe: exceeding the ceiling
    #: degrades that probe's status (one alarm per increment while
    #: over), it never sheds state.  ``None`` disables the alarm; the
    #: probe still reports sizes.
    state_size_soft_limit: int | None = 1_000_000
    #: Live streams have no known end: train pattern-of-life on this much
    #: leading data, then monitor (replays compute the split from the
    #: scenario window via ``pol_training_fraction`` instead).
    live_pol_training_s: float = 3600.0
    #: Cap on retained situation-monitor alarms (None = keep all).
    monitor_max_alarms: int | None = None
    #: Worker shards for the per-vessel phase (decode payloads, track
    #: reconstruction, synopses, forecasts, per-vessel spoofing
    #: detectors).  Records route by ``hash(mmsi) % workers``; the
    #: cross-vessel phase (collision screens, rendezvous sweeps,
    #: association/fusion, CEP, overview) always runs serially at the
    #: watermark barrier.  ``1`` (the default) keeps the runtime
    #: single-threaded; any N yields the identical event/forecast/cube
    #: products.  The shard count is fixed when a session is created.
    workers: int = 1

    # -- construction and checking ----------------------------------------

    def validate(self) -> "PipelineConfig":
        """Enforce the documented invariants; returns ``self``.

        Raises :class:`ConfigError` listing *every* violation at once —
        an operator fixing a profile should not play whack-a-mole.
        """
        problems: list[str] = []

        def numeric(name: str, value) -> bool:
            # JSON/CLI profiles love to hand strings in; report them as
            # config errors instead of raising bare TypeError mid-check.
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                problems.append(f"{name} must be a number (got {value!r})")
                return False
            return True

        def positive(name: str, value) -> None:
            if numeric(name, value) and not value > 0:
                problems.append(f"{name} must be positive (got {value!r})")

        def non_negative(name: str, value) -> None:
            if numeric(name, value) and not value >= 0:
                problems.append(f"{name} must be >= 0 (got {value!r})")

        non_negative("max_lateness_s", self.max_lateness_s)
        non_negative("synopsis_threshold_m", self.synopsis_threshold_m)
        positive("gap_min_s", self.gap_min_s)
        positive("loiter_min_s", self.loiter_min_s)
        positive("cube_cell_deg", self.cube_cell_deg)
        positive("cube_time_bucket_s", self.cube_time_bucket_s)
        positive("collision_screen_period_s", self.collision_screen_period_s)
        positive("collision_max_state_age_s", self.collision_max_state_age_s)
        non_negative("collision_suppress_s", self.collision_suppress_s)
        positive("vessel_ttl_s", self.vessel_ttl_s)
        positive("gap_head_ttl_s", self.gap_head_ttl_s)
        if self.cep_event_lateness_s != "auto":
            non_negative("cep_event_lateness_s", self.cep_event_lateness_s)
        positive("cep_lateness_floor_s", self.cep_lateness_floor_s)
        positive("cep_lateness_cap_s", self.cep_lateness_cap_s)
        if (
            isinstance(self.cep_lateness_floor_s, (int, float))
            and isinstance(self.cep_lateness_cap_s, (int, float))
            and not isinstance(self.cep_lateness_floor_s, bool)
            and not isinstance(self.cep_lateness_cap_s, bool)
            and self.cep_lateness_cap_s < self.cep_lateness_floor_s
        ):
            problems.append(
                f"cep_lateness_cap_s ({self.cep_lateness_cap_s!r}) must be "
                f">= cep_lateness_floor_s ({self.cep_lateness_floor_s!r})"
            )
        if self.state_size_soft_limit is not None and (
            numeric("state_size_soft_limit", self.state_size_soft_limit)
            and self.state_size_soft_limit < 1
        ):
            problems.append(
                "state_size_soft_limit must be None or >= 1 "
                f"(got {self.state_size_soft_limit!r})"
            )
        non_negative("live_pol_training_s", self.live_pol_training_s)
        if numeric(
            "pol_training_fraction", self.pol_training_fraction
        ) and not 0.0 <= self.pol_training_fraction <= 1.0:
            problems.append(
                "pol_training_fraction must be in [0, 1] "
                f"(got {self.pol_training_fraction!r})"
            )
        if numeric(
            "min_segment_points", self.min_segment_points
        ) and self.min_segment_points < 2:
            problems.append(
                "min_segment_points must be >= 2 "
                f"(got {self.min_segment_points!r})"
            )
        if not self.forecast_horizons_s:
            problems.append("forecast_horizons_s must not be empty")
        elif all(
            numeric(f"forecast_horizons_s[{i}]", h)
            for i, h in enumerate(self.forecast_horizons_s)
        ) and any(h <= 0 for h in self.forecast_horizons_s):
            problems.append(
                "forecast_horizons_s must all be positive "
                f"(got {self.forecast_horizons_s!r})"
            )
        if self.monitor_max_alarms is not None and (
            numeric("monitor_max_alarms", self.monitor_max_alarms)
            and self.monitor_max_alarms < 1
        ):
            problems.append(
                "monitor_max_alarms must be None or >= 1 "
                f"(got {self.monitor_max_alarms!r})"
            )
        if not isinstance(self.batch_decode, bool):
            problems.append(
                f"batch_decode must be a bool (got {self.batch_decode!r})"
            )
        if isinstance(self.workers, bool) or not isinstance(self.workers, int):
            problems.append(
                f"workers must be an integer >= 1 (got {self.workers!r})"
            )
        elif self.workers < 1:
            problems.append(
                f"workers must be >= 1 (got {self.workers!r})"
            )
        # Nested configs: dotted overrides ("reconstruction.min_dt_s")
        # build these through from_overrides(), so a bad nested value
        # must fail at construction like any top-level one.
        rec = self.reconstruction
        positive("reconstruction.max_speed_knots", rec.max_speed_knots)
        non_negative("reconstruction.min_dt_s", rec.min_dt_s)
        positive("reconstruction.gap_timeout_s", rec.gap_timeout_s)
        if isinstance(rec.max_consecutive_rejects, bool) or \
                not isinstance(rec.max_consecutive_rejects, int):
            problems.append(
                "reconstruction.max_consecutive_rejects must be an "
                f"integer >= 1 (got {rec.max_consecutive_rejects!r})"
            )
        elif rec.max_consecutive_rejects < 1:
            problems.append(
                "reconstruction.max_consecutive_rejects must be >= 1 "
                f"(got {rec.max_consecutive_rejects!r})"
            )
        rdv = self.rendezvous
        positive("rendezvous.max_distance_m", rdv.max_distance_m)
        non_negative("rendezvous.max_speed_knots", rdv.max_speed_knots)
        positive("rendezvous.min_duration_s", rdv.min_duration_s)
        non_negative("rendezvous.port_exclusion_m", rdv.port_exclusion_m)
        positive("rendezvous.step_s", rdv.step_s)
        if rdv.index_backend not in ("auto", "grid", "rtree"):
            problems.append(
                "rendezvous.index_backend must be one of 'auto', 'grid', "
                f"'rtree' (got {rdv.index_backend!r})"
            )
        # Cross-field horizons: eviction must outlive every reader that
        # looks through the evicted state (see the field docstrings).
        # Only comparable once both sides passed the numeric checks.
        ttl = self.vessel_ttl_s
        gap_timeout = self.reconstruction.gap_timeout_s
        state_age = self.collision_max_state_age_s
        comparable = all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in (ttl, gap_timeout, state_age)
        )
        if comparable and ttl < gap_timeout:
            problems.append(
                f"vessel_ttl_s ({ttl!r}) must be >= "
                f"reconstruction.gap_timeout_s ({gap_timeout!r}): shorter "
                "would evict segments the reconstructor still considers open"
            )
        if comparable and ttl < state_age:
            problems.append(
                f"vessel_ttl_s ({ttl!r}) must be >= "
                f"collision_max_state_age_s ({state_age!r}): shorter would "
                "evict fixes the collision screen still wants to read"
            )
        if problems:
            raise ConfigError(
                "invalid PipelineConfig:\n  - " + "\n  - ".join(problems)
            )
        return self

    def replace(self, **overrides) -> "PipelineConfig":
        """A validated copy with the given fields replaced."""
        return dataclasses.replace(self, **overrides).validate()

    @classmethod
    def from_overrides(
        cls, overrides: dict | None = None, /, **kwargs
    ) -> "PipelineConfig":
        """Build from defaults plus a flat mapping of overrides.

        Nested fields use dotted keys (``"reconstruction.gap_timeout_s"``)
        — the shape CLI flags and JSON profiles naturally produce, which
        callers used to hand-roll with attribute assignment.  Unknown
        keys raise :class:`ConfigError`; the result is validated.
        """
        merged = dict(overrides or {})
        merged.update(kwargs)
        return _apply_overrides(cls(), merged, prefix="").validate()
