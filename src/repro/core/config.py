"""Pipeline configuration."""

from dataclasses import dataclass, field

from repro.events.rendezvous import RendezvousConfig
from repro.trajectory.reconstruction import ReconstructionConfig


@dataclass
class PipelineConfig:
    """Every knob of the integrated pipeline in one place.

    Defaults reproduce the paper's regional surveillance setting; the
    benchmarks override individual fields (e.g. ``synopsis_threshold_m``
    sweeps in E1).
    """

    #: Reorder buffer bound for out-of-order reception (satellite latency).
    max_lateness_s: float = 400.0
    #: Trajectory cleaning rules.
    reconstruction: ReconstructionConfig = field(
        default_factory=ReconstructionConfig
    )
    #: Dead-reckoning synopsis threshold; 0 disables compression.
    synopsis_threshold_m: float = 120.0
    #: Gap detector: minimum silence to report.  900 s is ~90 missed
    #: reports for a vessel underway — unambiguous, yet short enough to
    #: catch real dark episodes.
    gap_min_s: float = 900.0
    #: Rendezvous detection parameters.
    rendezvous: RendezvousConfig = field(default_factory=RendezvousConfig)
    #: Loitering: minimum dwell away from ports.
    loiter_min_s: float = 1800.0
    #: Train the pattern-of-life model on the first fraction of the window
    #: and monitor the rest.
    pol_training_fraction: float = 0.5
    #: Forecast horizons evaluated by the forecasting stage (seconds).
    forecast_horizons_s: tuple[float, ...] = (300.0, 900.0, 1800.0)
    #: Aggregation cube resolution.
    cube_cell_deg: float = 0.1
    cube_time_bucket_s: float = 3600.0
    #: Minimum fixes for a segment to participate in analytics.
    min_segment_points: int = 5
