"""Detect stage: every §3.1 detector, ported to incremental form.

This is a *cross-vessel phase* stage: it runs serially at the watermark
barrier over outcomes merged from the worker shards.  Per accepted fix:
pattern-of-life training or monitoring, rendezvous sampling, the current
per-vessel state table (the spoofing indicators — teleports, identity
clashes — were already computed on the owning shard and are published
from ``outcome.vessel_events`` here).  Per completed segment: gap
detection (stitched across segments through per-vessel track heads),
loitering, zone events, pattern-of-life episode scoring.  Per watermark
advance: rendezvous sweeps and periodic collision screens on absolute
time grids.  Every primitive event feeds the order-insensitive CEP
engine as it is discovered; completed complex events come back in the
same call.
"""

from repro.core.stages.base import Stage
from repro.core.stages.state import PipelineState, RecordOutcome
from repro.events.base import Event
from repro.events.cep import event_key
from repro.events.detectors import (
    detect_gaps,
    detect_loitering,
    detect_zone_events,
)
from repro.trajectory.points import Trajectory


class DetectStage(Stage):
    """Incremental event recognition over record outcomes."""

    name = "detect"
    state_reads = ("config", "ports", "zones", "watermark", "keep_products")
    state_writes = (
        "pol_split_t", "current", "pol", "gap_heads", "rendezvous",
        "collisions", "cep", "cep_lateness", "events", "complex_events",
    )

    def feed(
        self,
        state: PipelineState,
        outcomes: list[RecordOutcome],
        upstream_events: list[Event] = (),
    ) -> tuple[list[Event], list[Event]]:
        """Returns ``(new_primitive_events, new_complex_events)``.

        ``upstream_events`` carries events another stage discovered this
        batch (fusion's uncorrelated tracks) so they join the CEP feed.
        """
        events: list[Event] = []
        config = state.config
        if state.pol_split_t is None and outcomes:
            # Live stream with no declared window: train on the leading
            # ``live_pol_training_s`` of event time, then monitor.
            state.pol_split_t = outcomes[0].t + config.live_pol_training_s
        for outcome in outcomes:
            # Teleports and identity clashes were detected on the owning
            # shard (per-vessel phase) in this same record order; the
            # barrier publishes them here.
            if outcome.vessel_events:
                events.extend(outcome.vessel_events)
            point = outcome.accepted
            if point is not None:
                state.current.put(outcome.mmsi, point.t, point)
                if (
                    point.t <= state.pol_split_t
                    and point.sog_knots is not None
                    and point.cog_deg is not None
                ):
                    state.pol.observe(
                        point.lat, point.lon, point.sog_knots, point.cog_deg
                    )
                state.rendezvous.feed(
                    outcome.mmsi, point, outcome.new_segment
                )
            for segment in outcome.completed:
                events.extend(self._on_segment(state, segment))
            # Watermark-driven sweeps, advanced per record so results
            # never depend on micro-batch boundaries.  Each detector
            # publishes the earliest watermark at which advancing could
            # do anything (``next_due``), so the common case — no grid
            # instant crossed — skips the call entirely; the gate
            # depends only on detector state and ``outcome.t``, never
            # on batch slicing.
            if state.rendezvous.next_due() <= outcome.t:
                events.extend(state.rendezvous.advance(outcome.t))
            if state.collisions.next_due() <= outcome.t:
                events.extend(
                    state.collisions.advance(outcome.t, state.current)
                )
        complex_events = self._publish(state, events, upstream_events)
        self.stats.n_in += sum(
            len(s) for o in outcomes for s in o.completed
        )
        self.stats.n_out += len(events) + len(complex_events)
        return events, complex_events

    def flush(
        self,
        state: PipelineState,
        outcomes: list[RecordOutcome],
        upstream_events: list[Event] = (),
    ) -> tuple[list[Event], list[Event]]:
        """End of stream: score the final segments, close every pending
        rendezvous instant and run."""
        events: list[Event] = []
        for outcome in outcomes:
            for segment in outcome.completed:
                events.extend(self._on_segment(state, segment))
        events.extend(state.rendezvous.flush())
        complex_events = self._publish(state, events, upstream_events)
        self.stats.n_in += sum(
            len(s) for o in outcomes for s in o.completed
        )
        self.stats.n_out += len(events) + len(complex_events)
        return events, complex_events

    # -- per-segment detectors --------------------------------------------

    def _on_segment(
        self, state: PipelineState, segment: Trajectory
    ) -> list[Event]:
        config = state.config
        events: list[Event] = []
        # Gaps on the stitched per-vessel timeline: the reconstructor
        # splits exactly at long silences, so the interesting gap lies
        # *between* this segment and the previous one's last fix.
        head = state.gap_heads.get(
            segment.mmsi,
            now=segment.t_start,
            max_age_s=config.gap_head_ttl_s,
        )
        if head is not None:
            merged = Trajectory(segment.mmsi, [head] + segment.points)
        else:
            merged = segment
        events.extend(detect_gaps(merged, min_gap_s=config.gap_min_s))
        state.gap_heads.put(segment.mmsi, segment.t_end, segment.points[-1])

        events.extend(
            detect_loitering(
                segment, state.ports, min_duration_s=config.loiter_min_s
            )
        )
        if state.zones:
            events.extend(detect_zone_events(segment, state.zones))

        # Pattern-of-life scoring on the monitored part of the segment.
        # By the time a segment completes, every training-era fix has
        # been observed (records arrive in time order), so the model is
        # frozen before the first score — whatever the batching.
        tail = segment.slice_time(state.pol_split_t, float("inf"))
        if tail is not None and len(tail) >= 2:
            events.extend(state.pol.detect_anomalies(tail))
        return events

    # -- event publication -------------------------------------------------

    def _publish(
        self,
        state: PipelineState,
        events: list[Event],
        upstream_events: list[Event],
    ) -> list[Event]:
        """Accumulate, feed CEP (order-insensitive), expire old buffers."""
        complex_events: list[Event] = []
        all_new = list(upstream_events) + events
        adaptive = state.cep_lateness
        for event in sorted(all_new, key=event_key):
            if adaptive is not None:
                # Emission latency relative to the buffer key: how far
                # behind the watermark this event's start time is when
                # the engine first sees it — exactly the lateness the
                # expiry horizon must absorb.
                adaptive.observe(state.watermark - event.t_start)
            complex_events.extend(state.cep.feed(event))
        # Patterns without their own lateness_s inherit the global
        # allowance: the adaptive tracker's current value, or the
        # explicitly configured static knob.
        state.cep.expire(
            state.watermark,
            default_lateness_s=(
                adaptive.value() if adaptive is not None
                else state.config.cep_event_lateness_s
            ),
        )
        if state.keep_products:
            state.events.extend(all_new)
            state.complex_events.extend(complex_events)
        return complex_events
