"""Named health probes polled once per pipeline increment.

Generalises the session's former ``alarm_probes`` list: infrastructure
health checks — a child feed dying, the runtime ownership sanitizer
catching a cross-shard access — register as *named* probes on a
:class:`HealthRegistry`; the session polls the registry after the
overview stage, merges whatever alarms the probes raise into the
increment's ``new_alarms`` (so they reach subscribers through the same
delivery path as model alarms), and the registry keeps a per-probe
:class:`HealthStatus` cache so the end-of-run report can say which
checks ran, how often they fired, and what they last said.

A probe is a callable ``probe(watermark) -> list[MonitoringAlarm]``.
Probes must be cheap and must not raise: they run on the barrier thread
inside the increment loop.
"""

from dataclasses import dataclass, field

__all__ = ["HealthRegistry", "HealthStatus"]


@dataclass
class HealthStatus:
    """Cached result history for one named probe."""

    name: str
    #: Watermark of the most recent poll; ``-inf`` before the first.
    last_polled_t: float = float("-inf")
    n_polls: int = 0
    #: Alarms raised by this probe over the whole run.
    n_alarms_total: int = 0
    #: What the probe returned at the most recent poll (often empty —
    #: healthy probes are silent).
    last_alarms: list = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """No alarm at the most recent poll (vacuously true unpolled)."""
        return not self.last_alarms

    def describe(self) -> str:
        state = "ok" if self.healthy else f"ALARM x{len(self.last_alarms)}"
        return (
            f"{self.name}: {state} "
            f"({self.n_alarms_total} alarm(s) over {self.n_polls} poll(s))"
        )


class HealthRegistry:
    """Named ``probe(watermark) -> list[MonitoringAlarm]`` callables.

    Registration order is poll order, so alarm ordering within an
    increment is deterministic.  Re-registering a name replaces the
    probe but keeps its accumulated :class:`HealthStatus`.
    """

    def __init__(self) -> None:
        self._probes: dict = {}
        self._status: dict = {}

    def register(self, name: str, probe) -> None:
        """Add (or replace) the probe polled under ``name``."""
        self._probes[name] = probe
        self._status.setdefault(name, HealthStatus(name))

    def unregister(self, name: str) -> None:
        self._probes.pop(name, None)

    def names(self) -> list:
        return list(self._probes)

    def __len__(self) -> int:
        return len(self._probes)

    def __contains__(self, name: str) -> bool:
        return name in self._probes

    def poll(self, watermark: float) -> list:
        """Run every probe once; all alarms raised, in register order."""
        merged: list = []
        for name, probe in self._probes.items():
            alarms = list(probe(watermark))
            status = self._status[name]
            status.last_polled_t = watermark
            status.n_polls += 1
            status.n_alarms_total += len(alarms)
            status.last_alarms = alarms
            merged.extend(alarms)
        return merged

    def report(self) -> dict:
        """``{name: HealthStatus}`` for every probe ever registered."""
        return dict(self._status)

    def describe(self) -> str:
        if not self._status:
            return "no health probes registered"
        return "; ".join(
            status.describe() for status in self._status.values()
        )
