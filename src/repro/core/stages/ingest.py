"""Ingest stages: decode, reorder, reconstruct.

These turn raw received sentences into the per-record
:class:`~repro.core.stages.state.RecordOutcome` sequence every downstream
stage consumes.  All three wrap incremental components (the AIS decoder,
the watermark reorder buffer, the track reconstructor), so feeding one
observation or a million through ``feed`` leaves identical state.
"""

from repro.ais.types import ClassBPositionReport, PositionReport
from repro.core.stages.base import Stage
from repro.core.stages.state import PipelineState, RecordOutcome
from repro.simulation.receivers import Observation
from repro.streaming.stream import Record
from repro.trajectory.points import TrackPoint


class DecodeStage(Stage):
    """NMEA sentences through the AIS codec (multipart state included)."""

    name = "decode"

    def feed(
        self, state: PipelineState, observations: list[Observation]
    ) -> list[tuple[float, object]]:
        decoded: list[tuple[float, object]] = []
        for obs in observations:
            message = state.decoder.feed(obs.sentence, received_at=obs.t_received)
            if message is not None:
                decoded.append((obs.t_transmitted, message))
        self.stats.n_in += len(observations)
        self.stats.n_out += len(decoded)
        return decoded

    def flush(self, state: PipelineState) -> list[tuple[float, object]]:
        return []


class ReorderStage(Stage):
    """Restore event-time order up to the bounded lateness (satellite
    delay); advances ``state.watermark`` as records are released."""

    name = "reorder"

    def feed(
        self, state: PipelineState, decoded: list[tuple[float, object]]
    ) -> list[Record]:
        records = state.reorderer.feed(
            Record(t=t, key=msg.mmsi, value=msg) for t, msg in decoded
        )
        if records:
            state.watermark = records[-1].t
        self.stats.n_in += len(decoded)
        self.stats.n_out += len(records)
        return records

    def flush(self, state: PipelineState) -> list[Record]:
        records = state.reorderer.flush()
        if records:
            state.watermark = records[-1].t
        self.stats.n_out += len(records)
        return records


class ReconstructStage(Stage):
    """Per-vessel track cleaning; emits one outcome per record, carrying
    the raw fix (spoofing evidence), the accepted fix, and any segments
    the record closed."""

    name = "reconstruct"

    def feed(
        self, state: PipelineState, records: list[Record]
    ) -> list[RecordOutcome]:
        reconstructor = state.reconstructor
        min_points = state.config.min_segment_points
        outcomes: list[RecordOutcome] = []
        for record in records:
            message = record.value
            outcome = RecordOutcome(t=record.t)
            if isinstance(
                message, (PositionReport, ClassBPositionReport)
            ) and message.has_position:
                outcome.mmsi = message.mmsi
                outcome.raw_fix = TrackPoint(
                    record.t, message.lat, message.lon,
                    message.sog_knots, message.cog_deg,
                )
                accepted = reconstructor.add(message, record.t)
                if accepted is not None:
                    outcome.accepted = accepted
                    outcome.new_segment = (
                        reconstructor.open_segment_length(message.mmsi) == 1
                    )
                for segment in reconstructor.drain_finished():
                    if len(segment) >= min_points:
                        outcome.completed.append(segment)
            outcomes.append(outcome)
            self.stats.n_in += 1
            self.stats.n_out += sum(len(s) for s in outcome.completed)
        return outcomes

    def flush(self, state: PipelineState) -> list[RecordOutcome]:
        """Close every open segment; returns one synthetic outcome."""
        min_points = state.config.min_segment_points
        outcome = RecordOutcome(t=state.watermark)
        for segment in state.reconstructor.finish():
            if len(segment) >= min_points:
                outcome.completed.append(segment)
        self.stats.n_out += sum(len(s) for s in outcome.completed)
        return [outcome]
