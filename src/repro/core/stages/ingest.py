"""Ingest stages: decode, reorder, reconstruct.

These turn raw received sentences into the per-record
:class:`~repro.core.stages.state.RecordOutcome` sequence every downstream
stage consumes.  All three wrap incremental components (the AIS decoder,
the watermark reorder buffer, the track reconstructor), so feeding one
observation or a million through ``feed`` leaves identical state.

Decode and reconstruct carry the runtime's *per-vessel phase* and accept
an optional :class:`~repro.core.stages.shard.ShardPool`:

- decode splits into serial multipart assembly (fragments must pass
  through one assembler in arrival order — NMEA sources tag incomplete
  fragments with MMSI 0, so payload content, not the observation header,
  decides identity) and stateless payload decoding, which fans out over
  contiguous chunks and reassembles in arrival order;
- reconstruct routes released records to worker shards by
  ``shard_of(mmsi, n)``; each shard runs the whole per-vessel chain
  (cleaning, segment closure, synopsis compression, forecasts, teleport
  and identity-clash detection) on its own
  :class:`~repro.core.stages.shard.ShardState`, and the outcomes merge
  back into global release order before the cross-vessel phase.

Reorder stays a single global operator on purpose: the DROP policy
compares each arrival against the *global* frontier, so per-shard
frontiers would change which late records survive.
"""

from collections import Counter

from repro.ais.batch import decode_staged
from repro.ais.types import ClassBPositionReport, PositionReport
from repro.core.config import PipelineConfig
from repro.core.stages.base import Stage
from repro.core.stages.shard import ShardPool, ShardState, shard_of
from repro.core.stages.state import PipelineState, RecordOutcome
from repro.forecasting.kalmanpredict import KalmanPredictor
from repro.simulation.receivers import Observation
from repro.streaming.stream import Record
from repro.trajectory.compression import dead_reckoning_compress
from repro.trajectory.points import TrackPoint, Trajectory

#: Below this many staged items a batch runs inline: thread handoff
#: would cost more than it saves.  Purely an execution choice — results
#: never depend on it (decode chunks are stateless, shard routing is
#: fixed by the key).
_MIN_PARALLEL_ITEMS = 16


class DecodeStage(Stage):
    """NMEA sentences through the AIS codec (multipart state included).

    Payload decoding runs through :func:`repro.ais.batch.decode_staged`:
    one vectorised pass per micro-batch for the hot message types, with
    the scalar decoder handling every rejection and rare type so stats
    and products are identical whichever path ran.
    ``config.batch_decode = False`` forces the scalar loop everywhere.
    """

    name = "decode"
    phase = "vessel"
    state_reads = ("config",)
    state_writes = ("decoder",)

    def feed(
        self,
        state: PipelineState,
        observations: list[Observation],
        pool: ShardPool | None = None,
    ) -> list[tuple[float, object]]:
        decoder = state.decoder
        force_scalar = not state.config.batch_decode
        # Serial half: framing, checksums, multipart reassembly.
        staged: list[tuple[float, str, int, float]] = []
        for obs in observations:
            ready = decoder.assemble(obs.sentence)
            if ready is not None:
                staged.append(
                    (obs.t_transmitted, ready[0], ready[1], obs.t_received)
                )
        # Stateless half: payload decoding, order-preserved.
        if pool is None or len(staged) < _MIN_PARALLEL_ITEMS:
            decoded = _decode_chunk(staged, decoder.stats, force_scalar)[0]
        else:
            decoded = []
            for chunk_decoded, counts in pool.run([
                (lambda c=chunk: _decode_chunk(c, Counter(), force_scalar))
                for chunk in pool.split(staged)
            ]):
                decoded.extend(chunk_decoded)
                decoder.stats.update(counts)
        self.stats.n_in += len(observations)
        self.stats.n_out += len(decoded)
        return decoded

    def flush(self, state: PipelineState) -> list[tuple[float, object]]:
        return []


def _decode_chunk(
    staged: list[tuple[float, str, int, float]],
    stats: Counter,
    force_scalar: bool = False,
) -> tuple[list[tuple[float, object]], Counter]:
    decoded = decode_staged(staged, stats, force_scalar=force_scalar)
    return decoded, stats


class ReorderStage(Stage):
    """Restore event-time order up to the bounded lateness (satellite
    delay); advances ``state.watermark`` as records are released."""

    name = "reorder"
    phase = "barrier"
    state_writes = ("reorderer", "watermark")

    def feed(
        self, state: PipelineState, decoded: list[tuple[float, object]]
    ) -> list[Record]:
        records = state.reorderer.feed(
            Record(t=t, key=msg.mmsi, value=msg) for t, msg in decoded
        )
        if records:
            state.watermark = records[-1].t
        self.stats.n_in += len(decoded)
        self.stats.n_out += len(records)
        return records

    def flush(self, state: PipelineState) -> list[Record]:
        records = state.reorderer.flush()
        if records:
            state.watermark = records[-1].t
        self.stats.n_out += len(records)
        return records


class ReconstructStage(Stage):
    """The sharded per-vessel phase: track cleaning plus everything else
    that keys on MMSI alone (synopses, forecasts, teleport/clash
    detection).  Emits one outcome per record, merged back into global
    release order whatever the shard count."""

    name = "reconstruct"
    phase = "vessel"
    state_reads = ("config", "predictor", "watermark")
    state_writes = ("shards",)

    def feed(
        self,
        state: PipelineState,
        records: list[Record],
        pool: ShardPool | None = None,
    ) -> list[RecordOutcome]:
        shards = state.shards
        n = len(shards)
        if n == 1:
            outcomes = _vessel_phase(
                state.config, state.predictor, shards[0], records
            )
        else:
            # Route by key; each shard sees its vessels' records in
            # release order, so per-vessel state evolves identically to
            # the single-shard run.
            parts: list[list[Record]] = [[] for _ in range(n)]
            indices: list[list[int]] = [[] for _ in range(n)]
            for position, record in enumerate(records):
                shard_index = shard_of(record.key, n)
                parts[shard_index].append(record)
                indices[shard_index].append(position)
            tasks = [
                (lambda s=shard, p=part: _vessel_phase(
                    state.config, state.predictor, s, p
                ))
                for shard, part in zip(shards, parts)
            ]
            sanitizer = getattr(state, "sanitizer", None)
            if sanitizer is not None:
                # Each task runs inside its shard's ownership window —
                # the sanitizer then rejects any touch of another
                # shard's state or of the barrier-owned tables, whether
                # the task runs pooled or inline.
                tasks = [
                    sanitizer.wrap_task(i, task)
                    for i, task in enumerate(tasks)
                ]
            if pool is not None and len(records) >= _MIN_PARALLEL_ITEMS:
                results = pool.run(tasks)
            else:
                results = [task() for task in tasks]
            # Barrier merge: outcomes return to global release order.
            outcomes: list[RecordOutcome] = [None] * len(records)  # type: ignore[list-item]
            for shard_indices, shard_outcomes in zip(indices, results):
                for position, outcome in zip(shard_indices, shard_outcomes):
                    outcomes[position] = outcome
        for outcome in outcomes:
            self.stats.n_in += 1
            self.stats.n_out += sum(len(s) for s in outcome.completed)
        return outcomes

    def flush(
        self, state: PipelineState, pool: ShardPool | None = None
    ) -> list[RecordOutcome]:
        """Close every open segment; returns one synthetic outcome."""
        min_points = state.config.min_segment_points
        segments: list[Trajectory] = []
        for shard in state.shards:
            segments.extend(shard.reconstructor.finish())
        # finish() sorts within each shard; re-sort the union so the
        # merged order matches the single-shard runtime exactly.
        segments = [
            s for s in sorted(segments, key=lambda tr: (tr.mmsi, tr.t_start))
            if len(s) >= min_points
        ]
        outcome = RecordOutcome(t=state.watermark, completed=segments)
        if pool is not None and len(segments) >= _MIN_PARALLEL_ITEMS:
            chunks = pool.split(segments)
            for synopses, forecasts in pool.run([
                (lambda c=chunk: _segment_products(
                    state.config, state.predictor, c
                ))
                for chunk in chunks
            ]):
                outcome.synopses.extend(synopses)
                outcome.forecasts.extend(forecasts)
        else:
            outcome.synopses, outcome.forecasts = _segment_products(
                state.config, state.predictor, segments
            )
        self.stats.n_out += sum(len(s) for s in segments)
        return [outcome]


def _vessel_phase(
    config: PipelineConfig,
    predictor: KalmanPredictor,
    shard: ShardState,
    records: list[Record],
) -> list[RecordOutcome]:
    """One shard's per-vessel work over its slice of a micro-batch.

    Touches only ``shard`` (exclusive) plus read-only config and the
    stateless predictor — safe to run concurrently across shards.
    """
    reconstructor = shard.reconstructor
    min_points = config.min_segment_points
    outcomes: list[RecordOutcome] = []
    for record in records:
        message = record.value
        outcome = RecordOutcome(t=record.t)
        if isinstance(
            message, (PositionReport, ClassBPositionReport)
        ) and message.has_position:
            outcome.mmsi = message.mmsi
            outcome.raw_fix = TrackPoint(
                record.t, message.lat, message.lon,
                message.sog_knots, message.cog_deg,
            )
            # The raw fix and the reconstructor's candidate point are the
            # same values; hand the one TrackPoint to both (it is frozen,
            # so sharing is safe) instead of building it twice.
            accepted = reconstructor.add_point(message.mmsi, outcome.raw_fix)
            if accepted is not None:
                outcome.accepted = accepted
                outcome.new_segment = (
                    reconstructor.open_segment_length(message.mmsi) == 1
                )
            for segment in reconstructor.drain_finished():
                if len(segment) >= min_points:
                    outcome.completed.append(segment)
            teleport = shard.teleports.feed(message.mmsi, outcome.raw_fix)
            if teleport is not None:
                outcome.vessel_events.append(teleport)
            outcome.vessel_events.extend(
                shard.clashes.feed(message.mmsi, outcome.raw_fix)
            )
            if outcome.completed:
                outcome.synopses, outcome.forecasts = _segment_products(
                    config, predictor, outcome.completed
                )
        outcomes.append(outcome)
    return outcomes


def _segment_products(
    config: PipelineConfig,
    predictor: KalmanPredictor,
    segments: list[Trajectory],
) -> tuple[list[Trajectory], list[list]]:
    """Synopsis + forecast set per segment (stateless, any thread)."""
    threshold = config.synopsis_threshold_m
    synopses = [
        dead_reckoning_compress(segment, threshold) if threshold > 0
        else segment
        for segment in segments
    ]
    forecasts = [
        predictor.predict_many(segment, config.forecast_horizons_s)
        for segment in segments
    ]
    return synopses, forecasts
