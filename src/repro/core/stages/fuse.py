"""Fuse stage: radar contacts and LRIT onto the AIS picture (§2.4).

The batch pipeline associated every radar sweep against the *complete*
AIS picture — including fixes from the future of the sweep.  The
incremental port is strictly causal: a contact at time ``s`` is gated
against tracks with a fix inside ``[s - max_track_age_s, s]`` and the
dead-reckoned position from the newest fix at or before ``s``.  Contacts
wait in a queue until the AIS watermark passes their sweep time, so the
association result depends only on the feed — never on micro-batching.

Sustained anonymous radar tracks (the dark-vessel candidates of §2.4) are
reported the moment they cross the evidence threshold, not at end of
run, so a live operator hears about them while they are still paintable.
"""

from repro.core.stages.base import Stage
from repro.core.stages.state import PipelineState, RecordOutcome
from repro.events.base import Event, EventKind
from repro.fusion.association import (
    AssociationConfig,
    MultiSourceTracker,
    _predict,
)
from repro.simulation.sensors import RadarContact
from repro.spatial import build_index
from repro.trajectory.points import TrackPoint

#: Evidence thresholds for reporting an anonymous track (same numbers the
#: batch pipeline used at end of run).
_UNCORRELATED_MIN_CONTACTS = 5
_UNCORRELATED_MIN_DURATION_S = 300.0


class FuseStage(Stage):
    """Causal multi-sensor fusion over the record stream."""

    name = "fuse"
    state_reads = ("config",)
    state_writes = (
        "fused", "radar_queue", "lrit_queue", "uncorrelated_emitted",
    )

    def enqueue(
        self,
        state: PipelineState,
        radar_contacts,
        lrit_reports,
    ) -> None:
        """Buffer sensor data until the AIS watermark reaches it."""
        if radar_contacts:
            state.radar_queue.extend(radar_contacts)
            state.radar_queue.sort(key=lambda c: c.t)
        if lrit_reports:
            state.lrit_queue.extend(lrit_reports)
            state.lrit_queue.sort(key=lambda r: r.t)
        if (state.radar_queue or state.lrit_queue) and state.fused is None:
            state.fused = MultiSourceTracker(
                head_max_age_s=state.config.vessel_ttl_s
            )

    def feed(
        self, state: PipelineState, outcomes: list[RecordOutcome]
    ) -> list[Event]:
        if state.fused is None:
            return []
        events: list[Event] = []
        for outcome in outcomes:
            if outcome.accepted is not None:
                state.fused.track_for(outcome.mmsi).add_sorted(
                    outcome.accepted
                )
            events.extend(self._drain(state, outcome.t))
        self.stats.n_out += len(events)
        return events

    def flush(self, state: PipelineState) -> list[Event]:
        if state.fused is None:
            return []
        events = self._drain(state, float("inf"))
        self.stats.n_out += len(events)
        return events

    # -- sensor draining ---------------------------------------------------

    def _drain(self, state: PipelineState, watermark: float) -> list[Event]:
        events: list[Event] = []
        lrit = state.lrit_queue
        consumed = 0
        while consumed < len(lrit) and lrit[consumed].t <= watermark:
            report = lrit[consumed]
            consumed += 1
            state.fused.track_for(report.mmsi).add_sorted(
                TrackPoint(report.t, report.lat, report.lon, source="lrit")
            )
            self.stats.n_in += 1
        if consumed:
            del lrit[:consumed]
        radar = state.radar_queue
        consumed = 0
        while consumed < len(radar) and radar[consumed].t <= watermark:
            # One sweep = every queued contact at the same instant, so a
            # track takes at most one return per scan (greedy GNN).
            sweep_t = radar[consumed].t
            sweep: list[RadarContact] = []
            while consumed < len(radar) and radar[consumed].t == sweep_t:
                sweep.append(radar[consumed])
                consumed += 1
            self.stats.n_in += len(sweep)
            events.extend(self._associate_sweep(state, sweep_t, sweep))
        if consumed:
            del radar[:consumed]
        return events

    # -- causal association ------------------------------------------------

    def _associate_sweep(
        self, state: PipelineState, sweep_t: float, sweep: list[RadarContact]
    ) -> list[Event]:
        fused = state.fused
        config: AssociationConfig = fused.config
        predictions: dict[int, tuple[float, float]] = {}
        for track in fused.identified_tracks:
            causal_n = track.index_at_or_before(sweep_t)
            if causal_n == 0:
                continue
            last = track.points[causal_n - 1]
            if sweep_t - last.t > config.max_track_age_s:
                continue
            predicted = _predict(track.points[:causal_n], sweep_t)
            if predicted is not None:
                predictions[track.mmsi] = predicted
        index = build_index(
            [
                (mmsi, lat, lon)
                for mmsi, (lat, lon) in predictions.items()
            ],
            cell_size_m=config.gate_m,
            hint=config.index_backend,
        )
        candidate_pairs: list[tuple[float, int, int]] = []
        for ci, contact in enumerate(sweep):
            for mmsi, dist in index.radius_query(
                contact.lat, contact.lon, config.gate_m
            ):
                candidate_pairs.append((dist, ci, mmsi))
        candidate_pairs.sort()
        used_contacts: set[int] = set()
        used_tracks: set[int] = set()
        for __, ci, mmsi in candidate_pairs:
            if ci in used_contacts or mmsi in used_tracks:
                continue
            used_contacts.add(ci)
            used_tracks.add(mmsi)
            contact = sweep[ci]
            fused.track_for(mmsi).add_sorted(
                TrackPoint(contact.t, contact.lat, contact.lon, source="radar")
            )
        events: list[Event] = []
        for ci, contact in enumerate(sweep):
            if ci in used_contacts:
                continue
            point = TrackPoint(
                contact.t, contact.lat, contact.lon, source="radar"
            )
            track = fused.nearest_anonymous_track(contact)
            if track is not None:
                fused.extend_anonymous(track, point)
            else:
                track = fused.open_anonymous(point)
            event = self._maybe_uncorrelated(state, track)
            if event is not None:
                events.append(event)
        return events

    def _maybe_uncorrelated(
        self, state: PipelineState, track
    ) -> Event | None:
        """Report an anonymous track the moment it becomes sustained."""
        if track.track_id in state.uncorrelated_emitted:
            return None
        if len(track.points) < _UNCORRELATED_MIN_CONTACTS:
            return None
        first, last = track.points[0], track.points[-1]
        duration = last.t - first.t
        if duration < _UNCORRELATED_MIN_DURATION_S:
            return None
        state.uncorrelated_emitted.add(track.track_id)
        mid = track.points[len(track.points) // 2]
        return Event(
            kind=EventKind.UNCORRELATED_TRACK,
            t_start=first.t,
            t_end=last.t,
            mmsis=(),
            lat=mid.lat,
            lon=mid.lon,
            confidence=min(1.0, len(track.points) / 50.0),
            details={
                "n_contacts": len(track.points),
                "duration_s": duration,
            },
        )
