"""Stage protocol and per-stage accounting for the incremental runtime.

A stage is an object with ``feed(state, inputs) -> outputs`` over
micro-batches and a ``flush(state)`` at end of stream.  Stages share one
:class:`~repro.core.stages.state.PipelineState`; everything a stage
remembers between feeds lives there, so a replayed batch and a live
stream running the same stages see exactly the same state evolution.

Two invariants every stage must keep (they are what makes
``process(run)`` and ``run_live(...)`` provably equivalent):

1. **Record-driven logic.**  Any decision tied to time advances with the
   watermark *per record*, never per ``feed`` call — a stage may not
   behave differently because the same records arrived in one batch or
   in fifty.
2. **Causality.**  Anything computed "at time t" may only read state
   derived from records with event time <= t.

With the sharded runtime a third invariant joins them:

3. **Phase discipline.**  A stage declares its :attr:`Stage.phase`:
   ``"vessel"`` work may touch only the owning shard's
   :class:`~repro.core.stages.shard.ShardState` (plus read-only
   config/stateless helpers) and may run concurrently across shards;
   ``"cross"`` work runs serially at the watermark barrier over the
   merged outcome order; ``"barrier"`` marks the single global reorder
   frontier between them.
"""

import time
from dataclasses import dataclass


@dataclass
class StageStats:
    name: str
    n_in: int = 0
    n_out: int = 0
    seconds: float = 0.0
    #: Records currently deferred inside the stage (reorder buffer,
    #: undrained sensor queues, CEP buffers) — the stage's queue depth
    #: right now.  Most stages hold nothing between feeds and stay 0.
    pending: int = 0
    #: High-water mark of :attr:`pending` over the session.
    max_pending: int = 0

    @property
    def throughput_per_s(self) -> float:
        # 0.0, not inf, for zero-duration stages: the value must survive
        # ``json.dumps`` in benchmark result files.
        return self.n_in / self.seconds if self.seconds > 0 else 0.0

    def record_pending(self, depth: int) -> None:
        """Update the queue-depth gauge (and its high-water mark)."""
        self.pending = depth
        if depth > self.max_pending:
            self.max_pending = depth


class Stage:
    """Base class: named, with cumulative :class:`StageStats`."""

    name = "stage"
    #: Which side of the watermark barrier the stage runs on — see the
    #: module docstring.  ``"cross"`` (serial, merged order) is the safe
    #: default; stages override with ``"vessel"`` or ``"barrier"``.
    phase = "cross"
    #: Ownership manifest: the ``PipelineState`` fields this stage reads
    #: (beyond what it writes) and the fields it owns the writes to.
    #: Mandatory for vessel-phase stages — ``repro analyze`` (rule
    #: ``phase-ownership``) checks every method body against it, and the
    #: single-writer rule checks that no field appears in two stages'
    #: ``state_writes``.
    state_reads: tuple = ()
    state_writes: tuple = ()

    def __init__(self) -> None:
        self.stats = StageStats(self.name)

    class _Timer:
        def __init__(self, stats: StageStats) -> None:
            self.stats = stats

        def __enter__(self) -> "Stage._Timer":
            self._t0 = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            self.stats.seconds += time.perf_counter() - self._t0

    def timed(self) -> "_Timer":
        """Context manager accumulating wall time into the stage stats."""
        return Stage._Timer(self.stats)
