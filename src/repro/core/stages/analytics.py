"""Analytics stages: synopses, integrate, forecast, overview.

Each consumes completed segments (or accepted fixes) and feeds the
accumulating analytical products: compressed synopses, the trajectory
store and aggregation cube, the semantic triple store, per-vessel
forecasts, and the situation monitor/overview.
"""

from repro.core.stages.base import Stage
from repro.core.stages.state import PipelineState, RecordOutcome
from repro.forecasting.kalmanpredict import PredictionWithUncertainty
from repro.geo import BoundingBox
from repro.trajectory.compression import dead_reckoning_compress
from repro.trajectory.points import Trajectory
from repro.visual.overview import MonitoringAlarm, SituationOverview


class SynopsesStage(Stage):
    """Dead-reckoning compression of each completed segment (§2.1).

    The compression itself runs in the per-vessel phase on the owning
    shard (``RecordOutcome.synopses``, aligned 1:1 with ``completed``);
    this stage collects the precomputed synopses at the barrier —
    falling back to computing inline for callers that hand it bare
    segments.
    """

    name = "synopses"
    phase = "vessel"
    state_reads = ("config",)

    def feed(
        self,
        state: PipelineState,
        segments: list[Trajectory],
        precomputed: list[Trajectory] | None = None,
    ) -> list[Trajectory]:
        if precomputed is not None and len(precomputed) == len(segments):
            synopses = list(precomputed)
        else:
            threshold = state.config.synopsis_threshold_m
            if threshold > 0:
                synopses = [
                    dead_reckoning_compress(segment, threshold)
                    for segment in segments
                ]
            else:
                synopses = list(segments)
        self.stats.n_in += sum(len(s) for s in segments)
        self.stats.n_out += sum(len(s) for s in synopses)
        return synopses


class IntegrateStage(Stage):
    """Store, cube and semantic annotation over new synopses (§2.2, §2.5).

    The cube always accumulates (it is a compact aggregate and the
    cross-path equivalence witness); the trajectory store and triple
    store only grow when the session keeps products — live sessions ship
    synopses in increments instead of warehousing them.
    """

    name = "integrate"
    state_reads = ("specs", "keep_products", "triples")
    state_writes = ("store", "cube", "annotator")

    def start(self, state: PipelineState) -> None:
        """Annotate known vessel identities once per session."""
        if state.keep_products:
            for spec in state.specs.values():
                state.annotator.annotate_vessel(spec)

    def feed(
        self, state: PipelineState, synopses: list[Trajectory]
    ) -> None:
        for synopsis in synopses:
            spec = state.specs.get(synopsis.mmsi)
            category = spec.ship_type.name.lower() if spec else "unknown"
            for point in synopsis:
                state.cube.add(point.lat, point.lon, point.t, category)
            if state.keep_products:
                state.store.add(synopsis)
                state.annotator.annotate_trajectory(synopsis)
        self.stats.n_in += sum(len(s) for s in synopses)
        self.stats.n_out = len(state.triples)


class ForecastStage(Stage):
    """Per-vessel predicted positions with uncertainty (§4); the latest
    completed qualifying segment wins.

    Predictions are fitted in the per-vessel phase on the owning shard
    (``RecordOutcome.forecasts``, aligned 1:1 with ``completed``); this
    stage assigns them in merged release order, so "latest wins" means
    the same segment for every worker count.  Outcomes lacking
    precomputed sets (hand-built ones) are predicted inline.
    """

    name = "forecast"
    phase = "vessel"
    state_reads = ("config", "predictor")
    state_writes = ("forecasts",)

    def feed(
        self, state: PipelineState, outcomes: list[RecordOutcome]
    ) -> dict[int, list[PredictionWithUncertainty]]:
        updated: dict[int, list[PredictionWithUncertainty]] = {}
        n_in = 0
        for outcome in outcomes:
            if len(outcome.forecasts) == len(outcome.completed):
                pairs = zip(outcome.completed, outcome.forecasts)
            else:
                pairs = (
                    (segment, state.predictor.predict_many(
                        segment, state.config.forecast_horizons_s
                    ))
                    for segment in outcome.completed
                )
            for segment, predictions in pairs:
                state.forecasts[segment.mmsi] = predictions
                updated[segment.mmsi] = predictions
                n_in += 1
        self.stats.n_in += n_in
        self.stats.n_out = sum(len(v) for v in state.forecasts.values())
        return updated


class OverviewStage(Stage):
    """Situation monitoring and the operational-picture snapshot (§3.2).

    Every accepted fix in the monitoring era (past the pattern-of-life
    split) is scored against the normalcy model; the overview snapshot is
    built on demand from the live per-vessel state table.
    """

    name = "overview"
    state_reads = (
        "pol_split_t", "current", "watermark", "config", "events",
        "keep_products",
    )
    state_writes = ("monitor",)

    def feed(
        self, state: PipelineState, outcomes: list[RecordOutcome]
    ) -> list[MonitoringAlarm]:
        alarms: list[MonitoringAlarm] = []
        split = state.pol_split_t
        for outcome in outcomes:
            point = outcome.accepted
            if point is None or split is None or point.t < split:
                continue
            alarm = state.monitor.offer(outcome.mmsi, point)
            if alarm is not None:
                alarms.append(alarm)
        self.stats.n_in = len(state.current)
        self.stats.n_out = len(state.monitor.alarms)
        return alarms

    def snapshot(self, state: PipelineState) -> SituationOverview | None:
        """The current operational picture (age-filtered states)."""
        now = state.watermark
        states = {
            mmsi: point
            for mmsi, point in state.current.items()
            if now - point.t <= state.config.vessel_ttl_s
        }
        if not states:
            return None
        lats = [p.lat for p in states.values()]
        lons = [p.lon for p in states.values()]
        box = BoundingBox(
            max(-90.0, min(lats) - 0.5), min(90.0, max(lats) + 0.5),
            min(lons) - 0.5, max(lons) + 0.5,
        )
        recent = [
            e for e in state.events if e.t_end >= now - 3600.0
        ] if state.keep_products else []
        return SituationOverview.build(
            t=now, box=box, current_states=states, recent_events=recent,
        )
