"""Shared mutable state of the incremental pipeline.

:class:`PipelineState` is the single bag of state every stage reads and
writes: per-vessel track heads, open pattern-of-life histories, CEP
buffers, streaming spatial summaries, the analytical accumulators (store,
cube, triples) and the products a replay collects.  It is created per
session; batch replay and live streaming differ only in how observations
are sliced into ``feed`` calls, never in what lives here.

Ownership rules (documented per field; see also ``src/repro/core/README``):
each field is written by exactly one stage, everything else only reads it.
"""

import dataclasses
from collections.abc import Hashable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.ais.decoder import AisDecoder
from repro.analysis.sanitize import create_sanitizer
from repro.core.config import PipelineConfig
from repro.core.stages.shard import ShardState, shard_of
from repro.events.base import Event
from repro.events.cep import AdaptiveLateness, CepEngine
from repro.events.collision import CollisionRiskConfig, CollisionScreen
from repro.events.pol import PatternOfLife
from repro.events.rendezvous import IncrementalRendezvousDetector
from repro.forecasting.kalmanpredict import KalmanPredictor, PredictionWithUncertainty
from repro.fusion.association import MultiSourceTracker
from repro.semantics.annotate import SemanticAnnotator
from repro.simulation.sensors import LritReport, RadarContact
from repro.simulation.world import Port
from repro.storage.store import TrajectoryStore
from repro.storage.triples import TripleStore
from repro.streaming.watermarks import WatermarkReorderer
from repro.trajectory.points import TrackPoint, Trajectory
from repro.trajectory.reconstruction import ReconstructorStats
from repro.visual.cube import SpatioTemporalCube
from repro.visual.overview import MonitoringAlarm, SituationMonitor, SituationOverview


class TtlTable:
    """Latest-value-per-key table with age-based eviction.

    The per-vessel companion of
    :class:`~repro.spatial.streaming.StreamingGridIndex`: one entry per
    key, each stamped with an event time.  :meth:`purge` drops entries
    older than a horizon in one vectorised scan per call (the table
    holds one entry per key, so a scan is linear in the *fleet*, not in
    the put rate — cheaper at the per-tick barrier than the per-put
    expiry-heap pushes it replaces).  Readers that need exact semantics
    must filter by age themselves (``get`` with ``max_age_s``) —
    purging only bounds memory.
    """

    def __init__(self) -> None:
        self._values: dict[Hashable, Any] = {}
        self._t: dict[Hashable, float] = {}

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._values

    def put(self, key: Hashable, t: float, value: Any) -> None:
        current = self._t.get(key)
        if current is not None and t < current:
            return
        self._t[key] = t
        self._values[key] = value

    def get(self, key: Hashable, now: float | None = None,
            max_age_s: float | None = None) -> Any | None:
        t = self._t.get(key)
        if t is None:
            return None
        if max_age_s is not None and now is not None and now - t > max_age_s:
            return None
        return self._values[key]

    def timestamp(self, key: Hashable) -> float | None:
        return self._t.get(key)

    def items(self) -> Iterator[tuple[Hashable, Any]]:
        return iter(self._values.items())

    def purge(self, before_t: float) -> None:
        stale = [key for key, t in self._t.items() if t < before_t]
        for key in stale:
            del self._t[key]
            del self._values[key]

    def export_entries(self) -> list[tuple]:
        """Every ``(key, t, value)`` entry, sorted by key (checkpointing).

        Sorting makes the export canonical — independent of insertion
        order — so serialising a logically identical table is
        deterministic whatever history produced it.
        """
        return sorted(
            (key, self._t[key], value)
            for key, value in self._values.items()
        )

    def load_entries(self, entries: list[tuple]) -> None:
        """Replace the table's contents with :meth:`export_entries` output.

        A method (not attribute surgery) so restore works through the
        runtime ownership sanitizer's table proxies — the wrapped table
        is loaded *into*, never swapped out from under its guard.
        """
        self._values.clear()
        self._t.clear()
        for key, t, value in entries:
            self._t[key] = t
            self._values[key] = value


@dataclass
class RecordOutcome:
    """What one post-reorder record did to the per-vessel track state."""

    t: float
    mmsi: int | None = None
    #: Every position-carrying message, pre-cleaning (spoofing evidence).
    raw_fix: TrackPoint | None = None
    #: The cleaned fix, when the reconstructor accepted it.
    accepted: TrackPoint | None = None
    #: True when the accepted fix opened a fresh segment (never
    #: interpolate across it).
    new_segment: bool = False
    #: Segments (>= min_segment_points) closed by this record.
    completed: list[Trajectory] = field(default_factory=list)
    #: Per-vessel detector events (teleport then identity clashes, in
    #: record order) — computed on the owning shard, published by the
    #: detect stage at the barrier.
    vessel_events: list[Event] = field(default_factory=list)
    #: Compressed synopses aligned 1:1 with ``completed``.
    synopses: list[Trajectory] = field(default_factory=list)
    #: Forecast sets aligned 1:1 with ``completed`` (one list of
    #: predictions per segment, one entry per configured horizon).
    forecasts: list[list[PredictionWithUncertainty]] = field(
        default_factory=list
    )


@dataclass
class BackpressureMetrics:
    """Where records are waiting, per micro-batch.

    The live path's health gauge: how long the feed call took, how many
    records the reorder stage is holding back for the lateness bound, and
    the depth of every internal queue.  Sources (the TCP client's bounded
    receive queue) contribute their own depth via the session's
    ``queue_probes`` so one increment shows the whole receiver-to-alarm
    path.
    """

    #: Wall-clock seconds this micro-batch spent inside ``feed``/``flush``.
    feed_latency_s: float = 0.0
    #: Records admitted but not yet released by the reorder stage.
    records_deferred: int = 0
    #: Current depth of every internal queue, by name ("reorder",
    #: "radar", "lrit", "cep", plus any probe-supplied entries such as
    #: "source").
    queue_depths: dict[str, int] = field(default_factory=dict)

    @property
    def total_queued(self) -> int:
        return sum(self.queue_depths.values())


@dataclass
class PipelineIncrement:
    """What one micro-batch produced — the unit ``run_live`` yields."""

    t_watermark: float
    n_observations: int = 0
    n_decoded: int = 0
    n_records: int = 0
    new_segments: list[Trajectory] = field(default_factory=list)
    new_synopses: list[Trajectory] = field(default_factory=list)
    new_events: list[Event] = field(default_factory=list)
    new_complex_events: list[Event] = field(default_factory=list)
    #: Vessels whose forecast set was recomputed this batch.
    updated_forecasts: dict[int, list[PredictionWithUncertainty]] = field(
        default_factory=dict
    )
    new_alarms: list[MonitoringAlarm] = field(default_factory=list)
    #: Latest accepted fix per vessel that reported this batch — the
    #: live-position delta consumed by the serve gateway and the JSON
    #: rendering (a vessel appears only in ticks it reported in).
    updated_positions: dict[int, TrackPoint] = field(default_factory=dict)
    overview: SituationOverview | None = None
    seconds: float = 0.0
    #: Queue depths and feed latency for this batch (always populated).
    backpressure: BackpressureMetrics = field(
        default_factory=BackpressureMetrics
    )

    @property
    def throughput_per_s(self) -> float:
        return self.n_records / self.seconds if self.seconds > 0 else 0.0

    def describe(self) -> str:
        return (
            f"watermark={self.t_watermark:.0f}: {self.n_records} records, "
            f"{len(self.new_segments)} segments, "
            f"{len(self.new_events)} events "
            f"(+{len(self.new_complex_events)} complex), "
            f"{len(self.new_alarms)} alarms"
        )


class PipelineState:
    """Everything mutable the stages share for one session."""

    def __init__(
        self,
        config: PipelineConfig,
        ports: list[Port],
        zones: list,
        cep_patterns: list,
        specs: dict | None = None,
        weather=None,
        pol_split_t: float | None = None,
        keep_products: bool = True,
    ) -> None:
        self.config = config
        self.ports = ports
        self.zones = zones
        self.specs = specs or {}
        self.weather = weather
        #: Fixes at or before this train pattern-of-life; later ones are
        #: scored.  ``None`` = derive from the first record plus
        #: ``config.live_pol_training_s``.
        self.pol_split_t = pol_split_t
        #: Replays keep full product lists and the trajectory store; live
        #: sessions ship products in increments and keep state bounded.
        self.keep_products = keep_products

        # -- ingest (decode / reorder stages) -----------------------------
        self.decoder = AisDecoder()
        self.reorderer = WatermarkReorderer(config.max_lateness_s)
        #: Event time of the last record released by the reorder stage.
        self.watermark = float("-inf")

        # -- per-vessel phase (reconstruct stage, sharded) ----------------
        #: Runtime ownership sanitizer (``REPRO_SANITIZE=1``), or
        #: ``None``.  When armed, the shard slices and the shared
        #: per-vessel tables below are wrapped in instrumenting proxies
        #: that assert the two-phase ownership rules on every access.
        self.sanitizer = create_sanitizer()
        #: One state slice per worker; vessels route by
        #: ``shard_of(mmsi, len(shards))``.  The count is fixed for the
        #: session's lifetime — per-vessel state cannot migrate.
        self.shards = [
            ShardState(i, config) for i in range(max(1, config.workers))
        ]
        if self.sanitizer is not None:
            self.shards = [
                self.sanitizer.guard_shard(s) for s in self.shards
            ]

        # -- analytics accumulators (integrate stage) ---------------------
        self.store = TrajectoryStore(
            cell_deg=config.cube_cell_deg,
            time_bucket_s=config.cube_time_bucket_s,
        )
        self.cube = SpatioTemporalCube(
            cell_deg=config.cube_cell_deg,
            time_bucket_s=config.cube_time_bucket_s,
        )
        self.triples = TripleStore()
        self.annotator = SemanticAnnotator(self.triples, ports, weather)

        # -- fusion (fuse stage) ------------------------------------------
        self.fused: MultiSourceTracker | None = None
        self.radar_queue: list[RadarContact] = []
        self.lrit_queue: list[LritReport] = []
        #: Anonymous tracks already reported as UNCORRELATED_TRACK.
        self.uncorrelated_emitted: set[int] = set()

        # -- detection (detect stage) -------------------------------------
        self.pol = PatternOfLife()
        self.cep = CepEngine(list(cep_patterns))
        #: Self-tuning CEP expiry lateness (``cep_event_lateness_s =
        #: "auto"``, the default): an EWMA of observed detector emission
        #: latency, clamped to the configured floor/cap.  ``None`` when
        #: an explicit static value was configured.
        self.cep_lateness = (
            AdaptiveLateness(
                config.cep_lateness_floor_s, config.cep_lateness_cap_s
            )
            if config.cep_event_lateness_s == "auto" else None
        )
        self.current = TtlTable()  # mmsi -> latest accepted TrackPoint
        self.gap_heads = TtlTable()  # mmsi -> last fix of last segment
        if self.sanitizer is not None:
            # Barrier-owned tables: any touch from inside a shard task
            # window is an ownership violation.
            self.current = self.sanitizer.guard_table(
                self.current, "current"
            )
            self.gap_heads = self.sanitizer.guard_table(
                self.gap_heads, "gap_heads"
            )
        self.rendezvous = IncrementalRendezvousDetector(
            ports,
            config.rendezvous,
            close_lag_s=config.reconstruction.gap_timeout_s,
        )
        self.collisions = CollisionScreen(
            period_s=config.collision_screen_period_s,
            max_state_age_s=config.collision_max_state_age_s,
            suppress_s=config.collision_suppress_s,
            config=CollisionRiskConfig(),
        )

        # -- forecasting / monitoring (forecast & overview stages) --------
        self.predictor = KalmanPredictor()
        self.forecasts: dict[int, list[PredictionWithUncertainty]] = {}
        self.monitor = SituationMonitor(
            self.pol, max_alarms=config.monitor_max_alarms
        )

        # -- replay products (only when keep_products) --------------------
        self.trajectories: list[Trajectory] = []
        self.synopses: list[Trajectory] = []
        self.events: list[Event] = []
        self.complex_events: list[Event] = []

    # -- bookkeeping -------------------------------------------------------

    def purge(self) -> None:
        """Evict per-vessel entries that aged past their horizons.

        Purging is memory management only: every reader applies its own
        age rule at read time (or the horizon provably cannot change
        results), so *when* this runs never affects outputs.
        """
        ttl_horizon = self.watermark - self.config.vessel_ttl_s
        self.current.purge(ttl_horizon)
        self.gap_heads.purge(self.watermark - self.config.gap_head_ttl_s)
        for shard in self.shards:
            shard.purge(ttl_horizon)
        self.rendezvous.evict_before(ttl_horizon)
        if self.fused is not None and not self.keep_products:
            # Fused track fixes only serve causal association; anything
            # older than the still-undrained sensor frontier minus the
            # TTL (>= the association age gate) is dead weight.
            frontier = self.watermark
            if self.radar_queue:
                frontier = min(frontier, self.radar_queue[0].t)
            if self.lrit_queue:
                frontier = min(frontier, self.lrit_queue[0].t)
            self.fused.prune_anonymous_before(ttl_horizon)
            for track in self.fused.tracks.values():
                track.prune_before(frontier - self.config.vessel_ttl_s)
            self.uncorrelated_emitted.intersection_update(
                self.fused.tracks.keys()
            )

    def size_report(self) -> dict[str, int]:
        """Sizes of every bounded runtime structure (for memory tests)."""
        return {
            "reorder_buffer": len(self.reorderer),
            "open_segments": sum(
                s.reconstructor.n_open_segments() for s in self.shards
            ),
            "current_states": len(self.current),
            "gap_heads": len(self.gap_heads),
            "teleport_state": sum(len(s.teleports) for s in self.shards),
            "clash_state": sum(len(s.clashes) for s in self.shards),
            "rendezvous_vessels": len(self.rendezvous),
            "rendezvous_instants": self.rendezvous.n_pending_instants(),
            "rendezvous_runs": self.rendezvous.n_open_runs(),
            "cep_buffered": self.cep.buffered(),
            "forecast_vessels": len(self.forecasts),
            "monitor_alarms": len(self.monitor.alarms),
            "fused_tracks": len(self.fused.tracks) if self.fused else 0,
            "fused_points": (
                sum(len(t.points) for t in self.fused.tracks.values())
                if self.fused else 0
            ),
            "radar_queue": len(self.radar_queue),
            "lrit_queue": len(self.lrit_queue),
        }

    # -- durable state ------------------------------------------------------

    def export_snapshot(self) -> dict[str, object]:
        """Every mutable field, grouped into named picklable sections.

        Only callable at a barrier (between ``feed`` calls) — mid-phase
        there is no consistent state to capture; the session enforces
        that.  Objects that must share identity after a restore travel in
        the *same* section (``pol``+``monitor``; the analytics
        accumulators with the annotator that references them), so one
        pickle per section preserves the reference graph.  Per-vessel
        shard state is merged into one MMSI-keyed map, making the
        snapshot independent of the worker count it was written under.
        Set-valued state is exported as sorted lists so a logical state
        always serialises identically.
        """
        merged = {
            "track_states": {},
            "finished": [],
            "stats": ReconstructorStats(),
            "teleports": {},
            "clash_recent": {},
            "clash_suppressed": {},
        }
        for shard in self.shards:
            export = shard.export_vessels()
            merged["track_states"].update(export["tracks"]["states"])
            merged["finished"].extend(export["tracks"]["finished"])
            for stats_field in dataclasses.fields(ReconstructorStats):
                setattr(
                    merged["stats"], stats_field.name,
                    getattr(merged["stats"], stats_field.name)
                    + getattr(export["tracks"]["stats"], stats_field.name),
                )
            merged["teleports"].update(export["teleports"])
            merged["clash_recent"].update(export["clashes"]["recent"])
            merged["clash_suppressed"].update(
                export["clashes"]["suppressed_until"]
            )
        # Canonical order (close order is chronological per vessel, so
        # this keeps each vessel's segments in close order).
        merged["finished"].sort(key=lambda tr: (tr.mmsi, tr.t_start))
        return {
            "ingest": {
                "decoder": self.decoder,
                "reorderer": self.reorderer,
                "watermark": self.watermark,
                "pol_split_t": self.pol_split_t,
                "keep_products": self.keep_products,
            },
            "vessels": merged,
            "tables": {
                "current": self.current.export_entries(),
                "gap_heads": self.gap_heads.export_entries(),
            },
            "detectors": {
                "pol_monitor": (self.pol, self.monitor),
                "rendezvous": self.rendezvous,
                "collisions": self.collisions,
            },
            "cep": {
                "engine": self.cep.export_state(),
                "lateness": self.cep_lateness,
            },
            "fusion": {
                "fused": self.fused,
                "radar_queue": list(self.radar_queue),
                "lrit_queue": list(self.lrit_queue),
                "uncorrelated_emitted": sorted(self.uncorrelated_emitted),
            },
            "analytics": {
                "store": self.store,
                "cube": self.cube,
                "triples": self.triples,
                "annotator": self.annotator,
                "specs": self.specs,
                "weather": self.weather,
            },
            "forecasts": dict(self.forecasts),
            "products": {
                "trajectories": list(self.trajectories),
                "synopses": list(self.synopses),
                "events": list(self.events),
                "complex_events": list(self.complex_events),
            },
        }

    def load_snapshot(self, sections: dict[str, object]) -> None:
        """Restore an :meth:`export_snapshot` into this (fresh) state.

        The state must have been built from the *same* configuration,
        ports, zones and CEP patterns the snapshot was written under
        (the checkpoint layer verifies the fingerprint) — but possibly a
        different ``workers`` count: merged per-vessel state is routed
        back through ``shard_of(mmsi, n)`` for whatever shard count this
        state has.  Sanitizer-guarded objects (shards, the shared
        tables) are loaded *into* via their own methods, never replaced,
        so a sanitized process restores cleanly.
        """
        ingest = sections["ingest"]
        self.decoder = ingest["decoder"]
        self.reorderer = ingest["reorderer"]
        self.watermark = ingest["watermark"]
        self.pol_split_t = ingest["pol_split_t"]
        # The snapshot's retention policy wins: continuing a warehousing
        # replay must keep warehousing, whatever the restoring façade
        # defaults to.
        self.keep_products = ingest["keep_products"]

        vessels = sections["vessels"]
        n = len(self.shards)
        per_shard = [
            {
                "tracks": {
                    "states": {}, "finished": [],
                    # Cumulative counters cannot be split by vessel;
                    # the merged totals live on shard 0 (they are
                    # aggregate diagnostics, never product inputs).
                    "stats": ReconstructorStats(),
                },
                "teleports": {},
                "clashes": {"recent": {}, "suppressed_until": {}},
            }
            for _ in range(n)
        ]
        per_shard[0]["tracks"]["stats"] = vessels["stats"]
        for mmsi, entry in vessels["track_states"].items():
            per_shard[shard_of(mmsi, n)]["tracks"]["states"][mmsi] = entry
        for segment in vessels["finished"]:
            per_shard[shard_of(segment.mmsi, n)]["tracks"]["finished"]\
                .append(segment)
        for mmsi, point in vessels["teleports"].items():
            per_shard[shard_of(mmsi, n)]["teleports"][mmsi] = point
        for mmsi, points in vessels["clash_recent"].items():
            per_shard[shard_of(mmsi, n)]["clashes"]["recent"][mmsi] = points
        for mmsi, deadline in vessels["clash_suppressed"].items():
            per_shard[shard_of(mmsi, n)]["clashes"]["suppressed_until"][
                mmsi] = deadline
        for shard, snapshot in zip(self.shards, per_shard):
            shard.absorb_vessels(snapshot)

        tables = sections["tables"]
        self.current.load_entries(tables["current"])
        self.gap_heads.load_entries(tables["gap_heads"])

        detectors = sections["detectors"]
        self.pol, self.monitor = detectors["pol_monitor"]
        self.rendezvous = detectors["rendezvous"]
        self.collisions = detectors["collisions"]

        cep = sections["cep"]
        self.cep.load_state(cep["engine"])
        self.cep_lateness = cep["lateness"]

        fusion = sections["fusion"]
        self.fused = fusion["fused"]
        self.radar_queue = list(fusion["radar_queue"])
        self.lrit_queue = list(fusion["lrit_queue"])
        self.uncorrelated_emitted = set(fusion["uncorrelated_emitted"])

        analytics = sections["analytics"]
        self.store = analytics["store"]
        self.cube = analytics["cube"]
        self.triples = analytics["triples"]
        self.annotator = analytics["annotator"]
        self.specs = analytics["specs"]
        self.weather = analytics["weather"]

        self.forecasts = dict(sections["forecasts"])
        products = sections["products"]
        self.trajectories = list(products["trajectories"])
        self.synopses = list(products["synopses"])
        self.events = list(products["events"])
        self.complex_events = list(products["complex_events"])
