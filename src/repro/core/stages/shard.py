"""Vessel-partitioned worker shards for the two-phase stage runtime.

The pipeline is embarrassingly parallel *per vessel*: payload decoding
is stateless, and track reconstruction, synopsis compression,
forecasting and the spoofing detectors all key on MMSI.  The runtime
therefore splits each micro-batch into two phases:

- the **per-vessel phase** runs on ``PipelineConfig.workers`` shards.
  Post-reorder records route by ``shard_of(mmsi, n)``; each shard owns a
  :class:`ShardState` — its exclusive slice of the per-vessel state —
  so shard tasks never share mutable state and need no locks.
- the **cross-vessel phase** (collision screens, rendezvous sweeps,
  association/fusion, CEP, pattern-of-life, overview) runs serially at
  the watermark barrier, over the shard outcomes merged back into
  global release order.

Because routing depends only on ``(mmsi, n)`` — never on batch slicing
or thread scheduling — and each vessel's records reach its shard in
release order, the merged outcome sequence is identical for every
worker count: ``workers=N`` reproduces ``workers=1`` product-for-product.

:class:`ShardPool` is the thread pool driving the phase.  Threads (not
processes) keep the shard states in-process and zero-copy; on a
free-threaded interpreter with multiple cores the phase scales toward
core count, under the GIL it degrades gracefully to ~1x.
"""

from concurrent.futures import ThreadPoolExecutor

from repro.core.config import PipelineConfig
from repro.events.spoofing import IdentityClashDetector, TeleportDetector
from repro.trajectory.reconstruction import TrackReconstructor

__all__ = ["ShardState", "ShardPool", "shard_of"]


def shard_of(mmsi: int, n: int) -> int:
    """The shard owning a vessel: ``hash(mmsi) % n``.

    Deterministic in the key and shard count only — MMSI 0 (anonymous
    and not-yet-identified records) is an ordinary key that always lands
    on shard ``hash(0) % n``.
    """
    return hash(mmsi) % n


class ShardState:
    """One worker shard's exclusive slice of the per-vessel state.

    Ownership rule: every structure here is keyed by MMSI and only ever
    touched for vessels with ``shard_of(mmsi, n) == index``, from the
    one task running this shard in the current phase — no locks needed.
    Cross-vessel structures (current-state table, rendezvous samplers,
    fused tracks, pattern-of-life) stay on ``PipelineState``.
    """

    def __init__(self, index: int, config: PipelineConfig) -> None:
        self.index = index
        self.reconstructor = TrackReconstructor(config.reconstruction)
        self.teleports = TeleportDetector(max_pair_dt_s=config.vessel_ttl_s)
        self.clashes = IdentityClashDetector()

    def purge(self, ttl_horizon: float) -> None:
        """Evict per-vessel entries idle past the horizon (memory only)."""
        self.teleports.evict_before(ttl_horizon)
        self.clashes.evict_before(ttl_horizon)
        self.reconstructor.evict_idle(ttl_horizon)

    # -- durable state -----------------------------------------------------

    def export_vessels(self) -> dict:
        """This shard's per-vessel state as plain copies (checkpointing).

        The shape mirrors :meth:`absorb_vessels`'s input.  Checkpoints
        merge the exports of every shard into one per-vessel map keyed by
        MMSI, so a snapshot written under one worker count can be
        re-partitioned (``shard_of(mmsi, new_n)``) under another.
        """
        return {
            "tracks": self.reconstructor.export_state(),
            "teleports": self.teleports.export_state(),
            "clashes": self.clashes.export_state(),
        }

    def absorb_vessels(self, snapshot: dict) -> None:
        """Load an :meth:`export_vessels`-shaped snapshot into this shard.

        The caller (``PipelineState.load_snapshot``) is responsible for
        routing: every MMSI in the snapshot must satisfy
        ``shard_of(mmsi, n) == self.index`` for the session's shard
        count, or the restored vessel would be stranded where no record
        will ever reach it.
        """
        self.reconstructor.load_state(snapshot["tracks"])
        self.teleports.load_state(snapshot["teleports"])
        self.clashes.load_state(snapshot["clashes"])


class ShardPool:
    """A bounded thread pool running per-batch shard tasks.

    ``run`` executes zero-arg callables and returns their results in
    task order (the caller's merge key); the first task runs on the
    calling thread so a single-task batch pays no handoff.  Worker
    exceptions propagate to the caller — a shard failure fails the feed.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="shard"
        )

    def run(self, tasks: list) -> list:
        if not tasks:
            return []
        if len(tasks) == 1:
            return [tasks[0]()]
        futures = [self._executor.submit(task) for task in tasks[1:]]
        results = [tasks[0]()]
        results.extend(future.result() for future in futures)
        return results

    def split(self, items: list) -> list[list]:
        """Contiguous, order-preserving chunks — at most one per worker."""
        if not items:
            return []
        n = min(self.workers, len(items))
        size = -(-len(items) // n)  # ceil division
        return [items[i:i + size] for i in range(0, len(items), size)]

    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)
