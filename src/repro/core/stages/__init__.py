"""The incremental stage runtime behind :class:`~repro.core.MaritimePipeline`.

One set of stages serves both execution modes: ``process(run)`` replays a
finished scenario as a single micro-batch; ``run_live(stream)`` feeds the
same stages tick by tick with bounded state.  See ``src/repro/core/README.md``
for the stage protocol and the state-ownership rules.
"""

from repro.core.stages.base import Stage, StageStats
from repro.core.stages.shard import ShardPool, ShardState, shard_of
from repro.core.stages.state import (
    BackpressureMetrics,
    PipelineIncrement,
    PipelineState,
    RecordOutcome,
    TtlTable,
)
from repro.core.stages.session import PipelineSession
from repro.core.stages.ingest import DecodeStage, ReconstructStage, ReorderStage
from repro.core.stages.analytics import (
    ForecastStage,
    IntegrateStage,
    OverviewStage,
    SynopsesStage,
)
from repro.core.stages.detect import DetectStage
from repro.core.stages.fuse import FuseStage

__all__ = [
    "Stage",
    "StageStats",
    "BackpressureMetrics",
    "PipelineIncrement",
    "PipelineState",
    "PipelineSession",
    "RecordOutcome",
    "ShardPool",
    "ShardState",
    "TtlTable",
    "shard_of",
    "DecodeStage",
    "ReorderStage",
    "ReconstructStage",
    "SynopsesStage",
    "IntegrateStage",
    "FuseStage",
    "DetectStage",
    "ForecastStage",
    "OverviewStage",
]
