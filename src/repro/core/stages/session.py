"""One pipeline run — batch replay or live stream — over the stages.

:class:`PipelineSession` owns a :class:`PipelineState` and one instance
of each stage, and drives them per micro-batch: ``feed`` any number of
times, ``flush`` once, then (for replays) collect state.  Because every
stage is record-driven, the sequence of records — not the slicing into
feeds — determines every product: ``process(run)`` is literally one
``feed`` plus ``flush``.

Downstream consumers attach through :meth:`PipelineSession.subscribe`:
every increment a feed or flush produces is dispatched to the session's
:class:`~repro.sinks.subscription.SubscriptionHub` before it is
returned, carrying :class:`~repro.core.stages.state.BackpressureMetrics`
for the batch.

Execution is two-phase per micro-batch (see
:mod:`~repro.core.stages.shard`): the per-vessel phase (payload decode,
reconstruction, synopses, forecasts, spoofing detectors) fans out over
``config.workers`` shards; its outcomes merge back into global release
order at the watermark barrier, where the cross-vessel phase (fusion,
detection, CEP, overview) runs serially.  ``workers=1`` runs the same
code inline on one shard — products are identical for every count.
"""

import dataclasses
import math
import time

from repro.core.stages.analytics import (
    ForecastStage,
    IntegrateStage,
    OverviewStage,
    SynopsesStage,
)
from repro.core.stages.detect import DetectStage
from repro.core.stages.fuse import FuseStage
from repro.core.stages.health import HealthRegistry
from repro.core.stages.ingest import DecodeStage, ReconstructStage, ReorderStage
from repro.core.stages.shard import ShardPool
from repro.core.stages.state import (
    BackpressureMetrics,
    PipelineIncrement,
    PipelineState,
    RecordOutcome,
)
from repro.persist.checkpoint import (
    CheckpointManifest,
    config_fingerprint,
    write_checkpoint,
)
from repro.sinks.subscription import Subscription, SubscriptionHub
from repro.trajectory.points import TrackPoint
from repro.visual.overview import MonitoringAlarm


def _state_size_probe(state):
    """A health probe holding ``size_report()`` under a soft ceiling.

    Sums every bounded-structure size and alarms once per *crossing* of
    ``config.state_size_soft_limit`` (re-arming when the total falls
    back under), naming the largest tables so the alarm says where the
    memory went — an eviction horizon misconfigured, a feed replaying
    history, a fused picture never pruned.
    """
    limit = state.config.state_size_soft_limit
    above = False

    def probe(watermark: float) -> list[MonitoringAlarm]:
        nonlocal above
        report = state.size_report()
        total = sum(report.values())
        if total <= limit:
            above = False
            return []
        if above:
            return []
        above = True
        top = sorted(report.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        largest = ", ".join(f"{name}={n}" for name, n in top)
        return [
            MonitoringAlarm(
                t=watermark if math.isfinite(watermark) else 0.0,
                mmsi=0, lat=0.0, lon=0.0, score=1.0,
                explanation=(
                    f"state-size: {total} tracked entries exceed the "
                    f"soft limit {limit} (largest: {largest})"
                ),
            )
        ]

    return probe


def _sanitizer_probe(sanitizer):
    """A health probe surfacing recorded ownership violations as alarms.

    Only meaningful under ``REPRO_SANITIZE=report`` (in ``raise`` mode
    the violating access itself throws); each violation becomes one
    infrastructure alarm at the current watermark, drained so a
    violation alarms exactly once.
    """
    def probe(watermark: float) -> list[MonitoringAlarm]:
        return [
            MonitoringAlarm(
                t=watermark if math.isfinite(watermark) else 0.0,
                mmsi=0, lat=0.0, lon=0.0, score=1.0,
                explanation=(
                    "ownership sanitizer: " + violation.describe()
                ),
            )
            for violation in sanitizer.drain()
        ]
    return probe


class PipelineSession:
    """Incremental execution of the Figure 2 pipeline."""

    def __init__(self, state: PipelineState) -> None:
        self.state = state
        self.decode = DecodeStage()
        self.reorder = ReorderStage()
        self.reconstruct = ReconstructStage()
        self.synopses = SynopsesStage()
        self.integrate = IntegrateStage()
        self.fuse = FuseStage()
        self.detect = DetectStage()
        self.forecast = ForecastStage()
        self.overview = OverviewStage()
        self._stages = [
            self.decode, self.reorder, self.reconstruct, self.synopses,
            self.integrate, self.fuse, self.detect, self.forecast,
            self.overview,
        ]
        self._flushed = False
        self.subscriptions = SubscriptionHub()
        #: Extra queue-depth probes merged into each increment's
        #: backpressure metrics; a driver that owns an upstream queue (the
        #: monitor façade with a TCP source) appends a zero-arg callable
        #: returning ``{name: depth}``.
        self.queue_probes: list = []
        #: Named health probes polled once per increment after the
        #: overview stage (``probe(watermark) -> list[MonitoringAlarm]``).
        #: The monitor façade registers infrastructure checks here (a
        #: child feed dying) so their alarms reach subscribers like any
        #: model alarm; per-probe status is cached for the run report.
        self.health = HealthRegistry()
        if state.sanitizer is not None and \
                state.sanitizer.mode == "report":
            # Under REPRO_SANITIZE=report, ownership violations become
            # operational alarms instead of crashes.
            self.health.register(
                "ownership-sanitizer",
                _sanitizer_probe(state.sanitizer),
            )
        if state.config.state_size_soft_limit is not None:
            self.health.register(
                "state-size", _state_size_probe(state)
            )
        #: True while a feed/flush (and its synchronous subscription
        #: callbacks) is on the stack — the window where no consistent
        #: barrier state exists and :meth:`checkpoint` must refuse.
        self._in_feed = False
        #: Worker pool for the per-vessel phase; ``None`` when
        #: ``config.workers == 1`` (the phase then runs inline on the
        #: caller's thread — same code path, one shard).
        self._pool = (
            ShardPool(state.config.workers)
            if state.config.workers > 1 else None
        )
        self.integrate.start(state)

    @property
    def stages(self) -> list:
        """Cumulative per-stage stats, in Figure 2 order."""
        return [stage.stats for stage in self._stages]

    @property
    def flushed(self) -> bool:
        return self._flushed

    @property
    def workers(self) -> int:
        """The session's shard count (fixed at creation)."""
        return len(self.state.shards)

    def _check_shard_count(self) -> None:
        """Reject a mid-run ``config.workers`` change loudly.

        Per-vessel state lives on the shards and routing is
        ``hash(mmsi) % workers`` — changing the count mid-run would
        strand every vessel's open track on the wrong shard.
        """
        if len(self.state.shards) != self.state.config.workers:
            raise RuntimeError(
                f"config.workers changed mid-run (session started with "
                f"{len(self.state.shards)} shard(s), config now says "
                f"{self.state.config.workers}): the shard count is fixed "
                "when the session is created because per-vessel state "
                "cannot migrate between shards — start a new session "
                "with the new worker count instead"
            )

    # -- subscriptions -----------------------------------------------------

    def subscribe(
        self,
        on_increment=None,
        on_event=None,
        on_alarm=None,
        on_forecast=None,
        kinds=None,
        region=None,
        mmsis=None,
        async_dispatch: bool = False,
        max_queue: int = 256,
        overflow: str = "drop_oldest",
    ) -> Subscription:
        """Attach a consumer; see :mod:`repro.sinks.subscription`.

        Every subsequent ``feed``/``flush`` dispatches its increment to
        the returned subscription (until its ``close()``).  With
        ``async_dispatch=True`` delivery happens on a per-subscription
        worker behind a bounded queue, so a slow consumer cannot stall
        ``feed``.
        """
        return self.subscriptions.subscribe(
            on_increment=on_increment,
            on_event=on_event,
            on_alarm=on_alarm,
            on_forecast=on_forecast,
            kinds=kinds,
            region=region,
            mmsis=mmsis,
            async_dispatch=async_dispatch,
            max_queue=max_queue,
            overflow=overflow,
        )

    # -- driving -----------------------------------------------------------

    def feed(
        self,
        observations=(),
        radar_contacts=(),
        lrit_reports=(),
        build_overview: bool = True,
    ) -> PipelineIncrement:
        """Process one micro-batch; returns everything it produced."""
        if self._flushed:
            raise RuntimeError("session already flushed")
        state = self.state
        self._check_shard_count()
        self._in_feed = True
        try:
            t0 = time.perf_counter()
            observations = list(observations)
            self.fuse.enqueue(state, radar_contacts, lrit_reports)

            with self.decode.timed():
                decoded = self.decode.feed(
                    state, observations, pool=self._pool
                )
            with self.reorder.timed():
                records = self.reorder.feed(state, decoded)
            with self.reconstruct.timed():
                outcomes = self.reconstruct.feed(
                    state, records, pool=self._pool
                )
            increment = self._downstream(
                outcomes,
                final_outcomes=[],
                t0=t0,
                build_overview=build_overview,
                flushing=False,
            )
            increment.n_observations = len(observations)
            increment.n_decoded = len(decoded)
            increment.n_records = len(records)
            state.purge()
            self.subscriptions.dispatch(increment)
            return increment
        finally:
            self._in_feed = False

    def flush(self, build_overview: bool = True) -> PipelineIncrement:
        """End of stream: drain every buffer and close open state."""
        if self._flushed:
            raise RuntimeError("session already flushed")
        self._flushed = True
        state = self.state
        self._check_shard_count()
        self._in_feed = True
        try:
            t0 = time.perf_counter()
            with self.reorder.timed():
                records = self.reorder.flush(state)
            with self.reconstruct.timed():
                outcomes = self.reconstruct.feed(
                    state, records, pool=self._pool
                )
                final_outcomes = self.reconstruct.flush(
                    state, pool=self._pool
                )
            increment = self._downstream(
                outcomes,
                final_outcomes=final_outcomes,
                t0=t0,
                build_overview=build_overview,
                flushing=True,
            )
            increment.n_records = len(records)
            if self._pool is not None:
                self._pool.close()
                self._pool = None
            self.subscriptions.dispatch(increment)
            # End of stream is also end of delivery: drain the async
            # dispatchers here so direct session users (not just the
            # monitor façade) get final delivered/dropped books and no
            # increments stranded in a daemon worker's queue at exit.
            self.subscriptions.close(drain=True)
            return increment
        finally:
            self._in_feed = False

    # -- durable state -----------------------------------------------------

    def fingerprint(self) -> str:
        """This session's logical-configuration fingerprint (what a
        checkpoint binds to; see :mod:`repro.persist.checkpoint`)."""
        state = self.state
        return config_fingerprint(
            state.config, state.ports, state.zones, state.cep.patterns
        )

    def checkpoint(
        self,
        path: str,
        source_positions=(),
        n_increments: int = 0,
    ) -> CheckpointManifest:
        """Write a watermark-consistent checkpoint of the session state.

        Only valid at a barrier — between ``feed``/``flush`` calls, when
        every record released so far has flowed through every stage.
        Calling it *during* a feed (e.g. from a synchronous subscription
        callback, which runs on the pipeline thread mid-dispatch) is
        refused: there is no consistent state to capture mid-phase.

        ``source_positions`` are the attached sources'
        :class:`~repro.sources.SourcePosition` cursors (``None`` per
        non-seekable source) recorded *at this same barrier*, so restore
        replays exactly the unprocessed suffix.  ``n_increments`` is the
        driver's increment counter, stored for catch-up accounting and
        checkpoint naming.
        """
        if self._in_feed:
            raise RuntimeError(
                "checkpoint() is only valid at a watermark barrier — "
                "between feed/flush calls, never from inside a "
                "subscription callback delivered during one"
            )
        return write_checkpoint(
            path,
            self.state.export_snapshot(),
            fingerprint=self.fingerprint(),
            watermark=self.state.watermark,
            workers=self.workers,
            n_increments=n_increments,
            source_positions=[
                dataclasses.asdict(p) if p is not None else None
                for p in source_positions
            ],
        )

    def _downstream(
        self,
        outcomes: list[RecordOutcome],
        final_outcomes: list[RecordOutcome],
        t0: float,
        build_overview: bool,
        flushing: bool,
    ) -> PipelineIncrement:
        state = self.state
        all_outcomes = (*outcomes, *final_outcomes)
        completed = [s for o in all_outcomes for s in o.completed]
        precomputed = [s for o in all_outcomes for s in o.synopses]

        with self.synopses.timed():
            new_synopses = self.synopses.feed(state, completed, precomputed)
        with self.integrate.timed():
            self.integrate.feed(state, new_synopses)
        with self.fuse.timed():
            fusion_events = self.fuse.feed(state, outcomes)
            if flushing:
                fusion_events.extend(self.fuse.flush(state))
        with self.detect.timed():
            new_events, new_complex = self.detect.feed(
                state, outcomes, fusion_events
            )
            if flushing:
                tail_events, tail_complex = self.detect.flush(
                    state, final_outcomes
                )
                new_events.extend(tail_events)
                new_complex.extend(tail_complex)
        with self.forecast.timed():
            updated_forecasts = self.forecast.feed(state, list(all_outcomes))
        with self.overview.timed():
            new_alarms = self.overview.feed(state, outcomes)
            snapshot = (
                self.overview.snapshot(state) if build_overview else None
            )
        new_alarms.extend(self.health.poll(state.watermark))

        if state.keep_products:
            state.trajectories.extend(completed)
            state.synopses.extend(new_synopses)
        # Live-position delta: the latest accepted fix per vessel this
        # batch (outcomes are watermark-ordered, so last wins).  This is
        # what position-shaped consumers — the serve gateway, the JSON
        # rendering — read instead of re-deriving it from segments.
        updated_positions: dict[int, TrackPoint] = {}
        for outcome in all_outcomes:
            if outcome.accepted is not None:
                updated_positions[outcome.mmsi] = outcome.accepted
        seconds = time.perf_counter() - t0
        return PipelineIncrement(
            t_watermark=state.watermark,
            new_segments=completed,
            new_synopses=new_synopses,
            new_events=fusion_events + new_events,
            new_complex_events=new_complex,
            updated_forecasts=updated_forecasts,
            new_alarms=new_alarms,
            updated_positions=updated_positions,
            overview=snapshot,
            seconds=seconds,
            backpressure=self._backpressure(seconds),
        )

    def _backpressure(self, seconds: float) -> BackpressureMetrics:
        """Queue depths across the whole path, gauged after this batch."""
        state = self.state
        depths = {
            "reorder": len(state.reorderer),
            "radar": len(state.radar_queue),
            "lrit": len(state.lrit_queue),
            "cep": state.cep.buffered(),
        }
        for probe in self.queue_probes:
            for name, depth in probe().items():
                depths[name] = depth
        self.reorder.stats.record_pending(depths["reorder"])
        self.fuse.stats.record_pending(depths["radar"] + depths["lrit"])
        self.detect.stats.record_pending(depths["cep"])
        return BackpressureMetrics(
            feed_latency_s=seconds,
            records_deferred=depths["reorder"],
            queue_depths=depths,
        )
