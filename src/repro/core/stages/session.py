"""One pipeline run — batch replay or live stream — over the stages.

:class:`PipelineSession` owns a :class:`PipelineState` and one instance
of each stage, and drives them per micro-batch: ``feed`` any number of
times, ``flush`` once, then (for replays) collect state.  Because every
stage is record-driven, the sequence of records — not the slicing into
feeds — determines every product: ``process(run)`` is literally one
``feed`` plus ``flush``.

Downstream consumers attach through :meth:`PipelineSession.subscribe`:
every increment a feed or flush produces is dispatched to the session's
:class:`~repro.sinks.subscription.SubscriptionHub` before it is
returned, carrying :class:`~repro.core.stages.state.BackpressureMetrics`
for the batch.
"""

import time

from repro.core.stages.analytics import (
    ForecastStage,
    IntegrateStage,
    OverviewStage,
    SynopsesStage,
)
from repro.core.stages.detect import DetectStage
from repro.core.stages.fuse import FuseStage
from repro.core.stages.ingest import DecodeStage, ReconstructStage, ReorderStage
from repro.core.stages.state import (
    BackpressureMetrics,
    PipelineIncrement,
    PipelineState,
    RecordOutcome,
)
from repro.sinks.subscription import Subscription, SubscriptionHub


class PipelineSession:
    """Incremental execution of the Figure 2 pipeline."""

    def __init__(self, state: PipelineState) -> None:
        self.state = state
        self.decode = DecodeStage()
        self.reorder = ReorderStage()
        self.reconstruct = ReconstructStage()
        self.synopses = SynopsesStage()
        self.integrate = IntegrateStage()
        self.fuse = FuseStage()
        self.detect = DetectStage()
        self.forecast = ForecastStage()
        self.overview = OverviewStage()
        self._stages = [
            self.decode, self.reorder, self.reconstruct, self.synopses,
            self.integrate, self.fuse, self.detect, self.forecast,
            self.overview,
        ]
        self._flushed = False
        self.subscriptions = SubscriptionHub()
        #: Extra queue-depth probes merged into each increment's
        #: backpressure metrics; a driver that owns an upstream queue (the
        #: monitor façade with a TCP source) appends a zero-arg callable
        #: returning ``{name: depth}``.
        self.queue_probes: list = []
        self.integrate.start(state)

    @property
    def stages(self) -> list:
        """Cumulative per-stage stats, in Figure 2 order."""
        return [stage.stats for stage in self._stages]

    @property
    def flushed(self) -> bool:
        return self._flushed

    # -- subscriptions -----------------------------------------------------

    def subscribe(
        self,
        on_increment=None,
        on_event=None,
        on_alarm=None,
        on_forecast=None,
        kinds=None,
        region=None,
        mmsis=None,
        async_dispatch: bool = False,
        max_queue: int = 256,
        overflow: str = "drop_oldest",
    ) -> Subscription:
        """Attach a consumer; see :mod:`repro.sinks.subscription`.

        Every subsequent ``feed``/``flush`` dispatches its increment to
        the returned subscription (until its ``close()``).  With
        ``async_dispatch=True`` delivery happens on a per-subscription
        worker behind a bounded queue, so a slow consumer cannot stall
        ``feed``.
        """
        return self.subscriptions.subscribe(
            on_increment=on_increment,
            on_event=on_event,
            on_alarm=on_alarm,
            on_forecast=on_forecast,
            kinds=kinds,
            region=region,
            mmsis=mmsis,
            async_dispatch=async_dispatch,
            max_queue=max_queue,
            overflow=overflow,
        )

    # -- driving -----------------------------------------------------------

    def feed(
        self,
        observations=(),
        radar_contacts=(),
        lrit_reports=(),
        build_overview: bool = True,
    ) -> PipelineIncrement:
        """Process one micro-batch; returns everything it produced."""
        if self._flushed:
            raise RuntimeError("session already flushed")
        state = self.state
        t0 = time.perf_counter()
        observations = list(observations)
        self.fuse.enqueue(state, radar_contacts, lrit_reports)

        with self.decode.timed():
            decoded = self.decode.feed(state, observations)
        with self.reorder.timed():
            records = self.reorder.feed(state, decoded)
        with self.reconstruct.timed():
            outcomes = self.reconstruct.feed(state, records)
        increment = self._downstream(
            outcomes,
            final_outcomes=[],
            t0=t0,
            build_overview=build_overview,
            flushing=False,
        )
        increment.n_observations = len(observations)
        increment.n_decoded = len(decoded)
        increment.n_records = len(records)
        state.purge()
        self.subscriptions.dispatch(increment)
        return increment

    def flush(self, build_overview: bool = True) -> PipelineIncrement:
        """End of stream: drain every buffer and close open state."""
        if self._flushed:
            raise RuntimeError("session already flushed")
        self._flushed = True
        state = self.state
        t0 = time.perf_counter()
        with self.reorder.timed():
            records = self.reorder.flush(state)
        with self.reconstruct.timed():
            outcomes = self.reconstruct.feed(state, records)
            final_outcomes = self.reconstruct.flush(state)
        increment = self._downstream(
            outcomes,
            final_outcomes=final_outcomes,
            t0=t0,
            build_overview=build_overview,
            flushing=True,
        )
        increment.n_records = len(records)
        self.subscriptions.dispatch(increment)
        # End of stream is also end of delivery: drain the async
        # dispatchers here so direct session users (not just the
        # monitor façade) get final delivered/dropped books and no
        # increments stranded in a daemon worker's queue at exit.
        self.subscriptions.close(drain=True)
        return increment

    def _downstream(
        self,
        outcomes: list[RecordOutcome],
        final_outcomes: list[RecordOutcome],
        t0: float,
        build_overview: bool,
        flushing: bool,
    ) -> PipelineIncrement:
        state = self.state
        completed = [
            s for o in (*outcomes, *final_outcomes) for s in o.completed
        ]

        with self.synopses.timed():
            new_synopses = self.synopses.feed(state, completed)
        with self.integrate.timed():
            self.integrate.feed(state, new_synopses)
        with self.fuse.timed():
            fusion_events = self.fuse.feed(state, outcomes)
            if flushing:
                fusion_events.extend(self.fuse.flush(state))
        with self.detect.timed():
            new_events, new_complex = self.detect.feed(
                state, outcomes, fusion_events
            )
            if flushing:
                tail_events, tail_complex = self.detect.flush(
                    state, final_outcomes
                )
                new_events.extend(tail_events)
                new_complex.extend(tail_complex)
        with self.forecast.timed():
            updated_forecasts = self.forecast.feed(state, completed)
        with self.overview.timed():
            new_alarms = self.overview.feed(state, outcomes)
            snapshot = (
                self.overview.snapshot(state) if build_overview else None
            )

        if state.keep_products:
            state.trajectories.extend(completed)
            state.synopses.extend(new_synopses)
        seconds = time.perf_counter() - t0
        return PipelineIncrement(
            t_watermark=state.watermark,
            new_segments=completed,
            new_synopses=new_synopses,
            new_events=fusion_events + new_events,
            new_complex_events=new_complex,
            updated_forecasts=updated_forecasts,
            new_alarms=new_alarms,
            overview=snapshot,
            seconds=seconds,
            backpressure=self._backpressure(seconds),
        )

    def _backpressure(self, seconds: float) -> BackpressureMetrics:
        """Queue depths across the whole path, gauged after this batch."""
        state = self.state
        depths = {
            "reorder": len(state.reorderer),
            "radar": len(state.radar_queue),
            "lrit": len(state.lrit_queue),
            "cep": state.cep.buffered(),
        }
        for probe in self.queue_probes:
            for name, depth in probe().items():
                depths[name] = depth
        self.reorder.stats.record_pending(depths["reorder"])
        self.fuse.stats.record_pending(depths["radar"] + depths["lrit"])
        self.detect.stats.record_pending(depths["cep"])
        return BackpressureMetrics(
            feed_latency_s=seconds,
            records_deferred=depths["reorder"],
            queue_depths=depths,
        )
