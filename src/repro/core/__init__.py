"""The paper's primary contribution: the integrated maritime information
infrastructure of Figure 2.

:class:`MaritimePipeline` wires every substrate into the end-to-end flow
the figure sketches — in-situ stream processing and synopses over the raw
feed, trajectory reconstruction, semantic integration with contextual
data, complex event recognition, trajectory forecasting, visual-analytics
aggregation — and :class:`DecisionSupport` applies §4's requirements on
top: operator-profile filtering, uncertainty communication, explanations.
"""

from repro.core.config import ConfigError, PipelineConfig
from repro.core.pipeline import (
    MaritimePipeline,
    PipelineIncrement,
    PipelineResult,
    StageStats,
)
from repro.core.stages import (
    BackpressureMetrics,
    PipelineSession,
    PipelineState,
)
from repro.core.decision import (
    Alert,
    AlertLevel,
    DecisionSupport,
    OperatorProfile,
    verbal_probability,
)

__all__ = [
    "BackpressureMetrics",
    "ConfigError",
    "PipelineConfig",
    "MaritimePipeline",
    "PipelineIncrement",
    "PipelineResult",
    "PipelineSession",
    "PipelineState",
    "StageStats",
    "Alert",
    "AlertLevel",
    "DecisionSupport",
    "OperatorProfile",
    "verbal_probability",
]
