"""Decision support: the §4 requirements on top of the pipeline.

The paper closes §4 with four requirements for decision-support systems:
(1) simplicity through judicious filtering suited to the user's needs;
(2) flexibility by separating events of interest from their context;
(3) adequate uncertainty representation considering source quality;
(4) human-system synergy: outputs with explanations.

:class:`DecisionSupport` implements them: an :class:`OperatorProfile`
declares what the user cares about; events are scored, discounted by
source quality, mapped to alert levels, deduplicated and explained —
including verbal uncertainty phrases (:func:`verbal_probability`), since
operators reason better over words than decimals.
"""

import enum
from dataclasses import dataclass

from repro.events.base import Event, EventKind
from repro.uncertainty.secondorder import BetaProbability


class AlertLevel(enum.IntEnum):
    INFO = 0
    ADVISORY = 1
    WARNING = 2
    CRITICAL = 3


#: NATO-style verbal probability ladder.
_VERBAL_LADDER = [
    (0.05, "remote"),
    (0.20, "highly unlikely"),
    (0.45, "unlikely"),
    (0.55, "about even"),
    (0.80, "likely"),
    (0.95, "highly likely"),
    (1.01, "almost certain"),
]


def verbal_probability(p: float) -> str:
    """Map a probability to an operator-friendly phrase."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("probability out of range")
    for bound, phrase in _VERBAL_LADDER:
        if p < bound:
            return phrase
    return "almost certain"


@dataclass(frozen=True)
class OperatorProfile:
    """What this operator wants to see (§4 requirement 1)."""

    name: str
    #: Event kinds of interest; empty = everything.
    kinds: frozenset[EventKind] = frozenset()
    #: Minimum discounted confidence to surface at all.
    min_confidence: float = 0.2
    #: Confidence at or above which an alert is WARNING / CRITICAL.
    warning_confidence: float = 0.5
    critical_confidence: float = 0.8
    #: Suppress repeat alerts for the same vessels+kind within this window.
    dedup_window_s: float = 1800.0


@dataclass(frozen=True)
class Alert:
    """An operator-facing alert: event + level + uncertainty + explanation."""

    event: Event
    level: AlertLevel
    #: Confidence after source-quality discounting.
    discounted_confidence: float
    #: Second-order statement when evidence counts are known.
    confidence_statement: str
    explanation: str

    def render(self) -> str:
        return (
            f"[{self.level.name}] {self.event.kind.value} — "
            f"{self.confidence_statement}. {self.explanation}"
        )


class DecisionSupport:
    """Filters, scores and explains pipeline events for one operator."""

    def __init__(
        self,
        profile: OperatorProfile,
        source_quality: dict[str, float] | None = None,
    ) -> None:
        self.profile = profile
        #: Reliability in [0, 1] per source tag found in event details.
        self.source_quality = source_quality or {}
        self._recent: dict[tuple, float] = {}

    # -- scoring ----------------------------------------------------------

    def _discount(self, event: Event) -> float:
        source = event.details.get("source", "ais")
        reliability = self.source_quality.get(source, 1.0)
        return event.confidence * reliability

    def _level(self, confidence: float) -> AlertLevel:
        profile = self.profile
        if confidence >= profile.critical_confidence:
            return AlertLevel.CRITICAL
        if confidence >= profile.warning_confidence:
            return AlertLevel.WARNING
        if confidence >= profile.min_confidence:
            return AlertLevel.ADVISORY
        return AlertLevel.INFO

    def _confidence_statement(self, event: Event, confidence: float) -> str:
        n_points = event.details.get("n_points")
        phrase = verbal_probability(confidence)
        if n_points:
            beta = BetaProbability.from_counts(
                confidence * n_points, (1.0 - confidence) * n_points
            )
            lo, hi = beta.credible_interval()
            return (
                f"{phrase} (p≈{confidence:.2f}, "
                f"credible [{lo:.2f}, {hi:.2f}] from {n_points} fixes)"
            )
        return f"{phrase} (p≈{confidence:.2f})"

    def _explain(self, event: Event) -> str:
        who = ", ".join(str(m) for m in event.mmsis)
        where = f"({event.lat:.3f}, {event.lon:.3f})"
        base = {
            EventKind.GAP: (
                f"vessel {who} stopped reporting for "
                f"{event.details.get('gap_s', 0.0) / 60:.0f} min near {where}"
            ),
            EventKind.RENDEZVOUS: (
                f"vessels {who} held station within "
                f"{event.details.get('duration_s', 0.0) / 60:.0f} min of "
                f"close contact at open sea near {where}"
            ),
            EventKind.LOITERING: (
                f"vessel {who} loitered "
                f"{event.details.get('duration_s', 0.0) / 60:.0f} min away "
                f"from any port near {where}"
            ),
            EventKind.TELEPORT: (
                f"vessel {who} jumped "
                f"{event.details.get('jump_m', 0.0) / 1000:.0f} km "
                f"(implied {event.details.get('implied_speed_knots', 0.0):.0f} kn) "
                f"— possible GPS spoofing"
            ),
            EventKind.IDENTITY_CLASH: (
                f"MMSI {who} transmitted from positions "
                f"{event.details.get('separation_m', 0.0) / 1000:.0f} km apart "
                f"at the same time — possible identity fraud"
            ),
            EventKind.COLLISION_RISK: (
                f"vessels {who} predicted CPA "
                f"{event.details.get('dcpa_m', 0.0):.0f} m in "
                f"{event.details.get('tcpa_s', 0.0) / 60:.0f} min"
            ),
            EventKind.POL_ANOMALY: (
                f"vessel {who} deviates from the traffic pattern of life "
                f"near {where}"
            ),
            EventKind.UNCORRELATED_TRACK: (
                f"radar holds a track of "
                f"{event.details.get('n_contacts', 0)} contacts near {where} "
                f"with no AIS identity — possible dark vessel"
            ),
            EventKind.COMPLEX: (
                f"pattern '{event.details.get('pattern', '?')}' completed: "
                + " → ".join(event.details.get("steps", []))
            ),
        }
        return base.get(
            event.kind, f"{event.kind.value} involving {who} near {where}"
        )

    # -- the operator stream ----------------------------------------------

    def triage(self, events: list[Event]) -> list[Alert]:
        """Filter, dedupe, score and explain a batch of events.

        Returns alerts the profile cares about, most severe first (ties by
        time), with per-(vessels, kind) deduplication inside the profile's
        window.
        """
        alerts: list[Alert] = []
        for event in sorted(events, key=lambda e: e.t_start):
            if self.profile.kinds and event.kind not in self.profile.kinds:
                continue
            confidence = self._discount(event)
            if confidence < self.profile.min_confidence:
                continue
            dedup_key = (event.kind, event.mmsis)
            last_seen = self._recent.get(dedup_key)
            if (
                last_seen is not None
                and event.t_start - last_seen < self.profile.dedup_window_s
            ):
                continue
            self._recent[dedup_key] = event.t_start
            alerts.append(
                Alert(
                    event=event,
                    level=self._level(confidence),
                    discounted_confidence=confidence,
                    confidence_statement=self._confidence_statement(
                        event, confidence
                    ),
                    explanation=self._explain(event),
                )
            )
        alerts.sort(key=lambda a: (-int(a.level), a.event.t_start))
        return alerts
