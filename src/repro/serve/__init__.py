"""The serving layer: a stdlib-only HTTP + WebSocket gateway.

``repro serve`` (and :class:`MonitorGateway` programmatically) exposes
the live monitoring picture — positions, tracks, events, alerts,
situation overview, geohash heatmap tiles and a per-increment WebSocket
stream — as an ordinary subscription on the hub, so it rides the
dispatch plane's indexing, pooling, backpressure and accounting.  See
``src/repro/serve/README.md`` for the endpoint and framing contract.
"""

from repro.serve.gateway import GatewayState, MonitorGateway

__all__ = ["GatewayState", "MonitorGateway"]
