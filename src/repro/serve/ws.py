"""Minimal RFC 6455 WebSocket support for the serve gateway.

Stdlib-only, server-side, text frames: exactly what a live position/
alert stream needs and nothing more.  No extensions, no fragmentation
on send (the gateway's frames are single-tick JSON), no compression.

Implemented here rather than depending on a websocket library because
the repo's hard constraint is a baked toolchain: the gateway must run
anywhere the pipeline runs.
"""

import base64
import hashlib
import struct

__all__ = [
    "OP_BINARY",
    "OP_CLOSE",
    "OP_PING",
    "OP_PONG",
    "OP_TEXT",
    "WebSocketError",
    "accept_key",
    "close_frame",
    "encode_frame",
    "read_frame",
]

#: RFC 6455 §1.3 — the fixed GUID appended to the client key.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

#: Upper bound on a single client frame; the gateway's clients only
#: ever send control frames and tiny subscribe messages.
MAX_CLIENT_PAYLOAD = 1 << 20


class WebSocketError(Exception):
    """Protocol violation or unexpected socket close mid-frame."""


def accept_key(client_key: str) -> str:
    """``Sec-WebSocket-Accept`` value for a ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1(
        (client_key.strip() + _WS_GUID).encode("ascii")
    ).digest()
    return base64.b64encode(digest).decode("ascii")


def encode_frame(payload: bytes | str, opcode: int = OP_TEXT) -> bytes:
    """One unmasked, unfragmented server frame (servers never mask)."""
    if isinstance(payload, str):
        payload = payload.encode("utf-8")
    length = len(payload)
    head = bytes([0x80 | (opcode & 0x0F)])  # FIN + opcode
    if length < 126:
        head += bytes([length])
    elif length < (1 << 16):
        head += bytes([126]) + struct.pack(">H", length)
    else:
        head += bytes([127]) + struct.pack(">Q", length)
    return head + payload


def _read_exact(rfile, n: int) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = rfile.read(n - len(buf))
        if not chunk:
            raise WebSocketError("socket closed mid-frame")
        buf += chunk
    return buf


def read_frame(rfile) -> tuple[int, bytes]:
    """Read one client frame -> ``(opcode, payload)``.

    Client frames must be masked (RFC 6455 §5.1); unmasked frames are a
    protocol error.  Fragmented client messages are refused — the
    gateway's clients send only control frames and short texts.
    """
    b0, b1 = _read_exact(rfile, 2)
    fin = b0 & 0x80
    opcode = b0 & 0x0F
    masked = b1 & 0x80
    length = b1 & 0x7F
    if not fin:
        raise WebSocketError("fragmented client frames are not supported")
    if not masked:
        raise WebSocketError("client frames must be masked")
    if length == 126:
        (length,) = struct.unpack(">H", _read_exact(rfile, 2))
    elif length == 127:
        (length,) = struct.unpack(">Q", _read_exact(rfile, 8))
    if length > MAX_CLIENT_PAYLOAD:
        raise WebSocketError("client frame too large")
    mask = _read_exact(rfile, 4)
    payload = _read_exact(rfile, length) if length else b""
    unmasked = bytes(
        byte ^ mask[i % 4] for i, byte in enumerate(payload)
    )
    return opcode, unmasked


def close_frame(code: int = 1000, reason: str = "") -> bytes:
    """An unmasked close frame with a status code."""
    payload = struct.pack(">H", code) + reason.encode("utf-8")
    return encode_frame(payload, OP_CLOSE)
