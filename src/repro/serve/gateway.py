"""The ``repro serve`` HTTP + WebSocket gateway.

A stdlib-only serving front end over the subscription hub: the gateway
is an ordinary hub subscriber (``async_dispatch=True``), so it inherits
the dispatch plane's backpressure, bounded queues and delivery
accounting, and shows up in ``MonitorReport.subscriptions`` like any
other consumer.  One process can therefore replay or live-monitor a
feed *and* serve operators concurrently:

    gateway = MonitorGateway(port=8765)
    gateway.attach(monitor)        # a hub subscription like any sink
    gateway.start()
    monitor.run()

HTTP endpoints (all JSON):

- ``GET /healthz`` — liveness, watermark, increment and client counts;
- ``GET /positions[?bbox=latmin,latmax,lonmin,lonmax][&limit=N]`` —
  latest accepted fix per vessel;
- ``GET /tracks/<mmsi>`` — the vessel's recent position history;
- ``GET /events[?kind=...][&limit=N]`` — recent events, newest last;
- ``GET /alerts[?limit=N]`` — recent situation-monitor alarms;
- ``GET /overview`` — the latest situation overview snapshot;
- ``GET /heatmap[?precision=P]`` — position-density tiles named by
  geohash (the cell grid's external lingua franca);
- ``GET /stream`` — WebSocket upgrade: one text frame per increment
  (the hub's shared JSON rendering, verbatim);
- ``POST /shutdown`` — request process shutdown (only when the gateway
  was built with ``allow_shutdown=True``; for test harnesses).

Backpressure is bounded at both hops: the hub-side subscription lane
drops oldest increments when the gateway falls behind the pipeline, and
each WebSocket client has its own bounded frame queue dropping oldest
when that client falls behind the gateway.  A slow dashboard can never
stall ingestion or other subscribers, only blur itself.
"""

import json
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.sinks.render import render
from repro.spatial.cells import CellGrid, geohash_counts
from repro.serve import ws as wsproto

__all__ = ["GatewayState", "MonitorGateway"]

#: Heatmap accumulation cell size.  Finer than the dispatch-routing
#: grid: tiles are a visual product, routing only needs candidate
#: pruning.
HEAT_CELL_M = 20_000.0


class _WSClient:
    """One connected WebSocket stream: a bounded frame queue.

    Passive record — every touch happens inside :class:`GatewayState`
    methods under the state lock, except the handler thread's socket
    writes (the handler owns its socket exclusively).
    """

    def __init__(self, max_queue: int) -> None:
        self.max_queue = max_queue
        self.queue: deque = deque()
        self.open = True
        self.n_sent = 0
        self.n_dropped = 0


class GatewayState:
    """Live serving state accumulated from increments.

    Written by the dispatch-pool worker delivering the gateway's
    subscription; read by HTTP handler threads.  One lock guards all of
    it; every public method is a complete critical section, and no
    callback runs under the lock.
    """

    _thread_shared = True

    def __init__(
        self,
        max_events: int = 512,
        max_alerts: int = 512,
        track_points: int = 256,
        ws_queue: int = 64,
        heat_cell_m: float = HEAT_CELL_M,
    ) -> None:
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._grid = CellGrid(heat_cell_m)
        self._positions: dict[int, dict] = {}
        self._tracks: dict[int, deque] = {}
        self._events: deque = deque(maxlen=max_events)
        self._alerts: deque = deque(maxlen=max_alerts)
        self._heat: dict = {}
        self._overview: dict | None = None
        self._watermark: float | None = None
        self._n_increments = 0
        self._track_points = track_points
        self._ws_queue = ws_queue
        self._clients: list = []
        self._closed = False

    # -- hub side (one dispatch-pool worker at a time) ---------------------

    def update(self, increment) -> None:
        """Fold one increment in and broadcast its frame to streams."""
        rendering = render(increment)
        as_dict = rendering.as_dict
        frame = rendering.json_line
        grid_key = self._grid.key
        with self._changed:
            self._watermark = increment.t_watermark
            self._n_increments += 1
            for row in as_dict["positions"]:
                mmsi = row["mmsi"]
                self._positions[mmsi] = row
                track = self._tracks.get(mmsi)
                if track is None:
                    track = deque(maxlen=self._track_points)
                    self._tracks[mmsi] = track
                track.append(row)
                cell = grid_key(row["lat"], row["lon"])
                self._heat[cell] = self._heat.get(cell, 0) + 1
            self._events.extend(as_dict["events"])
            self._events.extend(as_dict["complex_events"])
            self._alerts.extend(as_dict["alarms"])
            if rendering.overview_dict is not None:
                self._overview = rendering.overview_dict
            for client in self._clients:
                if not client.open:
                    continue
                if len(client.queue) >= client.max_queue:
                    client.queue.popleft()  # drop-oldest, like the lane
                    client.n_dropped += 1
                client.queue.append(frame)
            self._changed.notify_all()

    # -- HTTP side ---------------------------------------------------------

    def health(self) -> dict:
        with self._lock:
            return {
                "status": "ok",
                "watermark": self._watermark,
                "n_increments": self._n_increments,
                "n_vessels": len(self._positions),
                "ws_clients": len(self._clients),
            }

    def positions(self, bbox=None, limit: int | None = None) -> list[dict]:
        """Latest fix per vessel, optionally clipped to a bounding box."""
        with self._lock:
            rows = list(self._positions.values())
        if bbox is not None:
            rows = [
                row for row in rows if bbox.contains(row["lat"], row["lon"])
            ]
        rows.sort(key=lambda row: row["mmsi"])
        if limit is not None:
            rows = rows[:limit]
        return rows

    def track(self, mmsi: int) -> list[dict]:
        with self._lock:
            track = self._tracks.get(mmsi)
            return list(track) if track is not None else []

    def events(self, kind: str | None = None,
               limit: int | None = None) -> list[dict]:
        with self._lock:
            rows = list(self._events)
        if kind is not None:
            rows = [row for row in rows if row["kind"] == kind]
        if limit is not None:
            rows = rows[-limit:]
        return rows

    def alerts(self, limit: int | None = None) -> list[dict]:
        with self._lock:
            rows = list(self._alerts)
        if limit is not None:
            rows = rows[-limit:]
        return rows

    def overview(self) -> dict | None:
        with self._lock:
            return self._overview

    def heatmap(self, precision: int | None = None) -> dict:
        """Position-density tiles, named by geohash for interchange."""
        with self._lock:
            counts = list(self._heat.items())
        return {
            "cell_size_m": self._grid.cell_size_m,
            "cells": geohash_counts(self._grid, counts, precision),
        }

    # -- WebSocket plumbing ------------------------------------------------

    def register_client(self) -> _WSClient:
        client = _WSClient(self._ws_queue)
        with self._changed:
            if self._closed:
                client.open = False
            else:
                self._clients.append(client)
        return client

    def unregister_client(self, client: _WSClient) -> None:
        with self._changed:
            client.open = False
            if client in self._clients:
                self._clients.remove(client)
            self._changed.notify_all()

    def next_frame(self, client: _WSClient,
                   timeout_s: float = 1.0) -> str | None:
        """Block up to ``timeout_s`` for the client's next frame.

        ``None`` means "nothing yet" while open; the handler loops.  A
        closed state or client also returns ``None`` — the handler
        checks :meth:`is_open` to distinguish.
        """
        with self._changed:
            if not client.queue and client.open and not self._closed:
                self._changed.wait(timeout=timeout_s)
            if not client.queue:
                return None
            client.n_sent += 1
            return client.queue.popleft()

    def is_open(self, client: _WSClient) -> bool:
        with self._lock:
            return client.open and not self._closed

    def close(self) -> None:
        """Stop streaming: wake and release every WebSocket handler."""
        with self._changed:
            self._closed = True
            for client in self._clients:
                client.open = False
            self._clients.clear()
            self._changed.notify_all()


class _GatewayHandler(BaseHTTPRequestHandler):
    """Routes one request against ``self.server.gateway``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass  # the gateway is quiet; operators watch /healthz

    # -- plumbing ----------------------------------------------------------

    def _send_json(self, payload, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _query(self) -> dict:
        return parse_qs(urlparse(self.path).query)

    def _int_param(self, query, name, default=None):
        values = query.get(name)
        if not values:
            return default
        return int(values[0])

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib handler name
        try:
            self._route_get()
        except (ValueError, TypeError) as exc:
            self._error(400, str(exc))
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response; nothing to serve

    def _route_get(self) -> None:
        gateway = self.server.gateway
        state = gateway.state
        path = urlparse(self.path).path.rstrip("/") or "/"
        query = self._query()
        if path == "/stream":
            self._serve_websocket(state)
            return
        if path in ("/", "/healthz"):
            self._send_json(state.health())
        elif path == "/positions":
            bbox = None
            if "bbox" in query:
                from repro.geo.region import BoundingBox

                parts = [float(p) for p in query["bbox"][0].split(",")]
                if len(parts) != 4:
                    raise ValueError(
                        "bbox must be lat_min,lat_max,lon_min,lon_max"
                    )
                bbox = BoundingBox(*parts)
            self._send_json({
                "positions": state.positions(
                    bbox=bbox, limit=self._int_param(query, "limit")
                ),
            })
        elif path.startswith("/tracks/"):
            mmsi = int(path.rsplit("/", 1)[1])
            self._send_json({"mmsi": mmsi, "points": state.track(mmsi)})
        elif path == "/events":
            kinds = query.get("kind")
            self._send_json({
                "events": state.events(
                    kind=kinds[0] if kinds else None,
                    limit=self._int_param(query, "limit"),
                ),
            })
        elif path == "/alerts":
            self._send_json({
                "alerts": state.alerts(
                    limit=self._int_param(query, "limit")
                ),
            })
        elif path == "/overview":
            self._send_json({"overview": state.overview()})
        elif path == "/heatmap":
            self._send_json(
                state.heatmap(self._int_param(query, "precision"))
            )
        else:
            self._error(404, f"no such endpoint: {path}")

    def do_POST(self) -> None:  # noqa: N802 — stdlib handler name
        gateway = self.server.gateway
        path = urlparse(self.path).path.rstrip("/")
        if path == "/shutdown":
            if not gateway.allow_shutdown:
                self._error(403, "shutdown endpoint is disabled")
                return
            self._send_json({"status": "shutting down"})
            gateway.shutdown_requested.set()
        else:
            self._error(404, f"no such endpoint: {path}")

    # -- the stream --------------------------------------------------------

    def _serve_websocket(self, state: GatewayState) -> None:
        if self.headers.get("Upgrade", "").lower() != "websocket":
            self._error(400, "/stream speaks WebSocket; send Upgrade")
            return
        key = self.headers.get("Sec-WebSocket-Key")
        if not key:
            self._error(400, "missing Sec-WebSocket-Key")
            return
        self.send_response(101, "Switching Protocols")
        self.send_header("Upgrade", "websocket")
        self.send_header("Connection", "Upgrade")
        self.send_header("Sec-WebSocket-Accept", wsproto.accept_key(key))
        self.end_headers()
        self.close_connection = True
        client = state.register_client()
        try:
            while state.is_open(client):
                frame = state.next_frame(client, timeout_s=1.0)
                if frame is None:
                    continue
                self.wfile.write(wsproto.encode_frame(frame))
                self.wfile.flush()
            self.wfile.write(wsproto.close_frame(1001, "gateway closing"))
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client hung up; the finally unregisters it
        finally:
            state.unregister_client(client)


class MonitorGateway:
    """HTTP/WebSocket front end over a subscription hub.

    Construction is cheap and thread-free; :meth:`start` binds the
    socket and spawns the server thread; :meth:`attach` registers the
    hub subscription (async, bounded, drop-oldest) that feeds
    :class:`GatewayState`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        max_events: int = 512,
        max_alerts: int = 512,
        track_points: int = 256,
        ws_queue: int = 64,
        heat_cell_m: float = HEAT_CELL_M,
        allow_shutdown: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.allow_shutdown = allow_shutdown
        self.state = GatewayState(
            max_events=max_events,
            max_alerts=max_alerts,
            track_points=track_points,
            ws_queue=ws_queue,
            heat_cell_m=heat_cell_m,
        )
        #: Set when a client POSTs /shutdown (and allow_shutdown=True);
        #: the CLI waits on it.
        self.shutdown_requested = threading.Event()
        self.subscription = None
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def attach(
        self,
        target,
        async_dispatch: bool = True,
        max_queue: int = 64,
        overflow: str = "drop_oldest",
    ):
        """Subscribe the gateway to a hub/monitor/session.

        An ordinary hub subscription: backpressure and delivery books
        are the dispatch plane's (visible in ``MonitorReport``).  Async
        with ``drop_oldest`` by default — a stalled gateway sees the
        freshest picture when it recovers and never stalls the
        pipeline.
        """
        hub = getattr(target, "hub", None)
        if hub is None:
            hub = getattr(target, "subscriptions", target)
        self.subscription = hub.subscribe(
            on_increment=self.state.update,
            async_dispatch=async_dispatch,
            max_queue=max_queue,
            overflow=overflow,
        )
        return self.subscription

    def start(self) -> tuple[str, int]:
        """Bind and serve in a daemon thread; returns ``(host, port)``
        actually bound (``port=0`` picks a free port)."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        server = ThreadingHTTPServer(
            (self.host, self.port), _GatewayHandler
        )
        server.daemon_threads = True
        server.gateway = self
        self._server = server
        self.port = server.server_address[1]
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="serve-http",
            daemon=True,
        )
        self._thread.start()
        return self.host, self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop serving: release streams, close the subscription, join
        the server thread."""
        self.state.close()
        if self.subscription is not None:
            self.subscription.close()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
