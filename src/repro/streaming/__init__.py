"""Stream-processing substrate.

A small, single-process dataflow engine providing the primitives the paper
says maritime integration needs but generic platforms lack (§2.2-2.3):
timestamped records, keyed windows, cross-stream interval and spatial
joins, stream-static enrichment, watermark-based reordering, and an
in-situ placement model that accounts communication cost (§2.1).

The engine is pull-based (generators), so pipelines are lazy and memory-
bounded; "running" a pipeline is draining its iterator.
"""

from repro.streaming.stream import Record, Stream, merge_by_time
from repro.streaming.windows import (
    Window,
    tumbling_windows,
    sliding_windows,
    session_windows,
)
from repro.streaming.joins import interval_join, spatial_join, enrich
from repro.streaming.watermarks import (
    LateRecordPolicy,
    ReorderStats,
    WatermarkReorderer,
    reorder_with_watermark,
)
from repro.streaming.insitu import (
    ProcessingNode,
    PlacementPlan,
    CommunicationLedger,
    compare_placements,
)

__all__ = [
    "Record",
    "Stream",
    "merge_by_time",
    "Window",
    "tumbling_windows",
    "sliding_windows",
    "session_windows",
    "interval_join",
    "spatial_join",
    "enrich",
    "reorder_with_watermark",
    "LateRecordPolicy",
    "ReorderStats",
    "WatermarkReorderer",
    "ProcessingNode",
    "PlacementPlan",
    "CommunicationLedger",
    "compare_placements",
]
