"""Keyed window operators: tumbling, sliding and session windows.

Windows consume a time-ordered stream and emit :class:`Window` records at
window close, keyed like their inputs.  These are the aggregation
primitives behind synopses (§2.1) and pattern detection (§3.1).
"""

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.streaming.stream import Record, Stream


@dataclass(frozen=True)
class Window:
    """A closed window of records for one key."""

    key: Any
    t_start: float
    t_end: float
    records: tuple[Record, ...] = field(default_factory=tuple)

    @property
    def values(self) -> list[Any]:
        return [r.value for r in self.records]

    def __len__(self) -> int:
        return len(self.records)


def tumbling_windows(stream: Stream, size_s: float) -> Stream:
    """Fixed, non-overlapping windows aligned to multiples of ``size_s``.

    Emits a ``Record`` whose value is a :class:`Window` when event time
    passes a window boundary for that key; remaining windows flush at end
    of stream.
    """
    if size_s <= 0:
        raise ValueError("size_s must be positive")

    def _gen() -> Iterator[Record]:
        # Windows are tracked by integer bucket index so that adjacent
        # window boundaries are bit-identical ((k+1)*size), which float
        # arithmetic on "start + size" does not guarantee.
        open_windows: dict[Any, tuple[int, list[Record]]] = {}

        def emit(key: Any, bucket: int, items: list[Record]) -> Record:
            start = bucket * size_s
            end = (bucket + 1) * size_s
            return Record(end, key, Window(key, start, end, tuple(items)))

        def bucket_of(t: float) -> int:
            """Bucket index consistent with the boundaries ``k * size_s``:
            floor division alone can disagree with the product by one ulp."""
            bucket = int(t // size_s)
            if t >= (bucket + 1) * size_s:
                bucket += 1
            elif t < bucket * size_s:
                bucket -= 1
            return bucket

        for record in stream:
            bucket = bucket_of(record.t)
            current = open_windows.get(record.key)
            if current is not None and current[0] != bucket:
                yield emit(record.key, current[0], current[1])
                current = None
            if current is None:
                open_windows[record.key] = (bucket, [record])
            else:
                current[1].append(record)
        for key, (bucket, items) in sorted(
            open_windows.items(), key=lambda kv: kv[1][0]
        ):
            yield emit(key, bucket, items)

    return Stream(_gen())


def sliding_windows(stream: Stream, size_s: float, slide_s: float) -> Stream:
    """Overlapping windows of ``size_s`` emitted every ``slide_s``.

    Implemented per key with a deque of live records; a window closes when
    event time passes its end.
    """
    if size_s <= 0 or slide_s <= 0:
        raise ValueError("size_s and slide_s must be positive")
    if slide_s > size_s:
        raise ValueError("slide_s must not exceed size_s")

    def _gen() -> Iterator[Record]:
        buffers: dict[Any, list[Record]] = {}
        next_close: dict[Any, float] = {}
        for record in stream:
            buf = buffers.setdefault(record.key, [])
            if record.key not in next_close:
                first_end = ((record.t // slide_s) + 1) * slide_s
                next_close[record.key] = first_end
            while record.t >= next_close[record.key]:
                end = next_close[record.key]
                start = end - size_s
                live = [r for r in buf if start <= r.t < end]
                if live:
                    yield Record(
                        end, record.key,
                        Window(record.key, start, end, tuple(live)),
                    )
                next_close[record.key] = end + slide_s
                buf[:] = [r for r in buf if r.t >= end + slide_s - size_s]
            buf.append(record)
        for key, buf in buffers.items():
            if not buf:
                continue
            end = next_close[key]
            start = end - size_s
            live = [r for r in buf if start <= r.t < end]
            if live:
                yield Record(end, key, Window(key, start, end, tuple(live)))

    return Stream(_gen())


def session_windows(stream: Stream, gap_s: float) -> Stream:
    """Sessions: windows separated by inactivity gaps of at least ``gap_s``.

    The natural windowing for voyages and port calls — a vessel's "session"
    ends when it stops reporting for the gap (which is also exactly how AIS
    *gap events* are defined in §3.1).
    """
    if gap_s <= 0:
        raise ValueError("gap_s must be positive")

    def _gen() -> Iterator[Record]:
        sessions: dict[Any, list[Record]] = {}
        for record in stream:
            session = sessions.get(record.key)
            if session and record.t - session[-1].t > gap_s:
                yield Record(
                    session[-1].t + gap_s,
                    record.key,
                    Window(record.key, session[0].t, session[-1].t, tuple(session)),
                )
                session = None
            if session is None:
                sessions[record.key] = [record]
            else:
                session.append(record)
        for key, session in sorted(
            sessions.items(), key=lambda kv: kv[1][0].t
        ):
            yield Record(
                session[-1].t + gap_s, key,
                Window(key, session[0].t, session[-1].t, tuple(session)),
            )

    return Stream(_gen())


def aggregate_windows(
    windows: Stream, fn: Callable[[Window], Any]
) -> Stream:
    """Map each window to an aggregate value, keeping time and key."""
    return Stream(
        Record(r.t, r.key, fn(r.value)) for r in windows
    )
