"""Stream joins: cross-stream interval join and stream-static enrichment.

These are the two integration primitives §2.2 calls out: joining detected
patterns across streams within a time band, and annotating a stream with
quasi-static context (registries, zones, weather) in flight.
"""

from collections.abc import Callable, Iterator
from typing import Any

from repro.streaming.stream import Record, Stream


def interval_join(
    left: Stream,
    right: Stream,
    max_dt_s: float,
    join_fn: Callable[[Record, Record], Any],
    match_keys: bool = True,
) -> Stream:
    """Join records from two time-ordered streams within ``max_dt_s``.

    Emits one output per (left, right) pair with ``|t_l - t_r| <= max_dt_s``
    (and equal keys when ``match_keys``).  Buffers are pruned by the other
    side's progress, so memory stays bounded by rate x ``max_dt_s``.
    Output timestamps are the later of the pair.
    """
    if max_dt_s < 0:
        raise ValueError("max_dt_s must be non-negative")

    def _gen() -> Iterator[Record]:
        left_iter = iter(left)
        right_iter = iter(right)
        left_buf: list[Record] = []
        right_buf: list[Record] = []
        left_next = next(left_iter, None)
        right_next = next(right_iter, None)
        while left_next is not None or right_next is not None:
            take_left = right_next is None or (
                left_next is not None and left_next.t <= right_next.t
            )
            if take_left:
                record = left_next
                left_next = next(left_iter, None)
                left_buf.append(record)
                for other in right_buf:
                    if abs(record.t - other.t) <= max_dt_s and (
                        not match_keys or record.key == other.key
                    ):
                        yield Record(
                            max(record.t, other.t),
                            record.key,
                            join_fn(record, other),
                        )
                right_buf[:] = [
                    r for r in right_buf if r.t >= record.t - max_dt_s
                ]
            else:
                record = right_next
                right_next = next(right_iter, None)
                right_buf.append(record)
                for other in left_buf:
                    if abs(record.t - other.t) <= max_dt_s and (
                        not match_keys or record.key == other.key
                    ):
                        yield Record(
                            max(record.t, other.t),
                            other.key,
                            join_fn(other, record),
                        )
                left_buf[:] = [
                    r for r in left_buf if r.t >= record.t - max_dt_s
                ]

    return Stream(_gen())


def enrich(
    stream: Stream,
    lookup: Callable[[Record], Any],
    combine: Callable[[Any, Any], Any] = lambda value, context: (value, context),
) -> Stream:
    """Stream-static join: annotate each record with looked-up context.

    ``lookup`` receives the whole record (so it can use time *and*
    position); ``combine`` merges value and context into the output value.
    A ``None`` context passes the record through unchanged — missing
    context must never drop surveillance data.
    """

    def _gen() -> Iterator[Record]:
        for record in stream:
            context = lookup(record)
            if context is None:
                yield record
            else:
                yield Record(record.t, record.key, combine(record.value, context))

    return Stream(_gen())
