"""Stream joins: cross-stream interval, spatial and stream-static joins.

These are the integration primitives §2.2 calls out: joining detected
patterns across streams within a time band (optionally also within a
metric distance), and annotating a stream with quasi-static context
(registries, zones, weather) in flight.
"""

from collections import deque
from collections.abc import Callable, Iterator
from typing import Any

from repro.spatial import GridIndex, MutableSpatialIndex
from repro.streaming.stream import Record, Stream


def interval_join(
    left: Stream,
    right: Stream,
    max_dt_s: float,
    join_fn: Callable[[Record, Record], Any],
    match_keys: bool = True,
) -> Stream:
    """Join records from two time-ordered streams within ``max_dt_s``.

    Emits one output per (left, right) pair with ``|t_l - t_r| <= max_dt_s``
    (and equal keys when ``match_keys``).  Buffers are pruned by the other
    side's progress, so memory stays bounded by rate x ``max_dt_s``.
    Output timestamps are the later of the pair.
    """
    if max_dt_s < 0:
        raise ValueError("max_dt_s must be non-negative")

    def _gen() -> Iterator[Record]:
        left_iter = iter(left)
        right_iter = iter(right)
        left_buf: list[Record] = []
        right_buf: list[Record] = []
        left_next = next(left_iter, None)
        right_next = next(right_iter, None)
        while left_next is not None or right_next is not None:
            take_left = right_next is None or (
                left_next is not None and left_next.t <= right_next.t
            )
            if take_left:
                record = left_next
                left_next = next(left_iter, None)
                # An exhausted right side can never consume this record;
                # buffering it would just grow memory for nothing.
                if right_next is not None:
                    left_buf.append(record)
                for other in right_buf:
                    if abs(record.t - other.t) <= max_dt_s and (
                        not match_keys or record.key == other.key
                    ):
                        yield Record(
                            max(record.t, other.t),
                            record.key,
                            join_fn(record, other),
                        )
                right_buf[:] = [
                    r for r in right_buf if r.t >= record.t - max_dt_s
                ]
            else:
                record = right_next
                right_next = next(right_iter, None)
                if left_next is not None:
                    right_buf.append(record)
                for other in left_buf:
                    if abs(record.t - other.t) <= max_dt_s and (
                        not match_keys or record.key == other.key
                    ):
                        yield Record(
                            max(record.t, other.t),
                            other.key,
                            join_fn(other, record),
                        )
                left_buf[:] = [
                    r for r in left_buf if r.t >= record.t - max_dt_s
                ]

    return Stream(_gen())


def spatial_join(
    left: Stream,
    right: Stream,
    max_dt_s: float,
    max_distance_m: float,
    position: Callable[[Record], tuple[float, float]],
    join_fn: Callable[[Record, Record], Any],
    index_factory: Callable[[], MutableSpatialIndex] | None = None,
) -> Stream:
    """Join two time-ordered streams on time band *and* proximity.

    Emits one output per (left, right) pair with ``|t_l - t_r| <=
    max_dt_s`` whose positions (as extracted by ``position``, returning
    ``(lat, lon)``) lie within ``max_distance_m`` great-circle metres.
    Buffered records sit in a
    :class:`~repro.spatial.MutableSpatialIndex` per side, so each arrival
    probes only its spatial neighbourhood instead of the whole opposite
    buffer — the screen stays correct across the antimeridian and at high
    latitudes.  ``index_factory`` swaps the backend (default: a
    latitude-aware :class:`~repro.spatial.GridIndex` sized to the join
    distance).  Buffers are pruned by the other side's progress, so
    memory stays bounded by rate x ``max_dt_s``.  Output timestamps are
    the later of the pair; output keys are the left record's.
    """
    if max_dt_s < 0:
        raise ValueError("max_dt_s must be non-negative")
    if max_distance_m < 0:
        raise ValueError("max_distance_m must be non-negative")
    if index_factory is None:
        def index_factory() -> MutableSpatialIndex:
            return GridIndex(cell_size_m=max_distance_m or 1.0)

    def _gen() -> Iterator[Record]:
        left_iter = iter(left)
        right_iter = iter(right)
        # Per side: FIFO of (t, token), token -> record, and the index.
        left_buf: deque[tuple[float, int]] = deque()
        right_buf: deque[tuple[float, int]] = deque()
        left_records: dict[int, Record] = {}
        right_records: dict[int, Record] = {}
        left_index = index_factory()
        right_index = index_factory()
        token = 0

        def _prune(
            buf: deque,
            records: dict[int, Record],
            index: MutableSpatialIndex,
            t: float,
        ) -> None:
            while buf and buf[0][0] < t - max_dt_s:
                __, old = buf.popleft()
                del records[old]
                index.remove(old)

        def _matches(
            record: Record, records: dict[int, Record], index: MutableSpatialIndex
        ) -> list[Record]:
            lat, lon = position(record)
            hits = [
                tok
                for tok, __ in index.radius_query(lat, lon, max_distance_m)
                if abs(record.t - records[tok].t) <= max_dt_s
            ]
            # Buffer (arrival) order keeps output deterministic.
            return [records[tok] for tok in sorted(hits)]

        left_next = next(left_iter, None)
        right_next = next(right_iter, None)
        while left_next is not None or right_next is not None:
            take_left = right_next is None or (
                left_next is not None and left_next.t <= right_next.t
            )
            if take_left:
                record = left_next
                left_next = next(left_iter, None)
                _prune(right_buf, right_records, right_index, record.t)
                for other in _matches(record, right_records, right_index):
                    yield Record(
                        max(record.t, other.t),
                        record.key,
                        join_fn(record, other),
                    )
                # An exhausted right side can never consume this record;
                # buffering it would just grow memory for nothing.
                if right_next is not None:
                    lat, lon = position(record)
                    left_buf.append((record.t, token))
                    left_records[token] = record
                    left_index.insert(token, lat, lon)
                    token += 1
            else:
                record = right_next
                right_next = next(right_iter, None)
                _prune(left_buf, left_records, left_index, record.t)
                for other in _matches(record, left_records, left_index):
                    yield Record(
                        max(record.t, other.t),
                        other.key,
                        join_fn(other, record),
                    )
                if left_next is not None:
                    lat, lon = position(record)
                    right_buf.append((record.t, token))
                    right_records[token] = record
                    right_index.insert(token, lat, lon)
                    token += 1

    return Stream(_gen())


def enrich(
    stream: Stream,
    lookup: Callable[[Record], Any],
    combine: Callable[[Any, Any], Any] = lambda value, context: (value, context),
) -> Stream:
    """Stream-static join: annotate each record with looked-up context.

    ``lookup`` receives the whole record (so it can use time *and*
    position); ``combine`` merges value and context into the output value.
    A ``None`` context passes the record through unchanged — missing
    context must never drop surveillance data.
    """

    def _gen() -> Iterator[Record]:
        for record in stream:
            context = lookup(record)
            if context is None:
                yield record
            else:
                yield Record(record.t, record.key, combine(record.value, context))

    return Stream(_gen())
